#!/usr/bin/env python3
"""Race the handover-policy zoo over one drive.

Runs the same 25 mph UDP drive — identical road, seed, and channel
realisation — once per registered handover policy, and prints a
scoreboard: coverage throughput, number of AP switches, and where along
the road each policy switched.

The full tournament (speeds x densities, oracle scoring, cached) lives
in ``benchmarks/test_policy_tournament.py``; this example is the
one-minute version.

Run:  python examples/policy_comparison.py
"""

from repro.experiments import run_drive_summary
from repro.mobility import DEFAULT_SPAN_M, LEAD_IN_M, mph_to_mps
from repro.policies import PolicySpec, available_policies

SPEED_MPH = 25.0
SEED = 7
UDP_RATE_MBPS = 50.0


def road_position(t: float) -> float:
    """Metres past the first AP at time t (drive starts LEAD_IN_M before)."""
    return mph_to_mps(SPEED_MPH) * t - LEAD_IN_M


def switch_map(summary, width: int = 56, span_m: float = DEFAULT_SPAN_M) -> str:
    """Mark where along the AP array each committed switch happened."""
    cells = ["-"] * width
    for t, _ap in summary.switch_events:
        x = road_position(t)
        i = int(x / span_m * (width - 1))
        if 0 <= i < width:
            cells[i] = "#"
    return "".join(cells)


def main() -> None:
    names = sorted(available_policies())
    print(f"One {SPEED_MPH:.0f} mph UDP drive (seed {SEED}) per policy, "
          f"identical channel:\n")

    rows = []
    for name in names:
        summary = run_drive_summary(
            mode="wgtt", speed_mph=SPEED_MPH, traffic="udp",
            udp_rate_mbps=UDP_RATE_MBPS, seed=SEED,
            policy=PolicySpec(name),
        )
        rows.append((name, summary))

    width = max(len(n) for n in names)
    print(f"{'policy':>{width}} {'Mb/s':>7} {'switches':>9}   "
          f"switch positions (first AP .. last AP)")
    for name, summary in sorted(rows, key=lambda r: -r[1].coverage_throughput_mbps):
        print(f"{name:>{width}} {summary.coverage_throughput_mbps:7.2f} "
              f"{summary.switch_count:9d}   |{switch_map(summary)}|")

    print("\nEvery policy sees the same fading processes (seeds ignore the")
    print("policy), so differences are pure selection behaviour: reactive")
    print("policies (max-median, greedy) switch often and chase the channel;")
    print("map-based policies switch once per cell boundary.")


if __name__ == "__main__":
    main()
