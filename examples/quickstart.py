#!/usr/bin/env python3
"""Quickstart: one car drives past eight WGTT picocell APs.

Builds the paper's testbed (Fig. 9), runs a 15 mph drive with a bulk TCP
download under both WGTT and the Enhanced 802.11r baseline, and prints
the throughput comparison plus the WGTT switching behaviour.

Run:  python examples/quickstart.py
"""

from repro.experiments import (
    mean_throughput_mbps,
    run_single_drive,
    throughput_timeseries,
)
from repro.mobility import DEFAULT_SPAN_M, LEAD_IN_M, mph_to_mps

SPEED_MPH = 15.0


def measure(mode: str) -> dict:
    result = run_single_drive(mode=mode, speed_mph=SPEED_MPH, traffic="tcp", seed=7)
    v = mph_to_mps(SPEED_MPH)
    t_in, t_out = LEAD_IN_M / v, (DEFAULT_SPAN_M + LEAD_IN_M) / v  # in the array
    return {
        "result": result,
        "throughput": mean_throughput_mbps(result.deliveries, t_in, t_out),
        "switches": result.timeline.switch_count,
        "window": (t_in, t_out),
    }


def sparkline(values, width=50):
    blocks = " .:-=+*#%@"
    top = max(max(values), 1e-9)
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in values)


def main() -> None:
    print(f"Driving one client past 8 picocell APs at {SPEED_MPH:.0f} mph, bulk TCP download\n")
    rows = {}
    for mode in ("wgtt", "baseline"):
        rows[mode] = measure(mode)
        m = rows[mode]
        print(f"  {mode:>8}: {m['throughput']:6.2f} Mbit/s   "
              f"{m['switches']} AP switches during the drive")

    ratio = rows["wgtt"]["throughput"] / max(rows["baseline"]["throughput"], 1e-9)
    print(f"\n  WGTT / Enhanced-802.11r throughput ratio: {ratio:.1f}x "
          f"(the paper reports 2.4-4.7x for TCP)\n")

    for mode in ("wgtt", "baseline"):
        result = rows[mode]["result"]
        _t, mbps = throughput_timeseries(result.deliveries, 0.0, result.duration_s, 0.25)
        print(f"  {mode:>8} throughput over time: |{sparkline(mbps)}|")

    print("\nEach column is 250 ms. Note the baseline's dead time between")
    print("cells versus WGTT's continuous delivery.")


if __name__ == "__main__":
    main()
