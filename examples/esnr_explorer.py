#!/usr/bin/env python3
"""Explore the vehicular picocell regime itself (Figs. 2 and 10).

No protocols here -- just the channel: sample each AP's ESNR along the
road at millisecond resolution, print an ASCII heatmap of mean SNR
(Fig. 10's equivalent), and show how often the *best* AP changes at
driving speed (the Fig. 2 phenomenon that motivates the whole system).

Run:  python examples/esnr_explorer.py
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_network
from repro.mobility import LinearTrajectory, RoadLayout, mph_to_mps

SPEED_MPH = 25.0


def main() -> None:
    road = RoadLayout()
    net = build_network(ExperimentConfig(mode="wgtt", seed=42))
    trajectory = LinearTrajectory.drive_through(road, SPEED_MPH)
    client = net.add_client(trajectory)
    links = net.links_for_client(client)
    v = mph_to_mps(SPEED_MPH)

    print(f"Mean SNR heatmap along the road (8 APs, {SPEED_MPH:.0f} mph drive)\n")
    shades = " .:-=+*#%@"
    xs = np.arange(-10.0, 65.0, 1.5)
    for i, link in enumerate(links):
        row = ""
        for x in xs:
            t = (x - trajectory.start_x) / v
            snr = link.mean_snr_db(t)
            level = int(np.clip((snr - 0.0) / 40.0, 0, 0.999) * len(shades))
            row += shades[level]
        print(f"  AP{i + 1} (x={road.ap_x[i]:5.1f} m) |{row}|")
    print(f"{'':>18}x = {xs[0]:.0f} m {'':>40} x = {xs[-1]:.0f} m\n")

    # Best-AP churn at millisecond timescales.
    t0, t1 = 20.0 / v, 40.0 / v
    ts = np.arange(t0, t1, 1e-3)
    best = np.array([
        int(np.argmax([link.esnr_db(float(t)) for link in links])) for t in ts
    ])
    flips = int(np.sum(np.diff(best) != 0))
    dwell_ms = 1000.0 * (t1 - t0) / max(flips, 1)
    print(f"Over a {1000 * (t1 - t0):.0f} ms stretch mid-array, the instantaneous")
    print(f"best AP changed {flips} times (mean dwell {dwell_ms:.1f} ms) -- the")
    print("millisecond-level AP diversity of Fig. 2 that 802.11r cannot track.")


if __name__ == "__main__":
    main()
