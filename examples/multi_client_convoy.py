#!/usr/bin/env python3
"""Multiple vehicles sharing the picocell array (Figs. 17, 19, 20).

Runs the paper's three two-car arrangements -- following, parallel, and
opposing-direction driving -- with a bulk UDP download to each car, and
prints per-client throughput.  Parallel cars contend for the same cells
(carrier sensing each other); opposing cars spend most of the drive far
apart and barely interact.

Run:  python examples/multi_client_convoy.py
"""

from repro.experiments import (
    ExperimentConfig,
    attach_udp_downlink,
    build_network,
    mean_throughput_mbps,
    udp_deliveries,
)
from repro.mobility import (
    COVERAGE_ENTRY_OFFSET_M,
    DEFAULT_SPAN_M,
    LEAD_IN_M,
    SCENARIOS,
    RoadLayout,
    mph_to_mps,
)

SPEED_MPH = 15.0
RATE_MBPS = 30.0


def run_scenario(name: str, mode: str = "wgtt", seed: int = 3):
    road = RoadLayout()
    net = build_network(ExperimentConfig(mode=mode, road=road, seed=seed))
    trajectories = SCENARIOS[name](road, SPEED_MPH)
    flows = []
    duration = 0.0
    for trajectory in trajectories:
        client = net.add_client(trajectory)
        sender, receiver = attach_udp_downlink(net, client, RATE_MBPS)
        # Shortly after entering coverage.
        start = COVERAGE_ENTRY_OFFSET_M / trajectory.speed_mps
        net.sim.schedule(start, sender.start)
        flows.append((client, sender, receiver))
        duration = max(duration, trajectory.transit_duration(road))
    net.run(until=duration)

    v = mph_to_mps(SPEED_MPH)
    t_in, t_out = LEAD_IN_M / v, (DEFAULT_SPAN_M + LEAD_IN_M) / v
    return [
        mean_throughput_mbps(udp_deliveries(rx, tx.packet_bytes), t_in, t_out)
        for _c, tx, rx in flows
    ]


def main() -> None:
    print(f"Two cars at {SPEED_MPH:.0f} mph, {RATE_MBPS:.0f} Mbit/s UDP download each\n")
    print(f"{'scenario':>12} {'car 1':>9} {'car 2':>9} {'total':>9}")
    for name in ("following", "parallel", "opposing"):
        per_client = run_scenario(name)
        total = sum(per_client)
        print(f"{name:>12} {per_client[0]:8.2f} {per_client[1]:8.2f} {total:8.2f}  Mbit/s")
    print("\nThe paper's Fig. 20 finds opposing-direction driving fastest")
    print("(minimal contention) and parallel driving slowest (the cars")
    print("carrier-sense each other the whole way).")


if __name__ == "__main__":
    main()
