#!/usr/bin/env python3
"""Stream an HD video to a commuting client (the Table 4 scenario).

A 720p stream (2.5 Mbit/s, 1.5 s pre-buffer) plays while the car transits
the AP array.  The script reports the rebuffer ratio -- the fraction of
the drive spent staring at a loading spinner -- under WGTT and under the
Enhanced 802.11r baseline, at two driving speeds.

Run:  python examples/video_commute.py
"""

from repro.apps.video import VideoParams, VideoStreamingSession
from repro.experiments import ExperimentConfig, attach_tcp_downlink, build_network
from repro.mobility import (
    COVERAGE_ENTRY_OFFSET_M,
    LinearTrajectory,
    RoadLayout,
    mph_to_mps,
)


def stream_drive(mode: str, speed_mph: float, seed: int = 41) -> VideoStreamingSession:
    road = RoadLayout()
    net = build_network(ExperimentConfig(mode=mode, road=road, seed=seed))
    trajectory = LinearTrajectory.drive_through(road, speed_mph)
    client = net.add_client(trajectory)
    sender, receiver = attach_tcp_downlink(net, client)

    session = VideoStreamingSession(net.sim, VideoParams())
    receiver.on_bytes = session.on_bytes

    start = ((min(road.ap_x) - COVERAGE_ENTRY_OFFSET_M - trajectory.start_x)
             / trajectory.speed_mps)
    net.sim.schedule(max(0.05, start), sender.start)
    duration = trajectory.transit_duration(road)
    net.run(until=duration)
    session.finish(duration)
    session.transit_s = duration - max(0.05, start)
    return session


def main() -> None:
    print("HD video streaming during the commute (2.5 Mbit/s, 1.5 s pre-buffer)\n")
    print(f"{'speed':>8} {'system':>10} {'rebuffer ratio':>15} {'stalls':>7}")
    for speed in (5.0, 25.0):
        for mode in ("wgtt", "baseline"):
            s = stream_drive(mode, speed)
            ratio = s.rebuffer_ratio(s.transit_s)
            print(f"{speed:6.0f}mph {mode:>10} {ratio:15.2f} {s.stall_events:7d}")
    print("\nThe paper's Table 4: WGTT rebuffers 0.00 at every speed;")
    print("Enhanced 802.11r rebuffers 0.54-0.69 of the drive.")


if __name__ == "__main__":
    main()
