#!/usr/bin/env python
"""Regenerate the golden drive digests (tests/golden/drive_digests.json).

The golden file locks the *exact* behaviour of three reference drives
(delivery and trace sha256, counts, throughput bits, events fired); the
tier-1 suite fails on any drift.  Run this script ONLY when a PR
deliberately changes simulation behaviour, and document the cause in the
PR (see EXPERIMENTS.md, "Re-goldening procedure").

Usage:
    PYTHONPATH=src python scripts/regolden_drives.py [--check]

``--check`` recomputes the digests and exits 1 on mismatch without
writing, which is what CI would use to validate the file is current.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_PATH = os.path.join(REPO_ROOT, "tests", "golden", "drive_digests.json")

#: The locked reference drives.  Keys are stable names used by the tests;
#: values are ``run_single_drive`` kwargs.
DRIVES = {
    "default_tcp": {},
    "baseline_tcp": {
        "mode": "baseline", "seed": 0, "speed_mph": 15.0, "traffic": "tcp",
    },
    "udp_25mph_seed1": {
        "mode": "wgtt", "seed": 1, "speed_mph": 25.0, "traffic": "udp",
        "udp_rate_mbps": 30.0,
    },
}


def compute_digests():
    from repro.experiments import runners
    from repro.experiments.digest import drive_digests

    out = {}
    for name, kwargs in DRIVES.items():
        # Flow ids come from a module-global counter; pin it so digests
        # do not depend on run order (the golden test does the same).
        saved = runners._next_flow_id[0]
        try:
            runners._next_flow_id[0] = 1
            result = runners.run_single_drive(**kwargs)
        finally:
            runners._next_flow_id[0] = saved
        entry = drive_digests(result)
        entry["kwargs"] = kwargs
        out[name] = entry
        print(f"{name}: {entry['n_deliveries']} deliveries, "
              f"{entry['events_fired']} events, "
              f"trace {entry['trace'][:12]}...")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the committed digests instead of writing")
    args = parser.parse_args()

    fresh = compute_digests()
    if args.check:
        with open(GOLDEN_PATH) as fh:
            committed = json.load(fh)
        if committed != fresh:
            diverged = [k for k in fresh
                        if committed.get(k) != fresh[k]]
            print(f"DIVERGED: {', '.join(diverged)}", file=sys.stderr)
            return 1
        print("golden digests are current")
        return 0

    with open(GOLDEN_PATH, "w") as fh:
        json.dump(fresh, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(GOLDEN_PATH, REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
