"""Unit and property tests for the WGTT cyclic queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cyclic_queue import INDEX_MODULO, CyclicQueue, ring_distance
from repro.net.packet import Packet


def pkt(index, size=1500):
    p = Packet(size_bytes=size, src=1, dst=200)
    p.wgtt_index = index % INDEX_MODULO
    return p


def test_ring_distance():
    assert ring_distance(0, 5) == 5
    assert ring_distance(4090, 3) == 9
    assert ring_distance(3, 3) == 0


def test_insert_requires_index():
    q = CyclicQueue()
    with pytest.raises(ValueError):
        q.insert(Packet(size_bytes=100, src=1, dst=2))


def test_pop_in_insertion_order():
    q = CyclicQueue()
    for i in range(5):
        q.insert(pkt(i))
    assert [q.pop_next().wgtt_index for _ in range(5)] == list(range(5))
    assert q.pop_next() is None


def test_pop_skips_missing_indices():
    """An AP that missed some indices must not starve (regression)."""
    q = CyclicQueue()
    q.insert(pkt(0))
    q.insert(pkt(3))  # 1 and 2 never arrived at this AP
    assert q.pop_next().wgtt_index == 0
    assert q.pop_next().wgtt_index == 3


def test_set_read_index_discards_older_entries():
    q = CyclicQueue()
    for i in range(10):
        q.insert(pkt(i))
    q.set_read_index(6)
    assert q.pop_next().wgtt_index == 6


def test_set_read_index_to_missing_index_keeps_later():
    q = CyclicQueue()
    q.insert(pkt(2))
    q.insert(pkt(8))
    q.set_read_index(5)
    assert q.pop_next().wgtt_index == 8


def test_read_index_reflects_next_pending():
    q = CyclicQueue()
    q.insert(pkt(4))
    assert q.read_index == 4
    q.pop_next()
    assert q.read_index == 5  # one past the newest insert


def test_overwrite_after_full_lap():
    q = CyclicQueue(size=8)
    for i in range(8):
        q.insert(pkt(i))
    q.insert(pkt(8))  # lands on slot 0, overwriting index 0
    assert q.overwritten == 1
    popped = [q.pop_next().wgtt_index for _ in range(8)]
    assert popped == [1, 2, 3, 4, 5, 6, 7, 8]


def test_wraparound_indices_pop_in_order():
    q = CyclicQueue()
    for i in (4094, 4095, 0, 1):
        q.insert(pkt(i))
    assert [q.pop_next().wgtt_index for _ in range(4)] == [4094, 4095, 0, 1]


def test_writer_laps_reader_no_deadlock():
    """Regression: >2048 indices of backlog must not wedge the reader."""
    q = CyclicQueue()
    for i in range(3000):
        q.insert(pkt(i))
    out = []
    while True:
        p = q.pop_next()
        if p is None:
            break
        out.append(p.wgtt_index)
    assert len(out) == 3000
    assert out == sorted(out)


def test_peek_does_not_consume():
    q = CyclicQueue()
    q.insert(pkt(0))
    assert q.peek().wgtt_index == 0
    assert q.peek().wgtt_index == 0
    assert q.pop_next() is not None


def test_backlog_from():
    q = CyclicQueue()
    for i in range(5):
        q.insert(pkt(i))
    assert q.backlog_from(0) == 5
    assert q.backlog_from(3) == 2


def test_len_counts_pending():
    q = CyclicQueue()
    q.insert(pkt(0))
    q.insert(pkt(1))
    q.pop_next()
    assert len(q) == 1


def test_clear():
    q = CyclicQueue()
    q.insert(pkt(0))
    q.clear()
    assert q.pop_next() is None


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        CyclicQueue(size=0)
    with pytest.raises(ValueError):
        CyclicQueue(size=INDEX_MODULO + 1)


def test_duplicate_insert_same_index_latest_wins():
    q = CyclicQueue()
    first, second = pkt(0), pkt(0)
    q.insert(first)
    q.insert(second)
    popped = q.pop_next()
    assert popped is second
    # The stale pending entry must not resurface.
    assert q.pop_next() is None


@settings(max_examples=60, deadline=None)
@given(
    start=st.integers(0, INDEX_MODULO - 1),
    n=st.integers(1, 300),
    holes=st.sets(st.integers(0, 299), max_size=50),
    jump=st.integers(0, 299),
)
def test_property_insertion_order_consumption(start, n, holes, jump):
    """Property: pops return exactly the inserted (non-hole) indices at or
    after the start(c, k) jump point, in insertion order -- across any
    wraparound."""
    q = CyclicQueue()
    inserted = []
    for offset in range(n):
        if offset in holes:
            continue
        idx = (start + offset) % INDEX_MODULO
        q.insert(pkt(idx))
        inserted.append((offset, idx))
    k = (start + jump) % INDEX_MODULO
    q.set_read_index(k)
    expected = [idx for offset, idx in inserted if offset >= jump]
    out = []
    while True:
        p = q.pop_next()
        if p is None:
            break
        out.append(p.wgtt_index)
    assert out == expected
