"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecord, TraceRecorder


def test_emit_and_count():
    tr = TraceRecorder()
    tr.emit(1.0, "a", x=1)
    tr.emit(2.0, "a", x=2)
    tr.emit(3.0, "b")
    assert tr.count("a") == 2
    assert tr.count("b") == 1
    assert tr.count("missing") == 0


def test_records_filtered_by_kind():
    tr = TraceRecorder()
    tr.emit(1.0, "a")
    tr.emit(2.0, "b")
    assert [r.kind for r in tr.records("a")] == ["a"]
    assert len(tr.records()) == 2


def test_keep_kinds_limits_storage_but_not_counters():
    tr = TraceRecorder(keep_kinds={"keep"})
    tr.emit(1.0, "keep")
    tr.emit(1.0, "drop")
    assert len(tr) == 1
    assert tr.count("drop") == 1


def test_times_and_values_extraction():
    tr = TraceRecorder()
    tr.emit(1.0, "x", v=10)
    tr.emit(2.0, "x", v=20)
    assert tr.times("x") == [1.0, 2.0]
    assert tr.values("x", "v") == [10, 20]


def test_record_getitem_and_get():
    rec = TraceRecord(1.0, "k", {"a": 1})
    assert rec["a"] == 1
    assert rec.get("missing", 42) == 42


def test_clear_resets_everything():
    tr = TraceRecorder()
    tr.emit(1.0, "a")
    tr.clear()
    assert len(tr) == 0
    assert tr.count("a") == 0


def test_empty_recorder_is_still_truthy_for_none_checks():
    # Regression: components must not replace an empty shared recorder.
    tr = TraceRecorder()
    chosen = tr if tr is not None else TraceRecorder()
    assert chosen is tr


def test_iter_records_filters():
    tr = TraceRecorder()
    tr.emit(1.0, "a", n=1)
    tr.emit(2.0, "b", n=2)
    tr.emit(3.0, "a", n=3)
    assert [r["n"] for r in tr.iter_records("a")] == [1, 3]


# ------------------------------------------------------------ max_records
def test_max_records_ring_eviction_boundary():
    tr = TraceRecorder(max_records=3)
    for i in range(3):
        tr.emit(float(i), "k", i=i)
    # Exactly full: nothing dropped yet.
    assert len(tr) == 3
    assert tr.dropped_records == 0
    tr.emit(3.0, "k", i=3)
    # One over: the oldest record is evicted, counters stay exact.
    assert len(tr) == 3
    assert tr.dropped_records == 1
    assert [r["i"] for r in tr.records()] == [1, 2, 3]
    assert tr.count("k") == 4


def test_max_records_zero_stores_nothing_counts_everything():
    tr = TraceRecorder(max_records=0)
    tr.emit(1.0, "a")
    tr.emit(2.0, "b")
    assert len(tr) == 0
    assert tr.dropped_records == 2
    assert tr.count("a") == 1 and tr.count("b") == 1


def test_max_records_interacts_with_keep_kinds():
    tr = TraceRecorder(keep_kinds={"keep"}, max_records=2)
    for i in range(5):
        tr.emit(float(i), "keep", i=i)
        tr.emit(float(i), "drop", i=i)
    # Filtered kinds never enter the ring, so they cannot evict.
    assert [r["i"] for r in tr.records()] == [3, 4]
    assert tr.dropped_records == 3
    assert tr.count("drop") == 5


def test_max_records_clear_resets_drop_counter():
    tr = TraceRecorder(max_records=1)
    tr.emit(1.0, "a")
    tr.emit(2.0, "a")
    assert tr.dropped_records == 1
    tr.clear()
    assert tr.dropped_records == 0
    assert len(tr) == 0


def test_max_records_negative_rejected():
    import pytest

    with pytest.raises(ValueError):
        TraceRecorder(max_records=-1)
