"""Unit and property tests for the drop-tail queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.queues import DropTailQueue


def test_fifo_order():
    q = DropTailQueue()
    for i in range(5):
        q.enqueue(i)
    assert [q.dequeue() for _ in range(5)] == list(range(5))


def test_dequeue_empty_returns_none():
    assert DropTailQueue().dequeue() is None


def test_peek_does_not_remove():
    q = DropTailQueue()
    q.enqueue("a")
    assert q.peek() == "a"
    assert len(q) == 1


def test_capacity_enforced_with_drop_count():
    q = DropTailQueue(capacity=2)
    assert q.enqueue(1)
    assert q.enqueue(2)
    assert not q.enqueue(3)
    assert q.stats.dropped == 1
    assert len(q) == 2


def test_requeue_front_bypasses_capacity():
    q = DropTailQueue(capacity=1)
    q.enqueue(1)
    q.requeue_front(0)
    assert len(q) == 2
    assert q.dequeue() == 0


def test_drain_empties_and_returns_all():
    q = DropTailQueue()
    q.extend([1, 2, 3])
    assert q.drain() == [1, 2, 3]
    assert len(q) == 0


def test_remove_if_filters():
    q = DropTailQueue()
    q.extend(range(10))
    removed = q.remove_if(lambda x: x % 2 == 0)
    assert removed == 5
    assert list(q) == [1, 3, 5, 7, 9]


def test_extend_reports_accepted():
    q = DropTailQueue(capacity=3)
    assert q.extend(range(5)) == 3


def test_is_full_and_bool():
    q = DropTailQueue(capacity=1)
    assert not q
    assert not q.is_full
    q.enqueue(1)
    assert q
    assert q.is_full


def test_unbounded_queue():
    q = DropTailQueue()
    assert q.extend(range(10_000)) == 10_000
    assert not q.is_full


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        DropTailQueue(capacity=0)


def test_stats_counters():
    q = DropTailQueue(capacity=2)
    q.enqueue(1)
    q.enqueue(2)
    q.enqueue(3)
    q.dequeue()
    assert q.stats.enqueued == 2
    assert q.stats.dequeued == 1
    assert q.stats.dropped == 1


@given(st.lists(st.integers(), max_size=200), st.integers(1, 50))
def test_property_fifo_with_capacity(items, capacity):
    """Property: the queue keeps exactly the first `capacity` items in order."""
    q = DropTailQueue(capacity=capacity)
    for item in items:
        q.enqueue(item)
    expected = items[:capacity]
    assert [q.dequeue() for _ in range(len(expected))] == expected
    assert q.dequeue() is None
