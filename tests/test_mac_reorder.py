"""Unit and property tests for the receive reorder buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.reorder import RxReorderBuffer
from repro.sim.engine import Simulator


def make(timeout=0.02):
    sim = Simulator()
    out = []
    buf = RxReorderBuffer(sim, out.append, timeout_s=timeout)
    return sim, buf, out


def test_in_order_delivery_is_immediate():
    _sim, buf, out = make()
    for seq in range(5):
        buf.on_mpdu(seq, f"p{seq}")
    assert out == [f"p{i}" for i in range(5)]


def test_gap_blocks_until_filled():
    _sim, buf, out = make()
    buf.on_mpdu(0, "a")
    buf.on_mpdu(2, "c")
    assert out == ["a"]
    buf.on_mpdu(1, "b")
    assert out == ["a", "b", "c"]


def test_duplicate_of_delivered_dropped():
    _sim, buf, out = make()
    buf.on_mpdu(0, "a")
    buf.on_mpdu(0, "a-again")
    assert out == ["a"]
    assert buf.duplicates == 1


def test_duplicate_of_buffered_dropped():
    _sim, buf, out = make()
    buf.on_mpdu(0, "a")
    buf.on_mpdu(2, "c")
    buf.on_mpdu(2, "c-dup")
    assert buf.duplicates == 1


def test_timeout_releases_blocked_frames():
    sim, buf, out = make(timeout=0.02)
    buf.on_mpdu(0, "a")
    buf.on_mpdu(2, "c")
    buf.on_mpdu(3, "d")
    sim.run(until=0.1)
    assert out == ["a", "c", "d"]
    assert buf.timeouts == 1


def test_first_seq_sets_window_start():
    _sim, buf, out = make()
    buf.on_mpdu(100, "x")
    assert out == ["x"]


def test_wraparound_sequences():
    _sim, buf, out = make()
    buf.on_mpdu(4094, "a")
    buf.on_mpdu(4095, "b")
    buf.on_mpdu(0, "c")
    buf.on_mpdu(1, "d")
    assert out == ["a", "b", "c", "d"]


def test_late_retry_after_timeout_is_dropped():
    sim, buf, out = make(timeout=0.02)
    buf.on_mpdu(0, "a")
    buf.on_mpdu(2, "c")
    sim.run(until=0.1)  # window jumped past 1
    buf.on_mpdu(1, "b-late")
    assert "b-late" not in out
    assert buf.duplicates >= 1


@settings(max_examples=60, deadline=None)
@given(perm=st.permutations(list(range(12))))
def test_property_any_arrival_order_delivers_in_order(perm):
    """Property: whatever the arrival order, delivery is in-sequence and
    complete once every frame has arrived."""
    sim = Simulator()
    out = []
    buf = RxReorderBuffer(sim, out.append, timeout_s=1.0)
    first = perm[0]
    # Window starts at the first arrival: frames before it are dropped,
    # so feed a shifted sequence starting at the minimum.
    buf.on_mpdu(0, 0) if first != 0 else None
    buf2_out = []
    buf2 = RxReorderBuffer(sim, buf2_out.append, timeout_s=1.0)
    buf2.on_mpdu(0, 0)
    for seq in perm:
        buf2.on_mpdu(seq, seq)
    sim.run(until=5.0)
    assert buf2_out == sorted(set(buf2_out))
    assert set(buf2_out) == set(range(12))


@settings(max_examples=30, deadline=None)
@given(
    drops=st.sets(st.integers(1, 19), max_size=6),
)
def test_property_losses_only_delay_not_reorder(drops):
    """Property: with frames lost forever, the timeout still yields a
    monotonically increasing delivery sequence."""
    sim = Simulator()
    out = []
    buf = RxReorderBuffer(sim, out.append, timeout_s=0.01)
    t = 0.0
    for seq in range(20):
        if seq in drops:
            continue
        t += 0.001
        sim.schedule_at(t, buf.on_mpdu, seq, seq)
    sim.run(until=1.0)
    assert out == sorted(out)
    assert set(out) == set(range(20)) - drops
