"""Unit and property tests for the max-median ESNR AP selector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ap_selection import ApSelector, EsnrWindow, median


def test_median_definition_matches_paper():
    # The paper uses element floor(L/2) of the sorted list.
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 3.0  # floor(4/2) = element 2
    assert median([5.0]) == 5.0


def test_median_empty_rejected():
    with pytest.raises(ValueError):
        median([])


class TestEsnrWindow:
    def test_values_within_window(self):
        w = EsnrWindow(0.010, min_keep=0)
        w.add(0.000, 10.0)
        w.add(0.005, 12.0)
        assert w.values(0.008) == [10.0, 12.0]

    def test_old_values_purged(self):
        w = EsnrWindow(0.010, min_keep=0)
        w.add(0.000, 10.0)
        w.add(0.020, 12.0)
        assert w.values(0.020) == [12.0]

    def test_min_keep_retains_sparse_readings(self):
        """With sparse traffic the last few readings survive past W."""
        w = EsnrWindow(0.010, min_keep=2)
        w.add(0.000, 10.0)
        w.add(0.030, 12.0)
        assert w.values(0.050) == [10.0, 12.0]

    def test_hard_staleness_cap(self):
        w = EsnrWindow(0.010, min_keep=3, max_age_s=0.1)
        w.add(0.0, 10.0)
        assert w.values(0.2) == []

    def test_median_of_window(self):
        w = EsnrWindow(1.0)
        for t, e in [(0.1, 5.0), (0.2, 15.0), (0.3, 10.0)]:
            w.add(t, e)
        assert w.median(0.35) == 10.0

    def test_median_none_when_empty(self):
        assert EsnrWindow(0.01, min_keep=0, max_age_s=0.01).median(10.0) is None

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            EsnrWindow(0.0)

    def test_min_keep_yields_to_hard_cap(self):
        """min_keep retention never outlives the max_age_s staleness cap."""
        w = EsnrWindow(0.010, min_keep=3, max_age_s=0.1)
        w.add(0.00, 10.0)
        w.add(0.05, 11.0)
        w.add(0.09, 12.0)
        # The first two are past W at t=0.095 but inside max_age_s:
        # retained by min_keep.
        assert w.values(0.095) == [10.0, 11.0, 12.0]
        # The first crosses the hard cap at t=0.10+: evicted despite
        # min_keep asking for three.
        assert w.values(0.105) == [11.0, 12.0]

    def test_max_age_below_window_clamps_to_window(self):
        """max_age_s < window_s would evict in-window readings; clamped."""
        w = EsnrWindow(0.010, min_keep=0, max_age_s=0.001)
        assert w.max_age_s == 0.010
        w.add(0.000, 10.0)
        w.add(0.005, 12.0)
        # Both readings are inside W and must survive the (clamped) cap.
        assert w.values(0.008) == [10.0, 12.0]


class TestApSelector:
    def test_best_ap_by_median(self):
        sel = ApSelector(window_s=1.0, min_readings=2)
        for t in (0.1, 0.2, 0.3):
            sel.update(1, t, 10.0)
            sel.update(2, t, 20.0)
        assert sel.best_ap(0.35) == 2

    def test_median_resists_single_spike(self):
        sel = ApSelector(window_s=1.0, min_readings=3)
        for t in (0.1, 0.2, 0.3):
            sel.update(1, t, 15.0)
        sel.update(2, 0.1, 40.0)  # one lucky fade peak
        sel.update(2, 0.2, 5.0)
        sel.update(2, 0.3, 5.0)
        assert sel.best_ap(0.35) == 1

    def test_min_readings_gates_candidates(self):
        sel = ApSelector(window_s=1.0, min_readings=2)
        sel.update(1, 0.1, 30.0)
        assert sel.best_ap(0.2) is None
        sel.update(1, 0.15, 30.0)
        assert sel.best_ap(0.2) == 1

    def test_in_range_aps_single_reading(self):
        sel = ApSelector(window_s=1.0, min_readings=2)
        sel.update(7, 0.1, 3.0)
        assert sel.in_range_aps(0.2) == [7]

    def test_stale_ap_leaves_range(self):
        sel = ApSelector(window_s=0.01)
        sel.update(7, 0.1, 3.0)
        assert sel.in_range_aps(10.0) == []

    def test_mean_metric(self):
        sel = ApSelector(window_s=1.0, min_readings=1, metric="mean")
        sel.update(1, 0.1, 0.0)
        sel.update(1, 0.2, 30.0)
        sel.update(2, 0.1, 14.0)
        sel.update(2, 0.2, 14.0)
        assert sel.best_ap(0.3) == 1  # mean 15 vs 14 (median would say 2)

    def test_max_metric(self):
        sel = ApSelector(window_s=1.0, min_readings=1, metric="max")
        sel.update(1, 0.1, 25.0)
        sel.update(1, 0.2, 0.0)
        sel.update(2, 0.1, 20.0)
        sel.update(2, 0.2, 20.0)
        assert sel.best_ap(0.3) == 1

    def test_default_min_readings_matches_controller(self):
        """Regression: ApSelector() used to default min_readings=2 while
        ControllerParams passed 1, so a bare selector silently behaved
        differently from every actual drive.  The defaults now agree."""
        from repro.core.controller import ControllerParams

        assert ApSelector().min_readings == ControllerParams().min_readings == 1

    def test_single_reading_qualifies_by_default(self):
        s = ApSelector(window_s=0.010)
        s.update(1, 0.001, 20.0)
        assert s.best_ap(0.002) == 1

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ApSelector(metric="geometric")

    @settings(max_examples=50, deadline=None)
    @given(
        readings=st.dictionaries(
            st.integers(100, 104),
            st.lists(st.floats(-10, 40), min_size=1, max_size=9),
            min_size=1,
            max_size=5,
        )
    )
    def test_property_best_ap_has_max_median(self, readings):
        """Property: the selected AP's median is >= every candidate's."""
        sel = ApSelector(window_s=10.0, min_readings=1)
        for ap, values in readings.items():
            for i, v in enumerate(values):
                sel.update(ap, 0.1 * (i + 1), v)
        best = sel.best_ap(1.0)
        scores = sel.candidates(1.0)
        assert best in scores
        assert scores[best] == max(scores.values())
