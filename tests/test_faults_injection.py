"""Unit tests for the fault overlay and injector (repro.faults)."""

import numpy as np
import pytest

from repro.core.messages import CsiReport, ctrl_packet
from repro.faults import BackhaulFaultOverlay, FaultScenario, LinkRule
from repro.net.ethernet import Backhaul, BackhaulParams
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


def make_overlay(seed=0):
    trace = TraceRecorder()
    overlay = BackhaulFaultOverlay(np.random.default_rng(seed), trace=trace)
    return overlay, trace


def data_packet(n=100):
    return Packet(size_bytes=n, src=1, dst=2, protocol="udp")


def csi_packet(src=1, dst=0):
    from repro.phy.csi import CSIReading

    reading = CSIReading(time=0.0, ap_id=src, client_id=9,
                         csi=np.ones(4, dtype=complex), mean_snr_db=20.0)
    return ctrl_packet(src, dst, CsiReport(reading=reading), 0.0)


# ---------------------------------------------------------------- overlay
def test_overlay_node_down_drops_both_directions():
    overlay, trace = make_overlay()
    overlay.fail_node(5, now=1.0)
    assert overlay.on_send(5, 2, data_packet(), 1.0).drop
    assert overlay.on_send(2, 5, data_packet(), 1.0).drop
    assert not overlay.on_send(2, 3, data_packet(), 1.0).drop
    overlay.revive_node(5, now=2.0)
    assert not overlay.on_send(5, 2, data_packet(), 2.0).drop
    assert trace.count("fault_node_down") == 1
    assert trace.count("fault_node_up") == 1
    assert overlay.drops_node_down == 2


def test_overlay_unregistered_destination_drops():
    overlay, trace = make_overlay()
    verdict = overlay.on_send(1, 99, data_packet(), 0.0, dst_registered=False)
    assert verdict.drop and verdict.reason == "unregistered"
    drops = trace.records("fault_backhaul_drop")
    assert drops and drops[0]["reason"] == "unregistered"


def test_rule_window_gates_matching():
    overlay, _ = make_overlay()
    overlay.add_rule(LinkRule(t0=1.0, t1=2.0, loss_probability=1.0))
    assert not overlay.on_send(1, 2, data_packet(), 0.5).drop
    assert overlay.on_send(1, 2, data_packet(), 1.0).drop
    assert overlay.on_send(1, 2, data_packet(), 1.999).drop
    assert not overlay.on_send(1, 2, data_packet(), 2.0).drop


def test_rule_groups_and_bidirectionality():
    overlay, _ = make_overlay()
    overlay.add_rule(LinkRule(
        t0=0.0, t1=10.0, group_a=frozenset({1}), group_b=frozenset({2}),
        loss_probability=1.0,
    ))
    assert overlay.on_send(1, 2, data_packet(), 1.0).drop
    assert overlay.on_send(2, 1, data_packet(), 1.0).drop  # bidirectional
    assert not overlay.on_send(1, 3, data_packet(), 1.0).drop

    overlay2, _ = make_overlay()
    overlay2.add_rule(LinkRule(
        t0=0.0, t1=10.0, group_a=frozenset({1}), group_b=frozenset({2}),
        loss_probability=1.0, bidirectional=False,
    ))
    assert overlay2.on_send(1, 2, data_packet(), 1.0).drop
    assert not overlay2.on_send(2, 1, data_packet(), 1.0).drop


def test_probabilistic_rule_is_seeded():
    def run(seed):
        overlay, _ = make_overlay(seed)
        overlay.add_rule(LinkRule(t0=0.0, t1=10.0, loss_probability=0.5))
        return [overlay.on_send(1, 2, data_packet(), 1.0).drop
                for _ in range(50)]

    a, b, c = run(3), run(3), run(4)
    assert a == b
    assert a != c
    assert 0 < sum(a) < 50


def test_csi_only_rule_spares_other_ctrl():
    overlay, _ = make_overlay()
    overlay.add_rule(LinkRule(t0=0.0, t1=10.0, loss_probability=1.0,
                              csi_only=True, bidirectional=False))
    assert overlay.on_send(1, 0, csi_packet(), 1.0).drop
    other_ctrl = ctrl_packet(1, 0, object(), 0.0)
    assert not overlay.on_send(1, 0, other_ctrl, 1.0).drop
    assert not overlay.on_send(1, 0, data_packet(), 1.0).drop


def test_ctrl_only_delay_rule_adds_latency():
    overlay, _ = make_overlay()
    overlay.add_rule(LinkRule(t0=0.0, t1=10.0, extra_latency_s=0.004,
                              jitter_s=0.002, ctrl_only=True))
    verdict = overlay.on_send(1, 0, csi_packet(), 1.0)
    assert not verdict.drop
    assert 0.004 <= verdict.extra_latency_s <= 0.006
    assert overlay.on_send(1, 0, data_packet(), 1.0).extra_latency_s == 0.0
    assert overlay.delayed_packets == 1


# ------------------------------------------------------- backhaul contract
def test_backhaul_unknown_dst_still_raises_without_overlay():
    sim = Simulator()
    bh = Backhaul(sim, np.random.default_rng(0), params=BackhaulParams())
    bh.register(1, lambda p, s: None)
    with pytest.raises(KeyError):
        bh.send(1, 99, data_packet())


def test_backhaul_with_overlay_drops_instead_of_raising():
    sim = Simulator()
    bh = Backhaul(sim, np.random.default_rng(0), params=BackhaulParams())
    overlay, trace = make_overlay()
    bh.attach_fault_overlay(overlay)
    bh.register(1, lambda p, s: None)
    bh.send(1, 99, data_packet())  # unregistered: traced drop, no raise
    assert bh.fault_dropped == 1
    assert bh.packets_lost == 1
    assert trace.count("fault_backhaul_drop") == 1


def test_backhaul_overlay_latency_delays_delivery():
    sim = Simulator()
    bh = Backhaul(sim, np.random.default_rng(0),
                  params=BackhaulParams(jitter_s=0.0))
    overlay, _ = make_overlay()
    overlay.add_rule(LinkRule(t0=0.0, t1=10.0, extra_latency_s=0.050))
    bh.attach_fault_overlay(overlay)
    got = []
    bh.register(1, lambda p, s: None)
    bh.register(2, lambda p, s: got.append(sim.now))
    bh.send(1, 2, data_packet())
    sim.run()
    assert len(got) == 1
    assert got[0] >= 0.050


# ---------------------------------------------------------------- injector
def _built_net(scenario, mode="wgtt"):
    from repro.experiments import build_network

    return build_network(mode=mode, fault_scenario=scenario)


def test_injector_schedules_crash_and_restart():
    sc = FaultScenario.single_ap_crash(ap=2, at=1.0, restart_after_s=2.0)
    net = _built_net(sc)
    ap = net.aps[2]
    assert ap.alive
    net.run(until=1.5)
    assert not ap.alive
    assert not ap.radio.enabled
    assert net.fault_injector.overlay.is_down(ap.node_id)
    net.run(until=3.5)
    assert ap.alive
    assert ap.radio.enabled
    assert not net.fault_injector.overlay.is_down(ap.node_id)
    assert net.trace.count("fault_ap_crash") == 1
    assert net.trace.count("fault_ap_restart") == 1


def test_injector_crash_duration_auto_restart():
    sc = FaultScenario(events=(
        {"kind": "ap_crash", "time": 1.0, "ap": 0, "duration_s": 1.0},
    ))
    net = _built_net(sc)
    net.run(until=3.0)
    assert net.trace.count("fault_ap_restart") == 1
    assert net.aps[0].alive


def test_injector_rejects_out_of_range_ap():
    sc = FaultScenario.single_ap_crash(ap=99, at=1.0)
    net = _built_net(sc)
    with pytest.raises(ValueError):
        net.run(until=2.0)


def test_injector_partition_blocks_controller_traffic():
    # Partition AP 0 from the controller for the whole run.
    sc = FaultScenario(events=(
        {"kind": "partition", "time": 0.0, "aps_b": [0]},
    ))
    net = _built_net(sc)
    ap0 = net.aps[0].node_id
    packet = ctrl_packet(net.controller_id, ap0, object(), 0.0)
    before = net.backhaul.fault_dropped
    net.backhaul.send(net.controller_id, ap0, packet)
    assert net.backhaul.fault_dropped == before + 1


def test_no_scenario_leaves_no_injector():
    from repro.experiments import build_network

    net = build_network(mode="wgtt")
    assert net.fault_injector is None
    assert net.backhaul.fault_overlay is None
