"""Tests for the pluggable handover-policy framework (repro.policies)."""

import json

import numpy as np
import pytest

from repro.core.ap_selection import ApSelector
from repro.core.controller import ControllerParams, WgttController
from repro.core.messages import (
    CsiReport,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)
from repro.net.ethernet import Backhaul, BackhaulParams
from repro.phy.csi import CSIReading
from repro.policies import (
    Baseline80211rPolicy,
    CoverageMapPolicy,
    DatarateEstimatorPolicy,
    HandoverPolicy,
    PolicyContext,
    PolicySpec,
    PositionProfile,
    ThresholdScanRule,
    TrajectoryPredictivePolicy,
    WgttMaxMedianPolicy,
    available_policies,
    cell_boundaries,
    coerce_policy,
    create_policy,
    policy_class,
    register,
)
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


# ---------------------------------------------------------------- PolicySpec
class TestPolicySpec:
    def test_json_round_trip(self):
        spec = PolicySpec("coverage-map", {"hysteresis_m": 2.0})
        assert PolicySpec.from_json(spec.to_json()) == spec

    def test_canonical_json_is_stable(self):
        a = PolicySpec("x", {"b": 1, "a": 2})
        b = PolicySpec("x", {"a": 2, "b": 1})
        assert a.to_json() == b.to_json()
        assert a.key_hash() == b.key_hash()

    def test_distinct_params_distinct_hash(self):
        a = PolicySpec("coverage-map", {"hysteresis_m": 1.0})
        b = PolicySpec("coverage-map", {"hysteresis_m": 2.0})
        assert a.key_hash() != b.key_hash()
        assert a.label() != b.label()

    def test_label_is_bare_name_without_params(self):
        assert PolicySpec("wgtt-max-median").label() == "wgtt-max-median"
        assert "@" in PolicySpec("wgtt-max-median", {"metric": "mean"}).label()

    def test_coerce_accepts_all_forms(self):
        spec = PolicySpec("greedy-instant")
        assert coerce_policy(None) is None
        assert coerce_policy(spec) is spec
        assert coerce_policy("greedy-instant") == spec
        assert coerce_policy(spec.to_json()) == spec
        assert coerce_policy({"name": "greedy-instant"}) == spec
        with pytest.raises(TypeError):
            coerce_policy(42)

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            PolicySpec("x", {"fn": lambda: None})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec("")


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_policies_registered(self):
        names = available_policies()
        for expected in ("wgtt-max-median", "baseline-80211r", "coverage-map",
                         "trajectory-predictive", "datarate-estimator",
                         "greedy-instant"):
            assert expected in names

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="wgtt-max-median"):
            policy_class("no-such-policy")

    def test_create_with_params(self):
        policy = create_policy(PolicySpec("coverage-map", {"hysteresis_m": 3.0}))
        assert isinstance(policy, CoverageMapPolicy)
        assert policy.hysteresis_m == 3.0

    def test_bad_params_raise_with_context(self):
        with pytest.raises(TypeError, match="coverage-map"):
            create_policy(PolicySpec("coverage-map", {"bogus_knob": 1}))

    def test_same_class_reregistration_is_idempotent(self):
        assert register(WgttMaxMedianPolicy) is WgttMaxMedianPolicy

    def test_conflicting_registration_rejected(self):
        class Impostor(HandoverPolicy):
            name = "wgtt-max-median"

        with pytest.raises(ValueError):
            register(Impostor)


# ------------------------------------------------------------- base behaviour
def make_context(speed_mps=10.0, ap_xs=(0.0, 7.5, 15.0), start_x=-5.0):
    """Three APs (ids 100..) along the road; client driving towards +x."""
    return PolicyContext(
        ap_positions={100 + i: (x, -8.0, 10.0) for i, x in enumerate(ap_xs)},
        position_fn=lambda t: (start_x + speed_mps * t, 2.0, 1.5),
        speed_mps=speed_mps,
        heading_sign=1.0,
    )


class TestHandoverPolicyBase:
    def test_configure_applies_controller_defaults(self):
        policy = WgttMaxMedianPolicy()
        policy.configure(window_s=0.02, min_readings=3, metric="mean")
        assert policy.tracker.window_s == 0.02
        assert policy.tracker.min_readings == 3
        assert policy.tracker.metric == "mean"

    def test_ctor_params_win_over_controller_defaults(self):
        policy = WgttMaxMedianPolicy(window_s=0.5, metric="max")
        policy.configure(window_s=0.02, min_readings=3, metric="mean")
        assert policy.tracker.window_s == 0.5
        assert policy.tracker.min_readings == 3  # not overridden
        assert policy.tracker.metric == "max"

    def test_configure_is_idempotent(self):
        policy = WgttMaxMedianPolicy()
        policy.configure(window_s=0.02, min_readings=1, metric="median")
        tracker = policy.tracker
        policy.configure(window_s=0.99, min_readings=9, metric="max")
        assert policy.tracker is tracker

    def test_select_matches_bare_selector(self):
        policy = WgttMaxMedianPolicy()
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        reference = ApSelector(window_s=0.01, min_readings=1)
        for t, ap, esnr in [(0.001, 1, 10.0), (0.002, 2, 20.0),
                            (0.003, 1, 12.0), (0.004, 2, 18.0)]:
            policy.observe(ap, t, esnr)
            reference.update(ap, t, esnr)
        assert policy.select(0.005, serving=None) == reference.best_ap(0.005)

    def test_exclusions_filter_selection(self):
        policy = WgttMaxMedianPolicy()
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.observe(1, 0.001, 10.0)
        policy.observe(2, 0.001, 20.0)
        assert policy.select(0.002, serving=None) == 2
        assert policy.select(0.002, serving=None, exclude=frozenset({2})) == 1

    def test_drop_ap_forgets_candidate(self):
        policy = WgttMaxMedianPolicy()
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.observe(1, 0.001, 10.0)
        policy.observe(2, 0.001, 20.0)
        assert policy.drop_ap(2) is True
        assert policy.select(0.002, serving=None) == 1
        assert policy.drop_ap(2) is False


# ----------------------------------------------------------- baseline-80211r
class TestThresholdScanRule:
    RULE = ThresholdScanRule(threshold_db=5.0, margin_db=3.0, hysteresis_s=1.0)

    def test_stays_while_current_is_healthy(self):
        fresh = {1: 10.0, 2: 30.0}
        assert self.RULE.pick_target(fresh, 1, -10.0, 0.0) is None

    def test_switches_when_degraded_and_margin_met(self):
        fresh = {1: 2.0, 2: 9.0}
        assert self.RULE.pick_target(fresh, 1, -10.0, 0.0) == 2

    def test_margin_blocks_marginal_challenger(self):
        fresh = {1: 2.0, 2: 4.0}
        assert self.RULE.pick_target(fresh, 1, -10.0, 0.0) is None

    def test_hysteresis_blocks_recent_switcher(self):
        fresh = {1: 2.0, 2: 9.0}
        assert self.RULE.pick_target(fresh, 1, 0.5, 1.0) is None
        assert self.RULE.pick_target(fresh, 1, 0.5, 1.6) == 2

    def test_silent_current_is_effectively_gone(self):
        fresh = {2: -50.0}  # current AP 1 not heard at all
        assert self.RULE.pick_target(fresh, 1, -10.0, 0.0) == 2


class TestBaseline80211rPolicy:
    def make(self, **kw):
        policy = Baseline80211rPolicy(**kw)
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        return policy

    def test_initial_selection_is_strongest(self):
        policy = self.make()
        policy.observe(1, 0.0, 10.0)
        policy.observe(2, 0.0, 20.0)
        assert policy.select(0.01, serving=None) == 2

    def test_reactive_switch_clocked_by_on_switch(self):
        policy = self.make(rule_hysteresis_s=1.0)
        policy.on_switch(0.0, 1)
        for t in (0.1, 0.2, 0.3):
            policy.observe(1, t, 2.0)   # serving is degraded
            policy.observe(2, t, 20.0)  # strong challenger
        # Inside the rule's one-second hysteresis: stay.
        assert policy.select(0.35, serving=1) == 1
        # Past it: go.
        policy.observe(1, 1.05, 2.0)
        policy.observe(2, 1.05, 20.0)
        assert policy.select(1.1, serving=1) == 2

    def test_drop_ap_clears_ewma_state(self):
        policy = self.make()
        policy.observe(2, 0.0, 20.0)
        policy.drop_ap(2)
        assert policy.select(0.01, serving=None) is None


# --------------------------------------------------------------- coverage map
class TestCoverageMap:
    def test_unweighted_boundaries_are_midpoints(self):
        assert cell_boundaries([0.0, 10.0, 30.0]) == [5.0, 20.0]

    def test_weighted_boundary_shifts_towards_weak_ap(self):
        # AP0 three times as strong: boundary at 3/4 of the gap.
        assert cell_boundaries([0.0, 8.0], [3.0, 1.0]) == [6.0]

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cell_boundaries([0.0, 8.0], [1.0])

    def make(self, **kw):
        policy = CoverageMapPolicy(**kw)
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.bind(make_context())
        return policy

    def test_selects_cell_of_current_position(self):
        policy = self.make()
        # x(0.2) = -5 + 10*0.2 = -3 -> first cell; x(1.0) = 5 -> second.
        assert policy.select(0.2, serving=None) == 100
        assert policy.select(1.0, serving=None) == 101
        assert policy.select(1.8, serving=None) == 102  # x = 13 > 11.25

    def test_boundary_hysteresis_keeps_serving(self):
        policy = self.make(hysteresis_m=2.0)
        # Boundary 100|101 is at 3.75; x(0.9) = 4.0 is inside the 2 m band.
        assert policy.select(0.9, serving=100) == 100
        # Well past it, the map wins.
        assert policy.select(1.3, serving=100) == 101

    def test_excluded_ap_cells_are_reassigned(self):
        policy = self.make()
        # AP 101's cell, but 101 is evicted: the map over survivors
        # hands the position to a neighbour instead.
        assert policy.select(1.0, serving=None,
                             exclude=frozenset({101})) in (100, 102)

    def test_reactive_fallback_without_context(self):
        policy = CoverageMapPolicy()
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.observe(7, 0.001, 15.0)
        assert policy.select(0.002, serving=None) == 7


class TestTrajectoryPredictive:
    def make(self, speed=20.0, **kw):
        policy = TrajectoryPredictivePolicy(**kw)
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.bind(make_context(speed_mps=speed))
        return policy

    def test_lead_grows_with_speed_and_caps(self):
        slow = self.make(speed=5.0, lead_gain_s_per_mps=0.01, max_lead_s=0.25)
        fast = self.make(speed=100.0, lead_gain_s_per_mps=0.01, max_lead_s=0.25)
        assert slow.lead_s() == pytest.approx(0.05)
        assert fast.lead_s() == 0.25  # capped

    def test_commits_earlier_than_coverage_map(self):
        plain = CoverageMapPolicy()
        plain.configure(window_s=0.01, min_readings=1, metric="median")
        plain.bind(make_context(speed_mps=20.0))
        predictive = self.make(speed=20.0, lead_gain_s_per_mps=0.01)
        # Just before the 100|101 boundary (x = 3.75 at t = 0.4375):
        t = 0.42
        assert plain.select(t, serving=100) == 100
        assert predictive.select(t, serving=100) == 101


# ---------------------------------------------------------- datarate profile
class TestPositionProfile:
    def test_binned_means(self):
        profile = PositionProfile.from_samples(
            [(0.5, 0, 10.0), (1.5, 0, 20.0), (2.5, 0, 40.0)], bin_m=2.0
        )
        assert profile.predict(0, 1.0) == pytest.approx(15.0)
        assert profile.predict(0, 2.6) == pytest.approx(40.0)

    def test_gap_fallback_to_nearest_bin(self):
        profile = PositionProfile.from_samples(
            [(0.0, 0, 10.0), (8.0, 0, 30.0)], bin_m=2.0
        )
        # Bin at x=2..4 is empty; nearest populated within 2 bins is x=0.
        assert profile.predict(0, 3.0) == pytest.approx(10.0)
        assert profile.predict(1, 3.0) is None  # unknown AP

    def test_dict_round_trip(self):
        profile = PositionProfile.from_samples(
            [(0.0, 0, 10.0), (3.0, 1, 20.0)], bin_m=1.5
        )
        clone = PositionProfile.from_dict(
            json.loads(json.dumps(profile.to_dict()))
        )
        assert clone.predict(1, 3.0) == profile.predict(1, 3.0)
        assert clone.esnr == profile.esnr

    def test_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            PositionProfile(x0=0.0, bin_m=0.0)


class TestDatarateEstimator:
    def make_profile(self):
        # AP index 0 strong early, index 1 strong late.
        samples = [(x, 0, 30.0 - 2 * x) for x in range(0, 16, 2)]
        samples += [(x, 1, 2 * x) for x in range(0, 16, 2)]
        return PositionProfile.from_samples(samples, bin_m=2.0).to_dict()

    def make(self, **kw):
        policy = DatarateEstimatorPolicy(profile=self.make_profile(), **kw)
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.bind(make_context(speed_mps=10.0, ap_xs=(0.0, 15.0)))
        return policy

    def test_selects_predicted_best(self):
        policy = self.make()
        # Early (x ~ 0): profile says AP index 0 -> node 100.
        assert policy.select(0.1, serving=None) == 100
        # Late (x ~ 13): index 1 -> node 101.
        assert policy.select(1.8, serving=None) == 101

    def test_margin_keeps_serving_near_crossover(self):
        # Crossover at x = 7.5; margin keeps the incumbent just past it.
        policy = self.make(margin_db=6.0, lead_s=0.0)
        assert policy.select(1.3, serving=100) == 100  # x = 8.0

    def test_reactive_fallback_without_profile(self):
        policy = DatarateEstimatorPolicy()
        policy.configure(window_s=0.01, min_readings=1, metric="median")
        policy.observe(9, 0.001, 15.0)
        assert policy.select(0.002, serving=None) == 9


# --------------------------------------------------- controller integration
class HandshakingAp:
    """An AP stub that completes the switch handshake like a real WgttAp."""

    def __init__(self, node_id, backhaul, controller_id):
        self.node_id = node_id
        self.backhaul = backhaul
        self.controller_id = controller_id
        backhaul.register(node_id, self.on_backhaul)

    def on_backhaul(self, packet, src):
        if packet.protocol != "ctrl":
            return
        msg = packet.payload
        if isinstance(msg, StartMsg):
            self.backhaul.send(
                self.node_id, self.controller_id,
                ctrl_packet(self.node_id, self.controller_id,
                            SwitchAck(client=msg.client, ap=self.node_id), 0.0),
            )
        elif isinstance(msg, StopMsg):
            # Old AP relays the start to the new AP (section 3.2 handshake).
            self.backhaul.send(
                self.node_id, msg.new_ap,
                ctrl_packet(self.node_id, msg.new_ap,
                            StartMsg(client=msg.client, index=0), 0.0),
            )


def make_policy_controller(policy_factory, n_aps=3, **params):
    sim = Simulator()
    backhaul = Backhaul(sim, np.random.default_rng(0),
                        params=BackhaulParams(jitter_s=0.0))
    controller = WgttController(
        sim, backhaul, node_id=1, rng=np.random.default_rng(1),
        params=ControllerParams(**params), policy_factory=policy_factory,
        trace=TraceRecorder(keep_kinds={"ap_switch"}),
    )
    aps = [HandshakingAp(100 + i, backhaul, 1) for i in range(n_aps)]
    for ap in aps:
        controller.add_ap(ap.node_id)
    return sim, backhaul, controller, aps


def send_csi(sim, backhaul, controller, ap_id, client, esnr, at):
    reading = CSIReading(time=at, ap_id=ap_id, client_id=client,
                         csi=np.ones(56, dtype=complex), mean_snr_db=esnr)
    sim.schedule_at(at, backhaul.send, ap_id, controller.node_id,
                    ctrl_packet(ap_id, controller.node_id,
                                CsiReport(reading=reading), at))


class ScriptedPolicy(HandoverPolicy):
    """Returns a scripted AP sequence, ignoring ESNR entirely."""

    name = "scripted-test"

    def __init__(self, script, **kwargs):
        super().__init__(**kwargs)
        self.script = list(script)
        self.calls = 0

    def select(self, now, serving, exclude=frozenset()):
        choice = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return choice


def test_controller_honours_scripted_policy_over_esnr():
    """The controller switches where the policy says, not where ESNR points."""
    sim, bh, ctl, aps = make_policy_controller(
        lambda: ScriptedPolicy([100, 100, 102, 102, 102]), hysteresis_s=0.0
    )
    # AP 100 is overwhelmingly the strongest the whole time.
    for i in range(8):
        t = 0.001 * (i + 1)
        send_csi(sim, bh, ctl, 100, 200, 40.0, t)
        send_csi(sim, bh, ctl, 102, 200, 5.0, t)
    sim.run(until=0.1)
    assert ctl.serving_ap(200) == 102


def test_controller_default_policy_is_max_median():
    sim, bh, ctl, aps = make_policy_controller(None)
    ctl.add_client(200)
    assert isinstance(ctl.clients[200].policy, WgttMaxMedianPolicy)


@pytest.mark.parametrize("name", sorted(available_policies()))
def test_controller_hysteresis_bounds_switch_rate_for(name):
    """Committed switches are always >= hysteresis_s apart, per policy."""
    hysteresis = 0.05
    context = make_context(speed_mps=100.0, start_x=-2.0)

    def factory():
        policy = create_policy(PolicySpec(name))
        return policy

    sim, bh, ctl, aps = make_policy_controller(factory, hysteresis_s=hysteresis)
    ctl.add_client(200, context=context)
    # Rapidly alternating dominance between APs 100/101 begs every
    # reactive policy to thrash; map policies cross all cells (100 m/s).
    for i in range(100):
        t = 0.002 * (i + 1)
        strong, weak = (100, 101) if i % 2 else (101, 100)
        send_csi(sim, bh, ctl, strong, 200, 35.0, t)
        send_csi(sim, bh, ctl, weak, 200, 2.0, t)
    sim.run(until=0.25)
    switch_times = [r.time for r in ctl.trace.iter_records("ap_switch")]
    assert switch_times, f"{name}: no switch ever committed"
    gaps = np.diff(switch_times)
    assert (gaps >= hysteresis - 1e-9).all(), f"{name}: gaps {gaps}"


def test_dead_ap_eviction_reaches_policy():
    drops = []

    class RecordingPolicy(WgttMaxMedianPolicy):
        def drop_ap(self, ap_id):
            drops.append(ap_id)
            return super().drop_ap(ap_id)

    sim, bh, ctl, aps = make_policy_controller(
        RecordingPolicy, ap_liveness_timeout_s=0.05
    )
    send_csi(sim, bh, ctl, 100, 200, 30.0, 0.001)
    send_csi(sim, bh, ctl, 101, 200, 10.0, 0.001)
    # AP 100 goes silent; 101 keeps reporting past the liveness timeout.
    for i in range(10):
        send_csi(sim, bh, ctl, 101, 200, 10.0, 0.01 * (i + 1) + 0.001)
    sim.run(until=0.2)
    assert 100 in drops
    assert ctl.serving_ap(200) == 101


# ----------------------------------------------------- config / cache plumbing
class TestConfigPlumbing:
    def test_baseline_mode_rejects_policy(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(ValueError, match="baseline"):
            ExperimentConfig(mode="baseline", policy="coverage-map")

    def test_unknown_policy_name_rejected(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(KeyError):
            ExperimentConfig(mode="wgtt", policy="no-such-policy")

    def test_policy_coerced_from_string(self):
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(mode="wgtt", policy="coverage-map")
        assert config.policy == PolicySpec("coverage-map")

    def test_jobspec_policy_round_trip(self):
        from repro.orchestration import JobSpec

        job = JobSpec(policy={"name": "coverage-map",
                              "params": {"hysteresis_m": 2.0}})
        assert job.policy == PolicySpec(
            "coverage-map", {"hysteresis_m": 2.0}
        ).to_json()
        assert JobSpec.from_dict(job.canonical()) == job
        assert "policy=coverage-map@" in job.key()
        assert job.run_kwargs()["policy"] == job.policy

    def test_distinct_policies_never_collide_in_cache(self):
        from repro.orchestration import JobSpec, ResultCache

        cache = ResultCache(root=None)
        base = JobSpec()
        named = JobSpec(policy="wgtt-max-median")
        tuned = JobSpec(policy={"name": "wgtt-max-median",
                                "params": {"metric": "mean"}})
        other = JobSpec(policy="coverage-map")
        hashes = {cache.key_hash(j) for j in (base, named, tuned, other)}
        assert len(hashes) == 4

    def test_summary_policy_field_round_trips(self):
        from repro.orchestration.summary import DriveSummary

        summary = DriveSummary(
            job_key="k", mode="wgtt", speed_mph=15.0, traffic="udp",
            udp_rate_mbps=50.0, seed=0, duration_s=1.0, measure_t0=0.0,
            measure_t1=1.0, throughput_mbps=1.0,
            coverage_throughput_mbps=1.0, coverage_t0=0.0, coverage_t1=1.0,
            policy="coverage-map",
        )
        assert DriveSummary.from_dict(summary.to_dict()).policy == "coverage-map"
