"""Unit tests for correlated log-normal shadowing."""

import numpy as np
import pytest

from repro.phy.shadowing import ShadowingField


def field(seed=0, **kw):
    return ShadowingField(np.random.default_rng(seed), **kw)


def test_deterministic_in_space():
    f = field()
    assert f.gain_db(12.3) == f.gain_db(12.3)


def test_std_matches_sigma():
    f = field(sigma_db=4.0, span_m=(-50.0, 500.0))
    assert f.empirical_std_db() == pytest.approx(4.0, rel=0.3)


def test_zero_sigma_is_flat():
    f = field(sigma_db=0.0)
    assert f.gain_db(3.0) == 0.0


def test_nearby_points_correlated_far_points_not():
    f = field(sigma_db=4.0, decorrelation_m=5.0, span_m=(-50.0, 500.0))
    xs = np.arange(0.0, 400.0, 1.0)
    g = np.array([f.gain_db(x) for x in xs])
    near = np.corrcoef(g[:-1], g[1:])[0, 1]
    far = np.corrcoef(g[:-60], g[60:])[0, 1]
    assert near > 0.7
    assert abs(far) < 0.4


def test_positions_outside_span_clamped():
    f = field()
    assert np.isfinite(f.gain_db(-1000.0))
    assert np.isfinite(f.gain_db(1000.0))


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        field(sigma_db=-1.0)
    with pytest.raises(ValueError):
        field(decorrelation_m=0.0)
    with pytest.raises(ValueError):
        field(span_m=(10.0, 0.0))


def test_link_applies_shadowing():
    from repro.phy.antenna import ParabolicAntenna
    from repro.phy.channel import Link, RadioParams

    position = (0.0, -8.0, 10.0)
    antenna = ParabolicAntenna.aimed_at(position, (0.0, 3.75, 1.5))

    def make(sigma):
        return Link(
            ap_position=position,
            ap_antenna=antenna,
            client_position_fn=lambda t: (0.0, 2.0, 1.5),
            speed_mps=0.0,
            rng=np.random.default_rng(3),
            params=RadioParams(shadowing_sigma_db=sigma),
        )

    flat = make(0.0)
    shadowed = make(6.0)
    assert flat.shadowing is None
    assert shadowed.shadowing is not None
    assert flat.mean_snr_db(0.0) != shadowed.mean_snr_db(0.0)
