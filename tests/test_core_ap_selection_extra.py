"""Extra selector coverage: footnote-1 semantics and ESNR-vs-RSSI value.

These tests pin down the *reason* ESNR-based selection beats RSSI: a
frequency-selective fade tanks delivery but barely moves wideband RSSI.
"""

import numpy as np
import pytest

from repro.core.ap_selection import ApSelector
from repro.phy.csi import CSIReading


def reading(csi, mean_snr_db, t=0.0):
    return CSIReading(time=t, ap_id=1, client_id=200,
                      csi=np.asarray(csi, dtype=complex),
                      mean_snr_db=mean_snr_db)


def test_esnr_and_rssi_agree_on_flat_channel():
    r = reading(np.ones(56), 20.0)
    assert r.esnr_db() == pytest.approx(r.rssi_db(), abs=1.0)


def test_selective_fade_separates_esnr_from_rssi():
    """A deep notch across a third of the band: RSSI barely moves, ESNR
    collapses -- the exact case where RSSI-based handover picks wrong."""
    csi = np.ones(56, dtype=complex)
    csi[:18] = 0.05
    r = reading(csi, 20.0)
    assert r.rssi_db() > r.esnr_db() + 3.0


def test_esnr_cached_per_reading():
    r = reading(np.ones(56), 20.0)
    first = r.esnr_db()
    r.csi = np.zeros(56)  # mutate after caching: cached value returned
    assert r.esnr_db() == first


def test_selector_prefers_flat_link_over_equal_rssi_notched_link():
    """Two links with identical wideband power; the notched one must lose
    under ESNR selection."""
    sel = ApSelector(window_s=1.0, min_readings=1)
    flat = reading(np.ones(56), 20.0)
    notched_csi = np.ones(56, dtype=complex)
    notched_csi[:18] = 0.05
    notched = reading(notched_csi, 20.0)
    for t in (0.1, 0.2, 0.3):
        sel.update(1, t, flat.esnr_db())
        sel.update(2, t, notched.esnr_db())
    assert sel.best_ap(0.35) == 1


def test_in_range_definition_matches_footnote_1():
    """'Within communication range' = heard from within the window W."""
    sel = ApSelector(window_s=0.010, min_readings=1)
    sel.update(1, t=1.000, esnr_db=10.0)
    sel.update(2, t=1.009, esnr_db=10.0)
    in_range = sel.in_range_aps(1.010)
    assert set(in_range) == {1, 2}
    # After W (plus the sparse-traffic retention cap), AP 1 ages out.
    assert sel.in_range_aps(2.0) == []


def test_candidates_scores_are_window_medians():
    sel = ApSelector(window_s=10.0, min_readings=1)
    for v in (5.0, 9.0, 30.0):
        sel.update(3, 0.1, v)
    assert sel.candidates(0.2)[3] == 9.0
