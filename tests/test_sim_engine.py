"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator, time_close


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_single_event_fires_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(3.0, out.append, 3)
    sim.schedule(1.0, out.append, 1)
    sim.schedule(2.0, out.append, 2)
    sim.run()
    assert out == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_zero_delay_event_runs_after_current():
    sim = Simulator()
    out = []

    def first():
        out.append("first")
        sim.schedule(0.0, out.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, out.append, "second")
    sim.run()
    assert out == ["first", "second", "nested"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_tiny_negative_delay_clamped_to_zero():
    sim = Simulator()
    sim.schedule(-1e-15, lambda: None)  # within epsilon: allowed
    sim.run()


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_non_callable_rejected():
    with pytest.raises(TypeError):
        Simulator().schedule(1.0, "not callable")


def test_run_until_stops_before_later_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(5.0, out.append, 5)
    sim.run(until=2.0)
    assert out == [1]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_resumes_after_until():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, 5)
    sim.run(until=2.0)
    sim.run()
    assert out == [5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "x")
    handle.cancel()
    sim.run()
    assert out == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_pending_property():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    handle.cancel()
    assert not handle.pending


def test_handle_not_pending_after_firing():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert not handle.pending


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_pending_events_counter():
    sim = Simulator()
    handles = [sim.schedule(1.0, lambda: None) for _ in range(4)]
    handles[0].cancel()
    assert sim.pending_events == 3


def test_max_events_limit():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=4)
    assert out == [0, 1, 2, 3]


def test_step_executes_one_event():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(2.0, out.append, 2)
    assert sim.step()
    assert out == [1]
    assert sim.step()
    assert not sim.step()


def test_clear_drops_pending_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.clear()
    sim.run()
    assert out == []


def test_run_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert out == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_time_close_helper():
    assert time_close(1.0, 1.0 + 1e-12)
    assert not time_close(1.0, 1.001)


def test_time_close_default_is_module_epsilon():
    from repro.sim.engine import TIME_EPSILON

    # The default tolerance is the engine's single TIME_EPSILON constant:
    # differences above it are distinct instants, at/below it equal.
    assert time_close(1.0, 1.0 + 0.5 * TIME_EPSILON)
    assert not time_close(1.0, 1.0 + 10 * TIME_EPSILON)
    # A microsecond apart is a real ordering difference, not noise.
    assert not time_close(1.0, 1.0 + 1e-6)


# ----------------------------------------------------- event-loop behaviour
def test_cancel_from_earlier_event_suppresses_later_same_time_event():
    sim = Simulator()
    out = []
    victim = sim.schedule(1.0, out.append, "victim")
    sim.schedule(1.0, victim.cancel)  # fires first (FIFO), cancels mid-run
    # Order of scheduling matters: victim was scheduled first, so it is
    # popped first.  Cancel an event scheduled *after* the canceller too.
    late = sim.schedule(1.0, out.append, "late")
    sim.schedule(0.5, late.cancel)
    sim.run()
    assert out == ["victim"]


def test_cancel_after_fire_is_a_safe_no_op():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "x")
    sim.run()
    assert out == ["x"]
    handle.cancel()  # already fired: must not raise or corrupt the heap
    assert not handle.pending
    sim.schedule(2.0, out.append, "y")
    sim.run()
    assert out == ["x", "y"]


def test_fifo_ordering_survives_interleaved_cancellations():
    sim = Simulator()
    out = []
    handles = [sim.schedule(1.0, out.append, i) for i in range(6)]
    handles[1].cancel()
    handles[4].cancel()
    sim.run()
    assert out == [0, 2, 3, 5]  # scheduling order, minus the cancelled


def test_fifo_ordering_across_run_until_resume():
    sim = Simulator()
    out = []
    for i in range(3):
        sim.schedule(2.0, out.append, i)
    sim.run(until=1.0)
    assert out == []
    sim.run()
    assert out == [0, 1, 2]


def test_schedule_in_past_from_callback_raises():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.schedule_at(sim.now - 1.0, lambda: None)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(2.0, bad)
    sim.run()
    assert len(errors) == 1
    assert "cannot schedule" in str(errors[0])


def test_schedule_negative_delay_message_names_the_delay():
    sim = Simulator()
    with pytest.raises(SimulationError, match="in the past"):
        sim.schedule(-1.0, lambda: None)


def test_step_skips_cancelled_and_fires_next_live_event():
    sim = Simulator()
    out = []
    first = sim.schedule(1.0, out.append, "dead")
    sim.schedule(2.0, out.append, "live")
    first.cancel()
    assert sim.step()  # skips the cancelled head, fires "live"
    assert out == ["live"]
    assert sim.now == 2.0
    assert not sim.step()


class TestPeriodicTask:
    def test_fires_on_interval(self):
        sim = Simulator()
        out = []
        sim.call_every(1.0, lambda: out.append(sim.now))
        sim.run(until=3.5)
        assert out == [1.0, 2.0, 3.0]

    def test_stop_prevents_further_firings(self):
        sim = Simulator()
        out = []
        task = sim.call_every(1.0, lambda: out.append(sim.now))
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert out == [1.0, 2.0]
        assert task.stopped

    def test_until_bound(self):
        sim = Simulator()
        out = []
        sim.call_every(1.0, lambda: out.append(sim.now), until=2.0)
        sim.run(until=10.0)
        assert out == [1.0, 2.0]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)

    def test_jitter_requires_rng_and_spreads_firings(self):
        import numpy as np

        sim = Simulator()
        out = []
        sim.call_every(
            1.0, lambda: out.append(sim.now),
            jitter=0.5, rng=np.random.default_rng(0),
        )
        sim.run(until=10.0)
        assert len(out) >= 5
        deltas = [b - a for a, b in zip(out, out[1:])]
        assert all(1.0 <= d <= 1.5 + 1e-9 for d in deltas)
        assert len(set(round(d, 6) for d in deltas)) > 1  # actually jittered
