"""Unit tests for control-plane message wrappers."""

import numpy as np
import pytest

from repro.core.messages import (
    CSI_PACKET_BYTES,
    CTRL_PACKET_BYTES,
    AssocNotify,
    AssocSync,
    BaForward,
    CsiReport,
    FtRequest,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)
from repro.phy.csi import CSIReading


def test_ctrl_packet_wraps_payload():
    msg = StopMsg(client=200, new_ap=101)
    p = ctrl_packet(1, 100, msg, t=2.0)
    assert p.protocol == "ctrl"
    assert p.payload is msg
    assert p.size_bytes == CTRL_PACKET_BYTES
    assert p.src == 1 and p.dst == 100


def test_csi_report_packet_is_larger():
    reading = CSIReading(time=0.0, ap_id=100, client_id=200,
                         csi=np.ones(56, dtype=complex), mean_snr_db=20.0)
    p = ctrl_packet(100, 1, CsiReport(reading=reading), t=0.0)
    assert p.size_bytes == CSI_PACKET_BYTES


def test_explicit_size_override():
    p = ctrl_packet(1, 2, StopMsg(client=1, new_ap=2), t=0.0, size=999)
    assert p.size_bytes == 999


def test_messages_are_frozen():
    msg = StartMsg(client=200, index=5)
    with pytest.raises(Exception):
        msg.index = 6


def test_stop_carries_new_ap_and_attempt():
    msg = StopMsg(client=200, new_ap=105, attempt=2)
    assert msg.new_ap == 105
    assert msg.attempt == 2


def test_serving_update_allows_none():
    assert ServingUpdate(client=200, ap=None).ap is None


def test_message_equality():
    assert SwitchAck(client=1, ap=2) == SwitchAck(client=1, ap=2)
    assert BaForward(client=1, start_seq=0, bitmap=3) == BaForward(1, 0, 3)
    assert FtRequest(client=9) == FtRequest(client=9)
    assert AssocSync(client=1, aid=2) == AssocSync(client=1, aid=2)
    assert AssocNotify(client=1, ap=None) == AssocNotify(client=1, ap=None)
