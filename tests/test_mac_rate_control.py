"""Unit tests for rate control."""

import numpy as np
import pytest

from repro.mac.rate_control import EsnrRateControl, MinstrelLite
from repro.phy.mcs import MCS_TABLE


def make_minstrel(seed=0, **kw):
    return MinstrelLite(np.random.default_rng(seed), **kw)


class TestMinstrel:
    def test_converges_up_on_perfect_channel(self):
        rc = make_minstrel()
        for _ in range(200):
            mcs = rc.choose()
            rc.on_result(mcs, 10, 10)
        # Non-probe choices should be the top rate.
        picks = [rc.choose().index for _ in range(20)]
        assert max(picks) == 7
        assert sorted(picks)[10] == 7  # median pick is MCS7

    def test_converges_down_when_high_rates_fail(self):
        rc = make_minstrel()
        for _ in range(300):
            mcs = rc.choose()
            ok = 10 if mcs.index <= 2 else 0
            rc.on_result(mcs, 10, ok)
        picks = [rc.choose().index for _ in range(20)]
        assert sorted(picks)[10] <= 2

    def test_probing_explores_other_rates(self):
        rc = make_minstrel(probe_interval=5)
        for _ in range(100):
            mcs = rc.choose()
            rc.on_result(mcs, 10, 10)
        tried = {i for i, n in enumerate(rc._attempts) if n > 0}
        assert len(tried) >= 3

    def test_retry_level_steps_down(self):
        rc = make_minstrel(probe_interval=0)
        for _ in range(100):
            rc.on_result(MCS_TABLE[7], 10, 10)
        best = rc.choose().index
        assert rc.choose(retry_level=2).index == max(0, best - 2)
        assert rc.choose(retry_level=100).index == 0

    def test_success_estimate_tracks_results(self):
        rc = make_minstrel()
        for _ in range(50):
            rc.on_result(MCS_TABLE[3], 10, 0)
        assert rc.success_estimate(MCS_TABLE[3]) < 0.01

    def test_zero_sent_ignored(self):
        rc = make_minstrel()
        before = rc.success_estimate(MCS_TABLE[0])
        rc.on_result(MCS_TABLE[0], 0, 0)
        assert rc.success_estimate(MCS_TABLE[0]) == before

    def test_invalid_ewma_rejected(self):
        with pytest.raises(ValueError):
            make_minstrel(ewma_weight=1.0)


class TestEsnrRateControl:
    def test_defaults_to_most_robust_without_reports(self):
        rc = EsnrRateControl()
        assert rc.choose().index == 0

    def test_tracks_reported_esnr(self):
        rc = EsnrRateControl()
        rc.on_esnr(40.0)
        assert rc.choose().index == 7
        rc.on_esnr(5.0)
        assert rc.choose().index <= 1

    def test_retry_fallback(self):
        rc = EsnrRateControl()
        rc.on_esnr(40.0)
        assert rc.choose(retry_level=3).index == 4
