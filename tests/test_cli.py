"""Smoke tests for the CLI front end."""

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_parser_defaults():
    args = build_parser().parse_args(["drive"])
    assert args.mode == "wgtt"
    assert args.traffic == "tcp"


def test_channel_command_runs(capsys):
    assert main(["channel", "--speed", "25", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "best-AP changes" in out


def test_drive_command_runs(capsys):
    assert main(["drive", "--mode", "wgtt", "--speed", "0",
                 "--traffic", "udp", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


SWEEP_SMALL = ["sweep", "--speeds", "35", "--traffic", "udp",
               "--udp-rate", "5", "--seed", "1", "--n-aps", "3"]


def test_sweep_command_runs(capsys, tmp_path):
    assert main(SWEEP_SMALL + ["--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wgtt" in out
    assert "baseline" in out
    assert "jobs:" in out


def test_sweep_parallel_matches_serial_and_hits_cache(capsys, tmp_path):
    cache = ["--cache-dir", str(tmp_path)]
    assert main(SWEEP_SMALL + cache + ["--jobs", "2"]) == 0
    first = capsys.readouterr().out
    assert "2 run, 0 cached" in first

    # Same grid again: served entirely from the cache, same numbers.
    assert main(SWEEP_SMALL + cache + ["--jobs", "2"]) == 0
    second = capsys.readouterr().out
    assert "0 run, 2 cached" in second
    assert first.splitlines()[1] == second.splitlines()[1]  # the 35mph row

    # Serial, no cache: numerically identical results.
    assert main(SWEEP_SMALL + ["--no-cache", "--jobs", "1"]) == 0
    third = capsys.readouterr().out
    assert first.splitlines()[1] == third.splitlines()[1]


def test_sweep_defaults():
    args = build_parser().parse_args(["sweep"])
    assert args.jobs == 1
    assert args.retries == 2
    assert not args.no_cache
    assert args.backend == "pool"
    assert args.store == "json"
    assert args.fault_campaign is None


def test_sweep_queue_backend_with_columnar_store(capsys, tmp_path):
    queue_dir = str(tmp_path / "queue")
    store_dir = str(tmp_path / "store")
    extra = ["--backend", "queue", "--workers", "2",
             "--queue-dir", queue_dir, "--store", "columnar",
             "--store-dir", store_dir, "--cache-dir", str(tmp_path / "c")]
    assert main(SWEEP_SMALL + extra) == 0
    out = capsys.readouterr().out
    assert "wgtt" in out and "baseline" in out
    assert "queue:" in out and "store:" in out
    assert "2 summaries" in out

    # sweep-status reads the same dirs back.
    assert main(["sweep-status", "--queue-dir", queue_dir,
                 "--store-dir", store_dir]) == 0
    status = capsys.readouterr().out
    assert "done" in status
    assert "store_version" in status or "summaries" in status

    # And the numbers match a plain pool run of the same grid.
    assert main(SWEEP_SMALL + ["--no-cache"]) == 0
    pool_out = capsys.readouterr().out
    assert out.splitlines()[1] == pool_out.splitlines()[1]


def test_sweep_fault_campaign_flag(capsys, tmp_path):
    campaign = '{"crash_rate_per_ap_hz": 0.05, "duration_s": 4.0}'
    cache = ["--cache-dir", str(tmp_path)]
    assert main(SWEEP_SMALL + cache + ["--fault-campaign", campaign]) == 0
    first = capsys.readouterr().out
    assert "2 run, 0 cached" in first
    # Rerun: the per-job scenarios re-derive identically -> all hits.
    assert main(SWEEP_SMALL + cache + ["--fault-campaign", campaign]) == 0
    second = capsys.readouterr().out
    assert "0 run, 2 cached" in second
    assert first.splitlines()[1] == second.splitlines()[1]


def test_ha_flags_parse():
    args = build_parser().parse_args(["drive"])
    assert args.ha is None and not args.check_invariants
    args = build_parser().parse_args(["drive", "--ha", "--check-invariants"])
    assert args.ha == "" and args.check_invariants
    args = build_parser().parse_args(["drive", "--ha", '{"standby": false}'])
    assert args.ha == '{"standby": false}'
    with pytest.raises(SystemExit):
        main(["drive", "--speed", "0", "--ha", "not json"])


def test_drive_profile_reports_invariants_and_resilience(capsys):
    assert main(["drive", "--mode", "wgtt", "--speed", "0",
                 "--traffic", "udp", "--seed", "1",
                 "--ha", "--check-invariants", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "invariants ok" in out
    assert "trace records" in out
    assert "resilience" in out
    assert "heartbeats_sent" in out
