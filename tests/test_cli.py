"""Smoke tests for the CLI front end."""

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_parser_defaults():
    args = build_parser().parse_args(["drive"])
    assert args.mode == "wgtt"
    assert args.traffic == "tcp"


def test_channel_command_runs(capsys):
    assert main(["channel", "--speed", "25", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "best-AP changes" in out


def test_drive_command_runs(capsys):
    assert main(["drive", "--mode", "wgtt", "--speed", "0",
                 "--traffic", "udp", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_sweep_command_runs(capsys):
    assert main(["sweep", "--speeds", "15", "--traffic", "udp",
                 "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "wgtt" in out
