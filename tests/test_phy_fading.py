"""Unit and statistical tests for the fading model."""

import math

import numpy as np
import pytest

from repro.phy.fading import (
    DEFAULT_TAP_DELAYS_NS,
    DEFAULT_TAP_POWERS_DB,
    RayleighTap,
    TappedDelayChannel,
    coherence_time_s,
    doppler_hz,
    ht20_subcarrier_freqs,
)


def test_doppler_at_25mph_2_4ghz():
    # 11.2 m/s at 2.462 GHz -> ~92 Hz
    fd = doppler_hz(11.2)
    assert 85 < fd < 100


def test_doppler_scales_linearly_with_speed():
    assert doppler_hz(20.0) == pytest.approx(2 * doppler_hz(10.0))


def test_coherence_time_in_paper_regime():
    # The paper quotes 2-3 ms coherence at 2.4 GHz driving speed; the
    # 0.423/fd rule puts 25 mph at ~4.6 ms -- same order.
    tc = coherence_time_s(11.2)
    assert 2e-3 < tc < 8e-3


def test_coherence_time_infinite_when_static():
    assert coherence_time_s(0.0) == math.inf


def test_ht20_subcarrier_count_and_no_dc():
    freqs = ht20_subcarrier_freqs()
    assert len(freqs) == 56
    assert 0.0 not in freqs
    assert freqs.max() == -freqs.min()


class TestRayleighTap:
    def test_unit_power_statistics(self):
        rng = np.random.default_rng(0)
        tap = RayleighTap(rng, doppler_hz=80.0, power=1.0)
        samples = np.array([tap.gain(t) for t in np.linspace(0, 50, 4000)])
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(1.0, rel=0.15)

    def test_power_scaling(self):
        rng = np.random.default_rng(1)
        tap = RayleighTap(rng, doppler_hz=80.0, power=0.25)
        samples = np.array([tap.gain(t) for t in np.linspace(0, 50, 2000)])
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(0.25, rel=0.2)

    def test_rician_k_reduces_envelope_variance(self):
        rng = np.random.default_rng(2)
        rayleigh = RayleighTap(rng, 80.0, k_factor=0.0)
        rician = RayleighTap(np.random.default_rng(2), 80.0, k_factor=10.0)
        ts = np.linspace(0, 20, 3000)
        var_rayleigh = np.var([abs(rayleigh.gain(t)) for t in ts])
        var_rician = np.var([abs(rician.gain(t)) for t in ts])
        assert var_rician < var_rayleigh


    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            RayleighTap(np.random.default_rng(0), 80.0, power=-1.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            RayleighTap(np.random.default_rng(0), 80.0, k_factor=-0.1)

    def test_temporal_correlation_within_coherence_time(self):
        """Gains a fraction of the coherence time apart stay similar."""
        rng = np.random.default_rng(3)
        tap = RayleighTap(rng, doppler_hz=90.0)
        tc = coherence_time_s(11.2)
        diffs_close, diffs_far = [], []
        for t in np.linspace(0, 10, 300):
            g0 = tap.gain(t)
            diffs_close.append(abs(tap.gain(t + tc / 20) - g0))
            diffs_far.append(abs(tap.gain(t + 10 * tc) - g0))
        assert np.mean(diffs_close) < np.mean(diffs_far)


class TestTappedDelayChannel:
    def _channel(self, seed=0, **kwargs):
        return TappedDelayChannel(np.random.default_rng(seed), doppler_hz=80.0, **kwargs)

    def test_unit_mean_subcarrier_power(self):
        ch = self._channel()
        powers = []
        for t in np.linspace(0, 30, 500):
            powers.append(np.mean(np.abs(ch.subcarrier_gains(t)) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, rel=0.2)

    def test_frequency_selectivity_present(self):
        """Different subcarriers must fade differently (multi-tap)."""
        ch = self._channel()
        gains = np.abs(ch.subcarrier_gains(1.234))
        assert gains.max() / max(gains.min(), 1e-9) > 1.2

    def test_single_tap_is_flat(self):
        ch = self._channel(tap_delays_ns=[0.0], tap_powers_db=[0.0])
        gains = np.abs(ch.subcarrier_gains(0.7))
        assert gains.max() == pytest.approx(gains.min(), rel=1e-9)

    def test_flat_gain_equals_tap_sum(self):
        ch = self._channel()
        t = 0.55
        assert ch.flat_gain(t) == pytest.approx(complex(np.sum(ch.tap_gains(t))))

    def test_mismatched_tap_lists_rejected(self):
        with pytest.raises(ValueError):
            self._channel(tap_delays_ns=[0, 50], tap_powers_db=[0.0])

    def test_n_subcarriers(self):
        assert self._channel().n_subcarriers == 56

    def test_independent_channels_decorrelated(self):
        a = self._channel(seed=1)
        b = self._channel(seed=2)
        ga = np.array([a.flat_gain(t) for t in np.linspace(0, 5, 400)])
        gb = np.array([b.flat_gain(t) for t in np.linspace(0, 5, 400)])
        corr = abs(np.corrcoef(np.abs(ga), np.abs(gb))[0, 1])
        assert corr < 0.3

    def test_default_profile_matches_module_constants(self):
        ch = self._channel()
        assert len(ch.taps) == len(DEFAULT_TAP_DELAYS_NS) == len(DEFAULT_TAP_POWERS_DB)
