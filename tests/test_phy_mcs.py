"""Unit tests for the MCS table and delivery model."""

import pytest

from repro.phy.mcs import (
    MCS_TABLE,
    best_mcs_for_esnr,
    expected_throughput_mbps,
    link_capacity_mbps,
    pdr,
)


def test_table_has_eight_entries_with_increasing_rates():
    assert len(MCS_TABLE) == 8
    rates = [m.phy_rate_mbps for m in MCS_TABLE]
    assert rates == sorted(rates)
    assert rates[-1] == pytest.approx(72.2)  # HT20 SGI MCS7


def test_thresholds_increase_with_rate():
    thresholds = [m.pdr_threshold_db for m in MCS_TABLE]
    assert thresholds == sorted(thresholds)


def test_pdr_at_threshold_is_half():
    mcs = MCS_TABLE[4]
    assert pdr(mcs.pdr_threshold_db, mcs) == pytest.approx(0.5)


def test_pdr_saturates():
    mcs = MCS_TABLE[0]
    assert pdr(60.0, mcs) == pytest.approx(1.0)
    assert pdr(-60.0, mcs) == pytest.approx(0.0)


def test_pdr_monotone_in_esnr():
    mcs = MCS_TABLE[5]
    values = [pdr(e, mcs) for e in range(0, 40, 2)]
    assert values == sorted(values)


def test_short_frames_more_robust():
    mcs = MCS_TABLE[3]
    esnr = mcs.pdr_threshold_db
    assert pdr(esnr, mcs, n_bytes=64) > pdr(esnr, mcs, n_bytes=1500)


def test_frame_size_threshold_shift_bounded():
    mcs = MCS_TABLE[3]
    # Even extreme sizes shift the midpoint by at most 2 dB.
    assert abs(pdr(mcs.pdr_threshold_db + 2.0, mcs, n_bytes=1) - 0.5) > 0.01
    assert pdr(mcs.pdr_threshold_db - 2.0, mcs, n_bytes=10**6) <= 0.5 + 1e-9


def test_best_mcs_low_esnr_falls_back_to_mcs0():
    assert best_mcs_for_esnr(-10.0).index == 0


def test_best_mcs_high_esnr_reaches_mcs7():
    assert best_mcs_for_esnr(40.0).index == 7


def test_best_mcs_monotone_in_esnr():
    indices = [best_mcs_for_esnr(float(e)).index for e in range(0, 40)]
    assert indices == sorted(indices)


def test_expected_throughput_below_phy_rate():
    mcs = MCS_TABLE[6]
    assert expected_throughput_mbps(20.0, mcs) < mcs.phy_rate_mbps


def test_link_capacity_nondecreasing_in_esnr():
    caps = [link_capacity_mbps(float(e)) for e in range(-5, 40, 3)]
    assert caps == sorted(caps)


def test_link_capacity_bounded_by_top_rate():
    assert link_capacity_mbps(60.0) <= MCS_TABLE[-1].phy_rate_mbps + 1e-9
