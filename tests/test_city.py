"""Tests for the city-scale subsystem: config, grid, mobility, spatial
index, sharded medium, and the end-to-end fleet drive."""

import json

import numpy as np
import pytest

from repro.city import (
    DEFAULT_CHANNELS,
    CityConfig,
    RoadGrid,
    ShardedMedium,
    SpatialIndex,
    VehiclePlan,
    coerce_city,
    random_route,
    run_city_drive,
)
from repro.experiments.builder import ExperimentConfig, build_network
from repro.experiments.runners import run_single_drive
from repro.mobility.trajectory import AP_SETBACK_M, NEAR_LANE_Y_M, mph_to_mps


# ---------------------------------------------------------------- config
class TestCityConfig:
    def test_json_roundtrip(self):
        city = CityConfig(rows=2, cols=4, aps_per_segment=3, n_vehicles=5,
                          speed_mph=25.0, sharded=False)
        again = CityConfig.from_json(city.to_json())
        assert again == city

    def test_defaults_omitted_from_json(self):
        assert json.loads(CityConfig().to_json()) == {}
        assert json.loads(CityConfig(rows=4).to_json()) == {"rows": 4}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            CityConfig.from_dict({"rows": 2, "skyscrapers": 9})

    def test_validation(self):
        with pytest.raises(ValueError):
            CityConfig(rows=1, cols=1)  # no segments
        with pytest.raises(ValueError):
            CityConfig(block_m=0.0)
        with pytest.raises(ValueError):
            CityConfig(n_vehicles=-1)

    def test_key_hash_stable_and_distinct(self):
        a = CityConfig(rows=2, cols=3)
        assert a.key_hash() == CityConfig(rows=2, cols=3).key_hash()
        assert a.key_hash() != CityConfig(rows=3, cols=2).key_hash()
        assert len(a.key_hash()) == 10

    def test_coerce_forms(self):
        city = CityConfig(rows=2, cols=2)
        assert coerce_city(None) is None
        assert coerce_city(city) is city
        assert coerce_city({"rows": 2, "cols": 2}) == city
        assert coerce_city(city.to_json()) == city

    def test_counts(self):
        city = CityConfig(rows=3, cols=3, aps_per_segment=6)
        # rows*(cols-1) horizontal + cols*(rows-1) vertical segments.
        assert city.n_segments == 12
        assert city.n_aps == 72


# ------------------------------------------------------------------ grid
class TestRoadGrid:
    def test_segment_count_and_lengths(self):
        grid = RoadGrid(CityConfig(rows=2, cols=3, block_m=100.0))
        assert len(grid.segments) == 2 * 2 + 3 * 1
        assert all(seg.length_m == 100.0 for seg in grid.segments)

    def test_adjacent_segments_get_different_channels(self):
        for rows, cols in ((2, 2), (3, 3), (2, 6)):
            grid = RoadGrid(CityConfig(rows=rows, cols=cols))
            for seg in grid.segments:
                for node in (seg.a, seg.b):
                    for other in grid.segments_at(node):
                        if other.index != seg.index:
                            assert other.channel != seg.channel, (
                                f"{rows}x{cols}: segments {seg.index} and "
                                f"{other.index} share node {node} and "
                                f"channel {seg.channel}"
                            )

    def test_channels_come_from_palette(self):
        grid = RoadGrid(CityConfig(rows=3, cols=3))
        assert {seg.channel for seg in grid.segments} <= set(DEFAULT_CHANNELS)

    def test_ap_geometry(self):
        city = CityConfig(rows=2, cols=2, block_m=120.0, aps_per_segment=4)
        grid = RoadGrid(city)
        seg = grid.segments[0]  # horizontal, row 0
        x, y, z = grid.ap_position(seg, 0)
        # APs sit at the setback lateral offset, evenly spaced along.
        assert y == pytest.approx(seg.origin[1] + AP_SETBACK_M)
        assert x == pytest.approx(seg.origin[0] + 0.5 * 120.0 / 4)
        assert z > 0

    def test_leg_endpoints_pick_travel_lane(self):
        grid = RoadGrid(CityConfig(rows=2, cols=2, block_m=120.0))
        seg = grid.segments[0]
        fwd_a, fwd_b = grid.leg_endpoints(seg.a, seg.b)
        rev_a, rev_b = grid.leg_endpoints(seg.b, seg.a)
        assert fwd_a[1] == pytest.approx(seg.origin[1] + NEAR_LANE_Y_M)
        assert rev_a[1] != pytest.approx(fwd_a[1])  # opposing lane
        assert fwd_a[0] == pytest.approx(rev_b[0])


# -------------------------------------------------------------- mobility
class TestCityMobility:
    def test_random_route_deterministic(self):
        grid = RoadGrid(CityConfig(rows=3, cols=3))
        r1 = random_route(grid, np.random.default_rng(42), min_duration_s=30.0)
        r2 = random_route(grid, np.random.default_rng(42), min_duration_s=30.0)
        assert r1 == r2

    def test_random_route_stays_on_grid(self):
        grid = RoadGrid(CityConfig(rows=3, cols=4))
        route = random_route(grid, np.random.default_rng(7),
                             min_duration_s=120.0)
        for (r0, c0), (r1, c1) in zip(route, route[1:]):
            assert 0 <= r1 < 3 and 0 <= c1 < 4
            assert abs(r1 - r0) + abs(c1 - c0) == 1  # one block per leg

    def test_plan_legs_partition_route(self):
        grid = RoadGrid(CityConfig(rows=2, cols=3))
        route = random_route(grid, np.random.default_rng(1),
                             min_duration_s=60.0)
        plan = VehiclePlan(grid, route, speed_mps=mph_to_mps(15.0))
        assert plan.legs[0].t_enter == 0.0
        for prev, cur in zip(plan.legs, plan.legs[1:]):
            assert cur.t_enter == pytest.approx(prev.t_exit)
        for leg in plan.legs:
            assert leg.channel == grid.segments[leg.segment].channel
            mid = 0.5 * (leg.t_enter + leg.t_exit)
            assert plan.segment_at(mid) == leg.segment

    def test_segments_visited_distinct(self):
        grid = RoadGrid(CityConfig(rows=3, cols=3))
        route = random_route(grid, np.random.default_rng(5),
                             min_duration_s=180.0)
        plan = VehiclePlan(grid, route, speed_mps=10.0)
        visited = plan.segments_visited()
        assert len(visited) == len(set(visited))
        assert set(visited) == {leg.segment for leg in plan.legs}


# --------------------------------------------------------------- spatial
class TestSpatialIndex:
    def test_query_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = [(float(x), float(y)) for x, y in rng.uniform(0, 500, (60, 2))]
        index = SpatialIndex(cell_m=75.0)
        for i, (x, y) in enumerate(points):
            index.insert(i, x, y)
        for qx, qy, radius in ((100.0, 100.0, 60.0), (250.0, 400.0, 80.0)):
            got = set(index.query(qx, qy, radius))
            want = {
                i for i, (x, y) in enumerate(points)
                if (x - qx) ** 2 + (y - qy) ** 2 <= radius ** 2
            }
            assert got == want

    def test_query_path_dedups_and_orders(self):
        index = SpatialIndex(cell_m=50.0)
        index.insert("a", 0.0, 0.0)
        index.insert("b", 100.0, 0.0)
        path = [(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)]
        assert index.query_path(path, radius_m=60.0) == ["a", "b"]


# ---------------------------------------------------------------- medium
class TestShardedMedium:
    def _net(self, sharded=True):
        city = CityConfig(rows=1, cols=2, aps_per_segment=2, n_vehicles=1,
                          sharded=sharded)
        return build_network(ExperimentConfig(mode="wgtt", seed=0, city=city))

    def test_aps_bucketed_on_their_channel(self):
        net = self._net()
        medium = net.medium
        assert isinstance(medium, ShardedMedium)
        for ap in net.aps:
            key = medium._radio_shard[ap.node_id]
            assert key[0] == ap.radio.channel

    def test_receiver_candidates_stay_on_channel(self):
        net = self._net()
        medium = net.medium
        ap = net.aps[0]
        key = medium._ensure_current(ap.radio)
        channel, cx, cy = key
        for dx, dy in ((-1, 0), (0, 0), (1, 0)):
            shard = medium._shards.get((channel + 1, cx + dx, cy + dy))
            assert shard is None or ap.radio not in shard.radios.values()

    def test_rebucket_follows_channel_change(self):
        net = self._net()
        medium = net.medium
        ap = net.aps[0]
        before = medium._radio_shard[ap.node_id]
        ap.radio.channel = 161
        medium.rebucket(ap.radio)
        after = medium._radio_shard[ap.node_id]
        assert after[0] == 161 and after != before
        assert ap.node_id not in medium._shards[before].radios

    def test_shard_stats_shape(self):
        stats = self._net().medium.shard_stats()
        assert stats["occupied_shards"] >= 1
        assert stats["max_radios_per_shard"] >= 1


# -------------------------------------------------------------- e2e runs
def _drive(city, seed=0, duration_s=4.0, rate=8.0):
    config = ExperimentConfig(mode="wgtt", seed=seed, city=city,
                              check_invariants=True)
    return run_city_drive(config, traffic="udp", udp_rate_mbps=rate,
                          duration_s=duration_s)


class TestCityDrive:
    def test_small_grid_drive_delivers_and_holds_invariants(self):
        city = CityConfig(rows=2, cols=2, aps_per_segment=4, n_vehicles=3)
        result = _drive(city)
        assert result.throughput_mbps > 1.0
        assert result.extras["n_vehicles"] == 3
        assert result.extras["n_aps"] == 16
        assert sum(result.extras["per_segment_mbps"].values()) == (
            pytest.approx(result.throughput_mbps, rel=0.2)
        )
        result.net.invariants.assert_ok()

    def test_per_segment_controllers_share_one_bssid(self):
        city = CityConfig(rows=2, cols=2, aps_per_segment=2, n_vehicles=1)
        result = _drive(city, duration_s=2.0)
        net = result.net
        assert len(net.controllers) == city.n_segments
        assert len({ap.radio.bssid for ap in net.aps}) == 1
        assert [c.segment_index for c in net.controllers] == (
            list(range(city.n_segments))
        )

    def test_spatial_link_gating_prunes_all_pairs(self):
        city = CityConfig(rows=3, cols=3, aps_per_segment=4, n_vehicles=1)
        result = _drive(city, duration_s=2.0, rate=2.0)
        vehicle = result.net.vehicles[0]
        # A single route cannot pass within range of every AP of a 3x3 grid.
        assert 0 < len(vehicle.linked_ap_ids) < result.net.n_aps

    def test_unsharded_medium_also_clean(self):
        city = CityConfig(rows=2, cols=2, aps_per_segment=4, n_vehicles=2,
                          sharded=False)
        result = _drive(city, duration_s=3.0)
        assert not isinstance(result.net.medium, ShardedMedium)
        assert result.throughput_mbps > 1.0
        result.net.invariants.assert_ok()

    def test_run_single_drive_city_entry_point(self):
        result = run_single_drive(
            traffic="udp", udp_rate_mbps=4.0, duration_s=2.0, seed=1,
            city={"rows": 1, "cols": 2, "aps_per_segment": 3, "n_vehicles": 1},
        )
        assert result.extras["n_segments"] == 1
        summary = result.summarize(mode="wgtt", seed=1)
        assert summary.n_vehicles == 1
        assert summary.per_segment_mbps

    def test_link_index_off_builds_all_pairs(self):
        city = CityConfig(rows=3, cols=3, aps_per_segment=4, n_vehicles=1,
                          link_index=False)
        result = _drive(city, duration_s=2.0, rate=2.0)
        vehicle = result.net.vehicles[0]
        # The control-arm fallback links every client to every AP.
        assert len(vehicle.linked_ap_ids) == result.net.n_aps
        result.net.invariants.assert_ok()

    def test_uplink_traffic_mode_delivers(self):
        city = CityConfig(rows=2, cols=2, aps_per_segment=4, n_vehicles=3)
        config = ExperimentConfig(mode="wgtt", seed=0, city=city,
                                  check_invariants=True)
        result = run_city_drive(config, traffic="udp-up", udp_rate_mbps=4.0,
                                duration_s=3.0)
        assert result.throughput_mbps > 1.0
        assert all(v >= 0.0 for v in result.extras["per_vehicle_mbps"])
        result.net.invariants.assert_ok()

    def test_city_rejects_baseline_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="baseline",
                             city=CityConfig(rows=2, cols=2))


def test_city_acceptance_fleet_drive():
    """The headline scenario: a 3x3 grid (72 APs, one controller per road
    segment), 50 vehicles, invariant monitors armed throughout."""
    city = CityConfig(rows=3, cols=3, aps_per_segment=6, n_vehicles=50,
                      speed_mph=20.0)
    config = ExperimentConfig(mode="wgtt", seed=0, city=city,
                              check_invariants=True)
    result = run_city_drive(config, traffic="udp", udp_rate_mbps=3.0,
                            duration_s=3.0)
    net = result.net
    assert net.n_aps == 72 >= 64
    assert len(net.controllers) == 12
    assert result.extras["n_vehicles"] == 50
    assert result.throughput_mbps > 10.0
    counters = net.resilience_counters()
    assert counters["invariant_checks"] > 10_000
    net.invariants.assert_ok()
