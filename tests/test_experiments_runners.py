"""Unit tests for the drive runners and flow attachment helpers."""

import pytest

from repro.experiments.builder import ExperimentConfig, build_network
from repro.experiments.runners import (
    attach_tcp_downlink,
    attach_udp_downlink,
    attach_udp_uplink,
    run_single_drive,
    static_trajectory,
    tcp_deliveries,
    udp_deliveries,
)
from repro.mobility import RoadLayout
from repro.transport.tcp import TcpReceiver
from repro.sim.engine import Simulator

ROAD = RoadLayout.uniform(3)


def test_static_trajectory_at_middle_ap():
    road = RoadLayout.uniform(5)
    traj = static_trajectory(road)
    assert traj.position(0.0)[0] == road.ap_x[2]


def test_udp_deliveries_conversion():
    sim = Simulator()
    from repro.transport.udp import UdpReceiver

    rx = UdpReceiver(sim, flow_id=1)
    rx.deliveries = [(0.1, 0), (0.2, 1)]
    assert udp_deliveries(rx, 1476) == [(0.1, 1476), (0.2, 1476)]


def test_tcp_deliveries_are_diffs():
    sim = Simulator()
    rx = TcpReceiver(sim, lambda p: None, 1, 2, 1)
    rx.progress = [(0.1, 1000), (0.2, 2500)]
    assert tcp_deliveries(rx) == [(0.1, 1000), (0.2, 1500)]


def test_attach_udp_downlink_wires_flow():
    net = build_network(ExperimentConfig(mode="wgtt", road=ROAD, seed=1))
    client = net.add_client(static_trajectory(ROAD))
    sender, receiver = attach_udp_downlink(net, client, 10.0)
    assert sender.dst == client.node_id
    assert receiver.flow_id == sender.flow_id
    assert sender.flow_id in client.flow_handlers


def test_attach_udp_uplink_wires_controller_handler():
    net = build_network(ExperimentConfig(mode="wgtt", road=ROAD, seed=1))
    client = net.add_client(static_trajectory(ROAD))
    sender, receiver = attach_udp_uplink(net, client, 5.0)
    assert sender.src == client.node_id
    assert sender.flow_id in net.controller._uplink_handlers


def test_attach_tcp_downlink_unique_flow_ids():
    net = build_network(ExperimentConfig(mode="wgtt", road=ROAD, seed=1))
    client = net.add_client(static_trajectory(ROAD))
    s1, _r1 = attach_tcp_downlink(net, client)
    s2, _r2 = attach_tcp_downlink(net, client)
    assert s1.flow_id != s2.flow_id


def test_run_single_drive_returns_complete_result():
    result = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="udp",
                              udp_rate_mbps=10.0, seed=2, road=ROAD)
    assert result.duration_s > 0
    assert result.throughput_mbps >= 0
    assert result.net is not None
    assert result.client is not None
    assert result.measure_t1 == result.duration_s


def test_run_single_drive_static_defaults_duration():
    result = run_single_drive(mode="wgtt", speed_mph=0.0, traffic="udp",
                              udp_rate_mbps=5.0, seed=2, road=ROAD)
    assert result.duration_s == 10.0


def test_run_single_drive_rejects_unknown_traffic():
    with pytest.raises(ValueError):
        run_single_drive(mode="wgtt", traffic="carrier-pigeon", road=ROAD)
