"""Unit tests for the columnar result store (synthetic summaries only).

The acceptance property for the distributed-sweep era: a multi-hundred
job study must be queryable through the aggregator with one file open
per *shard*, never per job -- and reconstruction must round-trip every
``DriveSummary`` field byte-identically.
"""

import json

import pytest

from repro.orchestration import (
    ColumnarStore,
    DriveSummary,
    JobSpec,
    ResultCache,
    SweepAggregator,
    migrate_json_cache,
)
from repro.orchestration.store import STORE_VERSION


def make_summary(seed: int, mode: str = "wgtt", speed: float = 25.0,
                 policy: str = "") -> DriveSummary:
    """A fully-populated synthetic summary, distinct per seed."""
    return DriveSummary(
        job_key=f"{mode}:{speed:g}:udp:r50:s{seed}",
        mode=mode, speed_mph=speed, traffic="udp", udp_rate_mbps=50.0,
        seed=seed, duration_s=5.0, measure_t0=0.55, measure_t1=5.0,
        throughput_mbps=10.0 + seed * 0.25,
        coverage_throughput_mbps=12.0 + seed * 0.125,
        coverage_t0=1.0, coverage_t1=4.0,
        bin_s=0.25,
        bin_centres=[1.125 + 0.25 * i for i in range(seed % 4)],
        bin_mbps=[float(seed + i) for i in range(seed % 4)],
        switch_events=[(1.0, seed % 8), (2.0, None)][: 1 + seed % 2],
        switch_count=1 + seed % 2,
        trace_counters={"ap_switch": seed % 5},
        events_fired=1000 + seed,
        wall_clock_s=0.01,
        policy=policy,
        dropped_records=seed % 3,
        resilience={"failovers": seed % 2} if seed % 2 else {},
        n_vehicles=seed % 6, n_segments=seed % 4,
        per_segment_mbps={0: 1.5, 3: float(seed)} if seed % 3 == 0 else {},
    )


def test_roundtrip_is_lossless(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=8)
    originals = [make_summary(s) for s in range(5)]
    store.extend(originals)
    store.flush()
    back = list(store.summaries())
    assert [b.to_dict() for b in back] == [o.to_dict() for o in originals]


def test_sharding_and_reopen(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=4)
    store.extend(make_summary(s) for s in range(10))
    store.flush()
    assert store.n_shards == 3  # 4 + 4 + 2
    assert len(store) == 10
    # A fresh handle reads the manifest and sees the same data.
    reopened = ColumnarStore(tmp_path)
    assert reopened.shard_size == 4  # manifest wins over the default
    assert len(reopened) == 10
    assert len(list(reopened.summaries())) == 10


def test_query_concatenates_across_shards(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=3)
    store.extend(make_summary(s) for s in range(7))
    store.flush()
    cols = store.query("seed", "throughput_mbps")
    assert list(cols["seed"]) == list(range(7))
    assert cols["throughput_mbps"][6] == pytest.approx(10.0 + 6 * 0.25)
    with pytest.raises(KeyError):
        store.query("no_such_column")


def test_ragged_columns_slice_per_job(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=100)
    originals = [make_summary(s) for s in range(6)]
    store.extend(originals)
    store.flush()
    cols = store.query("bin_offsets", "bin_mbps")
    for i, original in enumerate(originals):
        lo, hi = int(cols["bin_offsets"][i]), int(cols["bin_offsets"][i + 1])
        assert list(cols["bin_mbps"][lo:hi]) == original.bin_mbps


def test_version_mismatch_is_rejected_on_open(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=2)
    store.append(make_summary(0))
    store.flush()
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    manifest["store_version"] = STORE_VERSION - 1
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="store_version"):
        ColumnarStore(tmp_path)


def test_partial_buffer_not_visible_until_flush(tmp_path):
    store = ColumnarStore(tmp_path, shard_size=100)
    store.append(make_summary(0))
    assert len(store) == 1  # buffered
    assert store.n_shards == 0
    assert list(ColumnarStore(tmp_path).summaries()) == []  # not durable yet
    store.flush()
    assert len(list(ColumnarStore(tmp_path).summaries())) == 1


def test_migrate_json_cache_packs_legacy_entries(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    for seed in range(6):
        job = JobSpec(mode="wgtt", speed_mph=25.0, traffic="udp", seed=seed)
        cache.put(job, make_summary(seed))
    # A foreign file in the tree must be skipped, not fatal.
    bad = tmp_path / "cache" / "zz"
    bad.mkdir()
    (bad / "junk.json").write_text("{not json")
    store = ColumnarStore(tmp_path / "store", shard_size=4)
    assert migrate_json_cache(tmp_path / "cache", store) == 6
    migrated = {s.seed: s for s in store.summaries()}
    assert sorted(migrated) == list(range(6))
    assert migrated[3].to_dict() == make_summary(3).to_dict()


def test_migrate_respects_limit(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    for seed in range(5):
        cache.put(JobSpec(seed=seed), make_summary(seed))
    store = ColumnarStore(tmp_path / "store")
    assert migrate_json_cache(tmp_path / "cache", store, limit=2) == 2
    assert len(store) == 2


# ------------------------------------------------------------ acceptance
def test_200_job_study_queries_without_per_job_opens(tmp_path):
    """The headline property: a >=200-job sweep stored columnar is
    aggregated with one np.load per shard -- zero per-job file I/O."""
    n_jobs = 240
    store = ColumnarStore(tmp_path, shard_size=64)
    for seed in range(n_jobs):
        mode = "wgtt" if seed % 2 == 0 else "baseline"
        store.append(make_summary(seed, mode=mode, speed=15.0 + (seed % 3)))
    store.flush()
    assert store.n_shards == 4  # 64 * 3 + 48
    assert len(store) == n_jobs
    # No stray per-job files on disk: shards + manifest only.
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == ["manifest.json"] + [f"shard-{i:05d}.npz"
                                         for i in range(4)]

    store.files_opened = 0
    agg = SweepAggregator()
    assert agg.consume_store(store) == n_jobs
    assert store.files_opened == store.n_shards  # the receipts
    snapshot = agg.snapshot()
    assert snapshot["jobs_seen"] == n_jobs
    assert sum(c["n"] for c in snapshot["cells"]) == n_jobs
    # 2 modes x 3 speeds, and each cell's mean is within its min/max.
    assert len(snapshot["cells"]) == 6
    for cell in snapshot["cells"]:
        assert cell["min"] <= cell["mean"] <= cell["max"]
