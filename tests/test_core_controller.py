"""Unit tests for the WGTT controller driven by injected CSI reports."""

import numpy as np

from repro.core.controller import ControllerParams, WgttController
from repro.core.messages import CsiReport, StartMsg, StopMsg, SwitchAck, ctrl_packet
from repro.net.ethernet import Backhaul, BackhaulParams
from repro.net.packet import Packet
from repro.phy.csi import CSIReading
from repro.sim.engine import Simulator


class ApStub:
    """Records the control messages a real AP would receive."""

    def __init__(self, node_id, backhaul):
        self.node_id = node_id
        self.inbox = []
        backhaul.register(node_id, self.on_backhaul)

    def on_backhaul(self, packet, src):
        self.inbox.append(packet.payload if packet.protocol == "ctrl" else packet)

    def messages(self, kind):
        return [m for m in self.inbox if isinstance(m, kind)]


def make_controller(**params):
    sim = Simulator()
    backhaul = Backhaul(sim, np.random.default_rng(0),
                        params=BackhaulParams(jitter_s=0.0))
    controller = WgttController(
        sim, backhaul, node_id=1, rng=np.random.default_rng(1),
        params=ControllerParams(**params),
    )
    aps = [ApStub(100 + i, backhaul) for i in range(3)]
    for ap in aps:
        controller.add_ap(ap.node_id)
    return sim, backhaul, controller, aps


def csi(ap_id, client_id, esnr_target_db, t):
    """A CSI reading whose ESNR is ~esnr_target_db (flat channel)."""
    return CsiReport(reading=CSIReading(
        time=t, ap_id=ap_id, client_id=client_id,
        csi=np.ones(56, dtype=complex), mean_snr_db=esnr_target_db,
    ))


def send_csi(sim, backhaul, controller, ap_id, client, esnr, at):
    sim.schedule_at(at, backhaul.send, ap_id, controller.node_id,
                    ctrl_packet(ap_id, controller.node_id,
                                csi(ap_id, client, esnr, at), at))


def test_first_csi_elects_serving_ap():
    sim, bh, ctl, aps = make_controller()
    send_csi(sim, bh, ctl, 100, 200, 25.0, 0.01)
    sim.run(until=0.05)
    starts = aps[0].messages(StartMsg)
    # At least one start (the 30 ms ack timeout may retransmit it).
    assert starts and all(s.client == 200 for s in starts)
    # AP acks; controller records the serving AP.
    bh.send(100, ctl.node_id,
            ctrl_packet(100, ctl.node_id, SwitchAck(client=200, ap=100), sim.now))
    sim.run(until=0.1)
    assert ctl.serving_ap(200) == 100


def _establish(sim, bh, ctl, aps, ap_idx=0, client=200):
    send_csi(sim, bh, ctl, aps[ap_idx].node_id, client, 25.0, sim.now + 0.001)
    sim.run(until=sim.now + 0.01)
    bh.send(aps[ap_idx].node_id, ctl.node_id,
            ctrl_packet(aps[ap_idx].node_id, ctl.node_id,
                        SwitchAck(client=client, ap=aps[ap_idx].node_id), sim.now))
    sim.run(until=sim.now + 0.01)


def test_switch_to_stronger_ap_sends_stop_to_old():
    sim, bh, ctl, aps = make_controller(hysteresis_s=0.0)
    _establish(sim, bh, ctl, aps, ap_idx=0)
    for i in range(3):
        send_csi(sim, bh, ctl, 101, 200, 35.0, sim.now + 0.001 * (i + 1))
        send_csi(sim, bh, ctl, 100, 200, 15.0, sim.now + 0.001 * (i + 1))
    sim.run(until=sim.now + 0.02)
    stops = aps[0].messages(StopMsg)
    assert stops and stops[-1].new_ap == 101


def test_hysteresis_blocks_rapid_switches():
    sim, bh, ctl, aps = make_controller(hysteresis_s=10.0)
    _establish(sim, bh, ctl, aps, ap_idx=0)
    for i in range(5):
        send_csi(sim, bh, ctl, 101, 200, 35.0, sim.now + 0.001 * (i + 1))
    sim.run(until=sim.now + 0.05)
    assert aps[0].messages(StopMsg) == []


def test_stop_retransmitted_without_ack():
    sim, bh, ctl, aps = make_controller(hysteresis_s=0.0, ack_timeout_s=0.02)
    _establish(sim, bh, ctl, aps, ap_idx=0)
    send_csi(sim, bh, ctl, 101, 200, 35.0, sim.now + 0.001)
    send_csi(sim, bh, ctl, 100, 200, 10.0, sim.now + 0.001)
    sim.run(until=sim.now + 0.1)  # nobody acks
    assert len(aps[0].messages(StopMsg)) >= 3


def test_switch_gives_up_after_max_attempts():
    sim, bh, ctl, aps = make_controller(
        hysteresis_s=0.0, ack_timeout_s=0.01, max_switch_attempts=3
    )
    _establish(sim, bh, ctl, aps, ap_idx=0)
    send_csi(sim, bh, ctl, 101, 200, 35.0, sim.now + 0.001)
    send_csi(sim, bh, ctl, 100, 200, 10.0, sim.now + 0.001)
    sim.run(until=sim.now + 0.5)
    assert ctl.trace.count("switch_failed") == 1
    assert ctl.serving_ap(200) is None


def test_downlink_multicast_to_in_range_aps():
    sim, bh, ctl, aps = make_controller()
    _establish(sim, bh, ctl, aps, ap_idx=0)
    send_csi(sim, bh, ctl, 101, 200, 20.0, sim.now + 0.001)
    sim.run(until=sim.now + 0.01)
    packet = Packet(size_bytes=1476, src=9, dst=200, flow_id=1, seq=0)
    ctl.send_downlink(packet)
    sim.run(until=sim.now + 0.01)
    got_0 = [p for p in aps[0].inbox if isinstance(p, Packet)]
    got_1 = [p for p in aps[1].inbox if isinstance(p, Packet)]
    got_2 = [p for p in aps[2].inbox if isinstance(p, Packet)]
    assert got_0 and got_1
    assert not got_2  # never reported CSI -> out of range


def test_downlink_indices_increment():
    sim, bh, ctl, aps = make_controller()
    _establish(sim, bh, ctl, aps, ap_idx=0)
    for seq in range(5):
        ctl.send_downlink(Packet(size_bytes=100, src=9, dst=200, flow_id=1, seq=seq))
    sim.run(until=sim.now + 0.01)
    indices = [p.wgtt_index for p in aps[0].inbox if isinstance(p, Packet)]
    assert indices == list(range(5))


def test_no_coverage_drop_counted():
    sim, bh, ctl, aps = make_controller()
    ctl.send_downlink(Packet(size_bytes=100, src=9, dst=222, flow_id=1, seq=0))
    assert ctl.clients[222].no_coverage_drops == 1


def test_uplink_dedup_and_handler_dispatch():
    sim, bh, ctl, aps = make_controller()
    got = []
    ctl.register_uplink_handler(4, lambda p, t: got.append(p.seq))
    packet = Packet(size_bytes=500, src=200, dst=9, flow_id=4, seq=7)
    import copy

    for ap in aps[:2]:
        clone = copy.copy(packet)
        clone.tunnel = []
        clone.encapsulate(ap.node_id, ctl.node_id)
        bh.send(ap.node_id, ctl.node_id, clone)
    sim.run(until=0.1)
    assert got == [7]


def test_default_uplink_handler():
    sim, bh, ctl, aps = make_controller()
    got = []
    ctl.set_default_uplink_handler(lambda p, t: got.append(p.flow_id))
    packet = Packet(size_bytes=500, src=200, dst=9, flow_id=77, seq=0)
    packet.encapsulate(100, ctl.node_id)
    bh.send(100, ctl.node_id, packet)
    sim.run(until=0.1)
    assert got == [77]
