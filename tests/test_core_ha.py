"""Controller high availability: knobs, checkpoints, failover, degraded mode.

End-to-end fixtures reuse the geometry of tests/test_faults_endtoend.py:
a 15 mph drive through the default 8-AP road, 20 Mb/s UDP downlink, and a
controller crash at t = 2.0 s (mid-array, while switching is active).
"""

import pytest

from repro.core import ClientCheckpoint, ControllerCheckpoint, HaParams, coerce_ha
from repro.experiments import ExperimentConfig, build_network
from repro.experiments.runners import run_single_drive
from repro.faults import FaultScenario
from repro.mobility import LinearTrajectory, RoadLayout
from repro.net.packet import Packet

CRASH_T = 2.0
DRIVE_S = 5.0
RESTART_AFTER_S = 2.0


def ha_drive(ha, scenario=None, seed=1, **kw):
    return run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=seed, duration_s=DRIVE_S, ha=ha, check_invariants=True,
        fault_scenario=scenario, **kw,
    )


@pytest.fixture(scope="module")
def failover_result():
    """Warm standby + mid-drive controller crash (no restart)."""
    return ha_drive(True, FaultScenario.single_controller_crash(at=CRASH_T))


@pytest.fixture(scope="module")
def degraded_result():
    """Degraded-mode-only HA: crash at 2.0 s, cold restart 2.0 s later."""
    return ha_drive(
        {"standby": False},
        FaultScenario.single_controller_crash(
            at=CRASH_T, restart_after_s=RESTART_AFTER_S
        ),
    )


def delivered_bytes(result, t0, t1=float("inf")):
    return sum(b for (t, b) in result.deliveries if t0 < t <= t1)


# ---------------------------------------------------------------- HaParams
def test_haparams_defaults_and_dead_after():
    ha = HaParams()
    assert ha.standby and ha.ap_degraded
    assert ha.dead_after_s == pytest.approx(
        ha.miss_threshold * ha.heartbeat_interval_s
    )


@pytest.mark.parametrize("bad", [
    {"heartbeat_interval_s": 0.0},
    {"heartbeat_interval_s": -0.05},
    {"miss_threshold": 0},
    {"checkpoint_interval_beats": 0},
    {"reconcile_window_s": -0.01},
    {"degraded_eval_interval_s": 0.0},
])
def test_haparams_validation(bad):
    with pytest.raises(ValueError):
        HaParams(**bad)


def test_haparams_dict_roundtrip():
    ha = HaParams(heartbeat_interval_s=0.1, miss_threshold=5, standby=False)
    assert HaParams.from_dict(ha.to_dict()) == ha
    with pytest.raises(ValueError):
        HaParams.from_dict({"quorum_size": 3})


def test_coerce_ha_accepts_all_forms():
    assert coerce_ha(None) is None
    assert coerce_ha(False) is None
    assert coerce_ha(True) == HaParams()
    ha = HaParams(miss_threshold=7)
    assert coerce_ha(ha) is ha
    assert coerce_ha({"standby": False}) == HaParams(standby=False)
    # The string forms are what sweep overrides and the CLI carry.
    assert coerce_ha("true") == HaParams()
    assert coerce_ha("null") is None
    assert coerce_ha('{"standby": false, "miss_threshold": 2}') == HaParams(
        standby=False, miss_threshold=2
    )
    with pytest.raises(TypeError):
        coerce_ha(3.5)


# ------------------------------------------------------------- checkpoints
def test_client_checkpoint_json_roundtrip():
    entry = ClientCheckpoint(
        client=9, serving_ap=4, next_index=4090, last_switch_time=1.25,
        switch_count=3, downlink_packets=812, in_flight=(4, 5),
        windows={2: [(1.0, 18.5), (1.1, 19.0)], 3: [(1.05, 22.0)]},
    )
    restored = ClientCheckpoint.from_dict(entry.to_dict())
    assert restored == entry
    assert restored.in_flight == (4, 5)
    # Wire cost grows with the window contents it carries.
    assert entry.wire_bytes() > ClientCheckpoint(client=9).wire_bytes()


def test_controller_checkpoint_json_roundtrip():
    snap = ControllerCheckpoint(
        time=2.5, epoch=1, ap_ids=[10, 11, 12], evicted_aps=[11],
        clients=[ClientCheckpoint(client=9, serving_ap=10, next_index=7)],
    )
    restored = ControllerCheckpoint.from_json(snap.to_json())
    assert restored.to_json() == snap.to_json()
    assert restored.client(9).next_index == 7
    assert restored.client(404) is None
    assert snap.wire_bytes() > 24


def test_checkpoint_capture_from_live_controller():
    config = ExperimentConfig(mode="wgtt", road=RoadLayout(), seed=3, ha=True)
    net = build_network(config)
    client = net.add_client(LinearTrajectory.drive_through(net.road, 15.0))

    def pump(seq=[0]):
        for s in range(seq[0], seq[0] + 3):
            net.server_send(Packet(
                size_bytes=1476, src=net.server_id, dst=client.node_id,
                protocol="udp", flow_id=1, seq=s,
            ))
        seq[0] += 3

    net.sim.call_every(0.005, pump)
    net.run(until=2.0)
    snap = ControllerCheckpoint.capture(net.controller)
    entry = snap.client(client.node_id)
    assert entry is not None
    assert entry.serving_ap is not None
    assert entry.next_index > 0
    assert any(entry.windows.values()), "ESNR windows not captured"
    # The snapshot survives the simulated wire (JSON both ways).
    assert ControllerCheckpoint.from_json(snap.to_json()).to_json() == snap.to_json()


# ------------------------------------------------------- standby failover
def test_standby_takes_over_after_crash(failover_result):
    net = failover_result.net
    assert not net.controller.alive
    assert net.cluster.active is net.standby
    assert net.standby.takeovers == 1
    assert net.standby.checkpoints_received > 0
    assert net.trace.count("controller_failover") == 1
    counters = net.resilience_counters()
    assert counters["failovers"] == 1
    assert counters["standby_takeovers"] == 1


def test_failover_detection_is_heartbeat_bounded(failover_result):
    net = failover_result.net
    ha = net.standby.ha
    takeover = net.standby.takeover_time
    assert takeover is not None
    # Death is declared after miss_threshold beats of silence, plus at
    # most one watchdog period of sampling slack.
    assert CRASH_T < takeover <= CRASH_T + ha.dead_after_s + 2 * ha.heartbeat_interval_s


def test_failover_restores_downlink_service(failover_result):
    post = delivered_bytes(failover_result, CRASH_T + 1.0)
    assert post > 0, "no deliveries after the failover settled"
    # A warm takeover costs a fraction of a second, not the drive.
    assert failover_result.throughput_mbps > 10.0


def test_no_duplicate_delivery_across_failover(failover_result):
    inv = failover_result.net.invariants
    assert inv is not None
    assert inv.checks > 1000
    assert inv.ok, inv.report()
    client = failover_result.client.node_id
    assert len(inv.serving_aps(client)) <= 1


def test_summary_surfaces_resilience_counters(failover_result):
    from repro.orchestration.summary import DriveSummary

    summary = failover_result.summarize(mode="wgtt", seed=1)
    assert summary.resilience["standby_takeovers"] == 1
    assert summary.resilience["invariant_violations"] == 0
    assert summary.resilience["invariant_checks"] > 0
    assert summary.dropped_records == failover_result.trace.dropped_records
    restored = DriveSummary.from_dict(summary.to_dict())
    assert restored.resilience == summary.resilience
    assert restored.dropped_records == summary.dropped_records


# ------------------------------------------------------------ degraded mode
def test_degraded_mode_serves_through_outage(degraded_result):
    net = degraded_result.net
    counters = net.resilience_counters()
    assert counters["degraded_entries"] > 0
    assert net.trace.count("ap_degraded_enter") == counters["degraded_entries"]
    # New downlink enters through the (dead) controller, so the outage
    # window is backlog-limited: degraded APs keep draining their rings
    # to the client instead of going dark with the control plane.
    drained = delivered_bytes(degraded_result, CRASH_T,
                              CRASH_T + RESTART_AFTER_S)
    assert drained > 0, "degraded APs delivered no backlog during the outage"
    assert degraded_result.net.invariants.ok, net.invariants.report()


def test_degraded_local_handover_happens(degraded_result):
    counters = degraded_result.net.resilience_counters()
    assert counters["degraded_handovers"] >= 1


def test_degraded_aps_resubordinate_after_restart(degraded_result):
    net = degraded_result.net
    restart_t = CRASH_T + RESTART_AFTER_S
    assert net.controller.alive
    assert net.trace.count("fault_controller_restart") == 1
    exits = [t for t in net.trace.times("ap_degraded_exit") if t >= restart_t]
    assert exits, "no AP re-subordinated after the controller returned"
    # Normal controller-driven service resumed after the restart.
    assert delivered_bytes(degraded_result, restart_t + 0.5) > 0
    assert net.resilience_counters()["degraded_exits"] > 0


# --------------------------------------------------------------- opt-in
def test_ha_is_off_by_default():
    net = build_network(mode="wgtt", seed=0)
    assert net.standby is None
    assert net.cluster is None
    assert net.invariants is None
    assert net.controller.ha is None
    assert all(ap.ha is None for ap in net.aps)
    assert net.resilience_counters() == {}


def test_baseline_mode_rejects_ha():
    with pytest.raises(ValueError):
        ExperimentConfig(mode="baseline", road=RoadLayout(), ha=True)
