"""Unit and property-based tests for Effective SNR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.esnr import (
    DEFAULT_ESNR_CONSTELLATION,
    effective_snr_db,
    esnr_all_constellations,
    invert_ber,
    subcarrier_snr_db_from_csi,
)
from repro.phy.modulation import BER_FUNCTIONS, Constellation, db_to_linear


def test_flat_channel_esnr_equals_snr():
    """On a flat channel ESNR must equal the per-subcarrier SNR."""
    snr = np.full(56, 15.0)
    assert effective_snr_db(snr) == pytest.approx(15.0, abs=0.1)


def test_esnr_below_mean_for_selective_channel():
    """Deep fades drag ESNR below the arithmetic-mean SNR (the whole point)."""
    snr = np.full(56, 25.0)
    snr[:14] = -5.0  # a quarter of the band deeply faded
    esnr = effective_snr_db(snr)
    assert esnr < float(np.mean(snr)) - 1.0
    # And far below the linear-average SNR, which an RSSI-style metric
    # would report.
    from repro.phy.modulation import db_to_linear, linear_to_db

    rssi_like = float(linear_to_db(np.mean(db_to_linear(snr))))
    assert esnr < rssi_like - 3.0


def test_esnr_at_least_min_subcarrier():
    snr = np.array([5.0, 10.0, 15.0, 25.0])
    assert effective_snr_db(snr) >= 5.0 - 0.1


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        effective_snr_db(np.array([]))


@pytest.mark.parametrize("constellation", Constellation.ALL)
def test_invert_ber_roundtrip(constellation):
    fn = BER_FUNCTIONS[constellation]
    for snr_db in (0.0, 8.0, 16.0):
        ber = float(fn(db_to_linear(snr_db)))
        if ber <= 0.0:
            continue
        assert invert_ber(ber, constellation) == pytest.approx(snr_db, abs=0.05)


def test_invert_ber_clamps_extremes():
    assert invert_ber(0.5, Constellation.BPSK) == -15.0
    assert invert_ber(0.0, Constellation.BPSK) == 55.0


def test_esnr_all_constellations_keys():
    out = esnr_all_constellations(np.full(56, 12.0))
    assert set(out) == set(Constellation.ALL)


def test_subcarrier_snr_from_csi_unit_gain():
    csi = np.ones(56, dtype=complex)
    snr = subcarrier_snr_db_from_csi(csi, mean_snr_db=20.0)
    assert np.allclose(snr, 20.0)


def test_subcarrier_snr_floor_applied():
    csi = np.zeros(4, dtype=complex)
    snr = subcarrier_snr_db_from_csi(csi, mean_snr_db=20.0, floor_db=-20.0)
    assert np.all(snr == -20.0)


@settings(max_examples=50, deadline=None)
@given(
    base=st.floats(min_value=-5.0, max_value=35.0),
    dips=st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=4, max_size=56),
)
def test_esnr_never_exceeds_flat_equivalent(base, dips):
    """Property: fading subcarriers down can only lower ESNR."""
    n = len(dips)
    faded = np.full(n, base) - np.asarray(dips)
    esnr_faded = effective_snr_db(faded)
    esnr_flat = effective_snr_db(np.full(n, base))
    assert esnr_faded <= esnr_flat + 0.05


@settings(max_examples=50, deadline=None)
@given(
    snrs=st.lists(
        st.floats(min_value=-10.0, max_value=40.0), min_size=2, max_size=56
    ),
    delta=st.floats(min_value=0.1, max_value=10.0),
)
def test_esnr_monotone_in_uniform_improvement(snrs, delta):
    """Property: raising every subcarrier raises (or keeps) ESNR."""
    arr = np.asarray(snrs)
    lo = effective_snr_db(arr)
    hi = effective_snr_db(arr + delta)
    assert hi >= lo - 0.05


def test_default_constellation_is_qam64():
    # Discrimination of strong links requires the 64-QAM curve (QPSK BER
    # underflows numerically above ~17 dB).
    assert DEFAULT_ESNR_CONSTELLATION == Constellation.QAM64
