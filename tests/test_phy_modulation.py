"""Unit tests for BER curves."""

import numpy as np
import pytest

from repro.phy.modulation import (
    BER_FUNCTIONS,
    Constellation,
    ber_bpsk,
    ber_qam16,
    ber_qam64,
    ber_qpsk,
    db_to_linear,
    linear_to_db,
)


def test_db_linear_roundtrip():
    for db in (-10.0, 0.0, 3.0, 30.0):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db)


def test_linear_to_db_floors_at_zero():
    assert np.isfinite(linear_to_db(0.0))


def test_bpsk_known_value():
    # BPSK at 0 dB: Q(sqrt(2)) ~ 0.0786
    assert float(ber_bpsk(1.0)) == pytest.approx(0.0786, abs=0.001)


def test_qpsk_equals_bpsk_at_3db_offset():
    # Per-bit QPSK at SNR x equals BPSK at x/2.
    assert float(ber_qpsk(2.0)) == pytest.approx(float(ber_bpsk(1.0)), rel=1e-9)


@pytest.mark.parametrize("name", Constellation.ALL)
def test_all_curves_monotone_decreasing(name):
    fn = BER_FUNCTIONS[name]
    snrs = db_to_linear(np.linspace(-10, 35, 50))
    bers = fn(snrs)
    assert np.all(np.diff(bers) <= 1e-15)


@pytest.mark.parametrize("name", Constellation.ALL)
def test_ber_bounded(name):
    fn = BER_FUNCTIONS[name]
    bers = fn(db_to_linear(np.linspace(-20, 50, 40)))
    assert np.all(bers >= 0.0)
    assert np.all(bers <= 0.5)


def test_higher_order_constellations_worse_at_same_snr():
    snr = db_to_linear(10.0)
    assert float(ber_bpsk(snr)) < float(ber_qam16(snr)) < float(ber_qam64(snr))


def test_negative_snr_clamped():
    assert float(ber_bpsk(-1.0)) == float(ber_bpsk(0.0))


def test_vectorised_evaluation():
    out = ber_qam64(db_to_linear(np.array([0.0, 10.0, 20.0])))
    assert out.shape == (3,)


def test_bits_per_symbol_table():
    assert Constellation.BITS_PER_SYMBOL[Constellation.BPSK] == 1
    assert Constellation.BITS_PER_SYMBOL[Constellation.QAM64] == 6
