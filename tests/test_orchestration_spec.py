"""Unit tests for sweep specs, job expansion, and seed derivation."""

import pytest

from repro.orchestration import (
    FaultCampaign,
    JobSpec,
    SweepSpec,
    coerce_campaign,
    derive_seed,
)


def test_grid_expansion_count_and_order():
    spec = SweepSpec(
        modes=("wgtt", "baseline"),
        speeds_mph=(5.0, 15.0),
        traffics=("udp",),
        seeds=(7, 8),
    )
    jobs = spec.expand()
    assert len(jobs) == len(spec) == 2 * 2 * 1 * 2
    # Deterministic order: modes outermost, seeds innermost.
    assert [(j.mode, j.speed_mph, j.seed) for j in jobs[:4]] == [
        ("wgtt", 5.0, 7), ("wgtt", 5.0, 8),
        ("wgtt", 15.0, 7), ("wgtt", 15.0, 8),
    ]
    assert jobs == spec.expand()  # expansion is reproducible


def test_jobs_are_hashable_and_equal_by_value():
    a = JobSpec(mode="wgtt", speed_mph=15.0, traffic="udp", seed=3)
    b = JobSpec(mode="wgtt", speed_mph=15.0, traffic="udp", seed=3)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_job_roundtrips_through_dict():
    job = JobSpec(mode="baseline", speed_mph=25.0, traffic="tcp", seed=9,
                  n_aps=3, overrides=(("server_latency_s", 2e-3),))
    assert JobSpec.from_dict(job.canonical()) == job


def test_job_overrides_are_normalized_and_scalar_only():
    a = JobSpec(overrides=(("b", 1), ("a", 2)))
    b = JobSpec(overrides=(("a", 2), ("b", 1)))
    assert a == b  # order-insensitive identity
    with pytest.raises(TypeError):
        JobSpec(overrides=(("road", object()),))


def test_job_validates_mode_and_traffic():
    with pytest.raises(ValueError):
        JobSpec(mode="wat")
    with pytest.raises(ValueError):
        JobSpec(traffic="icmp")


def test_job_key_is_readable_and_distinct():
    a = JobSpec(mode="wgtt", speed_mph=25.0, traffic="udp",
                udp_rate_mbps=50.0, seed=7)
    assert a.key() == "wgtt:25:udp:r50:s7"
    b = JobSpec(mode="wgtt", speed_mph=25.0, traffic="udp",
                udp_rate_mbps=50.0, seed=8)
    assert a.key() != b.key()


def test_run_kwargs_builds_road_from_n_aps():
    job = JobSpec(n_aps=3, ap_spacing_m=10.0)
    kwargs = job.run_kwargs()
    assert kwargs["road"].n_aps == 3
    assert kwargs["road"].ap_x[1] == 10.0
    assert "road" not in JobSpec().run_kwargs()  # default testbed road


def test_derive_seed_is_deterministic_and_spreads():
    s1 = derive_seed(0, "wgtt", 15.0, "udp", 0)
    s2 = derive_seed(0, "wgtt", 15.0, "udp", 0)
    assert s1 == s2
    distinct = {
        derive_seed(0, mode, speed, "udp", rep)
        for mode in ("wgtt", "baseline")
        for speed in (5.0, 15.0)
        for rep in range(4)
    }
    assert len(distinct) == 16
    assert all(0 <= s < 2**31 for s in distinct)


def test_replicates_derive_seeds_independent_of_execution_order():
    spec = SweepSpec(modes=("wgtt", "baseline"), speeds_mph=(15.0,),
                     traffics=("udp",), seeds=None, replicates=3, base_seed=42)
    jobs = spec.expand()
    assert len(jobs) == 6
    # Seeds depend only on (base_seed, grid point, replicate index) --
    # never on position in the job list -- so any scheduling is safe.
    again = spec.expand()
    assert [j.seed for j in jobs] == [j.seed for j in again]
    wgtt_seeds = {j.seed for j in jobs if j.mode == "wgtt"}
    base_seeds = {j.seed for j in jobs if j.mode == "baseline"}
    assert wgtt_seeds.isdisjoint(base_seeds)


class TestFaultCampaign:
    CAMPAIGN = dict(crash_rate_per_ap_hz=0.1, mean_downtime_s=1.5,
                    duration_s=6.0)

    def test_coercion_accepts_all_forms(self):
        a = FaultCampaign(**self.CAMPAIGN)
        b = coerce_campaign(dict(self.CAMPAIGN))
        c = coerce_campaign(a.to_json())
        assert a == b == c
        assert coerce_campaign(None) is None
        assert FaultCampaign.from_dict(a.to_dict()) == a

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultCampaign(crash_rate_per_ap_hz=-1.0)
        with pytest.raises(ValueError):
            FaultCampaign(crash_rate_per_ap_hz=0.1, duration_s=0.0)

    def test_mutually_exclusive_with_fault_scenario(self):
        from repro.faults import FaultScenario

        spec = SweepSpec(
            modes=("wgtt",), speeds_mph=(15.0,), seeds=(0,),
            fault_scenario=FaultScenario.single_ap_crash(ap=0, at=1.0),
            fault_campaign=self.CAMPAIGN,
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            spec.expand()

    def test_scenario_derivation_is_pure_and_per_grid_point(self):
        campaign = FaultCampaign(**self.CAMPAIGN)
        a = campaign.scenario_for(42, "wgtt", 15.0, "udp", 0, 8)
        b = campaign.scenario_for(42, "wgtt", 15.0, "udp", 0, 8)
        assert a.to_json() == b.to_json()  # pure function of coordinates
        other_seed = campaign.scenario_for(42, "wgtt", 15.0, "udp", 1, 8)
        other_base = campaign.scenario_for(43, "wgtt", 15.0, "udp", 0, 8)
        assert a.to_json() != other_seed.to_json()
        assert a.to_json() != other_base.to_json()

    def test_expansion_attaches_scenarios_per_job(self):
        spec = SweepSpec(modes=("wgtt",), speeds_mph=(15.0,),
                         seeds=(0, 1), n_aps=3,
                         fault_campaign=self.CAMPAIGN, base_seed=42)
        jobs = spec.expand()
        assert all(j.fault_scenario is not None for j in jobs)
        assert jobs[0].fault_scenario != jobs[1].fault_scenario
        assert spec.expand() == jobs  # reproducible, scheduling-proof
        # The campaign draws for the sweep's AP count by default.
        from repro.faults import FaultScenario

        scenario = FaultScenario.from_json(jobs[0].fault_scenario)
        assert all(e.ap < 3 for e in scenario.events
                   if e.kind.startswith("ap_"))

    def test_campaign_identity_flows_into_job_keys(self):
        base = SweepSpec(modes=("wgtt",), speeds_mph=(15.0,), seeds=(0,))
        with_campaign = SweepSpec(modes=("wgtt",), speeds_mph=(15.0,),
                                  seeds=(0,), fault_campaign=self.CAMPAIGN)
        assert base.expand()[0].key() != with_campaign.expand()[0].key()


class TestCityAxis:
    def test_city_is_canonicalised(self):
        from repro.city import CityConfig

        a = JobSpec(city=CityConfig(rows=2, cols=3))
        b = JobSpec(city={"rows": 2, "cols": 3})
        c = JobSpec(city='{"cols":3,"rows":2}')
        assert a.city == b.city == c.city
        assert a == b == c

    def test_city_key_component(self):
        from repro.city import CityConfig

        city = CityConfig(rows=2, cols=2)
        job = JobSpec(city=city)
        assert f"city={city.key_hash()}" in job.key()
        assert JobSpec().key() == job.key().replace(
            f":city={city.key_hash()}", ""
        )

    def test_city_run_kwargs_drop_road_overrides(self):
        job = JobSpec(city='{"cols":2,"rows":2}', n_aps=4)
        kwargs = job.run_kwargs()
        assert kwargs["city"] == job.city
        assert "road" not in kwargs

    def test_city_requires_wgtt_mode(self):
        import pytest

        with pytest.raises(ValueError):
            JobSpec(mode="baseline", city='{"cols":2,"rows":2}')

    def test_sweep_city_applies_to_every_job(self):
        spec = SweepSpec(modes=("wgtt",), speeds_mph=(15.0,),
                         seeds=(0, 1), city={"rows": 2, "cols": 2})
        jobs = spec.expand()
        assert len(jobs) == 2
        assert len({j.city for j in jobs}) == 1
        assert jobs[0].city is not None
