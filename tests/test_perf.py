"""Unit tests for the perf observability registry."""

import time

from repro.perf import PERF, PerfRegistry, perf_reset, perf_snapshot


def test_count_accumulates():
    reg = PerfRegistry()
    reg.count("a")
    reg.count("a", 5)
    assert reg.get("a") == 6
    assert reg.get("missing") == 0


def test_timer_accumulates_time_and_calls():
    reg = PerfRegistry()
    for _ in range(3):
        with reg.timer("work"):
            time.sleep(0.001)
    assert reg.timer_calls["work"] == 3
    assert reg.timers_s["work"] >= 0.003


def test_timer_records_on_exception():
    reg = PerfRegistry()
    try:
        with reg.timer("boom"):
            raise RuntimeError("expected")
    except RuntimeError:
        pass
    assert reg.timer_calls["boom"] == 1


def test_add_time():
    reg = PerfRegistry()
    reg.add_time("worker", 1.5, calls=4)
    reg.add_time("worker", 0.5)
    assert reg.timers_s["worker"] == 2.0
    assert reg.timer_calls["worker"] == 5


def test_reset_clears_everything():
    reg = PerfRegistry()
    reg.count("a")
    with reg.timer("t"):
        pass
    reg.reset()
    assert reg.counters == {}
    assert reg.timers_s == {}
    assert reg.timer_calls == {}


def test_snapshot_is_a_copy():
    reg = PerfRegistry()
    reg.count("a", 2)
    snap = reg.snapshot()
    reg.count("a", 10)
    assert snap["counters"]["a"] == 2
    assert set(snap) == {"counters", "timers_s", "timer_calls"}


def test_hit_rate():
    reg = PerfRegistry()
    assert reg.hit_rate("h", "m") is None
    reg.count("h", 3)
    reg.count("m", 1)
    assert reg.hit_rate("h", "m") == 0.75


def test_report_mentions_counters_timers_and_rates():
    reg = PerfRegistry()
    reg.count("link.memo_hits", 9)
    reg.count("link.memo_misses", 1)
    with reg.timer("drive.run"):
        pass
    text = reg.report(title="unit")
    assert "unit" in text
    assert "link.memo_hits" in text
    assert "drive.run" in text
    assert "90.0%" in text


def test_global_registry_helpers():
    snap_before = perf_snapshot()
    assert isinstance(snap_before, dict)
    PERF.count("test.perf_module_probe")
    assert perf_snapshot()["counters"]["test.perf_module_probe"] >= 1
    # Do NOT call perf_reset() here unconditionally -- other tests rely on
    # live counters only within a single test, but wiping the global
    # registry mid-session is exactly what the CLI --profile path does.
    perf_reset()
    assert PERF.get("test.perf_module_probe") == 0
