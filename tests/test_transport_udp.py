"""Unit tests for UDP CBR flows."""

import pytest

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.transport.udp import UdpReceiver, UdpSender


def make_pair(rate_mbps=10.0):
    sim = Simulator()
    receiver = UdpReceiver(sim, flow_id=1)
    sender = UdpSender(
        sim, lambda p: receiver.on_packet(p, sim.now),
        src=1, dst=2, flow_id=1, rate_mbps=rate_mbps,
    )
    return sim, sender, receiver


def test_rate_is_respected():
    sim, sender, receiver = make_pair(rate_mbps=10.0)
    sender.start()
    sim.run(until=2.0)
    assert receiver.throughput_mbps(2.0) == pytest.approx(10.0, rel=0.05)


def test_sequence_numbers_consecutive():
    sim, sender, receiver = make_pair()
    sender.start()
    sim.run(until=0.1)
    seqs = [s for _, s in receiver.deliveries]
    assert seqs == list(range(len(seqs)))


def test_duplicates_filtered():
    sim, sender, receiver = make_pair()
    p = Packet(size_bytes=1476, src=1, dst=2, flow_id=1, seq=0)
    receiver.on_packet(p, 0.0)
    receiver.on_packet(p, 0.1)
    assert receiver.packets_received == 1
    assert receiver.duplicates == 1


def test_other_flow_ignored():
    sim, sender, receiver = make_pair()
    other = Packet(size_bytes=100, src=1, dst=2, flow_id=99, seq=0)
    receiver.on_packet(other, 0.0)
    assert receiver.packets_received == 0


def test_loss_rate():
    _sim, _sender, receiver = make_pair()
    for seq in (0, 2, 4):
        receiver.on_packet(Packet(size_bytes=1476, src=1, dst=2, flow_id=1, seq=seq), 0.0)
    assert receiver.loss_rate(6) == pytest.approx(0.5)


def test_stop_halts_emission():
    sim, sender, receiver = make_pair()
    sender.start()
    sim.schedule(0.5, sender.stop)
    sim.run(until=2.0)
    assert receiver.throughput_mbps(2.0) < 6.0


def test_until_bound():
    sim, sender, receiver = make_pair()
    sender.start(until=0.5)
    sim.run(until=2.0)
    assert all(t <= 0.6 for t, _ in receiver.deliveries)


def test_double_start_rejected():
    _sim, sender, _receiver = make_pair()
    sender.start()
    with pytest.raises(RuntimeError):
        sender.start()


def test_invalid_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        UdpSender(sim, lambda p: None, 1, 2, 1, rate_mbps=0.0)


def test_on_payload_callback():
    sim = Simulator()
    seen = []
    receiver = UdpReceiver(sim, flow_id=1, on_payload=lambda p, t: seen.append(p.seq))
    receiver.on_packet(Packet(size_bytes=100, src=1, dst=2, flow_id=1, seq=7), 0.0)
    assert seen == [7]
