"""Equivalence tests for the vectorized PHY fast path.

The fast path (stacked fading kernels, LUT BER inversion, link-level
memoization) is only admissible because it is *bit-identical* to the
scalar reference implementation.  These tests lock that in:

* vectorized tap/subcarrier kernels == the per-tap scalar reference,
  exactly, across seeds, Doppler spreads, Rician K and timestamps;
* LUT ``invert_ber`` == bisection, exactly (and therefore trivially
  within ``tol_db``), across all constellations;
* batched ESNR == scalar ESNR, exactly;
* memoized links return bit-identical values to unmemoized links;
* a default drive reproduces the pre-PR golden delivery/trace digests.
"""

import json
import os

import numpy as np
import pytest

from repro.phy.channel import Link, RadioParams
from repro.phy.antenna import ParabolicAntenna
from repro.phy.esnr import (
    BerInversionTable,
    effective_snr_db,
    effective_snr_db_batch,
    invert_ber,
    invert_ber_batch,
    invert_ber_bisect,
)
from repro.phy.fading import (
    TappedDelayChannel,
    ht20_subcarrier_freqs,
    steering_matrix,
)
from repro.phy.modulation import BER_FUNCTIONS, Constellation, db_to_linear

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "drive_digests.json")

SEEDS = (0, 1, 7, 42, 1234)
DOPPLERS = (0.0, 11.0, 92.0, 310.0)
TIMESTAMPS = np.concatenate(
    [np.linspace(-2.0, 40.0, 101), [0.0, 1e-9, 1e-3, 123.456, 9876.5]]
)


def _reference_tap_gains(channel, t):
    """The pre-PR scalar path: a Python loop over RayleighTap.gain."""
    return np.array([tap.gain(float(t)) for tap in channel.taps], dtype=complex)


class TestVectorizedFadingKernels:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("doppler", DOPPLERS)
    def test_tap_gains_exact(self, seed, doppler):
        ch = TappedDelayChannel(np.random.default_rng(seed), doppler, rician_k=4.0)
        for t in TIMESTAMPS[::7]:
            ref = _reference_tap_gains(ch, t)
            assert np.array_equal(ch.tap_gains(float(t)), ref)
        batch = ch.tap_gains_at(TIMESTAMPS)
        ref = np.stack([_reference_tap_gains(ch, t) for t in TIMESTAMPS])
        assert np.array_equal(batch, ref)

    @pytest.mark.parametrize("rician_k", (0.0, 4.0, 12.0))
    def test_tap_gains_exact_rician(self, rician_k):
        ch = TappedDelayChannel(
            np.random.default_rng(3), 92.0, rician_k=rician_k
        )
        batch = ch.tap_gains_at(TIMESTAMPS)
        ref = np.stack([_reference_tap_gains(ch, t) for t in TIMESTAMPS])
        assert np.array_equal(batch, ref)

    def test_subcarrier_gains_exact(self):
        for seed in SEEDS:
            ch = TappedDelayChannel(np.random.default_rng(seed), 92.0, rician_k=4.0)
            ref = np.stack(
                [ch._steering @ _reference_tap_gains(ch, t) for t in TIMESTAMPS]
            )
            scalar = np.stack([ch.subcarrier_gains(float(t)) for t in TIMESTAMPS])
            batch = ch.subcarrier_gains_at(TIMESTAMPS)
            assert np.array_equal(scalar, ref)
            assert np.array_equal(batch, ref)

    def test_flat_gains_exact(self):
        ch = TappedDelayChannel(np.random.default_rng(5), 92.0, rician_k=4.0)
        ref = np.array(
            [complex(np.sum(_reference_tap_gains(ch, t))) for t in TIMESTAMPS]
        )
        assert np.array_equal(ch.flat_gains_at(TIMESTAMPS), ref)
        assert ch.flat_gain(1.25) == complex(np.sum(_reference_tap_gains(ch, 1.25)))

    def test_chunked_batch_matches_unchunked(self):
        ch = TappedDelayChannel(np.random.default_rng(0), 92.0, rician_k=4.0)
        small = TappedDelayChannel(np.random.default_rng(0), 92.0, rician_k=4.0)
        small.BATCH_CHUNK = 13  # force many partial chunks
        ts = np.linspace(0.0, 5.0, 1001)
        assert np.array_equal(ch.tap_gains_at(ts), small.tap_gains_at(ts))

    def test_batch_rejects_2d_input(self):
        ch = TappedDelayChannel(np.random.default_rng(0), 92.0)
        with pytest.raises(ValueError):
            ch.tap_gains_at(np.zeros((2, 2)))


class TestSharedPrecomputation:
    def test_ht20_freqs_memoized_and_readonly(self):
        a = ht20_subcarrier_freqs()
        b = ht20_subcarrier_freqs()
        assert a is b
        assert not a.flags.writeable

    def test_steering_matrix_shared_across_channels(self):
        ch1 = TappedDelayChannel(np.random.default_rng(1), 92.0)
        ch2 = TappedDelayChannel(np.random.default_rng(2), 45.0)
        assert ch1._steering is ch2._steering
        assert not ch1._steering.flags.writeable

    def test_steering_matrix_values(self):
        freqs = ht20_subcarrier_freqs()
        delays = np.array([0.0, 50e-9])
        m = steering_matrix(freqs, delays)
        expected = np.exp(-2j * np.pi * np.outer(freqs, delays))
        assert np.array_equal(m, expected)
        assert steering_matrix(freqs, delays) is m


class TestLutInversion:
    @pytest.mark.parametrize("constellation", Constellation.ALL)
    def test_lut_matches_bisection_exactly(self, constellation):
        fn = BER_FUNCTIONS[constellation]
        rng = np.random.default_rng(0)
        snrs = rng.uniform(-20.0, 60.0, 4000)
        targets = np.asarray(fn(db_to_linear(snrs)), dtype=float)
        # Include exact clamp edges and grid-boundary BERs.
        targets = np.concatenate([
            targets, [0.0, 0.5, 1.0, 1e-300],
            np.asarray(fn(db_to_linear(np.array([-15.0, 55.0, 0.0, 20.0]))),
                       dtype=float),
        ])
        ref = np.array([invert_ber_bisect(float(tb), constellation)
                        for tb in targets])
        lut = np.array([invert_ber(float(tb), constellation) for tb in targets])
        batch = invert_ber_batch(targets, constellation)
        assert np.array_equal(lut, ref)
        assert np.array_equal(batch, ref)
        # The acceptance bound -- trivially implied by exact equality.
        assert np.max(np.abs(lut - ref)) <= 0.01

    def test_lut_non_default_tolerance(self):
        for tol in (0.1, 0.005):
            assert invert_ber(1e-3, Constellation.QAM64, tol_db=tol) == \
                invert_ber_bisect(1e-3, Constellation.QAM64, tol_db=tol)

    def test_lut_table_depth(self):
        table = BerInversionTable(Constellation.QAM64, tol_db=0.01)
        # 70 dB span / 2**13 <= 0.01 dB, the bisection iteration count.
        assert table.depth == 13
        assert len(table.boundaries) == 2 ** 13 + 1

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            invert_ber(1e-3, Constellation.QAM64, method="newton")

    def test_invalid_tol_rejected(self):
        with pytest.raises(ValueError):
            BerInversionTable(Constellation.QAM64, tol_db=0.0)


class TestBatchedEsnr:
    def test_batch_matches_scalar_exactly(self):
        rng = np.random.default_rng(1)
        snr2d = rng.uniform(-20.0, 45.0, size=(300, 56))
        for constellation in Constellation.ALL:
            ref = np.array(
                [effective_snr_db(row, constellation) for row in snr2d]
            )
            assert np.array_equal(
                effective_snr_db_batch(snr2d, constellation), ref
            )

    def test_batch_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            effective_snr_db_batch(np.zeros(56))
        with pytest.raises(ValueError):
            effective_snr_db_batch(np.zeros((3, 0)))


def _make_link(seed=0, memoize=True):
    position = (0.0, -8.0, 10.0)
    antenna = ParabolicAntenna.aimed_at(position, (0.0, 3.75, 1.5))
    return Link(
        ap_position=position,
        ap_antenna=antenna,
        client_position_fn=lambda t: (-20.0 + 10.0 * t, 2.0, 1.5),
        speed_mps=10.0,
        rng=np.random.default_rng(seed),
        params=RadioParams(),
        memoize=memoize,
    )


class TestLinkMemoizationAndBatch:
    def test_memoized_equals_unmemoized(self):
        a = _make_link(seed=3, memoize=True)
        b = _make_link(seed=3, memoize=False)
        for t in (0.0, 0.5, 1.0, 1.23456789):
            for uplink in (False, True):
                assert a.esnr_db(t, uplink=uplink) == b.esnr_db(t, uplink=uplink)
                assert a.mean_snr_db(t, uplink=uplink) == b.mean_snr_db(t, uplink=uplink)
                assert a.rssi_db(t, uplink=uplink) == b.rssi_db(t, uplink=uplink)
            assert np.array_equal(a.csi(t), b.csi(t))

    def test_repeated_query_served_from_memo(self):
        from repro.perf import PERF

        link = _make_link(seed=4)
        link.esnr_db(1.0)
        before = PERF.get("link.memo_hits")
        v1 = link.esnr_db(1.0)
        v2 = link.esnr_db(1.0)
        assert v1 == v2
        assert PERF.get("link.memo_hits") >= before + 2

    def test_memo_invalidated_on_new_timestamp(self):
        link = _make_link(seed=5)
        v1 = link.esnr_db(1.0)
        link.esnr_db(2.0)  # new timestamp flushes the memo
        assert link.esnr_db(1.0) == v1  # recomputed, still bit-identical

    def test_interleaved_quantities_same_timestamp(self):
        """The motivating pattern: CSI + ESNR + mean SNR for one frame."""
        link = _make_link(seed=6)
        ref = _make_link(seed=6, memoize=False)
        t = 0.777
        reading = link.measure_csi(t, ap_id=1, client_id=100)
        esnr = link.esnr_db(t, uplink=True)
        from repro.phy.mcs import MCS_TABLE

        p = link.mpdu_success_probability(t, MCS_TABLE[4], uplink=True)
        ref_reading = ref.measure_csi(t, ap_id=1, client_id=100)
        assert np.array_equal(reading.csi, ref_reading.csi)
        assert reading.mean_snr_db == ref_reading.mean_snr_db
        assert esnr == ref.esnr_db(t, uplink=True)
        assert 0.0 <= p <= 1.0

    def test_esnr_batch_matches_scalar(self):
        link = _make_link(seed=7)
        ts = np.linspace(0.0, 4.0, 101)
        for uplink in (False, True):
            batch = link.esnr_db_at(ts, uplink=uplink)
            ref = np.array(
                [link.esnr_db(float(t), uplink=uplink) for t in ts]
            )
            assert np.array_equal(batch, ref)

    def test_subcarrier_snr_batch_matches_scalar(self):
        link = _make_link(seed=8)
        ts = np.linspace(0.0, 2.0, 41)
        batch = link.subcarrier_snr_db_at(ts)
        ref = np.stack([link.subcarrier_snr_db(float(t)) for t in ts])
        assert np.array_equal(batch, ref)

    def test_capacity_batch_matches_scalar_closely(self):
        # np.exp vs math.exp can differ in the last ulp, so this one is
        # tolerance-based (the ESNR feeding it is exact; see docstring).
        link = _make_link(seed=9)
        ts = np.linspace(0.0, 4.0, 101)
        batch = link.capacity_mbps_at(ts)
        ref = np.array([link.capacity_mbps(float(t)) for t in ts])
        np.testing.assert_allclose(batch, ref, rtol=1e-12, atol=1e-9)


class TestGoldenDriveDigests:
    """A default drive must be bit-identical to the pre-PR scalar stack."""

    @pytest.mark.parametrize("name", ("baseline_tcp", "default_tcp"))
    def test_drive_digest_matches_golden(self, name):
        from repro.experiments import runners
        from repro.experiments.digest import drive_digests

        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        entry = golden[name]
        # Flow ids are allocated from a module-global counter; pin it so
        # the digest does not depend on what ran earlier in the session.
        saved = runners._next_flow_id[0]
        try:
            runners._next_flow_id[0] = 1
            result = runners.run_single_drive(**entry["kwargs"])
        finally:
            runners._next_flow_id[0] = saved
        got = drive_digests(result)
        for key in ("deliveries", "trace", "n_deliveries", "n_trace_records",
                    "throughput_hex", "events_fired"):
            assert got[key] == entry[key], f"{name}: {key} diverged from pre-PR"
