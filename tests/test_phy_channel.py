"""Unit tests for the composite Link channel."""

import numpy as np
import pytest

from repro.phy.antenna import ParabolicAntenna
from repro.phy.channel import Link, RadioParams


def make_link(seed=0, speed=6.7, params=None):
    position = (0.0, -8.0, 10.0)
    antenna = ParabolicAntenna.aimed_at(position, (0.0, 3.75, 1.5))
    return Link(
        ap_position=position,
        ap_antenna=antenna,
        client_position_fn=lambda t: (speed * t - 20.0, 2.0, 1.5),
        speed_mps=speed,
        rng=np.random.default_rng(seed),
        params=params,
    )


def test_distance_positive_and_changes_with_time():
    link = make_link()
    assert link.distance_m(0.0) > 0
    assert link.distance_m(0.0) != link.distance_m(2.0)


def test_mean_snr_peaks_near_boresight():
    link = make_link()
    t_bore = 20.0 / 6.7  # x == 0
    snr_bore = link.mean_snr_db(t_bore)
    snr_far = link.mean_snr_db(t_bore + 10.0 / 6.7)
    assert snr_bore > snr_far + 10.0


def test_boresight_snr_in_calibrated_range():
    link = make_link()
    snr = link.mean_snr_db(20.0 / 6.7)
    assert 30.0 < snr < 45.0


def test_cell_size_is_meter_scale():
    """The usable cell (mean SNR > 10 dB) spans roughly 8-12 m of road,
    giving 5 m cells with the 6-10 m overlap Fig. 10 reports."""
    link = make_link()
    xs = np.arange(-15.0, 15.1, 0.5)
    usable = [x for x in xs if link.mean_snr_db((x + 20.0) / 6.7) > 10.0]
    width = max(usable) - min(usable)
    assert 6.0 < width < 16.0


def test_uplink_weaker_than_downlink_by_power_difference():
    link = make_link()
    params = link.params
    t = 3.0
    delta = link.mean_snr_db(t) - link.mean_snr_db(t, uplink=True)
    assert delta == pytest.approx(
        params.ap_tx_power_dbm - params.client_tx_power_dbm
    )


def test_csi_has_56_subcarriers_unit_mean_power():
    link = make_link()
    powers = [np.mean(np.abs(link.csi(t)) ** 2) for t in np.linspace(1, 10, 200)]
    assert len(link.csi(0.0)) == 56
    assert np.mean(powers) == pytest.approx(1.0, rel=0.25)


def test_esnr_tracks_mean_snr_on_average():
    link = make_link()
    t_bore = 20.0 / 6.7
    t_edge = t_bore + 9.0 / 6.7
    esnr_bore = np.mean([link.esnr_db(t_bore + dt) for dt in np.linspace(0, 0.2, 20)])
    esnr_edge = np.mean([link.esnr_db(t_edge + dt) for dt in np.linspace(0, 0.2, 20)])
    assert esnr_bore > esnr_edge


def test_rssi_fluctuates_around_mean_snr():
    link = make_link(speed=0.5)  # slow, so mean SNR is ~constant over the window
    t = 1.0
    rssi = [link.rssi_db(t + dt) for dt in np.linspace(0, 4.0, 400)]
    # dB-domain average sits within a few dB of the large-scale mean.
    assert abs(np.mean(rssi) - link.mean_snr_db(t)) < 6.0


def test_capacity_positive_in_cell_zero_far_away():
    link = make_link()
    assert link.capacity_mbps(20.0 / 6.7) > 5.0
    assert link.capacity_mbps(20.0 / 6.7 + 60.0 / 6.7) < 2.0


def test_mpdu_success_probability_bounds():
    from repro.phy.mcs import MCS_TABLE

    link = make_link()
    p = link.mpdu_success_probability(3.0, MCS_TABLE[0])
    assert 0.0 <= p <= 1.0


def test_measure_csi_reading_fields():
    link = make_link()
    reading = link.measure_csi(2.0, ap_id=100, client_id=200)
    assert reading.ap_id == 100
    assert reading.client_id == 200
    assert reading.time == 2.0
    assert reading.n_subcarriers == 56
    assert reading.mean_snr_db == pytest.approx(link.mean_snr_db(2.0, uplink=True))


def test_rician_k_configurable():
    calm = make_link(params=RadioParams(rician_k=50.0), seed=5)
    rough = make_link(params=RadioParams(rician_k=0.0), seed=5)
    t = 20.0 / 6.7
    var_calm = np.var([calm.esnr_db(t + dt) for dt in np.linspace(0, 0.3, 60)])
    var_rough = np.var([rough.esnr_db(t + dt) for dt in np.linspace(0, 0.3, 60)])
    assert var_calm < var_rough
