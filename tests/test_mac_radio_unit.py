"""Focused tests of Radio aggregation/retry logic via a tiny live net."""


from repro.experiments import ExperimentConfig, build_network
from repro.mac.airtime import DEFAULT_TIMING, ampdu_airtime_s
from repro.mobility import RoadLayout, StationaryTrajectory
from repro.net.packet import Packet


def one_ap_net(seed=0):
    net = build_network(ExperimentConfig(mode="wgtt", road=RoadLayout.uniform(1), seed=seed))
    client = net.add_client(StationaryTrajectory(net.road.ap_aim_point(0)))
    return net, client


def feed(net, client, n):
    for seq in range(n):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=1, seq=seq)
        )


def test_aggregate_respects_airtime_cap():
    net, client = one_ap_net()
    net.run(until=0.3)
    feed(net, client, 500)
    net.run(until=1.0)
    for r in net.trace.iter_records("ampdu_tx"):
        if r["uplink"]:
            continue
        from repro.phy.mcs import MCS_TABLE

        airtime = ampdu_airtime_s([1476] * r["n_mpdus"], MCS_TABLE[r["mcs"]])
        assert airtime <= DEFAULT_TIMING.max_ampdu_airtime_s + 1e-9
        assert r["n_mpdus"] <= DEFAULT_TIMING.max_ampdu_frames


def test_mpdus_acked_tracks_deliveries():
    net, client = one_ap_net()
    net.run(until=0.3)
    feed(net, client, 100)
    net.run(until=1.0)
    ap = net.aps[0]
    state = ap.radio.peers[client.node_id]
    assert state.mpdus_acked == client.downlink_received
    assert state.mpdus_sent >= state.mpdus_acked


def test_stop_and_wait_one_exchange_at_a_time():
    """The MAC never has two data aggregates of its own in flight."""
    net, client = one_ap_net()
    net.run(until=0.3)
    feed(net, client, 300)
    net.run(until=1.0)
    # Reconstruct AP transmissions; consecutive starts must be separated
    # by at least the previous frame's airtime (stop-and-wait + BA).
    from repro.phy.mcs import MCS_TABLE

    last_end = 0.0
    for r in net.trace.iter_records("ampdu_tx"):
        if r["uplink"]:
            continue
        start = r.time
        assert start >= last_end - 1e-9
        last_end = start + ampdu_airtime_s([1476] * r["n_mpdus"], MCS_TABLE[r["mcs"]])


def test_flush_retries_counts_drops():
    net, client = one_ap_net()
    ap = net.aps[0]
    state = ap.radio.peer(client.node_id)
    from repro.mac.frames import Mpdu

    for seq in range(5):
        state.retry_queue.append(
            Mpdu(packet=Packet(size_bytes=100, src=1, dst=client.node_id), seq=seq)
        )
    state.scoreboard.record_sent(list(range(5)))
    dropped = ap.radio.flush_retries(client.node_id)
    assert dropped == 5
    assert len(state.retry_queue) == 0
    assert state.scoreboard.in_flight == set()
    assert state.mpdus_dropped == 5


def test_flush_retries_unknown_peer_is_noop():
    net, client = one_ap_net()
    assert net.aps[0].radio.flush_retries(99999) == 0


def test_reset_peer_clears_ba_wait():
    net, client = one_ap_net()
    radio = client.radio
    radio._awaiting_ba = (net.bssid, None)
    radio.reset_peer(net.bssid)
    assert radio._awaiting_ba is None


def test_disabled_radio_does_not_transmit():
    net, client = one_ap_net()
    net.run(until=0.3)
    before = net.medium.data_transmissions
    net.aps[0].radio.enabled = False
    feed(net, client, 50)
    net.run(until=0.8)
    after_dl = [
        r for r in net.trace.iter_records("ampdu_tx")
        if not r["uplink"] and r.time > 0.3
    ]
    assert after_dl == []
