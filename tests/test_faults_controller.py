"""Controller fault events: scenario generation, injection, and recovery.

The end-to-end cases mirror tests/test_faults_endtoend.py (default 8-AP
road, 15 mph, 20 Mb/s UDP) with the controller process as the victim.
"""

import pytest

from repro.experiments.runners import run_single_drive
from repro.faults import FAULT_KINDS, FaultEvent, FaultScenario

CRASH_T = 2.0


def crash_drive(scenario, seed=1, duration_s=5.0, **kw):
    return run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=seed, duration_s=duration_s, fault_scenario=scenario, **kw,
    )


def delivered_bytes(result, t0, t1=float("inf")):
    return sum(b for (t, b) in result.deliveries if t0 < t <= t1)


# ------------------------------------------------------------- scenarios
def test_controller_kinds_registered():
    assert "controller_crash" in FAULT_KINDS
    assert "controller_restart" in FAULT_KINDS
    assert "backhaul_congestion" in FAULT_KINDS


def test_controller_events_need_no_ap_and_roundtrip():
    crash = FaultEvent(kind="controller_crash", time=1.0)
    assert FaultEvent.from_dict(crash.to_dict()) == crash
    restart = FaultEvent(kind="controller_restart", time=2.0)
    assert FaultEvent.from_dict(restart.to_dict()) == restart


def test_restart_without_preceding_crash_rejected():
    with pytest.raises(ValueError, match="no preceding open controller_crash"):
        FaultScenario(events=(
            FaultEvent(kind="controller_restart", time=1.0),
        ))
    # Ordering matters: a restart scheduled before its crash is the same
    # error even though both events exist.
    with pytest.raises(ValueError, match="no preceding open controller_crash"):
        FaultScenario(events=(
            FaultEvent(kind="controller_crash", time=3.0),
            FaultEvent(kind="controller_restart", time=1.0),
        ))


def test_self_timed_crash_leaves_no_open_crash():
    # duration_s schedules the restart implicitly, so a trailing explicit
    # restart has nothing to undo.
    with pytest.raises(ValueError, match="no preceding open controller_crash"):
        FaultScenario(events=(
            FaultEvent(kind="controller_crash", time=1.0, duration_s=0.5),
            FaultEvent(kind="controller_restart", time=3.0),
        ))


def test_crash_restart_pairing_accepted():
    scenario = FaultScenario(events=(
        FaultEvent(kind="controller_crash", time=1.0),
        FaultEvent(kind="controller_restart", time=2.0),
    ))
    assert len(scenario.events) == 2
    assert FaultScenario.from_json(scenario.to_json()) == scenario


def test_single_controller_crash_classmethod():
    bare = FaultScenario.single_controller_crash(at=2.5)
    assert [e.kind for e in bare.events] == ["controller_crash"]
    paired = FaultScenario.single_controller_crash(at=2.5, restart_after_s=1.5)
    assert [e.kind for e in paired.events] == [
        "controller_crash", "controller_restart",
    ]
    assert paired.events[1].time == pytest.approx(4.0)


def test_poisson_controller_rate_zero_is_byte_identical():
    # The controller draws happen after every AP draw, so the pre-existing
    # AP-only scenarios are unchanged when the controller rate stays 0.
    legacy = FaultScenario.poisson_ap_crashes(
        n_aps=8, duration_s=30.0, crash_rate_per_ap_hz=0.05, seed=11,
    )
    explicit = FaultScenario.poisson_ap_crashes(
        n_aps=8, duration_s=30.0, crash_rate_per_ap_hz=0.05, seed=11,
        controller_crash_rate_hz=0.0,
    )
    assert legacy.to_json() == explicit.to_json()


def test_poisson_controller_events_are_seeded_and_valid():
    def gen(seed):
        return FaultScenario.poisson_ap_crashes(
            n_aps=4, duration_s=60.0, crash_rate_per_ap_hz=0.02, seed=seed,
            controller_crash_rate_hz=0.05, controller_mean_downtime_s=1.0,
        )

    a, b, c = gen(5), gen(5), gen(6)
    assert a.to_json() == b.to_json()
    assert a.to_json() != c.to_json()
    kinds = [e.kind for e in a.events]
    assert "controller_crash" in kinds
    # Construction itself proves restart ordering validity; crashes never
    # outnumber their restarts by more than the one open tail crash.
    crashes = kinds.count("controller_crash")
    restarts = kinds.count("controller_restart")
    assert crashes - restarts in (0, 1)


def test_poisson_negative_controller_rate_rejected():
    with pytest.raises(ValueError):
        FaultScenario.poisson_ap_crashes(
            n_aps=4, duration_s=10.0, crash_rate_per_ap_hz=0.1,
            controller_crash_rate_hz=-1.0,
        )


# ------------------------------------------------------------ end-to-end
def test_controller_crash_without_ha_starves_client():
    result = crash_drive(FaultScenario.single_controller_crash(at=CRASH_T))
    net = result.net
    assert not net.controller.alive
    assert net.trace.count("fault_controller_crash") == 1
    assert net.controller.downlink_dropped_dead > 0
    pre = delivered_bytes(result, CRASH_T - 1.0, CRASH_T)
    post = delivered_bytes(result, CRASH_T + 1.0)
    # Ring backlog drains briefly, then the downlink is dead: the client
    # receives (much) less in the 2 s after the crash than in the 1 s
    # before it.
    assert post < 0.5 * pre


def test_controller_cold_restart_resumes_service():
    result = crash_drive(
        FaultScenario.single_controller_crash(at=CRASH_T, restart_after_s=1.0)
    )
    net = result.net
    assert net.controller.alive
    assert net.controller.epoch == 1
    assert net.trace.count("fault_controller_restart") == 1
    assert delivered_bytes(result, CRASH_T + 1.5) > 0


def test_ap_restart_announces_and_is_not_re_evicted():
    """A rebooted AP re-registers via ApHello instead of waiting out (or
    being churned by) the controller's liveness sweep."""
    crash_ap, crash_t, downtime = 3, 5.3, 0.5
    result = run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=0,
        fault_scenario=FaultScenario.single_ap_crash(
            ap=crash_ap, at=crash_t, restart_after_s=downtime,
        ),
    )
    net = result.net
    ap_id = net.aps[crash_ap].node_id
    restart_t = crash_t + downtime
    readmits = [r.time for r in net.trace.records("ap_readmitted")
                if r["ap"] == ap_id and r.time >= restart_t]
    assert readmits, "restarted AP was never readmitted"
    # Readmission rides the ApHello announcement (a backhaul RTT), not a
    # later CSI report that happens to get through.
    assert readmits[0] - restart_t < 0.05
    # And the readmitted AP is not instantly re-evicted by the liveness
    # sweep reading its pre-crash last-seen time.  (Evictions much later
    # are legitimate: the client drives out of the AP's uplink range.)
    evictions_after = [r.time for r in net.trace.records("ap_evicted")
                       if r["ap"] == ap_id
                       and readmits[0] < r.time < readmits[0] + 0.5]
    assert not evictions_after


def test_partition_healing_mid_switch_triggers_retransmit():
    """A backhaul partition that swallows a stop(c) and heals before the
    ack timeout: the controller retransmits and the switch completes."""
    clean = crash_drive(None, seed=0)
    picks = [r for r in clean.trace.records("switch_initiated")
             if r["old"] is not None and 1.0 < r.time < 4.0]
    assert picks, "no mid-drive switch to disturb"
    t_switch = picks[0].time
    # The window opens after the triggering CSI report is in flight (it
    # is sent a backhaul latency ~0.3 ms before the switch decision) but
    # before the controller's stop(c) leaves, and closes between the
    # (lost) stop and the 30 ms-later retransmission: the partition heals
    # mid-switch.
    window = FaultEvent(kind="partition", time=t_switch - 1e-4,
                        duration_s=0.015)
    # liveness_timeout_s=None keeps controller params identical to the
    # clean run, so the drive replays deterministically up to the window.
    faulted = crash_drive(
        FaultScenario(events=(window,), liveness_timeout_s=None),
        seed=0, check_invariants=True,
    )
    net = faulted.net
    retransmits = [t for t in net.trace.times("switch_retransmit")
                   if t_switch < t < t_switch + 0.1]
    assert retransmits, "lost stop(c) never retransmitted"
    # The rerouted handshake completes shortly after the partition heals.
    completions = [t for t in net.trace.times("ap_switch")
                   if retransmits[0] <= t < t_switch + 0.2]
    assert completions, "switch never completed after the partition healed"
    assert net.invariants.ok, net.invariants.report()
    assert delivered_bytes(faulted, t_switch + 0.2) > 0


def test_resilience_counters_cover_fault_runs():
    result = crash_drive(FaultScenario.single_controller_crash(at=CRASH_T))
    counters = result.net.resilience_counters()
    assert counters["fault_events_applied"] == 1
    assert counters["downlink_dropped_dead"] > 0
    summary = result.summarize(mode="wgtt", seed=1)
    assert summary.resilience == counters
