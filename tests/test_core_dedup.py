"""Unit and property tests for uplink de-duplication."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dedup import Deduplicator
from repro.net.packet import Packet


def pkt(src=200, ip_id=1):
    return Packet(size_bytes=100, src=src, dst=1, ip_id=ip_id)


def test_first_copy_accepted_second_rejected():
    d = Deduplicator()
    p = pkt()
    assert d.accept(p)
    assert not d.accept(p)
    assert d.accepted == 1
    assert d.duplicates == 1


def test_different_ip_ids_both_accepted():
    d = Deduplicator()
    assert d.accept(pkt(ip_id=1))
    assert d.accept(pkt(ip_id=2))


def test_different_sources_same_ip_id_both_accepted():
    d = Deduplicator()
    assert d.accept(pkt(src=200, ip_id=9))
    assert d.accept(pkt(src=201, ip_id=9))


def test_eviction_bounds_memory():
    d = Deduplicator(capacity=10)
    for i in range(25):
        d.accept(pkt(ip_id=i))
    assert len(d) <= 10
    # The oldest key has been evicted: a re-send is (wrongly but boundedly)
    # accepted again, which is the documented trade-off.
    assert d.accept(pkt(ip_id=0))


def test_duplicate_fraction():
    d = Deduplicator()
    p = pkt()
    d.accept(p)
    d.accept(p)
    d.accept(p)
    assert d.duplicate_fraction == pytest.approx(2 / 3)


def test_duplicate_fraction_empty():
    assert Deduplicator().duplicate_fraction == 0.0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Deduplicator(capacity=0)


@given(
    st.lists(
        st.tuples(st.integers(200, 203), st.integers(0, 50)),
        max_size=200,
    )
)
def test_property_exactly_one_copy_survives(sends):
    """Property: per (src, ip_id) pair, exactly the first copy passes."""
    d = Deduplicator(capacity=10_000)
    passed = []
    for src, ip_id in sends:
        if d.accept(pkt(src=src, ip_id=ip_id)):
            passed.append((src, ip_id))
    assert len(passed) == len(set(passed))
    assert set(passed) == set(sends)
