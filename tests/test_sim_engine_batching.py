"""Tests for the batched hot-loop engine surface added by the perf PR:

- ``schedule_batch`` / ``schedule_batch_at`` coalescing and accounting,
- ``PeriodicGroup`` pooled cadences,
- ``PeriodicTask`` edge cases (jitter+until, stop() inside the callback,
  re-arming across externally advanced clocks),
- the EventHandle freelist (no resurrection of caller-held handles),
- O(1) ``pending_events`` and lazy heap purging under mass cancellation.
"""

import pytest

from repro.sim.engine import (
    SimulationError,
    Simulator,
)
import repro.sim.engine as engine_mod


# ---------------------------------------------------------------- batching


def test_schedule_batch_coalesces_same_key_and_instant():
    sim = Simulator()
    fired = []
    sim.schedule_batch(1.0, fired.append, "a", key="k")
    sim.schedule_batch(1.0, fired.append, "b", key="k")
    # One heap event carries both callbacks.
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 1.0


def test_schedule_batch_counts_one_event_per_callback():
    # Accounting must be identical whether or not the work was batched.
    plain = Simulator()
    for _ in range(5):
        plain.schedule(1.0, lambda: None)
    plain.run()

    batched = Simulator()
    for _ in range(5):
        batched.schedule_batch(1.0, lambda: None, key="k")
    batched.run()

    assert plain.events_fired == batched.events_fired == 5


def test_schedule_batch_different_keys_do_not_coalesce():
    sim = Simulator()
    sim.schedule_batch(1.0, lambda: None, key="k1")
    sim.schedule_batch(1.0, lambda: None, key="k2")
    assert sim.pending_events == 2


def test_schedule_batch_different_instants_do_not_coalesce():
    sim = Simulator()
    sim.schedule_batch(1.0, lambda: None, key="k")
    sim.schedule_batch(2.0, lambda: None, key="k")
    assert sim.pending_events == 2


def test_schedule_batch_at_coalesces_with_delay_form():
    # schedule_batch(delay) delegates to schedule_batch_at(now + delay);
    # at now == 0 the instants are float-identical and must share a batch.
    sim = Simulator()
    fired = []
    sim.schedule_batch(0.25, fired.append, 1, key="k")
    sim.schedule_batch_at(0.25, fired.append, 2, key="k")
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 2]


def test_batch_entry_cancel_removes_only_that_callback():
    sim = Simulator()
    fired = []
    entry = sim.schedule_batch(1.0, fired.append, "a", key="k")
    sim.schedule_batch(1.0, fired.append, "b", key="k")
    entry.cancel()
    entry.cancel()  # idempotent
    assert not entry.pending
    sim.run()
    assert fired == ["b"]
    assert sim.events_fired == 1


def test_all_cancelled_batch_counts_zero_events():
    sim = Simulator()
    e1 = sim.schedule_batch(1.0, lambda: None, key="k")
    e2 = sim.schedule_batch(1.0, lambda: None, key="k")
    e1.cancel()
    e2.cancel()
    sim.run()
    assert sim.events_fired == 0


def test_batch_callbacks_fire_in_registration_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule_batch(0.5, order.append, i, key=None)
    sim.run()
    assert order == list(range(10))


def test_batch_key_reusable_after_fire():
    # Scheduling on the same (key, instant) after the batch fired must
    # open a fresh batch, not resurrect the consumed one.
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule_batch_at(sim.now, fired.append, "second", key="k")

    sim.schedule_batch_at(1.0, first, key="k")
    sim.run()
    assert fired == ["first", "second"]


def test_schedule_batch_rejects_past_and_non_callable():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_batch(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_batch_at(0.0, lambda: None)
    with pytest.raises(TypeError):
        sim.schedule_batch(1.0, "not callable")


# ---------------------------------------------------------- periodic groups


def test_periodic_group_one_heap_event_many_members():
    sim = Simulator()
    fired = []
    group = sim.periodic_group(1.0, key="g")
    for i in range(3):
        group.add(fired.append, i)
    assert sim.pending_events == 1  # one tick event regardless of members
    sim.run(until=1.0)
    assert fired == [0, 1, 2]


def test_periodic_group_counts_one_event_per_member():
    sim = Simulator()
    group = sim.periodic_group(1.0)
    for _ in range(4):
        group.add(lambda: None)
    sim.run(until=2.5)  # two ticks
    assert sim.events_fired == 8


def test_periodic_group_key_reuse_returns_same_group():
    sim = Simulator()
    g1 = sim.periodic_group(1.0, key="shared")
    g2 = sim.periodic_group(1.0, key="shared")
    assert g1 is g2
    # A different interval under the same key is a different cadence.
    g3 = sim.periodic_group(2.0, key="shared")
    assert g3 is not g1


def test_periodic_group_fresh_after_stop():
    sim = Simulator()
    g1 = sim.periodic_group(1.0, key="k")
    g1.stop()
    g2 = sim.periodic_group(1.0, key="k")
    assert g2 is not g1
    with pytest.raises(SimulationError):
        g1.add(lambda: None)


def test_periodic_group_member_stops_itself_mid_tick():
    sim = Simulator()
    fired = []
    group = sim.periodic_group(1.0)
    holder = {}

    def once():
        fired.append("once")
        holder["member"].stop()

    holder["member"] = group.add(once)
    group.add(fired.append, "steady")
    sim.run(until=2.5)
    # The self-stopping member ran a single tick; the other kept going.
    assert fired == ["once", "steady", "steady"]
    assert group.size == 1


def test_periodic_group_until_expires():
    sim = Simulator()
    fired = []
    group = sim.periodic_group(1.0, key="u", until=2.5)
    group.add(lambda: fired.append(sim.now))
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert group.stopped


def test_periodic_group_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.periodic_group(0.0)
    with pytest.raises(SimulationError):
        sim.periodic_group(float("inf"))


# ------------------------------------------------------- PeriodicTask edges


class _FixedRng:
    def __init__(self, value):
        self.value = value
        self.calls = 0

    def uniform(self, lo, hi):
        self.calls += 1
        return self.value


def test_periodic_task_jitter_combines_with_until():
    sim = Simulator()
    fired = []
    rng = _FixedRng(0.4)
    task = sim.call_every(1.0, lambda: fired.append(sim.now), jitter=0.5,
                          rng=rng, until=2.0)
    sim.run(until=10.0)
    # First firing at 1.4; the re-arm would land at 2.8 > until, so the
    # task stops after exactly one firing.
    assert fired == [1.4]
    assert task.stopped
    assert rng.calls == 2  # one draw per arm attempt, including the last


def test_periodic_task_jitter_without_rng_is_ignored():
    sim = Simulator()
    fired = []
    sim.call_every(1.0, lambda: fired.append(sim.now), jitter=0.5)
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]


def test_periodic_task_stop_inside_own_callback():
    sim = Simulator()
    fired = []
    holder = {}

    def cb():
        fired.append(sim.now)
        holder["task"].stop()

    holder["task"] = sim.call_every(1.0, cb)
    sim.run(until=5.0)
    assert fired == [1.0]
    assert holder["task"].stopped
    assert sim.pending_events == 0


def test_periodic_task_rearms_across_externally_advanced_clock():
    # run(until=...) advances the clock even when no event fires there;
    # the task's cadence must stay anchored to its firing times.
    sim = Simulator()
    fired = []
    sim.call_every(1.0, lambda: fired.append(sim.now))
    sim.run(until=0.5)  # clock moves to 0.5 with no firing
    assert fired == []
    sim.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_task_stop_before_first_fire():
    sim = Simulator()
    fired = []
    task = sim.call_every(1.0, fired.append, "x")
    task.stop()
    sim.run(until=5.0)
    assert fired == []
    assert sim.pending_events == 0


# -------------------------------------------------------- handle freelist


def test_caller_held_handle_is_never_recycled():
    sim = Simulator()
    held = sim.schedule(1.0, lambda: None)
    sim.run()
    # We still reference `held`, so the engine must not have pooled it.
    assert all(f is not held for f in sim._free)
    fresh = [sim.schedule(1.0, lambda: None) for _ in range(32)]
    assert all(h is not held for h in fresh)


def test_stale_cancel_after_fire_is_inert():
    sim = Simulator()
    held = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    pending_before = sim.pending_events
    held.cancel()  # stale: already fired
    held.cancel()
    assert sim.pending_events == pending_before  # no counter corruption
    sim.run()
    assert sim.events_fired == 2


def test_unreferenced_fired_handle_is_pooled_and_reused():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)  # return value dropped immediately
    sim.run()
    pooled = list(sim._free)
    assert pooled  # the engine held the last reference, so it recycled
    reused = sim.schedule(1.0, lambda: None)
    assert any(reused is h for h in pooled)
    assert reused.pending


def test_recycled_handle_state_is_reset():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "first")
    sim.run()
    h = sim.schedule(1.0, fired.append, "second")
    assert h.pending and not h.cancelled
    sim.run()
    assert fired == ["first", "second"]


def test_cancelled_unreferenced_handle_recycled_from_run_loop():
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    # The cancelled entry was popped dead and pooled (we dropped our ref).
    assert sim._free
    assert sim.events_fired == 1


# ------------------------------------- pending_events / lazy heap purging


def test_pending_events_tracks_schedule_cancel_fire():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    handles[0].cancel()
    handles[1].cancel()
    assert sim.pending_events == 8
    handles[1].cancel()  # double-cancel must not double-count
    assert sim.pending_events == 8
    sim.run(until=5.0)  # fires events at t=3,4,5 (1,2 were cancelled)
    assert sim.pending_events == 5


def test_pending_events_excludes_dead_heap_entries():
    # The counter is maintained incrementally: it must be right even
    # while cancelled entries still sit in the heap awaiting lazy purge.
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles[:4]:
        h.cancel()
    assert len(sim._heap) == 10  # below purge threshold: garbage retained
    assert sim.pending_events == 6


def test_mass_cancellation_triggers_lazy_purge():
    sim = Simulator()
    n = 200
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
    # Cancel until dead entries outnumber live ones: the purge must fire
    # and rebuild the heap with only live entries.
    for h in handles[: n - 20]:
        h.cancel()
    assert sim.pending_events == 20
    # Purges fired along the way: the heap must have shrunk well below n,
    # and the steady-state invariant holds -- dead entries never exceed
    # half the heap unless the heap is already below the purge minimum.
    heap_len = len(sim._heap)
    dead = heap_len - sim.pending_events
    assert heap_len < n // 2
    assert dead * 2 <= heap_len or heap_len < engine_mod._PURGE_MIN_HEAP
    sim.run()
    assert sim.events_fired == 20


def test_purge_preserves_firing_order():
    # Cancelling 80 of 100 events forces at least one in-place purge;
    # the survivors must still fire in exact (time, seq) order.
    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i + 1), fired.append, i) for i in range(100)]
    for i, h in enumerate(handles):
        if i % 5 != 0:
            h.cancel()
    sim.run()
    assert fired == [i for i in range(100) if i % 5 == 0]


def test_small_heaps_skip_the_purge():
    # Below _PURGE_MIN_HEAP the garbage is cheaper to drain lazily.
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles[:9]:
        h.cancel()
    assert len(sim._heap) == 10
    assert sim.pending_events == 1
    assert engine_mod._PURGE_MIN_HEAP > 10  # guards the premise above
