"""Integration tests for the Enhanced 802.11r baseline."""

import numpy as np

from repro.core.baseline import BaselinePolicyParams
from repro.experiments import ExperimentConfig, build_network
from repro.mobility import LinearTrajectory, RoadLayout, StationaryTrajectory
from repro.net.packet import Packet


def baseline_net(seed=0, speed_mph=15.0, **cfg):
    config = ExperimentConfig(mode="baseline", road=RoadLayout(), seed=seed, **cfg)
    net = build_network(config)
    if speed_mph > 0:
        traj = LinearTrajectory.drive_through(net.road, speed_mph)
    else:
        traj = StationaryTrajectory(net.road.ap_aim_point(0))
    client = net.add_client(traj)
    return net, client


def test_client_associates_from_beacons():
    net, client = baseline_net(speed_mph=0)
    net.run(until=2.0)
    assert client.associated
    assert client.current_bssid == net.aps[0].node_id


def test_association_known_at_controller():
    net, client = baseline_net(speed_mph=0)
    net.run(until=2.0)
    assert net.controller.serving_ap(client.node_id) == client.current_bssid


def test_client_roams_across_aps_during_drive():
    net, client = baseline_net(speed_mph=15.0)
    net.run(until=10.0)
    visited = {b for _t, b in client.association_changes if b is not None}
    assert len(visited) >= 3


def test_roaming_respects_one_second_hysteresis():
    net, client = baseline_net(speed_mph=15.0)
    net.run(until=10.0)
    times = [t for t, b in client.association_changes if b is not None]
    gaps = np.diff(times)
    # Successful consecutive handovers are at least ~1 s apart (re-scans
    # after failures may associate sooner).
    assert np.median(gaps) >= 0.9


def test_downlink_flows_only_through_associated_ap():
    net, client = baseline_net(speed_mph=0)
    got = []
    client.register_flow(1, lambda p, t: got.append(p))
    net.run(until=2.0)
    for seq in range(20):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=1, seq=seq)
        )
    net.run(until=3.0)
    assert len(got) == 20
    aps = {r["ap"] for r in net.trace.iter_records("dl_delivered")}
    assert aps == {client.current_bssid}


def test_no_route_drops_before_association():
    net, client = baseline_net(speed_mph=0)
    net.controller.send_downlink(
        Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
               protocol="udp", flow_id=1, seq=0)
    )
    assert net.controller.no_route_drops == 1


def test_old_ap_flushed_after_handover():
    net, client = baseline_net(speed_mph=15.0)
    net.run(until=10.0)
    changes = [b for _t, b in client.association_changes if b is not None]
    assert len(changes) >= 2
    old_ap = next(ap for ap in net.aps if ap.node_id == changes[0])
    assert client.node_id not in old_ap.associated


def test_handover_failure_at_high_speed():
    """At 35 mph the over-the-DS FT request dies with the old link
    (the Fig. 4(a) pathology)."""
    failures = 0
    for seed in range(4):
        net, client = baseline_net(seed=seed, speed_mph=35.0)
        net.run(until=4.5)
        failures += client.policy.handover_failures
    assert failures >= 1


def test_policy_threshold_configurable():
    eager = BaselinePolicyParams(rssi_threshold_db=30.0, hysteresis_s=0.1)
    net, client = baseline_net(speed_mph=15.0, policy_params=eager)
    net.run(until=8.0)
    eager_switches = len(client.association_changes)
    net2, client2 = baseline_net(speed_mph=15.0)
    net2.run(until=8.0)
    assert eager_switches >= len(client2.association_changes)


def test_beacons_present_in_baseline():
    net, _client = baseline_net(speed_mph=0)
    net.run(until=1.0)
    assert net.trace.count("beacon_rx") > 10
