"""Unit tests for declarative fault scenarios (repro.faults.scenario)."""

import json

import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultScenario, coerce_scenario
from repro.orchestration import JobSpec, SweepSpec


# ------------------------------------------------------------- validation
def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultEvent(kind="meteor_strike", time=1.0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultEvent(kind="ap_crash", time=-1.0, ap=0)


def test_crash_requires_ap_index():
    with pytest.raises(ValueError):
        FaultEvent(kind="ap_crash", time=1.0)


def test_loss_probability_bounds():
    with pytest.raises(ValueError):
        FaultEvent(kind="link_loss", time=0.0, loss_probability=1.5)


def test_nonpositive_duration_rejected():
    with pytest.raises(ValueError):
        FaultEvent(kind="link_loss", time=0.0, duration_s=0.0)


def test_end_time_open_and_closed():
    open_ended = FaultEvent(kind="link_loss", time=2.0)
    assert open_ended.end_time == float("inf")
    windowed = FaultEvent(kind="link_loss", time=2.0, duration_s=3.0)
    assert windowed.end_time == 5.0


# ------------------------------------------------------------- round-trip
def test_event_json_roundtrip_all_kinds():
    for kind in FAULT_KINDS:
        kwargs = {}
        if kind in ("ap_crash", "ap_restart"):
            kwargs["ap"] = 2
        if kind in ("link_loss", "link_jitter", "partition"):
            kwargs["aps_a"] = (0, 1)
            kwargs["aps_b"] = (2,)
        if kind in ("link_jitter", "ctrl_delay"):
            kwargs["extra_latency_s"] = 0.005
            kwargs["jitter_s"] = 0.001
        event = FaultEvent(kind=kind, time=1.5, duration_s=2.0, **kwargs)
        assert FaultEvent.from_dict(event.to_dict()) == event


def test_scenario_json_roundtrip():
    scenario = FaultScenario(
        events=(
            FaultEvent(kind="ap_crash", time=3.0, ap=1, duration_s=2.0),
            FaultEvent(kind="link_loss", time=1.0, duration_s=4.0,
                       aps_b=(0,), loss_probability=0.3),
        ),
        seed=42,
        liveness_timeout_s=0.1,
    )
    restored = FaultScenario.from_json(scenario.to_json())
    assert restored == scenario
    assert restored.seed == 42
    assert restored.liveness_timeout_s == 0.1


def test_events_sorted_by_time():
    scenario = FaultScenario(events=(
        FaultEvent(kind="ap_crash", time=5.0, ap=0),
        FaultEvent(kind="ap_crash", time=1.0, ap=1),
    ))
    assert [e.time for e in scenario.events] == [1.0, 5.0]


def test_canonical_json_is_stable():
    a = FaultScenario.single_ap_crash(ap=3, at=2.0)
    b = FaultScenario.from_json(a.to_json())
    assert a.to_json() == b.to_json()
    assert json.loads(a.to_json())  # valid JSON
    assert a.key_hash() == b.key_hash()
    assert len(a.key_hash()) == 10


def test_key_hash_distinguishes_scenarios():
    a = FaultScenario.single_ap_crash(ap=3, at=2.0)
    b = FaultScenario.single_ap_crash(ap=4, at=2.0)
    assert a.key_hash() != b.key_hash()


def test_coerce_accepts_all_forms():
    sc = FaultScenario.single_ap_crash(ap=1, at=1.0)
    assert coerce_scenario(None) is None
    assert coerce_scenario(sc) is sc
    assert coerce_scenario(sc.to_json()) == sc
    assert coerce_scenario(sc.to_dict()) == sc
    with pytest.raises(TypeError):
        coerce_scenario(123)


# ------------------------------------------------------------- generators
def test_single_ap_crash_with_restart():
    sc = FaultScenario.single_ap_crash(ap=2, at=3.0, restart_after_s=1.5)
    kinds = [e.kind for e in sc.events]
    assert kinds == ["ap_crash", "ap_restart"]
    assert sc.events[1].time == 4.5


def test_poisson_crashes_deterministic():
    a = FaultScenario.poisson_ap_crashes(8, 30.0, 0.05, seed=9)
    b = FaultScenario.poisson_ap_crashes(8, 30.0, 0.05, seed=9)
    assert a == b and a.to_json() == b.to_json()
    c = FaultScenario.poisson_ap_crashes(8, 30.0, 0.05, seed=10)
    assert a != c


def test_poisson_crashes_within_duration():
    sc = FaultScenario.poisson_ap_crashes(4, 20.0, 0.2, seed=1)
    assert len(sc) > 0
    for e in sc.events:
        assert 0.0 <= e.time < 20.0
        assert e.kind in ("ap_crash", "ap_restart")
        assert 0 <= e.ap < 4


def test_poisson_zero_rate_yields_empty():
    sc = FaultScenario.poisson_ap_crashes(4, 20.0, 0.0, seed=1)
    assert len(sc) == 0


# ---------------------------------------------------------- orchestration
def test_jobspec_normalises_scenario_forms():
    sc = FaultScenario.single_ap_crash(ap=3, at=2.0)
    jobs = [JobSpec(fault_scenario=form)
            for form in (sc, sc.to_json(), sc.to_dict())]
    assert jobs[0] == jobs[1] == jobs[2]
    assert hash(jobs[0]) == hash(jobs[1])
    assert isinstance(jobs[0].fault_scenario, str)


def test_jobspec_key_includes_fault_hash():
    sc = FaultScenario.single_ap_crash(ap=3, at=2.0)
    healthy = JobSpec()
    faulty = JobSpec(fault_scenario=sc)
    assert healthy.key() != faulty.key()
    assert f"fault={sc.key_hash()}" in faulty.key()


def test_jobspec_canonical_roundtrip_with_fault():
    sc = FaultScenario.single_ap_crash(ap=1, at=4.0, restart_after_s=2.0)
    job = JobSpec(mode="wgtt", fault_scenario=sc)
    restored = JobSpec.from_dict(json.loads(json.dumps(job.canonical())))
    assert restored == job


def test_jobspec_run_kwargs_passes_scenario():
    sc = FaultScenario.single_ap_crash(ap=1, at=4.0)
    job = JobSpec(fault_scenario=sc)
    kwargs = job.run_kwargs()
    assert kwargs["fault_scenario"] == sc.to_json()
    assert "fault_scenario" not in JobSpec().run_kwargs()


def test_sweepspec_applies_scenario_to_every_job():
    sc = FaultScenario.single_ap_crash(ap=2, at=1.0)
    spec = SweepSpec(modes=("wgtt", "baseline"), speeds_mph=(15.0,),
                     fault_scenario=sc)
    jobs = spec.expand()
    assert len(jobs) == 2
    assert all(j.fault_scenario == sc.to_json() for j in jobs)
