"""Unit tests for antenna patterns."""


import pytest

from repro.phy.antenna import OmniAntenna, ParabolicAntenna, angle_between_deg


def test_angle_between_parallel_vectors_is_zero():
    assert angle_between_deg((1, 0, 0), (2, 0, 0)) == pytest.approx(0.0)


def test_angle_between_orthogonal_vectors():
    assert angle_between_deg((1, 0, 0), (0, 1, 0)) == pytest.approx(90.0)


def test_angle_between_opposite_vectors():
    assert angle_between_deg((1, 0, 0), (-1, 0, 0)) == pytest.approx(180.0)


def test_zero_vector_rejected():
    with pytest.raises(ValueError):
        angle_between_deg((0, 0, 0), (1, 0, 0))


def test_omni_gain_is_flat():
    ant = OmniAntenna(2.0)
    assert ant.gain_db(0) == 2.0
    assert ant.gain_db(123) == 2.0
    assert ant.gain_towards((0, 0, 0), (5, 5, 5)) == 2.0


def test_parabolic_boresight_gain():
    ant = ParabolicAntenna(peak_gain_dbi=14.0)
    assert ant.gain_db(0.0) == pytest.approx(14.0)


def test_parabolic_3db_point_at_half_beamwidth():
    ant = ParabolicAntenna(peak_gain_dbi=14.0, beamwidth_deg=17.0)
    assert ant.gain_db(8.5) == pytest.approx(14.0 - 3.0)


def test_parabolic_pattern_symmetric():
    ant = ParabolicAntenna()
    assert ant.gain_db(10.0) == ant.gain_db(-10.0)


def test_parabolic_sidelobe_floor():
    ant = ParabolicAntenna(peak_gain_dbi=14.0, sidelobe_down_db=30.0)
    assert ant.gain_db(180.0) == pytest.approx(14.0 - 30.0)


def test_parabolic_monotone_over_main_lobe():
    ant = ParabolicAntenna()
    gains = [ant.gain_db(theta) for theta in range(0, 30, 2)]
    assert gains == sorted(gains, reverse=True)


def test_aimed_at_boresight_points_at_target():
    ant = ParabolicAntenna.aimed_at((0, 0, 10), (0, 10, 0))
    # Gain straight at the target equals the peak.
    assert ant.gain_towards((0, 0, 10), (0, 10, 0)) == pytest.approx(ant.peak_gain_dbi)


def test_gain_towards_drops_off_axis():
    position, target = (0.0, -8.0, 10.0), (0.0, 3.75, 1.5)
    ant = ParabolicAntenna.aimed_at(position, target)
    on_axis = ant.gain_towards(position, target)
    off_axis = ant.gain_towards(position, (10.0, 3.75, 1.5))
    assert off_axis < on_axis - 5.0


def test_invalid_beamwidth_rejected():
    with pytest.raises(ValueError):
        ParabolicAntenna(beamwidth_deg=0.0)


def test_negative_sidelobe_rejected():
    with pytest.raises(ValueError):
        ParabolicAntenna(sidelobe_down_db=-1.0)
