"""End-to-end integration tests: short full-system drives.

These are scaled-down versions of the headline experiments, small enough
for the unit-test suite, asserting the cross-cutting invariants that no
single-module test can see.
"""

import numpy as np
import pytest

from repro.experiments import (
    mean_throughput_mbps,
    run_single_drive,
    switching_accuracy,
)
from repro.mobility import RoadLayout, mph_to_mps

ROAD4 = RoadLayout.uniform(4)  # half-length array keeps these tests quick


def coverage(speed_mph, road=ROAD4):
    v = mph_to_mps(speed_mph)
    return 15.0 / v, (road.span_m + 15.0) / v


@pytest.fixture(scope="module")
def wgtt_udp_drive():
    return run_single_drive(mode="wgtt", speed_mph=15.0, traffic="udp",
                            udp_rate_mbps=40.0, seed=71, road=ROAD4)


@pytest.fixture(scope="module")
def baseline_udp_drive():
    return run_single_drive(mode="baseline", speed_mph=15.0, traffic="udp",
                            udp_rate_mbps=40.0, seed=71, road=ROAD4)


def test_wgtt_delivers_meaningful_throughput(wgtt_udp_drive):
    t0, t1 = coverage(15.0)
    assert mean_throughput_mbps(wgtt_udp_drive.deliveries, t0, t1) > 10.0


def test_wgtt_switches_along_the_drive(wgtt_udp_drive):
    assert wgtt_udp_drive.timeline.switch_count >= 3
    visited = {ap for _s, _e, ap in
               wgtt_udp_drive.timeline.segments(wgtt_udp_drive.duration_s)}
    assert len(visited) >= 3


def test_wgtt_beats_baseline(wgtt_udp_drive, baseline_udp_drive):
    t0, t1 = coverage(15.0)
    wgtt = mean_throughput_mbps(wgtt_udp_drive.deliveries, t0, t1)
    base = mean_throughput_mbps(baseline_udp_drive.deliveries, t0, t1)
    assert wgtt > base


def test_no_duplicate_app_deliveries(wgtt_udp_drive):
    seqs = [r["seq"] for r in wgtt_udp_drive.trace.iter_records("dl_delivered")]
    assert len(seqs) == len(set(seqs))


def test_switching_accuracy_exceeds_baseline(wgtt_udp_drive, baseline_udp_drive):
    t0, t1 = coverage(15.0)

    def acc(result):
        net = result.net
        links = net.links_for_client(result.client)
        ap_ids = [ap.node_id for ap in net.aps]
        return switching_accuracy(result.timeline, links, ap_ids, t0, t1,
                                  sample_s=0.01, tolerance_db=1.0)

    assert acc(wgtt_udp_drive) > acc(baseline_udp_drive) + 0.15


def test_csi_reports_flow_continuously(wgtt_udp_drive):
    t0, t1 = coverage(15.0)
    times = [t for t in wgtt_udp_drive.trace.times("csi") if t0 < t < t1]
    # No CSI gap longer than 200 ms while in coverage.
    gaps = np.diff(sorted(times))
    assert gaps.max() < 0.2


def test_ba_forwarding_engages(wgtt_udp_drive):
    assert wgtt_udp_drive.trace.count("ba_forwarded") > 0


def test_controller_dedup_sees_duplicates():
    """Uplink data is decoded by several APs, so the de-dup filter must
    actually suppress copies (multi-AP reception is the diversity
    mechanism of section 3.2)."""
    from repro.experiments import ExperimentConfig, attach_udp_uplink, build_network
    from repro.mobility import LinearTrajectory

    net = build_network(ExperimentConfig(mode="wgtt", road=ROAD4, seed=75))
    client = net.add_client(LinearTrajectory.drive_through(ROAD4, 15.0))
    sender, receiver = attach_udp_uplink(net, client, 5.0)
    net.sim.schedule(2.0, sender.start)
    net.run(until=6.0)
    assert receiver.packets_received > 50
    assert net.controller.dedup.duplicates > 0


def test_simulation_determinism():
    a = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="udp",
                         udp_rate_mbps=20.0, seed=99, road=ROAD4,
                         duration_s=4.0)
    b = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="udp",
                         udp_rate_mbps=20.0, seed=99, road=ROAD4,
                         duration_s=4.0)
    assert a.deliveries == b.deliveries
    assert a.net.sim.events_fired == b.net.sim.events_fired


def test_wgtt_tcp_short_drive_progresses():
    result = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="tcp",
                              seed=73, road=ROAD4)
    assert result.receiver.rcv_nxt > 1_000_000  # at least ~1 MB landed
    # MAC reordering must be invisible to TCP.
    values = [b for _t, b in result.receiver.progress]
    assert values == sorted(values)
