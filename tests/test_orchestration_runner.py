"""Integration tests for the process-pool sweep runner.

Drives use a 3-AP road at 35 mph with a light UDP load so each job is a
fraction of a second; the properties under test (determinism across
worker counts, cache hits, crash isolation, retries, timeouts) do not
depend on scale.
"""

import json
import random

import pytest

from repro.orchestration import (
    FaultCampaign,
    JobSpec,
    MemoryQueue,
    ProgressReporter,
    ResultCache,
    SweepRunner,
    SweepSpec,
    run_queue_sweep,
    run_sweep,
)

SMALL = dict(
    modes=("baseline",), speeds_mph=(35.0,), traffics=("udp",),
    udp_rate_mbps=5.0, n_aps=3,
)


def small_spec(seeds=(1, 2)) -> SweepSpec:
    return SweepSpec(seeds=seeds, **SMALL)


def fingerprint(summary):
    return (
        summary.throughput_mbps,
        summary.coverage_throughput_mbps,
        summary.switch_count,
        summary.events_fired,
        tuple(summary.bin_mbps),
    )


def test_parallel_results_identical_to_serial():
    serial = run_sweep(small_spec(), jobs=1)
    parallel = run_sweep(small_spec(), jobs=2)
    assert serial.ok and parallel.ok
    assert [j.key() for j in serial.jobs] == [j.key() for j in parallel.jobs]
    for a, b in zip(serial.summaries, parallel.summaries):
        assert fingerprint(a) == fingerprint(b)


def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(root=tmp_path)
    first = run_sweep(small_spec(), jobs=2, cache=cache)
    assert first.stats.completed == 2 and first.stats.cached == 0
    second = run_sweep(small_spec(), jobs=2, cache=ResultCache(root=tmp_path))
    assert second.stats.cached == 2 and second.stats.completed == 0
    assert second.stats.cache_hit_rate == 1.0
    assert second.stats.events_fired == 0  # no simulation happened
    for a, b in zip(first.summaries, second.summaries):
        assert fingerprint(a) == fingerprint(b)


def test_duplicate_jobs_simulate_once():
    job = small_spec(seeds=(1,)).expand()[0]
    result = run_sweep([job, job], jobs=1)
    assert result.stats.total == 2
    assert result.stats.completed == 1  # deduplicated before execution
    assert fingerprint(result.summaries[0]) == fingerprint(result.summaries[1])


def test_worker_exception_is_retried_and_succeeds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path))
    result = run_sweep(small_spec(), jobs=2, max_retries=2)
    assert result.ok
    assert result.stats.retries >= 1
    assert all(s is not None for s in result.summaries)


def test_hard_worker_death_does_not_abort_the_sweep(tmp_path, monkeypatch):
    # os._exit in the worker breaks the whole pool; the runner must
    # rebuild it and finish every job.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exit")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path))
    result = run_sweep(small_spec(), jobs=2, max_retries=2)
    assert result.ok
    assert result.stats.retries >= 1
    assert all(s is not None for s in result.summaries)


def test_exhausted_retries_reported_not_raised(monkeypatch):
    # No CRASH_ONCE_DIR: the job fails on every attempt.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    result = run_sweep(small_spec(), jobs=2, max_retries=1)
    assert not result.ok
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.attempts == 2  # first try + one retry
    assert "injected test crash" in failure.error
    # The healthy job still completed, aligned with its grid position.
    by_seed = {j.seed: s for j, s in zip(result.jobs, result.summaries)}
    assert by_seed[1] is None
    assert by_seed[2] is not None
    assert result.stats.failed == 1 and result.stats.completed == 1


def test_per_job_timeout_is_a_retryable_failure(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TEST_SLEEP_S", "5.0")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    result = run_sweep(small_spec(seeds=(1,)), jobs=1,
                       timeout_s=0.4, max_retries=0)
    assert len(result.failures) == 1
    assert "0.4" in result.failures[0].error


def test_runner_validates_arguments():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)
    with pytest.raises(ValueError):
        SweepRunner(max_retries=-1)


def test_progress_reporter_counts_and_narrates(tmp_path, capsys):
    import io

    stream = io.StringIO()
    cache = ResultCache(root=tmp_path)
    runner = SweepRunner(jobs=1, cache=cache,
                         reporter=ProgressReporter(verbose=True, stream=stream))
    spec = small_spec(seeds=(1,))
    result = runner.run(spec)
    stats = result.stats
    assert stats.total == 1 and stats.completed == 1
    assert stats.events_fired > 0
    assert stats.events_per_sec > 0
    text = stream.getvalue()
    assert "sweep: 1 jobs" in text
    assert "baseline:35:udp:r5:s1:aps3" in text


def test_summaries_expose_figure_grade_data():
    result = run_sweep(small_spec(seeds=(1,)), jobs=1)
    summary = result.summaries[0]
    assert summary.coverage_throughput_mbps > 0
    assert summary.bin_centres and len(summary.bin_centres) == len(summary.bin_mbps)
    assert summary.switch_count == len(summary.switch_events)
    assert summary.trace_counters.get("ap_switch", 0) >= summary.switch_count - 1
    assert summary.timeline.ap_at(summary.coverage_t0 + 0.1) is not None


def test_jobspec_round_trip_preserves_identity_under_pool():
    # What the parent hashes must be exactly what the worker rebuilds.
    job = JobSpec(mode="baseline", speed_mph=35.0, traffic="udp",
                  udp_rate_mbps=5.0, seed=1, n_aps=3)
    assert JobSpec.from_dict(job.canonical()) == job


# ================================================== determinism battery
# The distributed-sweep invariant: summaries are a pure function of the
# job spec.  Worker count, pull order, crash/requeue schedules -- none
# of it may perturb a single byte of the results or the cache entries.

def sweep_bytes(result):
    """The byte-comparable identity of a sweep (wall clock excluded)."""
    assert all(s is not None for s in result.summaries)
    return json.dumps([s.deterministic_dict() for s in result.summaries],
                      sort_keys=True)


def cache_identity(cache):
    """(relative path, summary-minus-wall-clock) for every cache entry."""
    out = {}
    for path in sorted(cache.root.glob("*/*.json")):
        record = json.loads(path.read_text())
        record["summary"].pop("wall_clock_s")
        out[str(path.relative_to(cache.root))] = record["summary"]
    return out


@pytest.fixture(scope="module")
def serial_reference():
    """One serial run of the small spec; every schedule must match it."""
    result = run_sweep(small_spec(), jobs=1)
    assert result.ok
    return sweep_bytes(result)


@pytest.mark.parametrize("order_seed", [0, 1, 2])
def test_shuffled_pull_orders_are_byte_identical(serial_reference, order_seed):
    queue = MemoryQueue(pull_order=random.Random(order_seed).shuffle)
    result = run_queue_sweep(small_spec(), workers=0, queue=queue)
    assert result.ok
    assert sweep_bytes(result) == serial_reference


def test_reverse_pull_order_is_byte_identical(serial_reference):
    queue = MemoryQueue(pull_order=lambda names: names.reverse())
    result = run_queue_sweep(small_spec(), workers=0, queue=queue)
    assert sweep_bytes(result) == serial_reference


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_file_queue_worker_counts_are_byte_identical(
        serial_reference, workers, tmp_path):
    result = run_queue_sweep(small_spec(), workers=workers,
                             queue_dir=str(tmp_path / "q"))
    assert result.ok
    assert sweep_bytes(result) == serial_reference


def test_inline_crash_and_requeue_is_byte_identical(
        serial_reference, tmp_path, monkeypatch):
    # Every job crashes on its first attempt; the retries must still
    # reproduce the reference bytes (the requeue path rebuilds the
    # network from the spec, never from partial state).
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "baseline")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path))
    queue = MemoryQueue(pull_order=random.Random(7).shuffle)
    result = run_queue_sweep(small_spec(), workers=0, queue=queue,
                             max_retries=2)
    assert result.ok
    assert result.stats.retries >= 2  # both jobs crashed once
    assert sweep_bytes(result) == serial_reference


def test_worker_process_crash_requeues_and_stays_identical(
        serial_reference, tmp_path, monkeypatch):
    # A real worker process dies via os._exit mid-sweep; the lease
    # expires, another worker reruns the job, bytes still match.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exit")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path / "m"))
    (tmp_path / "m").mkdir()
    result = run_queue_sweep(small_spec(), workers=2,
                             queue_dir=str(tmp_path / "q"),
                             lease_timeout_s=0.5, max_retries=2)
    assert result.ok
    assert result.stats.retries >= 1  # the crashed job was requeued
    assert sweep_bytes(result) == serial_reference


def test_queue_and_serial_runs_share_cache_entries(tmp_path):
    serial_cache = ResultCache(root=tmp_path / "serial")
    queue_cache = ResultCache(root=tmp_path / "queue")
    serial = run_sweep(small_spec(), jobs=1, cache=serial_cache)
    queued = run_queue_sweep(small_spec(), workers=0,
                             queue=MemoryQueue(
                                 pull_order=lambda n: n.reverse()),
                             cache=queue_cache)
    assert serial.ok and queued.ok
    # Same keys (paths) AND same stored summaries, byte for byte.
    assert cache_identity(serial_cache) == cache_identity(queue_cache)
    # A queue run after a serial run is a pure cache replay.
    replay = run_queue_sweep(small_spec(), workers=0, queue=MemoryQueue(),
                             cache=ResultCache(root=tmp_path / "serial"))
    assert replay.stats.cached == 2 and replay.stats.completed == 0
    assert sweep_bytes(replay) == sweep_bytes(serial)


def test_queue_sweep_reports_terminal_failures(monkeypatch):
    # No CRASH_ONCE_DIR: seed 1 fails every attempt, seed 2 completes.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    result = run_queue_sweep(small_spec(), workers=0,
                             queue=MemoryQueue(max_retries=1), max_retries=1)
    assert not result.ok
    assert len(result.failures) == 1
    by_seed = {j.seed: s for j, s in zip(result.jobs, result.summaries)}
    assert by_seed[1] is None and by_seed[2] is not None


def test_spawned_workers_require_a_file_queue():
    with pytest.raises(ValueError, match="FileQueue"):
        run_queue_sweep(small_spec(), workers=2, queue=MemoryQueue())


def test_queue_sweep_streams_into_store_and_aggregator(tmp_path):
    from repro.orchestration import ColumnarStore, SweepAggregator

    store = ColumnarStore(tmp_path / "store", shard_size=1)
    agg = SweepAggregator()
    result = run_queue_sweep(small_spec(), workers=0, queue=MemoryQueue(),
                             store=store, aggregator=agg)
    assert result.ok
    # Store holds both summaries (keyed, order may differ from the spec).
    stored = {s.job_key: s.deterministic_dict() for s in store.summaries()}
    assert stored == {s.job_key: s.deterministic_dict()
                      for s in result.summaries}
    snap = agg.snapshot()
    assert snap["jobs_seen"] == 2
    assert (tmp_path / "store" / "aggregate.json").exists()


# ------------------------------------------------- fault-campaign sweeps
FAULTY = dict(
    modes=("wgtt",), speeds_mph=(35.0,), traffics=("udp",),
    udp_rate_mbps=5.0, n_aps=3, seeds=(1, 2),
    fault_campaign=FaultCampaign(crash_rate_per_ap_hz=0.05,
                                 mean_downtime_s=1.0, duration_s=6.0),
)


def test_fault_campaign_sweep_is_deterministic_and_cache_stable(tmp_path):
    """The fault-campaign regression: per-job scenarios derive from the
    sweep seed, so a rerun is 100% cache hits and byte-identical."""
    spec = SweepSpec(**FAULTY)
    jobs = spec.expand()
    assert all(j.fault_scenario is not None for j in jobs)
    assert jobs[0].fault_scenario != jobs[1].fault_scenario  # per-seed
    assert spec.expand() == jobs  # scenario derivation is reproducible

    cache = ResultCache(root=tmp_path)
    first = run_sweep(spec, jobs=1, cache=cache)
    assert first.ok
    assert first.stats.completed == 2 and first.stats.cached == 0
    rerun = run_sweep(SweepSpec(**FAULTY), jobs=1,
                      cache=ResultCache(root=tmp_path))
    assert rerun.stats.cached == 2 and rerun.stats.completed == 0
    assert rerun.stats.cache_hit_rate == 1.0
    assert sweep_bytes(rerun) == sweep_bytes(first)


def test_fault_campaign_queue_run_matches_serial(tmp_path):
    serial = run_sweep(SweepSpec(**FAULTY), jobs=1)
    queued = run_queue_sweep(SweepSpec(**FAULTY), workers=2,
                             queue_dir=str(tmp_path / "q"))
    assert serial.ok and queued.ok
    assert sweep_bytes(queued) == sweep_bytes(serial)
