"""Integration tests for the process-pool sweep runner.

Drives use a 3-AP road at 35 mph with a light UDP load so each job is a
fraction of a second; the properties under test (determinism across
worker counts, cache hits, crash isolation, retries, timeouts) do not
depend on scale.
"""

import pytest

from repro.orchestration import (
    JobSpec,
    ProgressReporter,
    ResultCache,
    SweepRunner,
    SweepSpec,
    run_sweep,
)

SMALL = dict(
    modes=("baseline",), speeds_mph=(35.0,), traffics=("udp",),
    udp_rate_mbps=5.0, n_aps=3,
)


def small_spec(seeds=(1, 2)) -> SweepSpec:
    return SweepSpec(seeds=seeds, **SMALL)


def fingerprint(summary):
    return (
        summary.throughput_mbps,
        summary.coverage_throughput_mbps,
        summary.switch_count,
        summary.events_fired,
        tuple(summary.bin_mbps),
    )


def test_parallel_results_identical_to_serial():
    serial = run_sweep(small_spec(), jobs=1)
    parallel = run_sweep(small_spec(), jobs=2)
    assert serial.ok and parallel.ok
    assert [j.key() for j in serial.jobs] == [j.key() for j in parallel.jobs]
    for a, b in zip(serial.summaries, parallel.summaries):
        assert fingerprint(a) == fingerprint(b)


def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(root=tmp_path)
    first = run_sweep(small_spec(), jobs=2, cache=cache)
    assert first.stats.completed == 2 and first.stats.cached == 0
    second = run_sweep(small_spec(), jobs=2, cache=ResultCache(root=tmp_path))
    assert second.stats.cached == 2 and second.stats.completed == 0
    assert second.stats.cache_hit_rate == 1.0
    assert second.stats.events_fired == 0  # no simulation happened
    for a, b in zip(first.summaries, second.summaries):
        assert fingerprint(a) == fingerprint(b)


def test_duplicate_jobs_simulate_once():
    job = small_spec(seeds=(1,)).expand()[0]
    result = run_sweep([job, job], jobs=1)
    assert result.stats.total == 2
    assert result.stats.completed == 1  # deduplicated before execution
    assert fingerprint(result.summaries[0]) == fingerprint(result.summaries[1])


def test_worker_exception_is_retried_and_succeeds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path))
    result = run_sweep(small_spec(), jobs=2, max_retries=2)
    assert result.ok
    assert result.stats.retries >= 1
    assert all(s is not None for s in result.summaries)


def test_hard_worker_death_does_not_abort_the_sweep(tmp_path, monkeypatch):
    # os._exit in the worker breaks the whole pool; the runner must
    # rebuild it and finish every job.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exit")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_ONCE_DIR", str(tmp_path))
    result = run_sweep(small_spec(), jobs=2, max_retries=2)
    assert result.ok
    assert result.stats.retries >= 1
    assert all(s is not None for s in result.summaries)


def test_exhausted_retries_reported_not_raised(monkeypatch):
    # No CRASH_ONCE_DIR: the job fails on every attempt.
    monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "exception")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    result = run_sweep(small_spec(), jobs=2, max_retries=1)
    assert not result.ok
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.attempts == 2  # first try + one retry
    assert "injected test crash" in failure.error
    # The healthy job still completed, aligned with its grid position.
    by_seed = {j.seed: s for j, s in zip(result.jobs, result.summaries)}
    assert by_seed[1] is None
    assert by_seed[2] is not None
    assert result.stats.failed == 1 and result.stats.completed == 1


def test_per_job_timeout_is_a_retryable_failure(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_TEST_SLEEP_S", "5.0")
    monkeypatch.setenv("REPRO_SWEEP_TEST_MATCH", "s1")
    result = run_sweep(small_spec(seeds=(1,)), jobs=1,
                       timeout_s=0.4, max_retries=0)
    assert len(result.failures) == 1
    assert "0.4" in result.failures[0].error


def test_runner_validates_arguments():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)
    with pytest.raises(ValueError):
        SweepRunner(max_retries=-1)


def test_progress_reporter_counts_and_narrates(tmp_path, capsys):
    import io

    stream = io.StringIO()
    cache = ResultCache(root=tmp_path)
    runner = SweepRunner(jobs=1, cache=cache,
                         reporter=ProgressReporter(verbose=True, stream=stream))
    spec = small_spec(seeds=(1,))
    result = runner.run(spec)
    stats = result.stats
    assert stats.total == 1 and stats.completed == 1
    assert stats.events_fired > 0
    assert stats.events_per_sec > 0
    text = stream.getvalue()
    assert "sweep: 1 jobs" in text
    assert "baseline:35:udp:r5:s1:aps3" in text


def test_summaries_expose_figure_grade_data():
    result = run_sweep(small_spec(seeds=(1,)), jobs=1)
    summary = result.summaries[0]
    assert summary.coverage_throughput_mbps > 0
    assert summary.bin_centres and len(summary.bin_centres) == len(summary.bin_mbps)
    assert summary.switch_count == len(summary.switch_events)
    assert summary.trace_counters.get("ap_switch", 0) >= summary.switch_count - 1
    assert summary.timeline.ap_at(summary.coverage_t0 + 0.1) is not None


def test_jobspec_round_trip_preserves_identity_under_pool():
    # What the parent hashes must be exactly what the worker rebuilds.
    job = JobSpec(mode="baseline", speed_mph=35.0, traffic="udp",
                  udp_rate_mbps=5.0, seed=1, n_aps=3)
    assert JobSpec.from_dict(job.canonical()) == job
