"""Unit tests for the application models (video, conferencing, web)."""

import math

import pytest

from repro.apps.conferencing import (
    HANGOUTS_PROFILE,
    SKYPE_PROFILE,
    ConferencingReceiver,
    ConferencingSender,
)
from repro.apps.video import VideoParams, VideoStreamingSession
from repro.apps.web import WebPageLoad, WebPageParams
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.transport.tcp import MSS_BYTES, TcpReceiver, TcpSender


class TestVideo:
    def bytes_for(self, seconds, params):
        return int(seconds * params.bitrate_mbps * 1e6 / 8)

    def test_fast_delivery_never_rebuffers(self):
        sim = Simulator()
        params = VideoParams()
        session = VideoStreamingSession(sim, params)
        # Deliver 2x realtime.
        for i in range(1, 41):
            session.on_bytes(self.bytes_for(i * 0.5, params), i * 0.25)
        session.finish(10.0)
        assert session.rebuffer_ratio(10.0) == 0.0
        assert session.stall_events == 0

    def test_starved_stream_stalls(self):
        sim = Simulator()
        params = VideoParams(prebuffer_s=0.5)
        session = VideoStreamingSession(sim, params)
        session.on_bytes(self.bytes_for(1.0, params), 0.5)  # 1 s of media
        # ... then nothing for 9.5 s of playback.
        session.finish(10.0)
        assert session.stalled_s > 5.0
        assert session.rebuffer_ratio(10.0) > 0.5

    def test_prebuffer_delays_playback(self):
        sim = Simulator()
        params = VideoParams(prebuffer_s=1.5)
        session = VideoStreamingSession(sim, params)
        session.on_bytes(self.bytes_for(0.5, params), 1.0)
        assert session._state == "prebuffering"
        session.on_bytes(self.bytes_for(2.0, params), 2.0)
        assert session._state == "playing"

    def test_stall_then_recover(self):
        sim = Simulator()
        params = VideoParams(prebuffer_s=0.2, rebuffer_restart_s=0.5)
        session = VideoStreamingSession(sim, params)
        session.on_bytes(self.bytes_for(0.5, params), 0.1)   # plays
        session.on_bytes(self.bytes_for(0.5, params), 3.0)   # starved -> stall
        assert session._state == "stalled"
        session.on_bytes(self.bytes_for(6.0, params), 3.5)   # big refill
        assert session._state == "playing"
        session.finish(5.0)
        assert session.stall_events == 1
        assert 0.0 < session.stalled_s < 4.0

    def test_rebuffer_ratio_bounds(self):
        sim = Simulator()
        session = VideoStreamingSession(sim, VideoParams())
        session.finish(5.0)
        assert 0.0 <= session.rebuffer_ratio(5.0) <= 1.0
        assert session.rebuffer_ratio(0.0) == 0.0


class TestConferencing:
    def test_all_packets_delivered_counts_frames(self):
        sim = Simulator()
        rx = ConferencingReceiver(sim, flow_id=1)
        tx = ConferencingSender(
            sim, lambda p: rx.on_packet(p, sim.now), src=1, dst=2, flow_id=1
        )
        tx.start()
        sim.run(until=2.0)
        assert rx.frames_rendered == pytest.approx(tx.frames_sent, abs=2)

    def test_lost_packet_loses_frame(self):
        sim = Simulator()
        rx = ConferencingReceiver(sim, flow_id=1)
        dropped = {"n": 0}

        def lossy(p):
            if p.payload[1] == 3 and p.payload[2] == 0:  # frame 3, 1st packet
                dropped["n"] += 1
                return
            rx.on_packet(p, sim.now)

        tx = ConferencingSender(sim, lossy, src=1, dst=2, flow_id=1)
        tx.start()
        sim.run(until=1.0)
        assert dropped["n"] == 1
        assert rx.frames_rendered == tx.frames_sent - 1

    def test_fps_log_per_second(self):
        sim = Simulator()
        rx = ConferencingReceiver(sim, flow_id=1, params=SKYPE_PROFILE)
        tx = ConferencingSender(sim, lambda p: rx.on_packet(p, sim.now),
                                src=1, dst=2, flow_id=1, params=SKYPE_PROFILE)
        tx.start()
        sim.run(until=3.0)
        samples = rx.fps_samples(0, 3.0)
        assert len(samples) == 3
        assert all(25 <= s <= 31 for s in samples[1:])

    def test_late_packets_expire_frame(self):
        sim = Simulator()
        rx = ConferencingReceiver(sim, flow_id=1)
        p1 = Packet(size_bytes=1228, src=1, dst=2, flow_id=1, seq=0,
                    payload=("frame", 0, 0, 2))
        p2 = Packet(size_bytes=1228, src=1, dst=2, flow_id=1, seq=1,
                    payload=("frame", 0, 1, 2))
        rx.on_packet(p1, 0.0)
        rx.on_packet(p2, 10.0)  # way past the deadline
        assert rx.frames_rendered == 0
        assert rx.frames_expired == 1

    def test_hangouts_profile_higher_rate_smaller_frames(self):
        assert HANGOUTS_PROFILE.frame_rate_fps > SKYPE_PROFILE.frame_rate_fps
        assert HANGOUTS_PROFILE.frame_bytes < SKYPE_PROFILE.frame_bytes


class TestWeb:
    def _loaded_flow(self, pipe_delay=0.005):
        sim = Simulator()
        params = WebPageParams(page_bytes=50 * MSS_BYTES)
        inbox = []
        sender = TcpSender(sim, lambda p: sim.schedule(pipe_delay, receiver_on, p),
                           src=1, dst=2, flow_id=1,
                           app_limit_bytes=params.page_bytes)
        receiver = TcpReceiver(sim, lambda p: sim.schedule(pipe_delay, sender.on_packet, p, sim.now),
                               src=2, dst=1, flow_id=1)

        def receiver_on(p):
            receiver.on_packet(p, sim.now)

        return sim, sender, receiver, params

    def test_page_completes_and_reports_time(self):
        sim, sender, receiver, params = self._loaded_flow()
        load = WebPageLoad(sim, sender, receiver, params)
        load.start()
        sim.run(until=30.0)
        assert load.complete
        assert 0.1 < load.load_time_s < 10.0

    def test_incomplete_page_reports_infinity(self):
        sim = Simulator()
        params = WebPageParams(page_bytes=10 * MSS_BYTES)
        sender = TcpSender(sim, lambda p: None, src=1, dst=2, flow_id=1,
                           app_limit_bytes=params.page_bytes)
        receiver = TcpReceiver(sim, lambda p: None, src=2, dst=1, flow_id=1)
        load = WebPageLoad(sim, sender, receiver, params)
        load.start()
        sim.run(until=5.0)
        assert not load.complete
        assert load.load_time_s == math.inf

    def test_infinite_transfer_rejected(self):
        sim = Simulator()
        sender = TcpSender(sim, lambda p: None, 1, 2, 1, app_limit_bytes=None)
        receiver = TcpReceiver(sim, lambda p: None, 2, 1, 1)
        with pytest.raises(ValueError):
            WebPageLoad(sim, sender, receiver)

    def test_request_overhead_delays_start(self):
        sim, sender, receiver, params = self._loaded_flow()
        load = WebPageLoad(sim, sender, receiver, params)
        load.start()
        sim.run(until=30.0)
        assert load.load_time_s > params.request_overhead_s


class TestVideoNeverStarts:
    def test_dead_connection_counts_as_stalled(self):
        from repro.sim.engine import Simulator
        from repro.apps.video import VideoParams, VideoStreamingSession

        sim = Simulator()
        session = VideoStreamingSession(sim, VideoParams(prebuffer_s=1.5))
        # No bytes ever arrive; the player stares at the spinner.
        session.finish(10.0)
        assert session.stalled_s == pytest.approx(8.5)
        assert session.rebuffer_ratio(10.0) > 0.8

    def test_prebuffer_wait_alone_is_not_a_stall(self):
        from repro.sim.engine import Simulator
        from repro.apps.video import VideoParams, VideoStreamingSession

        sim = Simulator()
        session = VideoStreamingSession(sim, VideoParams(prebuffer_s=1.5))
        session.finish(1.0)  # ended before the pre-buffer deadline
        assert session.stalled_s == 0.0
