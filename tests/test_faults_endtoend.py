"""End-to-end fault injection: mid-drive AP crashes and opt-in guarantees.

Geometry used throughout: the default road has 8 APs at 7.5 m spacing
(x = 0..52.5 m); a 15 mph drive enters 15 m before the array, so the
client passes AP 3 (x = 22.5 m) at ~5.6 s.  Crashing AP 3 at 5.3 s kills
the AP that is about to serve the client.
"""

import hashlib
import json

from repro.experiments import build_network
from repro.experiments.runners import run_single_drive
from repro.faults import FaultScenario
from repro.mobility import LinearTrajectory

CRASH_AP = 3
CRASH_T = 5.3


def crash_scenario(restart_after_s=None):
    return FaultScenario.single_ap_crash(
        ap=CRASH_AP, at=CRASH_T, restart_after_s=restart_after_s
    )


def test_wgtt_drive_survives_mid_drive_ap_crash():
    """The acceptance drive: no exception, bounded re-attach, data flows."""
    result = run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=0, fault_scenario=crash_scenario(),
    )
    net = result.net
    crashed = net.aps[CRASH_AP]
    assert not crashed.alive
    assert net.trace.count("fault_ap_crash") == 1
    # The client re-attached to a live AP within bounded recovery time.
    switches_after = [
        r for r in net.trace.records("ap_switch")
        if r.time > CRASH_T and r["ap"] != crashed.node_id
    ]
    assert switches_after, "no re-attach after the crash"
    recovery = switches_after[0].time - CRASH_T
    assert recovery < 1.0, f"re-attach took {recovery:.2f}s"
    # The dead AP never serves again.
    assert all(r["ap"] != crashed.node_id
               for r in net.trace.records("ap_switch") if r.time > CRASH_T)
    # Traffic kept flowing after the crash window.
    late_bytes = sum(b for (t, b) in result.deliveries if t > CRASH_T + 1.0)
    assert late_bytes > 0


def test_wgtt_recovers_faster_with_liveness_tracking():
    """Health tracking beats waiting out the full retransmission budget."""
    from repro.core.controller import ControllerParams

    def recovery_time(liveness):
        scenario = FaultScenario(
            events=crash_scenario().events, liveness_timeout_s=None,
        )
        result = run_single_drive(
            mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
            seed=0, fault_scenario=scenario,
            controller_params=ControllerParams(ap_liveness_timeout_s=liveness),
        )
        net = result.net
        crashed_id = net.aps[CRASH_AP].node_id
        later = [r.time for r in net.trace.records("ap_switch")
                 if r.time > CRASH_T and r["ap"] != crashed_id]
        return (later[0] - CRASH_T) if later else float("inf")

    with_tracking = recovery_time(0.25)
    without = recovery_time(None)
    assert with_tracking < 1.0
    # Un-hardened recovery leans on give-up-and-reelect; hardened recovery
    # must not be slower.
    assert with_tracking <= without + 1e-9


def test_crashed_ap_restart_rejoins_service():
    result = run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=0, fault_scenario=crash_scenario(restart_after_s=1.0),
    )
    net = result.net
    ap = net.aps[CRASH_AP]
    assert ap.alive
    assert net.trace.count("fault_ap_restart") == 1
    # After restart the AP is eligible again (readmitted or never needed).
    assert net.trace.count("ap_evicted") >= 1


def test_baseline_drive_survives_mid_drive_ap_crash():
    result = run_single_drive(
        mode="baseline", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=0, fault_scenario=crash_scenario(),
    )
    net = result.net
    crashed = net.aps[CRASH_AP]
    assert not crashed.alive
    # The client eventually associates with some other AP.
    later = [r for r in net.trace.records("baseline_assoc")
             if r.time > CRASH_T and r["ap"] != crashed.node_id]
    assert later, "baseline client never re-associated after the crash"


# ------------------------------------------------------------ opt-in purity
def _healthy_digest(seed=5):
    net = build_network(mode="wgtt", seed=seed)
    client = net.add_client(LinearTrajectory.drive_through(net.road, 15.0))
    got = []
    client.register_flow(1, lambda p, t: got.append((round(t, 9), p.seq)))

    from repro.net.packet import Packet

    def pump(state=[0]):
        for seq in range(state[0], state[0] + 3):
            net.controller.send_downlink(Packet(
                size_bytes=1476, src=net.server_id, dst=client.node_id,
                protocol="udp", flow_id=1, seq=seq,
            ))
        state[0] += 3

    net.sim.call_every(0.005, pump)
    net.run(until=5.0)
    payload = json.dumps([got, sorted(net.trace.counters.items())])
    return hashlib.sha256(payload.encode()).hexdigest()


def test_no_scenario_runs_are_bit_identical():
    """scenario=None must leave every fault code path unreachable."""
    assert _healthy_digest() == _healthy_digest()
    net = build_network(mode="wgtt", seed=5)
    assert net.fault_injector is None
    assert net.backhaul.fault_overlay is None
    # Hardening defaults stay off without a scenario.
    assert net.controller.params.ap_liveness_timeout_s is None


def test_faulty_runs_are_deterministic():
    def digest():
        result = run_single_drive(
            mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
            seed=3, fault_scenario=crash_scenario(),
        )
        payload = json.dumps([
            [(round(t, 9), b) for (t, b) in result.deliveries],
            sorted(result.net.trace.counters.items()),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    assert digest() == digest()
