"""Pure-unit tests for Medium internals using stub radios (no full net)."""

import numpy as np
import pytest

from repro.mac.medium import Medium
from repro.phy.antenna import OmniAntenna, ParabolicAntenna
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


class StubRadio:
    def __init__(self, node_id, pos, is_ap=True, tx_power=18.0, channel=11,
                 antenna=None):
        self.node_id = node_id
        self._pos = pos
        self.is_ap = is_ap
        self.tx_power_dbm = tx_power
        self.channel = channel
        self.antenna = antenna or OmniAntenna(0.0)
        self.monitor = False
        self.bssid = node_id
        self.frames = []

    def position(self, t):
        return self._pos

    def on_frame(self, frame, src, outcome, t):
        self.frames.append((frame, src, outcome))

    def build_transmission(self):
        return None

    def on_transmission_started(self, tx):
        pass

    def on_transmission_complete(self, tx):
        pass


def make_medium():
    sim = Simulator()
    medium = Medium(sim, np.random.default_rng(0), trace=TraceRecorder())
    return sim, medium


def test_register_duplicate_radio_rejected():
    _sim, medium = make_medium()
    r = StubRadio(1, (0, 0, 0))
    medium.register_radio(r)
    with pytest.raises(ValueError):
        medium.register_radio(StubRadio(1, (1, 1, 1)))


def test_ap_ap_leakage_power_decays_with_distance():
    _sim, medium = make_medium()
    a = StubRadio(1, (0.0, 0.0, 3.0))
    near = StubRadio(2, (7.5, 0.0, 3.0))
    far = StubRadio(3, (60.0, 0.0, 3.0))
    for r in (a, near, far):
        medium.register_radio(r)
    assert medium.rx_power_dbm(a, near, 0.0) > medium.rx_power_dbm(a, far, 0.0)


def test_ap_ap_leakage_ignores_antenna_pattern():
    """Co-sited APs hear each other regardless of where their parabolic
    antennas point (regression: pattern-based coupling made APs mutually
    inaudible and old/new serving APs collided)."""
    _sim, medium = make_medium()
    ant = ParabolicAntenna(boresight=(0, 1, 0))
    a = StubRadio(1, (0.0, 0.0, 3.0), antenna=ant)
    b = StubRadio(2, (7.5, 0.0, 3.0), antenna=ant)
    medium.register_radio(a)
    medium.register_radio(b)
    assert medium.rx_power_dbm(a, b, 0.0) > medium.params.cs_threshold_dbm


def test_client_client_street_coupling():
    _sim, medium = make_medium()
    a = StubRadio(1, (0.0, 2.0, 1.5), is_ap=False, tx_power=15.0)
    near = StubRadio(2, (3.0, 5.5, 1.5), is_ap=False)
    far = StubRadio(3, (80.0, 5.5, 1.5), is_ap=False)
    for r in (a, near, far):
        medium.register_radio(r)
    assert medium.rx_power_dbm(a, near, 0.0) > medium.params.cs_threshold_dbm
    assert medium.rx_power_dbm(a, far, 0.0) < medium.params.cs_threshold_dbm


def test_different_channels_not_audible():
    _sim, medium = make_medium()
    a = StubRadio(1, (0.0, 0.0, 3.0), channel=11)
    b = StubRadio(2, (1.0, 0.0, 3.0), channel=6)
    c = StubRadio(3, (1.0, 1.0, 3.0), channel=11)
    for r in (a, b, c):
        medium.register_radio(r)
    assert not medium._audible(a, b, 0.0)  # orthogonal channels
    assert medium._audible(a, c, 0.0)      # same channel, adjacent


def test_busy_until_reflects_audible_transmissions():
    sim, medium = make_medium()
    a = StubRadio(1, (0.0, 0.0, 3.0))
    b = StubRadio(2, (5.0, 0.0, 3.0))
    medium.register_radio(a)
    medium.register_radio(b)
    from repro.mac.medium import Transmission
    from repro.mac.frames import Beacon

    tx = Transmission(a, Beacon(src=1, bssid=1), 0.0, 0.001, 0.002)
    medium._active.append(tx)
    assert medium.busy_until(b, 0.0) == pytest.approx(0.002)
    # After NAV end, idle again.
    assert medium.busy_until(b, 0.003) == 0.003


def test_request_access_idempotent():
    sim, medium = make_medium()
    a = StubRadio(1, (0.0, 0.0, 3.0))
    medium.register_radio(a)
    medium.request_access(a)
    medium.request_access(a)
    assert len(medium._pending_access) == 1


def test_cancel_access():
    sim, medium = make_medium()
    a = StubRadio(1, (0.0, 0.0, 3.0))
    medium.register_radio(a)
    medium.request_access(a)
    medium.cancel_access(a)
    assert a.node_id not in medium._pending_access
