"""Unit tests for road layout, trajectories, and scenarios."""

import pytest

from repro.mobility.scenarios import following, opposing, parallel
from repro.mobility.trajectory import (
    DEFAULT_AP_SPACING_M,
    DEFAULT_SPAN_M,
    FAR_LANE_Y_M,
    NEAR_LANE_Y_M,
    LinearTrajectory,
    RoadLayout,
    StationaryTrajectory,
    WaypointTrajectory,
    mph_to_mps,
)


def test_mph_conversion():
    assert mph_to_mps(15.0) == pytest.approx(6.7056)


class TestRoadLayout:
    def test_default_eight_aps_at_7_5m(self):
        road = RoadLayout()
        assert road.n_aps == 8
        assert road.ap_x[1] - road.ap_x[0] == DEFAULT_AP_SPACING_M
        assert road.span_m == pytest.approx(52.5)

    def test_uniform_factory(self):
        road = RoadLayout.uniform(4, 10.0)
        assert road.ap_x == [0.0, 10.0, 20.0, 30.0]

    def test_uniform_requires_aps(self):
        with pytest.raises(ValueError):
            RoadLayout.uniform(0)

    def test_two_density_layout(self):
        road = RoadLayout.two_density(3, 3, 7.5, 15.0)
        xs = road.ap_x
        assert xs[1] - xs[0] == 7.5
        assert xs[-1] - xs[-2] == 15.0
        assert road.n_aps == 6

    def test_ap_position_is_elevated_and_set_back(self):
        road = RoadLayout()
        x, y, z = road.ap_position(0)
        assert y < 0 and z > 5

    def test_aim_point_on_road(self):
        road = RoadLayout()
        _x, y, z = road.ap_aim_point(2)
        assert NEAR_LANE_Y_M <= y <= FAR_LANE_Y_M
        assert z < 2.0

    def test_segment_bounds(self):
        road = RoadLayout()
        assert road.segment_bounds(0, 3) == (0.0, 22.5)


class TestTrajectories:
    def test_stationary_never_moves(self):
        traj = StationaryTrajectory((1.0, 2.0, 3.0))
        assert traj.position(0.0) == traj.position(100.0)
        assert traj.speed_mps == 0.0

    def test_linear_constant_velocity(self):
        traj = LinearTrajectory(start_x=0.0, speed_mps=5.0)
        assert traj.position(2.0)[0] == pytest.approx(10.0)

    def test_reverse_direction(self):
        traj = LinearTrajectory(start_x=10.0, speed_mps=-5.0)
        assert traj.position(1.0)[0] == pytest.approx(5.0)
        assert traj.speed_mps == 5.0  # unsigned

    def test_drive_through_starts_before_array(self):
        road = RoadLayout()
        traj = LinearTrajectory.drive_through(road, 15.0, lead_in_m=15.0)
        assert traj.position(0.0)[0] == pytest.approx(-15.0)

    def test_drive_through_reverse_starts_after_array(self):
        road = RoadLayout()
        traj = LinearTrajectory.drive_through(road, 15.0, reverse=True)
        assert traj.position(0.0)[0] > road.span_m
        assert traj.speed_signed_mps < 0

    def test_transit_duration(self):
        road = RoadLayout()
        traj = LinearTrajectory.drive_through(road, 15.0, lead_in_m=15.0)
        duration = traj.transit_duration(road, lead_out_m=15.0)
        assert duration == pytest.approx((52.5 + 30.0) / mph_to_mps(15.0))

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            LinearTrajectory.drive_through(RoadLayout(), 0.0)

    def test_start_time_offset(self):
        traj = LinearTrajectory(start_x=0.0, speed_mps=5.0, start_time=10.0)
        assert traj.position(10.0)[0] == 0.0


class TestScenarios:
    def test_following_spacing(self):
        road = RoadLayout()
        lead, trail = following(road, 15.0, spacing_m=3.0)
        assert lead.position(0)[0] - trail.position(0)[0] == pytest.approx(3.0)
        assert lead.lane_y == trail.lane_y

    def test_parallel_lanes_differ(self):
        a, b = parallel(RoadLayout())
        assert a.lane_y != b.lane_y
        assert a.position(0)[0] == b.position(0)[0]

    def test_opposing_directions(self):
        a, b = opposing(RoadLayout())
        assert a.speed_signed_mps > 0 > b.speed_signed_mps
        assert a.lane_y != b.lane_y


class TestWaypointTrajectory:
    def test_requires_waypoints_and_positive_speed(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([], speed_mps=5.0)
        with pytest.raises(ValueError):
            WaypointTrajectory([(0.0, 0.0, 1.5)], speed_mps=0.0)

    def test_single_waypoint_is_zero_length(self):
        traj = WaypointTrajectory([(3.0, 4.0, 1.5)], speed_mps=5.0)
        assert traj.total_duration_s == 0.0
        assert traj.position(-1.0) == (3.0, 4.0, 1.5)
        assert traj.position(100.0) == (3.0, 4.0, 1.5)
        assert traj.heading_at(0.0) == (0.0, 0.0)

    def test_queries_clamp_outside_the_schedule(self):
        traj = WaypointTrajectory(
            [(0.0, 0.0, 1.5), (10.0, 0.0, 1.5)], speed_mps=5.0,
            start_time=2.0,
        )
        assert traj.position(0.0) == (0.0, 0.0, 1.5)   # before departure
        assert traj.end_time == pytest.approx(4.0)
        assert traj.position(99.0) == (10.0, 0.0, 1.5)  # parked at the end
        assert traj.heading_at(99.0) == (0.0, 0.0)

    def test_interpolation_exactly_at_a_vertex(self):
        traj = WaypointTrajectory(
            [(0.0, 0.0, 1.5), (10.0, 0.0, 1.5), (10.0, 10.0, 1.5)],
            speed_mps=5.0,
        )
        # t=2.0 is exactly the corner: position is the vertex itself and
        # the heading already points down the second leg.
        assert traj.position(2.0) == pytest.approx((10.0, 0.0, 1.5))
        assert traj.heading_at(2.0) == pytest.approx((0.0, 1.0))
        assert traj.arrival_times() == pytest.approx([0.0, 2.0, 4.0])

    def test_zero_length_legs_are_skipped(self):
        traj = WaypointTrajectory(
            [(0.0, 0.0, 1.5), (10.0, 0.0, 1.5), (10.0, 0.0, 1.5),
             (20.0, 0.0, 1.5)],
            speed_mps=5.0,
        )
        assert traj.total_duration_s == pytest.approx(4.0)
        assert traj.position(3.0) == pytest.approx((15.0, 0.0, 1.5))

    def test_midleg_interpolation_matches_speed(self):
        traj = WaypointTrajectory(
            [(0.0, 0.0, 1.5), (0.0, 30.0, 1.5)], speed_mps=6.0,
        )
        x, y, _z = traj.position(2.5)
        assert (x, y) == pytest.approx((0.0, 15.0))
        assert traj.heading_at(2.5) == pytest.approx((0.0, 1.0))


class TestStationaryTrajectory:
    def test_parked_client_never_moves(self):
        traj = StationaryTrajectory((1.0, 2.0, 1.5))
        assert traj.speed_mps == 0.0
        assert traj.position(0.0) == traj.position(1e6) == (1.0, 2.0, 1.5)


def test_default_span_constant_matches_layout():
    assert DEFAULT_SPAN_M == pytest.approx(RoadLayout().span_m)
