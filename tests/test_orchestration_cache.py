"""Unit tests for the persistent result cache (no simulations involved)."""

import json

from repro.orchestration import DriveSummary, JobSpec, ResultCache
from repro.orchestration.cache import default_code_salt


def _summary(job: JobSpec, throughput: float = 12.5) -> DriveSummary:
    return DriveSummary(
        job_key=job.key(), mode=job.mode, speed_mph=job.speed_mph,
        traffic=job.traffic, udp_rate_mbps=job.udp_rate_mbps, seed=job.seed,
        duration_s=5.0, measure_t0=0.55, measure_t1=5.0,
        throughput_mbps=throughput, coverage_throughput_mbps=throughput,
        coverage_t0=1.0, coverage_t1=4.0,
        bin_centres=[1.125, 1.375], bin_mbps=[throughput, throughput],
        switch_events=[(1.0, 3), (2.0, None), (2.5, 4)],
        switch_count=3, trace_counters={"ap_switch": 3},
        events_fired=1000, wall_clock_s=0.1,
    )


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(root=tmp_path)
    job = JobSpec(mode="wgtt", speed_mph=25.0, traffic="udp", seed=7)
    assert cache.get(job) is None
    cache.put(job, _summary(job))
    got = cache.get(job)
    assert got is not None
    assert got.coverage_throughput_mbps == 12.5
    assert got.switch_events == [(1.0, 3), (2.0, None), (2.5, 4)]
    assert got.timeline.ap_at(1.5) == 3
    assert cache.stats() == {"hits": 1, "misses": 1, "writes": 1}


def test_distinct_jobs_do_not_collide(tmp_path):
    cache = ResultCache(root=tmp_path)
    a = JobSpec(seed=1)
    b = JobSpec(seed=2)
    cache.put(a, _summary(a, 10.0))
    cache.put(b, _summary(b, 20.0))
    assert cache.get(a).throughput_mbps == 10.0
    assert cache.get(b).throughput_mbps == 20.0


def test_code_version_salt_invalidates(tmp_path):
    job = JobSpec(seed=3)
    old = ResultCache(root=tmp_path, salt="repro-0.9-schema1")
    old.put(job, _summary(job))
    new = ResultCache(root=tmp_path)  # current default_code_salt()
    assert default_code_salt() != "repro-0.9-schema1"
    assert new.get(job) is None  # a release invalidated the entry


def test_corrupt_entry_is_a_recoverable_miss(tmp_path):
    cache = ResultCache(root=tmp_path)
    job = JobSpec(seed=4)
    cache.put(job, _summary(job))
    path = cache.path_for(job)
    path.write_text("{not json")
    assert cache.get(job) is None
    assert not path.exists()  # corrupt entry removed so put() can heal it
    cache.put(job, _summary(job))
    assert cache.get(job) is not None


def test_entry_records_canonical_job_for_inspection(tmp_path):
    cache = ResultCache(root=tmp_path)
    job = JobSpec(mode="baseline", speed_mph=35.0, traffic="udp", seed=5)
    cache.put(job, _summary(job))
    with open(cache.path_for(job)) as fh:
        record = json.load(fh)
    assert record["job"]["mode"] == "baseline"
    assert record["salt"] == cache.salt


def test_disabled_cache_is_a_no_op():
    cache = ResultCache(root=None)
    job = JobSpec()
    assert not cache.enabled
    cache.put(job, _summary(job))  # dropped silently
    assert cache.get(job) is None


def test_from_env_honours_disable_and_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert not ResultCache.from_env().enabled
    monkeypatch.delenv("REPRO_CACHE_DISABLE")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    cache = ResultCache.from_env()
    assert cache.root == tmp_path / "alt"


def test_pre_city_schema_entries_miss_cleanly(tmp_path):
    """Schema 4 (city fields) must not resurrect schema-3 entries.

    Two layers of protection: the schema version is folded into the key
    salt (old entries are simply not found), and even a record forced
    into the current key slot with a legacy field the dataclass no
    longer knows is treated as a corrupt miss and removed.
    """
    job = JobSpec(seed=11)
    old = ResultCache(root=tmp_path, salt="repro-0.0-schema3")
    old.put(job, _summary(job))
    current = ResultCache(root=tmp_path)
    assert "schema3" not in default_code_salt()
    assert current.get(job) is None  # different salt, different path

    # Forge an old-shape record under the *current* key: from_dict must
    # reject the unknown field, and get() turns that into a clean miss.
    path = current.path_for(job)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = json.loads(old.path_for(job).read_text())
    record["summary"]["legacy_field_removed_in_schema4"] = 1
    path.write_text(json.dumps(record))
    assert current.get(job) is None
    assert not path.exists()  # healed: a later put can rewrite it


def test_pre_distributed_schema4_entries_miss_cleanly(tmp_path):
    """Schema 5 (the distributed-sweep era) must not serve schema-4
    entries: queue-backed and serial runs share one cache pool, so a
    stale entry would silently poison every backend at once."""
    from repro.orchestration import CACHE_SCHEMA_VERSION

    assert CACHE_SCHEMA_VERSION == 5
    job = JobSpec(seed=13)
    old = ResultCache(root=tmp_path, salt="repro-0.0-schema4")
    old.put(job, _summary(job))
    current = ResultCache(root=tmp_path)
    assert "schema4" not in default_code_salt()
    assert "schema5" in default_code_salt()
    assert current.get(job) is None  # old salt, unreachable entry
    # The stale entry is still on disk (misses don't delete foreign
    # salts) but invisible; a fresh run rewrites under the new salt.
    current.put(job, _summary(job, 33.0))
    assert current.get(job).throughput_mbps == 33.0
    assert old.get(job).throughput_mbps == 12.5  # untouched


def test_store_version_tracks_cache_schema_version():
    from repro.orchestration import CACHE_SCHEMA_VERSION
    from repro.orchestration.store import STORE_VERSION

    # One schema number, two layers: bump them together or readers of
    # one format could resurrect stale data from the other.
    assert STORE_VERSION == CACHE_SCHEMA_VERSION


def test_json_era_cache_migrates_into_columnar_shards(tmp_path):
    """The upgrade path: a populated JSON cache packs into the columnar
    store losslessly, ready for aggregator-speed queries."""
    from repro.orchestration import ColumnarStore, migrate_json_cache

    cache = ResultCache(root=tmp_path / "cache")
    originals = {}
    for seed in range(8):
        job = JobSpec(mode="wgtt", speed_mph=25.0, traffic="udp", seed=seed)
        summary = _summary(job, throughput=10.0 + seed)
        cache.put(job, summary)
        originals[job.key()] = summary.to_dict()
    store = ColumnarStore(tmp_path / "store", shard_size=3)
    assert migrate_json_cache(tmp_path / "cache", store) == 8
    assert store.n_shards == 3  # 3 + 3 + 2
    migrated = {s.job_key: s.to_dict() for s in store.summaries()}
    assert migrated == originals


def test_city_summary_fields_roundtrip(tmp_path):
    cache = ResultCache(root=tmp_path)
    job = JobSpec(seed=12, city='{"cols":2,"rows":2}')
    summary = _summary(job)
    summary.n_vehicles = 5
    summary.n_segments = 4
    summary.per_segment_mbps = {0: 3.5, 2: 1.25}
    cache.put(job, summary)
    got = cache.get(job)
    assert got.n_vehicles == 5
    assert got.n_segments == 4
    # JSON stringifies the int keys; from_dict restores them.
    assert got.per_segment_mbps == {0: 3.5, 2: 1.25}
