"""Unit tests for the runtime invariant monitors (repro.invariants)."""

import copy

import pytest

from repro.core.cyclic_queue import INDEX_MODULO
from repro.experiments.runners import run_single_drive
from repro.invariants import InvariantSuite, InvariantViolation
from repro.net.packet import Packet


def udp(seq, flow=1):
    return Packet(size_bytes=1476, src=0, dst=9, protocol="udp",
                  flow_id=flow, seq=seq)


# -------------------------------------------------------------- delivery
def test_unique_deliveries_pass():
    suite = InvariantSuite()
    for seq in range(20):
        suite.on_delivery(0.1 * seq, 9, udp(seq))
    assert suite.ok
    assert suite.checks == 20


def test_duplicate_uid_flagged():
    suite = InvariantSuite()
    packet = udp(5)
    suite.on_delivery(1.0, 9, packet)
    suite.on_delivery(1.1, 9, packet)
    assert not suite.ok
    assert "duplicate delivery" in suite.violations[0]


def test_ring_clone_shares_uid_and_is_flagged():
    # Per-AP ring replicas are shallow copies of one downlink packet;
    # delivering the original AND a clone is the duplicate the cyclic
    # index dedup must prevent.
    suite = InvariantSuite()
    packet = udp(5)
    clone = copy.copy(packet)
    assert clone.uid == packet.uid
    suite.on_delivery(1.0, 9, packet)
    suite.on_delivery(1.2, 9, clone)
    assert suite.violation_count == 1


def test_same_uid_to_different_clients_ok():
    suite = InvariantSuite()
    packet = udp(5)
    suite.on_delivery(1.0, 9, packet)
    suite.on_delivery(1.0, 10, copy.copy(packet))
    assert suite.ok


# ------------------------------------------------------------- reordering
def test_reorder_within_window_tolerated():
    suite = InvariantSuite(reorder_window=512)
    suite.on_delivery(1.0, 9, udp(1000))
    suite.on_delivery(1.1, 9, udp(600))  # regression of 400 < 512
    assert suite.ok


def test_reorder_beyond_window_flagged():
    suite = InvariantSuite(reorder_window=512)
    suite.on_delivery(1.0, 9, udp(1000))
    suite.on_delivery(1.1, 9, udp(400))  # regression of 600 > 512
    assert not suite.ok
    assert "reordering beyond window" in suite.violations[0]


def test_reorder_tracked_per_flow():
    suite = InvariantSuite(reorder_window=10)
    suite.on_delivery(1.0, 9, udp(1000, flow=1))
    suite.on_delivery(1.1, 9, udp(0, flow=2))  # different flow: fine
    assert suite.ok


def test_non_udp_packets_skip_seq_check():
    suite = InvariantSuite(reorder_window=10)
    a = Packet(size_bytes=100, src=0, dst=9, protocol="tcp", flow_id=1, seq=1000)
    b = Packet(size_bytes=100, src=0, dst=9, protocol="tcp", flow_id=1, seq=1)
    suite.on_delivery(1.0, 9, a)
    suite.on_delivery(1.1, 9, b)
    assert suite.ok  # TCP retransmissions legitimately regress


# ---------------------------------------------------------------- indices
def test_index_sequence_wraps_mod_4096():
    suite = InvariantSuite()
    suite.on_index_assigned(1.0, 9, 0, INDEX_MODULO - 2)
    suite.on_index_assigned(1.1, 9, 0, INDEX_MODULO - 1)
    suite.on_index_assigned(1.2, 9, 0, 0)  # the 12-bit wrap
    suite.on_index_assigned(1.3, 9, 0, 1)
    assert suite.ok


def test_index_gap_flagged():
    suite = InvariantSuite()
    suite.on_index_assigned(1.0, 9, 0, 5)
    suite.on_index_assigned(1.1, 9, 0, 7)
    assert not suite.ok
    assert "index monotonicity" in suite.violations[0]


def test_index_sequences_independent_per_epoch():
    # A cold-restarted controller restarts assignment at 0 under a new
    # epoch; that must not read as a regression of the old sequence.
    suite = InvariantSuite()
    suite.on_index_assigned(1.0, 9, 0, 500)
    suite.on_index_assigned(2.0, 9, 1, 0)
    suite.on_index_assigned(2.1, 9, 1, 1)
    assert suite.ok


def test_adopted_index_restarts_expectation():
    # Reconciliation adopts the surviving AP's next_index mid-sequence.
    suite = InvariantSuite()
    suite.on_index_assigned(1.0, 9, 2, 100)
    suite.on_index_adopted(2.0, 9, 2, 4000)
    suite.on_index_assigned(2.1, 9, 2, 4000)
    suite.on_index_assigned(2.2, 9, 2, 4001)
    assert suite.ok


# ---------------------------------------------------------------- serving
def test_single_serving_ap_enforced():
    suite = InvariantSuite()
    suite.on_serving_start(1.0, 3, 9)
    suite.on_serving_stop(1.5, 3, 9)
    suite.on_serving_start(1.5, 4, 9)
    assert suite.ok
    suite.on_serving_start(2.0, 5, 9)  # second AP without a stop
    assert not suite.ok
    assert "multiple serving APs" in suite.violations[0]
    assert suite.serving_aps(9) == {4, 5}


def test_serving_stop_unknown_client_is_noop():
    suite = InvariantSuite()
    suite.on_serving_stop(1.0, 3, 42)
    assert suite.ok


# ------------------------------------------------------------- accounting
def test_violation_storage_is_capped_but_counting_continues():
    suite = InvariantSuite(max_violations=8)
    packet = udp(1)
    suite.on_delivery(0.0, 9, packet)
    for i in range(12):
        suite.on_delivery(0.1 * i, 9, packet)
    assert suite.violation_count == 12
    assert len(suite.violations) == 8
    assert "and 4 more" in suite.report()


def test_assert_ok_raises_with_report():
    suite = InvariantSuite()
    suite.assert_ok()  # clean suite: no raise
    packet = udp(1)
    suite.on_delivery(0.0, 9, packet)
    suite.on_delivery(0.1, 9, packet)
    with pytest.raises(InvariantViolation, match="duplicate delivery"):
        suite.assert_ok()
    assert isinstance(InvariantViolation("x"), AssertionError)


def test_counters_and_report_shapes():
    suite = InvariantSuite()
    suite.on_delivery(0.0, 9, udp(0))
    assert suite.counters() == {"invariant_checks": 1,
                                "invariant_violations": 0}
    assert "invariants ok" in suite.report()


def test_attach_sets_hook_attribute():
    class Component:
        invariants = None

    suite = InvariantSuite()
    a, b = Component(), Component()
    suite.attach(a, None, b)
    assert a.invariants is suite and b.invariants is suite


# ----------------------------------------------------------- end-to-end
def test_clean_drive_passes_all_invariants():
    result = run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=20.0,
        seed=2, duration_s=4.0, check_invariants=True,
    )
    net = result.net
    inv = net.invariants
    assert inv is not None
    assert inv is net.controller.invariants
    assert inv is result.client.invariants
    assert inv.checks > 1000
    assert inv.ok, inv.report()
    counters = net.resilience_counters()
    assert counters["invariant_checks"] == inv.checks
    assert counters["invariant_violations"] == 0
