"""Integration tests for the medium + radio MAC using a mini testbed."""

import pytest

from repro.experiments import ExperimentConfig, build_network
from repro.mobility import RoadLayout, StationaryTrajectory
from repro.net.packet import Packet


def mini_net(seed=0, mode="wgtt", n_aps=2):
    cfg = ExperimentConfig(mode=mode, road=RoadLayout.uniform(n_aps), seed=seed)
    net = build_network(cfg)
    client = net.add_client(
        StationaryTrajectory(net.road.ap_aim_point(0))
    )
    return net, client


def serving_ap(net, client):
    for ap in net.aps:
        pipe = ap.pipelines.get(client.node_id)
        if pipe is not None and pipe.serving:
            return ap
    return None


def test_probes_generate_csi_and_elect_serving_ap():
    net, client = mini_net()
    net.run(until=0.5)
    assert net.trace.count("csi") > 0
    assert net.controller.serving_ap(client.node_id) is not None


def test_downlink_packet_delivered_over_the_air():
    net, client = mini_net()
    got = []
    client.register_flow(5, lambda p, t: got.append(p.seq))
    net.run(until=0.3)  # let the serving AP be elected
    for seq in range(20):
        packet = Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                        protocol="udp", flow_id=5, seq=seq)
        net.controller.send_downlink(packet)
    net.run(until=0.6)
    assert sorted(got) == list(range(20))


def test_uplink_packet_reaches_controller_once():
    net, client = mini_net()
    got = []
    net.controller.register_uplink_handler(6, lambda p, t: got.append(p.seq))
    net.run(until=0.3)
    for seq in range(10):
        client.uplink_send(Packet(size_bytes=500, src=client.node_id,
                                  dst=net.server_id, flow_id=6, seq=seq))
    net.run(until=0.8)
    assert sorted(got) == list(range(10))  # de-dup: exactly one copy each


def test_block_acks_flow():
    net, client = mini_net()
    net.run(until=0.3)
    for seq in range(30):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=1, seq=seq)
        )
    net.run(until=0.8)
    ap = net.aps[0]
    state = ap.radio.peers.get(client.node_id)
    assert state is not None and state.mpdus_acked > 0


def test_aggregates_form_under_backlog():
    net, client = mini_net()
    net.run(until=0.3)
    for seq in range(200):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=1, seq=seq)
        )
    net.run(until=1.0)
    sizes = [r["n_mpdus"] for r in net.trace.iter_records("ampdu_tx")
             if not r["uplink"]]
    assert max(sizes) >= 8  # aggregation actually happening


def test_medium_serializes_mutually_audible_transmitters():
    """Two APs near each other never transmit overlapping data frames."""
    net, client = mini_net()
    net.run(until=0.3)
    for seq in range(300):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=1, seq=seq)
        )
    net.run(until=1.5)
    # Data transmissions by APs, reconstructed from the trace with their
    # airtime: starts must be separated (no overlap between AP frames).
    from repro.mac.airtime import ampdu_airtime_s
    from repro.phy.mcs import MCS_TABLE

    spans = []
    for r in net.trace.iter_records("ampdu_tx"):
        if r["uplink"]:
            continue
        airtime = ampdu_airtime_s([1500] * r["n_mpdus"], MCS_TABLE[r["mcs"]])
        spans.append((r.time - airtime, r.time))  # trace stamps the start
    spans.sort()
    overlaps = sum(
        1 for (s1, e1), (s2, e2) in zip(spans, spans[1:]) if s2 < s1
    )
    assert overlaps == 0


def test_rx_power_symmetric_ap_pair():
    net, client = mini_net()
    a, b = net.aps[0].radio, net.aps[1].radio
    pab = net.medium.rx_power_dbm(a, b, 0.0)
    pba = net.medium.rx_power_dbm(b, a, 0.0)
    assert pab == pytest.approx(pba)


def test_adjacent_aps_carrier_sense_each_other():
    net, client = mini_net()
    a, b = net.aps[0].radio, net.aps[1].radio
    assert net.medium.rx_power_dbm(a, b, 0.0) > net.medium.params.cs_threshold_dbm


def test_client_near_ap_is_audible():
    net, client = mini_net()
    ap = net.aps[0].radio
    assert net.medium.rx_power_dbm(client.radio, ap, 0.0) > \
        net.medium.params.cs_threshold_dbm


def test_link_between_lookup():
    net, client = mini_net()
    pair = net.medium.link_between(net.aps[0].node_id, client.node_id)
    assert pair is not None
    link, uplink = pair
    assert not uplink
    link2, uplink2 = net.medium.link_between(client.node_id, net.aps[0].node_id)
    assert uplink2
    assert link is link2
