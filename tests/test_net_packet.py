"""Unit and property tests for packets, tunneling, de-dup keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import TUNNEL_HEADER_BYTES, Packet


def make(size=1500, **kw):
    kw.setdefault("src", 1)
    kw.setdefault("dst", 200)
    return Packet(size_bytes=size, **kw)


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        make(size=0)


def test_uids_unique():
    assert make().uid != make().uid


def test_encapsulate_adds_header_bytes():
    p = make(size=1000)
    p.encapsulate(1, 100)
    assert p.size_bytes == 1000 + TUNNEL_HEADER_BYTES
    assert p.is_tunneled


def test_decapsulate_restores_size_and_returns_layer():
    p = make(size=1000)
    p.encapsulate(1, 100)
    outer = p.decapsulate()
    assert outer == (1, 100)
    assert p.size_bytes == 1000
    assert not p.is_tunneled


def test_nested_tunneling_lifo():
    p = make()
    p.encapsulate(1, 100)
    p.encapsulate(100, 1)
    assert p.decapsulate() == (100, 1)
    assert p.decapsulate() == (1, 100)


def test_decapsulate_untunneled_rejected():
    with pytest.raises(ValueError):
        make().decapsulate()


def test_dedup_key_is_48_bits():
    p = make()
    assert 0 <= p.dedup_key() < (1 << 48)


def test_dedup_key_distinguishes_ip_id():
    a = make(ip_id=1)
    b = make(ip_id=2)
    assert a.dedup_key() != b.dedup_key()


def test_dedup_key_distinguishes_source():
    a = make(ip_id=7)
    a.src = 200
    b = make(ip_id=7)
    b.src = 201
    assert a.dedup_key() != b.dedup_key()


def test_ip_id_wraps_16_bits():
    p = make(ip_id=0x1FFFF)
    assert p.dedup_key() & 0xFFFF == 0xFFFF


@given(src=st.integers(0, 2**32 - 1), ip_id=st.integers(0, 2**16 - 1))
def test_dedup_key_roundtrip(src, ip_id):
    """Property: the 48-bit key encodes (src, ip_id) injectively."""
    p = Packet(size_bytes=100, src=src, dst=0, ip_id=ip_id)
    key = p.dedup_key()
    assert key >> 16 == src
    assert key & 0xFFFF == ip_id


def test_wgtt_index_default_none():
    assert make().wgtt_index is None
