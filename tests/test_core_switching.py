"""Integration tests for the WGTT stop/start/ack switching protocol."""

import numpy as np

from repro.experiments import ExperimentConfig, build_network
from repro.mobility import LinearTrajectory, RoadLayout
from repro.net.ethernet import BackhaulParams
from repro.net.packet import Packet


def driving_net(seed=0, **cfg):
    config = ExperimentConfig(mode="wgtt", road=RoadLayout(), seed=seed, **cfg)
    net = build_network(config)
    client = net.add_client(LinearTrajectory.drive_through(net.road, 15.0))
    return net, client


def feed(net, client, n, flow=1, start_seq=0):
    for seq in range(start_seq, start_seq + n):
        net.controller.send_downlink(
            Packet(size_bytes=1476, src=net.server_id, dst=client.node_id,
                   protocol="udp", flow_id=flow, seq=seq)
        )


def test_switches_happen_during_drive():
    net, client = driving_net()
    got = []
    client.register_flow(1, lambda p, t: got.append(p.seq))

    def pump(seq=[0]):
        feed(net, client, 5, start_seq=seq[0])
        seq[0] += 5

    net.sim.call_every(0.005, pump)
    net.run(until=8.0)
    switches = net.trace.records("ap_switch")
    assert len(switches) >= 5
    # Multiple distinct APs served the client.
    assert len({r["ap"] for r in switches}) >= 3


def test_switch_protocol_message_order():
    """stop is processed before start, which precedes the ack."""
    net, client = driving_net()
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=6.0)
    stops = net.trace.times("stop_processed")
    starts = net.trace.times("start_processed")
    assert stops and starts
    # Every stop is followed by a start within ~40 ms.
    for t_stop in stops[:10]:
        assert any(t_stop < t_start < t_stop + 0.040 for t_start in starts)


def test_switch_execution_time_matches_table1():
    """stop->ack takes roughly 13-22 ms (Table 1 reports 17 +/- 5)."""
    net, client = driving_net()
    net.sim.call_every(0.002, lambda: feed(net, client, 8))
    net.run(until=8.0)
    durations = []
    pending = {}
    for r in net.trace.records():
        if r.kind == "switch_initiated" and r["old"] is not None:
            pending[r["client"]] = r.time
        elif r.kind == "ap_switch" and r["client"] in pending:
            durations.append(r.time - pending.pop(r["client"]))
    assert durations
    mean = float(np.mean(durations))
    assert 0.010 < mean < 0.030


def test_no_concurrent_switches_per_client():
    net, client = driving_net()
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=6.0)
    # Every initiate is matched by an ack before the next initiate.
    events = [
        (r.time, r.kind) for r in net.trace.records()
        if r.kind in ("switch_initiated", "ap_switch")
    ]
    depth = 0
    for _t, kind in events:
        if kind == "switch_initiated":
            depth += 1
        else:
            depth -= 1
        assert 0 <= depth <= 1


def test_stop_hands_over_ring_position():
    """After a switch, delivery continues without repeating old indices."""
    net, client = driving_net()
    got = []
    client.register_flow(1, lambda p, t: got.append(p.seq))
    net.sim.call_every(0.004, lambda s=[0]: (feed(net, client, 4, start_seq=s[0]),
                                             s.__setitem__(0, s[0] + 4)))
    net.run(until=8.0)
    assert len(got) > 500
    # At most a small fraction duplicated (MAC retries across switches).
    assert len(got) - len(set(got)) < len(got) * 0.05


def test_lost_control_packets_recovered_by_retransmission():
    """With 20% backhaul loss the 30 ms timeout keeps switching alive."""
    net, client = driving_net(
        backhaul_params=BackhaulParams(loss_probability=0.2)
    )
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=8.0)
    assert net.trace.count("switch_retransmit") > 0
    assert net.trace.count("ap_switch") >= 3


def test_hysteresis_limits_switch_rate():
    from repro.core.controller import ControllerParams

    rates = {}
    for hyst in (0.040, 0.200):
        net, client = driving_net(
            controller_params=ControllerParams(hysteresis_s=hyst)
        )
        net.sim.call_every(0.005, lambda n=net, c=client: feed(n, c, 3))
        net.run(until=8.0)
        rates[hyst] = net.trace.count("ap_switch")
    assert rates[0.040] > rates[0.200]


def test_serving_update_broadcast_to_all_aps():
    net, client = driving_net()
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=4.0)
    serving = net.controller.serving_ap(client.node_id)
    assert serving is not None
    for ap in net.aps:
        assert ap.serving_map.get(client.node_id) == serving


# --------------------------------------------------------------- ack loss
def drop_switch_acks(net, count=None):
    """Deterministically drop the first ``count`` SwitchAck sends.

    ``count=None`` drops every ack.  Returns a dict whose ``"dropped"``
    entry counts the acks eaten so far.
    """
    from repro.core.messages import SwitchAck

    original = net.backhaul.send
    state = {"dropped": 0}

    def send(src, dst, packet):
        if packet.protocol == "ctrl" and isinstance(packet.payload, SwitchAck):
            if count is None or state["dropped"] < count:
                state["dropped"] += 1
                return
        original(src, dst, packet)

    net.backhaul.send = send
    return state


def test_ack_lost_once_recovered_by_one_retransmit():
    net, client = driving_net()
    dropped = drop_switch_acks(net, count=1)
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=6.0)
    assert dropped["dropped"] == 1
    # The handshake retried and every switch eventually completed.
    assert net.trace.count("switch_retransmit") >= 1
    assert net.trace.count("ap_switch") >= 3
    assert net.trace.count("switch_failed") == 0


def test_ack_lost_twice_recovered_by_retransmits():
    net, client = driving_net()
    dropped = drop_switch_acks(net, count=2)
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=6.0)
    assert dropped["dropped"] == 2
    assert net.trace.count("switch_retransmit") >= 2
    assert net.trace.count("ap_switch") >= 3
    assert net.trace.count("switch_failed") == 0


def test_ack_lost_permanently_bounded_give_up():
    """With every ack eaten, the controller retries a bounded number of
    times per handshake, declares failure, and never completes a switch."""
    from repro.core.controller import ControllerParams

    params = ControllerParams(max_switch_attempts=4)
    net, client = driving_net(controller_params=params)
    drop_switch_acks(net, count=None)
    net.sim.call_every(0.005, lambda: feed(net, client, 3))
    net.run(until=6.0)
    assert net.trace.count("ap_switch") == 0
    assert net.trace.count("switch_failed") >= 1
    # Retries stay bounded: at most (max_attempts - 1) per failed handshake.
    retransmits = net.trace.count("switch_retransmit")
    failures = net.trace.count("switch_failed")
    initiated = net.trace.count("switch_initiated")
    assert retransmits <= initiated * (params.max_switch_attempts - 1)
    assert failures >= 1
