"""Unit tests for the work-queue backends (no simulations involved).

Both backends are exercised through the same protocol: claim
exclusivity, heartbeat renewal, lease expiry and requeue, bounded
retries, result draining with crash-window dedup.  The FileQueue tests
additionally cover the on-disk invariants (torn result lines, lease
files, attempts accounting) that make many-process runs safe.
"""

import json
import time

import pytest

from repro.orchestration import FileQueue, JobSpec, MemoryQueue
from repro.orchestration.queue import job_name


def jobs(n=3):
    return [JobSpec(mode="baseline", speed_mph=35.0, traffic="udp",
                    udp_rate_mbps=5.0, seed=i, n_aps=3) for i in range(n)]


def summary_dict(job):
    return {"job_key": job.key(), "seed": job.seed}


# ------------------------------------------------------------- job naming
def test_job_names_are_order_stable_and_fs_safe():
    js = jobs(2)
    a = job_name(0, js[0])
    b = job_name(1, js[1])
    assert a != b
    assert a.startswith("000000-") and b.startswith("000001-")
    assert "/" not in a and ":" not in a
    assert len(a) <= 120


# ---------------------------------------------------------------- memory
class TestMemoryQueue:
    def test_claim_is_exclusive_until_released(self):
        q = MemoryQueue()
        q.enqueue(jobs(2))
        c1 = q.claim("w1")
        c2 = q.claim("w2")
        assert c1.name != c2.name  # no double-claim
        assert q.claim("w3") is None  # everything leased
        q.complete(c1, summary_dict(c1.job))
        assert q.claim("w3") is None  # completed, not requeued

    def test_pull_order_injection_controls_scheduling(self):
        q = MemoryQueue(pull_order=lambda names: names.reverse())
        names = q.enqueue(jobs(3))
        claimed = [q.claim("w").name for _ in range(3)]
        assert claimed == list(reversed(names))

    def test_expired_lease_requeues_and_counts_attempt(self):
        q = MemoryQueue(max_retries=2)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        q.expire_lease(claim.name)
        assert q.requeue_expired() == 1
        again = q.claim("w2")
        assert again.name == claim.name
        assert again.attempt == 2

    def test_heartbeat_keeps_lease_alive(self):
        q = MemoryQueue()
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        q.expire_lease(claim.name)
        q.heartbeat(claim)  # worker is alive after all
        assert q.requeue_expired() == 0

    def test_retries_exhausted_moves_job_to_failed(self):
        q = MemoryQueue(max_retries=1)
        q.enqueue(jobs(1))
        for _ in range(2):  # first try + one retry
            claim = q.claim("w")
            q.fail(claim, "boom")
        assert q.jobs_remaining() == 0
        assert list(q.failed.values()) == ["boom", ]
        assert q.status()["failed"] == 1

    def test_drain_returns_each_result_once(self):
        q = MemoryQueue()
        q.enqueue(jobs(2))
        c = q.claim("w")
        q.complete(c, summary_dict(c.job))
        first = q.drain_results()
        assert [name for name, _ in first] == [c.name]
        assert q.drain_results() == []


# ------------------------------------------------------------------ file
class TestFileQueue:
    def test_claim_is_exclusive_across_instances(self, tmp_path):
        # Two FileQueue objects on one root model two worker processes.
        a = FileQueue(tmp_path)
        b = FileQueue(tmp_path)
        a.enqueue(jobs(2))
        c1 = a.claim("w1")
        c2 = b.claim("w2")
        assert c1.name != c2.name
        assert b.claim("w3") is None

    def test_complete_spools_result_before_removing_job(self, tmp_path):
        q = FileQueue(tmp_path)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        q.complete(claim, summary_dict(claim.job))
        assert q.jobs_remaining() == 0
        assert not (q.leases_dir / f"{claim.name}.json").exists()
        drained = q.drain_results()
        assert len(drained) == 1
        name, summary = drained[0]
        assert name == claim.name
        assert summary["job_key"] == claim.job.key()

    def test_stale_lease_is_reclaimed_fresh_one_is_not(self, tmp_path):
        q = FileQueue(tmp_path, lease_timeout_s=60.0)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        assert q.requeue_expired() == 0  # fresh lease survives
        # Backdate the lease past the timeout: the worker died.
        lease = q.leases_dir / f"{claim.name}.json"
        payload = json.loads(lease.read_text())
        payload["ts"] = time.time() - 120.0
        lease.write_text(json.dumps(payload))
        assert q.requeue_expired() == 1
        again = q.claim("w2")
        assert again.name == claim.name and again.attempt == 2

    def test_heartbeat_renews_the_lease_timestamp(self, tmp_path):
        q = FileQueue(tmp_path, lease_timeout_s=60.0)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        lease = q.leases_dir / f"{claim.name}.json"
        payload = json.loads(lease.read_text())
        payload["ts"] = time.time() - 120.0
        lease.write_text(json.dumps(payload))
        q.heartbeat(claim)  # still alive: ts rewritten to now
        assert q.requeue_expired() == 0

    def test_retries_exhausted_lands_in_failed_dir(self, tmp_path):
        q = FileQueue(tmp_path, max_retries=1)
        q.enqueue(jobs(1))
        for _ in range(2):
            claim = q.claim("w")
            q.fail(claim, "injected")
        assert q.jobs_remaining() == 0
        failures = q.failures()
        assert len(failures) == 1
        record = next(iter(failures.values()))
        assert record["error"] == "injected"
        assert record["attempts"] == 2
        assert record["job"]["seed"] == 0  # spec preserved for forensics

    def test_torn_result_line_stays_unread_until_complete(self, tmp_path):
        q = FileQueue(tmp_path)
        q.enqueue(jobs(2))
        c1 = q.claim("w1")
        q.complete(c1, summary_dict(c1.job))
        # A worker died mid-write: append half a record, no newline.
        spool = q.results_dir / "w1.jsonl"
        with open(spool, "a") as fh:
            fh.write('{"name": "torn", "summary": {')
        assert [n for n, _ in q.drain_results()] == [c1.name]
        # The torn tail is completed by a later append; both now land.
        c2 = q.claim("w1")
        with open(spool, "a") as fh:
            fh.write('}}\n')  # close the torn record
        q.complete(c2, summary_dict(c2.job))
        drained = q.drain_results()
        assert [n for n, _ in drained] == ["torn", c2.name]

    def test_duplicate_results_from_crash_window_dedup(self, tmp_path):
        q = FileQueue(tmp_path)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        q.complete(claim, summary_dict(claim.job))
        # Crash window: the same job completed twice (different worker).
        spool = q.results_dir / "w2.jsonl"
        with open(spool, "a") as fh:
            fh.write(json.dumps({"name": claim.name,
                                 "summary": summary_dict(claim.job)}) + "\n")
        assert len(q.drain_results()) == 1  # second copy deduplicated

    def test_death_after_spool_before_cleanup_is_not_a_retry(self, tmp_path):
        # The complete() ordering guarantee: result durable first, then
        # job removal, then lease removal.  A worker that dies between
        # spooling and lease cleanup leaves a stale lease over a job
        # that no longer exists -- requeue_expired must NOT count it.
        q = FileQueue(tmp_path, lease_timeout_s=0.0)
        q.enqueue(jobs(1))
        claim = q.claim("w1")
        spool = q.results_dir / "w1.jsonl"
        with open(spool, "a") as fh:
            fh.write(json.dumps({"name": claim.name,
                                 "summary": summary_dict(claim.job)}) + "\n")
        (q.jobs_dir / f"{claim.name}.json").unlink()
        # ... died here: lease file still present, now expired.
        time.sleep(0.01)
        assert q.requeue_expired() == 0
        assert not (q.leases_dir / f"{claim.name}.json").exists()
        assert len(q.drain_results()) == 1

    def test_status_counters(self, tmp_path):
        q = FileQueue(tmp_path, max_retries=2)
        q.enqueue(jobs(3))
        c = q.claim("w1")
        assert q.status() == {"queued": 2, "leased": 1, "done": 0,
                              "failed": 0, "requeued": 0}
        q.complete(c, summary_dict(c.job))
        c2 = q.claim("w1")
        q.fail(c2, "boom")
        status = q.status()
        assert status["done"] == 1
        assert status["requeued"] == 1  # the failed attempt counts
        assert status["queued"] == 2 and status["leased"] == 0

    def test_rejects_double_enqueue_names_distinct(self, tmp_path):
        q = FileQueue(tmp_path)
        first = q.enqueue(jobs(2))
        second = q.enqueue(jobs(2)[:1])
        assert len(set(first) | set(second)) == 3

    def test_protocol_base_raises(self):
        from repro.orchestration import WorkQueue

        q = WorkQueue()
        with pytest.raises(NotImplementedError):
            q.claim("w")
