"""TCP tests over a controllable lossy pipe (no radio involved)."""


import numpy as np
import pytest

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.transport.tcp import MSS_BYTES, TcpReceiver, TcpSender


class Pipe:
    """Bidirectional delay pipe with programmable loss."""

    def __init__(self, sim, delay_s=0.01, loss_fn=None, bandwidth_bps=None):
        self.sim = sim
        self.delay_s = delay_s
        self.loss_fn = loss_fn or (lambda p: False)
        self.bandwidth_bps = bandwidth_bps
        self._busy_until = 0.0
        self.sender = None
        self.receiver = None
        self.dropped = 0

    def to_receiver(self, packet):
        self._send(packet, lambda p: self.receiver.on_packet(p, self.sim.now))

    def to_sender(self, packet):
        self._send(packet, lambda p: self.sender.on_packet(p, self.sim.now))

    def _send(self, packet, deliver):
        if self.loss_fn(packet):
            self.dropped += 1
            return
        delay = self.delay_s
        if self.bandwidth_bps:
            start = max(self.sim.now, self._busy_until)
            tx_time = packet.size_bytes * 8 / self.bandwidth_bps
            self._busy_until = start + tx_time
            delay = self._busy_until - self.sim.now + self.delay_s
        self.sim.schedule(delay, deliver, packet)


def make_flow(loss_fn=None, app_limit=None, delay_s=0.01, bandwidth_bps=None, seed=0):
    sim = Simulator()
    pipe = Pipe(sim, delay_s=delay_s, loss_fn=loss_fn, bandwidth_bps=bandwidth_bps)
    sender = TcpSender(sim, pipe.to_receiver, src=1, dst=2, flow_id=1,
                       app_limit_bytes=app_limit)
    receiver = TcpReceiver(sim, pipe.to_sender, src=2, dst=1, flow_id=1)
    pipe.sender, pipe.receiver = sender, receiver

    def cross(packet):
        receiver.on_packet(packet, sim.now)

    return sim, sender, receiver, pipe


def test_lossless_transfer_completes():
    sim, sender, receiver, _ = make_flow(app_limit=200 * MSS_BYTES)
    sender.start()
    sim.run(until=30.0)
    assert sender.done
    assert receiver.rcv_nxt == 200 * MSS_BYTES


def test_bytes_delivered_in_order():
    sim, sender, receiver, _ = make_flow(app_limit=50 * MSS_BYTES)
    progress = [p for _, p in receiver.progress]
    sender.start()
    sim.run(until=30.0)
    values = [p for _, p in receiver.progress]
    assert values == sorted(values)


def test_slow_start_doubles_window():
    sim, sender, receiver, _ = make_flow()
    initial = sender.cwnd
    sender.start()
    sim.run(until=0.1)  # a few RTTs at 10 ms
    assert sender.cwnd > 2 * initial


def test_random_loss_recovers_without_stall():
    rng = np.random.default_rng(1)
    loss = lambda p: p.payload[0] == "seg" and rng.random() < 0.02
    sim, sender, receiver, pipe = make_flow(loss_fn=loss, app_limit=400 * MSS_BYTES)
    sender.start()
    sim.run(until=120.0)
    assert sender.done
    assert pipe.dropped > 0
    assert sender.retransmissions >= pipe.dropped


def test_burst_loss_triggers_sack_recovery_not_timeout():
    """A 15-segment burst loss (a WGTT switch) must be repaired by SACK
    fast recovery, not an RTO."""
    window = {"drop": False, "count": 0}

    def loss(p):
        if p.payload[0] != "seg":
            return False
        if window["drop"] and window["count"] < 15:
            window["count"] += 1
            return True
        return False

    sim, sender, receiver, pipe = make_flow(
        loss_fn=loss, app_limit=600 * MSS_BYTES, bandwidth_bps=30e6
    )
    sim.schedule(0.10, lambda: window.__setitem__("drop", True))
    sim.schedule(0.15, lambda: window.__setitem__("drop", False))
    sender.start()
    sim.run(until=60.0)
    assert sender.done
    assert window["count"] > 0
    assert sender.timeouts == 0


def test_total_blackout_causes_rto_backoff():
    state = {"dead": False}
    loss = lambda p: state["dead"]
    sim, sender, receiver, _ = make_flow(loss_fn=loss, bandwidth_bps=20e6)
    sender.start()
    sim.schedule(0.5, lambda: state.__setitem__("dead", True))
    sim.run(until=10.0)
    assert sender.timeouts >= 3
    assert sender.rto > 1.0  # exponential backoff kicked in
    assert sender.cwnd == sender.mss


def test_recovery_after_blackout_ends():
    state = {"dead": False}
    loss = lambda p: state["dead"]
    sim, sender, receiver, _ = make_flow(loss_fn=loss, app_limit=300 * MSS_BYTES)
    sender.start()
    sim.schedule(0.2, lambda: state.__setitem__("dead", True))
    sim.schedule(1.5, lambda: state.__setitem__("dead", False))
    sim.run(until=60.0)
    assert sender.done


def test_rtt_estimation():
    sim, sender, receiver, _ = make_flow(delay_s=0.025, app_limit=100 * MSS_BYTES)
    sender.start()
    sim.run(until=5.0)
    assert sender.srtt == pytest.approx(0.05, rel=0.5)  # ~2 * one-way


def test_rto_has_floor():
    sim, sender, receiver, _ = make_flow(delay_s=0.001, app_limit=50 * MSS_BYTES)
    sender.start()
    sim.run(until=2.0)
    assert sender.rto >= TcpSender.MIN_RTO_S


def test_cwnd_clamped_on_lossless_path():
    """Without a window clamp an infinite-capacity path would grow cwnd
    (and the event count) exponentially forever."""
    sim, sender, receiver, _ = make_flow()
    sender.start()
    sim.run(until=1.5)
    assert sender.cwnd <= TcpSender.MAX_WINDOW_BYTES


def test_bandwidth_limited_throughput():
    sim, sender, receiver, _ = make_flow(
        app_limit=2_000_000, bandwidth_bps=8e6, delay_s=0.005
    )
    sender.start()
    sim.run(until=60.0)
    assert sender.done
    # ~2 s at 8 Mb/s: completion must be bandwidth-bound, not instant.
    done_at = [t for t, b in receiver.progress if b >= 2_000_000][0]
    assert 1.8 < done_at < 6.0


def test_duplicate_segments_counted_not_delivered_twice():
    sim, sender, receiver, pipe = make_flow(app_limit=10 * MSS_BYTES)
    sender.start()
    sim.run(until=1.0)
    # Replay the first segment.
    dup = Packet(size_bytes=MSS_BYTES + 40, src=1, dst=2, flow_id=1, seq=0,
                 payload=("seg", 0, MSS_BYTES))
    receiver.on_packet(dup, sim.now)
    assert receiver.duplicate_segments >= 1
    assert receiver.rcv_nxt == 10 * MSS_BYTES


def test_delayed_ack_reduces_ack_count():
    sim, sender, receiver, _ = make_flow(app_limit=100 * MSS_BYTES)
    sender.start()
    sim.run(until=30.0)
    assert receiver.acks_sent < receiver.segments_received


def test_ack_carries_sack_blocks_for_ooo_data():
    sim = Simulator()
    acks = []
    receiver = TcpReceiver(sim, acks.append, src=2, dst=1, flow_id=1)
    seg = lambda s, e: Packet(size_bytes=e - s + 40, src=1, dst=2, flow_id=1,
                              seq=s, payload=("seg", s, e))
    receiver.on_packet(seg(0, 1448), 0.0)
    receiver.on_packet(seg(2896, 4344), 0.0)  # hole at 1448
    last = acks[-1]
    assert last.payload[1] == 1448
    assert last.payload[2] == ((2896, 4344),)


def test_tcp_done_trace_emitted():
    from repro.sim.trace import TraceRecorder

    sim = Simulator()
    trace = TraceRecorder()
    pipe = Pipe(sim)
    sender = TcpSender(sim, pipe.to_receiver, 1, 2, 1,
                       app_limit_bytes=5 * MSS_BYTES, trace=trace)
    receiver = TcpReceiver(sim, pipe.to_sender, 2, 1, 1)
    pipe.sender, pipe.receiver = sender, receiver
    sender.start()
    sim.run(until=5.0)
    assert trace.count("tcp_done") == 1
