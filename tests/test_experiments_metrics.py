"""Unit tests for the experiment metrics and builder."""

import numpy as np
import pytest

from repro.experiments.builder import ExperimentConfig, build_network
from repro.experiments.metrics import (
    ServingTimeline,
    cdf,
    mean_throughput_mbps,
    throughput_timeseries,
)
from repro.mobility import StationaryTrajectory
from repro.sim.trace import TraceRecorder


class TestThroughput:
    def test_constant_rate_binning(self):
        # 1000 bytes every 10 ms = 0.8 Mb/s
        deliveries = [(0.01 * i, 1000) for i in range(100)]
        t, mbps = throughput_timeseries(deliveries, 0.0, 1.0, bin_s=0.25)
        assert len(t) == 4
        assert np.allclose(mbps, 0.8, rtol=0.1)

    def test_mean_throughput(self):
        deliveries = [(0.1, 125_000), (0.5, 125_000)]  # 2 Mb over 1 s
        assert mean_throughput_mbps(deliveries, 0.0, 1.0) == pytest.approx(2.0)

    def test_mean_throughput_respects_window(self):
        deliveries = [(0.1, 1000), (5.0, 10_000_000)]
        assert mean_throughput_mbps(deliveries, 0.0, 1.0) == pytest.approx(0.008)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            throughput_timeseries([], 1.0, 1.0)

    def test_zero_window_zero_throughput(self):
        assert mean_throughput_mbps([], 1.0, 1.0) == 0.0


class TestCdf:
    def test_cdf_shape(self):
        values, probs = cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == 1.0
        assert probs[0] == pytest.approx(1 / 3)

    def test_cdf_empty(self):
        values, probs = cdf([])
        assert len(values) == 0


class TestServingTimeline:
    def test_ap_at_lookup(self):
        tl = ServingTimeline([(1.0, 100), (2.0, 101)])
        assert tl.ap_at(0.5) is None
        assert tl.ap_at(1.5) == 100
        assert tl.ap_at(2.5) == 101

    def test_from_trace_filters_by_client(self):
        tr = TraceRecorder()
        tr.emit(1.0, "ap_switch", client=200, ap=100)
        tr.emit(2.0, "ap_switch", client=999, ap=107)
        tl = ServingTimeline.from_trace(tr, 200)
        assert tl.switch_count == 1
        assert tl.ap_at(1.5) == 100

    def test_segments(self):
        tl = ServingTimeline([(1.0, 100), (2.0, 101)])
        segs = tl.segments(3.0)
        assert segs == [(1.0, 2.0, 100), (2.0, 3.0, 101)]


class TestBuilder:
    def test_wgtt_network_shape(self):
        net = build_network(ExperimentConfig(mode="wgtt", seed=0))
        assert len(net.aps) == 8
        assert net.controller is not None
        # All APs share the WGTT BSSID.
        assert len({ap.radio.bssid for ap in net.aps}) == 1

    def test_baseline_network_shape(self):
        net = build_network(ExperimentConfig(mode="baseline", seed=0))
        # Every AP has its own BSSID.
        assert len({ap.radio.bssid for ap in net.aps}) == 8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="magic")

    def test_add_client_creates_links_to_every_ap(self):
        net = build_network(ExperimentConfig(mode="wgtt", seed=0))
        client = net.add_client(StationaryTrajectory((0.0, 2.0, 1.5)))
        assert len(net.links_for_client(client)) == 8

    def test_same_seed_reproducible(self):
        def run_once():
            net = build_network(ExperimentConfig(mode="wgtt", seed=5))
            client = net.add_client(StationaryTrajectory(net.road.ap_aim_point(1)))
            net.run(until=0.5)
            return net.trace.count("csi"), net.controller.serving_ap(client.node_id)

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            net = build_network(ExperimentConfig(mode="wgtt", seed=seed))
            client = net.add_client(StationaryTrajectory(net.road.ap_aim_point(1)))
            net.run(until=0.5)
            links = net.links_for_client(client)
            return links[0].esnr_db(0.25)

        assert run_once(1) != run_once(2)

    def test_build_network_with_overrides(self):
        net = build_network(mode="baseline", seed=3)
        assert net.config.mode == "baseline"
