"""Unit tests for the streaming sweep aggregator.

The property that matters for the queue backend: snapshots are a pure
function of the *set* of consumed summaries -- arrival order, duplicate
deliveries (crash windows), and the add()-vs-consume_store() path must
all serialise to identical bytes.
"""

import json
import random

from repro.orchestration import ColumnarStore, SweepAggregator

from tests.test_orchestration_store import make_summary


def test_snapshot_bytes_independent_of_arrival_order():
    summaries = [make_summary(s, mode=m)
                 for s in range(12) for m in ("wgtt", "baseline")]
    a = SweepAggregator()
    for s in summaries:
        a.add(s)
    b = SweepAggregator()
    shuffled = list(summaries)
    random.Random(99).shuffle(shuffled)
    for s in shuffled:
        b.add(s)
    assert a.to_json() == b.to_json()


def test_duplicate_job_key_overwrites_not_double_counts():
    agg = SweepAggregator()
    s = make_summary(1)
    agg.add(s)
    agg.add(s)  # crash-window duplicate delivery
    snap = agg.snapshot()
    assert agg.jobs_seen == 1
    assert snap["cells"][0]["n"] == 1


def test_cell_stats_are_correct():
    agg = SweepAggregator(metric="throughput_mbps")
    values = []
    for seed in range(4):
        s = make_summary(seed)
        values.append(s.throughput_mbps)
        agg.add(s)
    cell = agg.snapshot()["cells"][0]
    mean = sum(values) / len(values)
    assert cell["n"] == 4
    assert cell["mean"] == mean
    assert cell["min"] == min(values) and cell["max"] == max(values)
    assert cell["std"] == (sum((v - mean) ** 2 for v in values) / 4) ** 0.5
    assert agg.cell_mean("wgtt", 25.0, "udp") == mean


def test_policy_is_part_of_the_cell_key():
    agg = SweepAggregator()
    agg.add(make_summary(1, policy=""))
    agg.add(make_summary(2, policy="sticky"))
    cells = agg.snapshot()["cells"]
    assert len(cells) == 2
    assert sorted(c["policy"] for c in cells) == ["", "sticky"]


def test_consume_store_matches_add_path(tmp_path):
    summaries = [make_summary(s, mode=("wgtt" if s % 2 else "baseline"))
                 for s in range(20)]
    store = ColumnarStore(tmp_path, shard_size=7)
    store.extend(summaries)
    store.flush()
    via_store = SweepAggregator()
    assert via_store.consume_store(store) == 20
    via_add = SweepAggregator()
    for s in summaries:
        via_add.add(s)
    assert via_store.to_json() == via_add.to_json()


def test_write_snapshot_is_valid_json(tmp_path):
    agg = SweepAggregator()
    agg.add(make_summary(3))
    path = tmp_path / "deep" / "aggregate.json"
    agg.write_snapshot(path)
    on_disk = json.loads(path.read_text())
    assert on_disk == agg.snapshot()


def test_empty_aggregator_snapshot():
    agg = SweepAggregator()
    snap = agg.snapshot()
    assert snap["cells"] == [] and snap["jobs_seen"] == 0
    assert agg.cell_mean("wgtt", 25.0, "udp") is None
