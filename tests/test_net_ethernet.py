"""Unit tests for the Ethernet backhaul."""

import numpy as np
import pytest

from repro.net.ethernet import Backhaul, BackhaulParams
from repro.net.packet import Packet
from repro.sim.engine import Simulator


def make_backhaul(seed=0, **params):
    sim = Simulator()
    bh = Backhaul(sim, np.random.default_rng(seed), params=BackhaulParams(**params))
    return sim, bh


def packet(n=100):
    return Packet(size_bytes=n, src=1, dst=2)


def test_delivery_with_latency():
    sim, bh = make_backhaul(jitter_s=0.0)
    got = []
    bh.register(2, lambda p, src: got.append((sim.now, src)))
    bh.register(1, lambda p, src: None)
    bh.send(1, 2, packet())
    sim.run()
    assert len(got) == 1
    t, src = got[0]
    assert src == 1
    assert t >= bh.params.base_latency_s


def test_unknown_destination_raises():
    sim, bh = make_backhaul()
    bh.register(1, lambda p, s: None)
    with pytest.raises(KeyError):
        bh.send(1, 99, packet())


def test_duplicate_registration_rejected():
    _sim, bh = make_backhaul()
    bh.register(1, lambda p, s: None)
    with pytest.raises(ValueError):
        bh.register(1, lambda p, s: None)


def test_fifo_per_pair_despite_jitter():
    """Switched Ethernet must never reorder one flow (regression: cyclic
    queue holes came from jitter-induced reordering)."""
    sim, bh = make_backhaul(jitter_s=500e-6)
    got = []
    bh.register(2, lambda p, src: got.append(p.seq))
    bh.register(1, lambda p, s: None)
    for i in range(200):
        p = packet()
        p.seq = i
        sim.schedule(i * 1e-6, bh.send, 1, 2, p)
    sim.run()
    assert got == list(range(200))


def test_loss_probability():
    sim, bh = make_backhaul(loss_probability=1.0)
    got = []
    bh.register(2, lambda p, src: got.append(p))
    bh.register(1, lambda p, s: None)
    bh.send(1, 2, packet())
    sim.run()
    assert got == []
    assert bh.packets_lost == 1


def test_serialization_delay_scales_with_size():
    sim1, bh1 = make_backhaul(jitter_s=0.0, bandwidth_bps=1e6)
    arrivals = {}
    bh1.register(2, lambda p, src: arrivals.setdefault(p.size_bytes, sim1.now))
    bh1.register(1, lambda p, s: None)
    bh1.send(1, 2, packet(100))
    sim1.run()
    sim1_small = arrivals[100]
    bh1.send(1, 2, packet(10000))
    sim1.run()
    assert arrivals[10000] - sim1_small > 0.07  # ~79 ms more at 1 Mb/s


def test_broadcast_reaches_everyone_but_sender():
    sim, bh = make_backhaul()
    got = []
    for node in (1, 2, 3):
        bh.register(node, lambda p, src, node=node: got.append(node))
    bh.broadcast(1, lambda: packet())
    sim.run()
    assert sorted(got) == [2, 3]


def test_counters():
    sim, bh = make_backhaul()
    bh.register(2, lambda p, s: None)
    bh.register(1, lambda p, s: None)
    bh.send(1, 2, packet(150))
    assert bh.packets_sent == 1
    assert bh.bytes_sent == 150


def test_is_registered():
    _sim, bh = make_backhaul()
    bh.register(5, lambda p, s: None)
    assert bh.is_registered(5)
    assert not bh.is_registered(6)


# -------------------------------------------------------- per-link jitter
def _delivery_times(seed, link_jitter_s, n=20):
    sim, bh = make_backhaul(seed=seed, jitter_s=0.0,
                            link_jitter_s=link_jitter_s)
    got = []
    bh.register(1, lambda p, s: None)
    bh.register(2, lambda p, s: got.append(sim.now))
    bh.register(3, lambda p, s: got.append(sim.now))
    for i in range(n):
        bh.send(1, 2, packet())
        bh.send(1, 3, packet())
    sim.run()
    return got


def test_link_jitter_disabled_by_default_draws_nothing():
    """link_jitter_s=0 must not consume RNG: schedules stay bit-identical."""
    assert _delivery_times(7, 0.0) == _delivery_times(7, 0.0)
    sim, bh = make_backhaul(seed=7, link_jitter_s=0.0)
    bh.register(1, lambda p, s: None)
    bh.register(2, lambda p, s: None)
    before = bh.rng.bit_generator.state["state"]["state"]
    bh.send(1, 2, packet())
    # Only the forwarding-jitter draw happened (same as without the knob).
    sim2, bh2 = make_backhaul(seed=7)
    bh2.register(1, lambda p, s: None)
    bh2.register(2, lambda p, s: None)
    bh2.send(1, 2, packet())
    assert (bh.rng.bit_generator.state["state"]["state"]
            == bh2.rng.bit_generator.state["state"]["state"])
    assert before != bh.rng.bit_generator.state["state"]["state"]


def test_link_jitter_deterministic_for_fixed_seed():
    a = _delivery_times(3, 50e-6)
    b = _delivery_times(3, 50e-6)
    assert a == b
    # A different seed draws different pair offsets.
    c = _delivery_times(4, 50e-6)
    assert a != c


def test_link_jitter_offset_is_persistent_per_pair():
    sim, bh = make_backhaul(seed=1, jitter_s=0.0, link_jitter_s=200e-6)
    bh.register(1, lambda p, s: None)
    bh.register(2, lambda p, s: None)
    first = bh._link_offset(1, 2)
    assert 0.0 <= first <= 200e-6
    # Re-querying never redraws; the reverse direction is its own link.
    assert bh._link_offset(1, 2) == first
    reverse = bh._link_offset(2, 1)
    assert bh._link_offset(2, 1) == reverse
    assert len(bh._pair_offset) == 2
