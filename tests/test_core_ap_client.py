"""Unit/integration tests for AP node internals and the mobile client."""


from repro.core.association import AssociationRecord, AssociationTable
from repro.core.messages import BaForward, ServingUpdate, StartMsg, StopMsg
from repro.experiments import ExperimentConfig, build_network
from repro.mobility import RoadLayout, StationaryTrajectory
from repro.net.packet import Packet


def wgtt_net(seed=0, n_aps=3, **cfg):
    config = ExperimentConfig(mode="wgtt", road=RoadLayout.uniform(n_aps), seed=seed, **cfg)
    net = build_network(config)
    client = net.add_client(StationaryTrajectory(net.road.ap_aim_point(0)))
    return net, client


def indexed(seq, size=1476):
    p = Packet(size_bytes=size, src=1, dst=200, flow_id=1, seq=seq)
    p.wgtt_index = seq
    return p


class TestApPipelines:
    def test_refill_moves_packets_down_the_stack(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        pipe = ap.add_client(client.node_id)
        pipe.serving = True
        for i in range(300):
            pipe.cyclic.insert(indexed(i))
        ap._refill(client.node_id)
        assert len(pipe.hw) == ap.params.hw_queue_capacity
        # The NIC pull leaves headroom in the driver; a second refill
        # (triggered by the next arrival/pull in practice) tops it up.
        ap._refill(client.node_id)
        assert len(pipe.driver) == ap.params.driver_queue_capacity

    def test_not_serving_means_no_driver_refill(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        pipe = ap.add_client(client.node_id)
        for i in range(10):
            pipe.cyclic.insert(indexed(i))
        ap._refill(client.node_id)
        assert len(pipe.driver) == 0
        assert len(pipe.hw) == 0

    def test_stop_reports_driver_head_index(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        pipe = ap.add_client(client.node_id)
        pipe.serving = True
        for i in range(100):
            pipe.cyclic.insert(indexed(i))
        ap._refill(client.node_id)
        hw_depth = len(pipe.hw)
        ap._handle_stop(StopMsg(client=client.node_id, new_ap=net.aps[1].node_id))
        records = net.trace.records("stop_processed")
        assert records[-1]["k"] == hw_depth  # first packet not yet in the NIC
        assert not pipe.serving
        assert len(pipe.driver) == 0  # filtered out
        assert len(pipe.hw) == hw_depth  # NIC backlog still drains

    def test_start_jumps_ring_and_acks(self):
        net, client = wgtt_net()
        ap = net.aps[1]
        pipe = ap.add_client(client.node_id)
        for i in range(100):
            pipe.cyclic.insert(indexed(i))
        ap._handle_start(StartMsg(client=client.node_id, index=40))
        assert pipe.serving
        net.run(until=0.05)
        acks = [r for r in net.trace.records("ap_switch")]
        # Controller processed the SwitchAck only if it initiated a switch;
        # here we injected start directly, so check the pipeline instead.
        assert pipe.cyclic.consumed > 0 or len(pipe.hw) > 0
        assert pipe.hw.peek().wgtt_index >= 40

    def test_post_stop_flush_clears_hw(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        pipe = ap.add_client(client.node_id)
        pipe.serving = True
        for i in range(100):
            pipe.cyclic.insert(indexed(i))
        ap._refill(client.node_id)
        ap._handle_stop(StopMsg(client=client.node_id, new_ap=net.aps[1].node_id))
        net.run(until=ap.params.stop_drain_window_s + 0.05)
        assert len(pipe.hw) == 0

    def test_serving_update_tracked(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        ap.handle_ctrl(ServingUpdate(client=client.node_id, ap=net.aps[2].node_id), src=1)
        assert ap.serving_map[client.node_id] == net.aps[2].node_id

    def test_ba_forward_applied_to_radio(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        state = ap.radio.peer(client.node_id)
        state.scoreboard.record_sent([0, 1, 2])
        from repro.mac.frames import BlockAck

        ba = BlockAck.for_seqs(src=client.node_id, dst=ap.node_id,
                               seqs=[0, 1], start_seq=0)
        ap.handle_ctrl(
            BaForward(client=client.node_id, start_seq=ba.start_seq,
                      bitmap=ba.bitmap),
            src=net.aps[1].node_id,
        )
        assert state.scoreboard.in_flight == {2}

    def test_csi_report_rate_limited(self):
        net, client = wgtt_net()
        ap = net.aps[0]
        before = net.backhaul.packets_sent
        for _ in range(10):
            ap.on_client_frame_decoded(client.node_id, net.sim.now)
        sent = net.backhaul.packets_sent - before
        assert sent == 1  # all within the min interval


class TestClient:
    def test_uplink_queue_drops_when_full(self):
        net, client = wgtt_net()
        cap = client.params.uplink_queue_capacity
        for seq in range(cap + 10):
            client.uplink_send(Packet(size_bytes=500, src=client.node_id,
                                      dst=1, flow_id=1, seq=seq))
        assert client.uplink_dropped == 10

    def test_flow_handler_dispatch(self):
        net, client = wgtt_net()
        got = []
        client.register_flow(9, lambda p, t: got.append(p.seq))
        p = Packet(size_bytes=100, src=1, dst=client.node_id, flow_id=9, seq=4)
        client.on_downlink(p, src_ap=net.aps[0].node_id, t=0.0)
        assert got == [4]

    def test_set_association_resets_radio_peer(self):
        net, client = wgtt_net()
        client.radio.peer(12345)
        client.current_bssid = 12345
        client.set_association(None)
        assert 12345 not in client.radio.peers

    def test_association_changes_logged(self):
        net, client = wgtt_net()
        # pre_associate in the builder logged the initial association.
        assert client.association_changes[0][1] == net.bssid


class TestAssociation:
    def test_table_round_trip(self):
        table = AssociationTable()
        rec = AssociationRecord(client=200, aid=1)
        table.add(rec)
        assert table.is_associated(200)
        assert table.get(200) is rec
        assert table.clients() == [200]
        assert table.remove(200) is rec
        assert not table.is_associated(200)

    def test_pre_associate_installs_everywhere(self):
        net, client = wgtt_net()
        # builder already pre-associated; verify the state.
        assert client.current_bssid == net.bssid
        for ap in net.aps:
            assert client.node_id in ap.pipelines

    def test_over_the_air_association_handshake(self):
        """A fresh WGTT client can associate via assoc_req/resp and the
        state replicates to the other APs via AssocSync."""
        config = ExperimentConfig(mode="wgtt", road=RoadLayout.uniform(3), seed=1)
        net = build_network(config)
        client = net.add_client(
            StationaryTrajectory(net.road.ap_aim_point(0)),
            pre_associated=False,
        )
        from repro.mac.frames import MgmtFrame

        client.radio.send_mgmt(
            MgmtFrame(src=client.node_id, dst=net.aps[0].node_id, kind="assoc_req")
        )
        net.run(until=0.3)
        for ap in net.aps:
            assert client.node_id in ap.pipelines
