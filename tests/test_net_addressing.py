"""Unit tests for node id allocation and address formatting."""

import pytest

from repro.net.addressing import NodeIdAllocator, format_ip, format_mac


def test_format_mac_locally_administered():
    mac = format_mac(0x01020304)
    assert mac == "02:00:01:02:03:04"


def test_format_mac_range_check():
    with pytest.raises(ValueError):
        format_mac(-1)
    with pytest.raises(ValueError):
        format_mac(1 << 33)


def test_format_ip():
    assert format_ip(0x0102) == "10.0.1.2"


def test_format_ip_range_check():
    with pytest.raises(ValueError):
        format_ip(1 << 17)


def test_roles_get_disjoint_ranges():
    alloc = NodeIdAllocator()
    infra = alloc.allocate("infra")
    ap = alloc.allocate("ap")
    client = alloc.allocate("client")
    assert infra < 100 <= ap < 200 <= client


def test_sequential_allocation():
    alloc = NodeIdAllocator()
    assert alloc.allocate("ap") + 1 == alloc.allocate("ap")


def test_unknown_role_rejected():
    with pytest.raises(ValueError):
        NodeIdAllocator().allocate("satellite")


def test_range_exhaustion():
    alloc = NodeIdAllocator()
    for _ in range(99):
        alloc.allocate("infra")
    with pytest.raises(RuntimeError):
        alloc.allocate("infra")
