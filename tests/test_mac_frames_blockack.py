"""Unit and property tests for frames, BA bitmaps, and the scoreboard."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mac.block_ack import BlockAckScoreboard, SequenceCounter, seq_distance
from repro.mac.frames import SEQ_MODULO, Ampdu, BlockAck, Mpdu
from repro.net.packet import Packet
from repro.phy.mcs import MCS_TABLE


def mpdu(seq, size=1500):
    return Mpdu(packet=Packet(size_bytes=size, src=1, dst=2), seq=seq)


class TestSequenceCounter:
    def test_starts_at_zero_per_peer(self):
        c = SequenceCounter()
        assert c.allocate(1) == 0
        assert c.allocate(2) == 0

    def test_increments(self):
        c = SequenceCounter()
        assert [c.allocate(1) for _ in range(3)] == [0, 1, 2]

    def test_wraps_at_4096(self):
        c = SequenceCounter()
        for _ in range(SEQ_MODULO):
            c.allocate(1)
        assert c.allocate(1) == 0

    def test_peek_does_not_advance(self):
        c = SequenceCounter()
        c.allocate(1)
        assert c.peek(1) == 1
        assert c.peek(1) == 1


def test_seq_distance_wraps():
    assert seq_distance(4090, 5) == 11
    assert seq_distance(5, 4090) == 4085


class TestAmpdu:
    def test_requires_mpdus(self):
        with pytest.raises(ValueError):
            Ampdu(src=1, dst=2, mpdus=[], mcs=MCS_TABLE[0])

    def test_totals(self):
        a = Ampdu(src=1, dst=2, mpdus=[mpdu(0), mpdu(1)], mcs=MCS_TABLE[0])
        assert a.n_mpdus == 2
        assert a.total_payload_bytes == 3000
        assert a.seqs() == [0, 1]


class TestBlockAckBitmap:
    def test_for_seqs_roundtrip(self):
        ba = BlockAck.for_seqs(src=1, dst=2, seqs=[5, 7, 9], start_seq=5)
        assert sorted(ba.acked) == [5, 7, 9]

    def test_window_limited_to_64(self):
        ba = BlockAck.for_seqs(src=1, dst=2, seqs=[0, 63, 64], start_seq=0)
        assert sorted(ba.acked) == [0, 63]  # 64 falls outside the bitmap

    def test_wraparound_sequences(self):
        ba = BlockAck.for_seqs(src=1, dst=2, seqs=[4094, 4095, 0, 1], start_seq=4094)
        assert sorted(ba.acked) == [0, 1, 4094, 4095]

    @given(
        start=st.integers(0, SEQ_MODULO - 1),
        offsets=st.sets(st.integers(0, 63), min_size=1, max_size=64),
    )
    def test_property_bitmap_encodes_exactly_the_window(self, start, offsets):
        seqs = [(start + o) % SEQ_MODULO for o in offsets]
        ba = BlockAck.for_seqs(src=1, dst=2, seqs=seqs, start_seq=start)
        assert sorted(ba.acked) == sorted(seqs)


class TestScoreboard:
    def test_ack_resolves_in_flight(self):
        sb = BlockAckScoreboard()
        sb.record_sent([0, 1, 2])
        ba = BlockAck.for_seqs(src=9, dst=1, seqs=[0, 2], start_seq=0)
        acked, unacked = sb.apply_block_ack(ba)
        assert sorted(acked) == [0, 2]
        assert unacked == [1]
        assert sb.in_flight == {1}

    def test_duplicate_ba_ignored(self):
        sb = BlockAckScoreboard()
        sb.record_sent([0, 1])
        ba = BlockAck.for_seqs(src=9, dst=1, seqs=[0], start_seq=0)
        assert sb.apply_block_ack(ba) is not None
        dup = BlockAck(src=9, dst=1, start_seq=ba.start_seq, bitmap=ba.bitmap)
        assert sb.apply_block_ack(dup) is None
        assert sb.bas_duplicate == 1

    def test_different_bitmaps_both_apply(self):
        sb = BlockAckScoreboard()
        sb.record_sent([0, 1])
        first = BlockAck.for_seqs(src=9, dst=1, seqs=[0], start_seq=0)
        second = BlockAck.for_seqs(src=9, dst=1, seqs=[1], start_seq=0)
        assert sb.apply_block_ack(first) is not None
        assert sb.apply_block_ack(second) is not None
        assert sb.in_flight == set()

    def test_forget_discards(self):
        sb = BlockAckScoreboard()
        sb.record_sent([7])
        sb.forget([7])
        assert sb.in_flight == set()

    def test_reset_clears_duplicate_history(self):
        sb = BlockAckScoreboard()
        sb.record_sent([0])
        ba = BlockAck.for_seqs(src=9, dst=1, seqs=[0], start_seq=0)
        sb.apply_block_ack(ba)
        sb.reset()
        sb.record_sent([0])
        assert sb.apply_block_ack(ba) is not None

    def test_unacked_restricted_to_window(self):
        sb = BlockAckScoreboard()
        sb.record_sent([0, 1, 100])  # 100 is outside the BA window
        ba = BlockAck.for_seqs(src=9, dst=1, seqs=[0], start_seq=0)
        _acked, unacked = sb.apply_block_ack(ba)
        assert 100 not in unacked

    @given(
        sent=st.sets(st.integers(0, 63), min_size=1, max_size=32),
        delivered=st.sets(st.integers(0, 63), max_size=32),
    )
    def test_property_partition(self, sent, delivered):
        """Property: a BA partitions the window's in-flight frames into
        acked + unacked with nothing lost."""
        sb = BlockAckScoreboard()
        sb.record_sent(sorted(sent))
        ba = BlockAck.for_seqs(src=9, dst=1, seqs=sorted(delivered), start_seq=0)
        acked, unacked = sb.apply_block_ack(ba)
        assert set(acked) == sent & delivered
        assert set(unacked) == sent - delivered
