"""Tests for responder-side BA deferral (the Table 3 mechanism)."""


from repro.experiments import ExperimentConfig, attach_udp_uplink, build_network
from repro.mobility import RoadLayout, StationaryTrajectory


def test_multiple_decoding_aps_defer_to_first_ba():
    """With a client mid-way between two APs, both decode its uplink
    frames; the later responder suppresses its BA instead of colliding."""
    road = RoadLayout.uniform(2)
    net = build_network(ExperimentConfig(mode="wgtt", road=road, seed=5))
    # Halfway between the APs: both links are usable.
    mid_x = (road.ap_x[0] + road.ap_x[1]) / 2.0
    client = net.add_client(StationaryTrajectory((mid_x, 3.75, 1.5)))
    sender, receiver = attach_udp_uplink(net, client, 8.0)
    net.sim.schedule(0.3, sender.start)
    net.run(until=3.0)
    assert receiver.packets_received > 100
    assert net.medium.responses_suppressed > 0
    # Collisions at the client are rare relative to exchanges.
    collisions = sum(
        1 for r in net.trace.iter_records("phy_collision")
        if r["rx"] == client.node_id
    )
    aggregates = sum(
        1 for r in net.trace.iter_records("ampdu_tx") if r["uplink"]
    )
    assert collisions < 0.05 * max(aggregates, 1)


def test_single_ap_never_suppresses():
    road = RoadLayout.uniform(1)
    net = build_network(ExperimentConfig(mode="wgtt", road=road, seed=6))
    client = net.add_client(StationaryTrajectory(road.ap_aim_point(0)))
    sender, receiver = attach_udp_uplink(net, client, 8.0)
    net.sim.schedule(0.3, sender.start)
    net.run(until=2.0)
    assert receiver.packets_received > 100
    assert net.medium.responses_suppressed == 0
