"""Unit tests for path loss models."""


import pytest

from repro.phy.pathloss import (
    LogDistancePathLoss,
    SPEED_OF_LIGHT,
    free_space_path_loss_db,
)


def test_free_space_matches_friis_at_reference():
    # At 2.4 GHz and 1 m, FSPL is ~40.0 dB.
    loss = free_space_path_loss_db(1.0, 2.4e9)
    assert loss == pytest.approx(40.05, abs=0.1)


def test_free_space_20db_per_decade():
    f = 2.462e9
    assert free_space_path_loss_db(100.0, f) - free_space_path_loss_db(10.0, f) == pytest.approx(20.0)


def test_free_space_clamps_below_one_meter():
    f = 2.462e9
    assert free_space_path_loss_db(0.1, f) == free_space_path_loss_db(1.0, f)


def test_log_distance_reduces_to_free_space_for_exponent_two():
    model = LogDistancePathLoss(exponent=2.0)
    for d in (1.0, 5.0, 50.0):
        assert model.loss_db(d) == pytest.approx(
            free_space_path_loss_db(d, model.freq_hz), abs=1e-9
        )


def test_higher_exponent_means_more_loss():
    lo = LogDistancePathLoss(exponent=2.0)
    hi = LogDistancePathLoss(exponent=3.5)
    assert hi.loss_db(20.0) > lo.loss_db(20.0)
    # They agree at the reference distance.
    assert hi.loss_db(1.0) == pytest.approx(lo.loss_db(1.0))


def test_extra_loss_is_additive():
    base = LogDistancePathLoss()
    extra = LogDistancePathLoss(extra_loss_db=14.0)
    assert extra.loss_db(10.0) - base.loss_db(10.0) == pytest.approx(14.0)


def test_loss_monotone_in_distance():
    model = LogDistancePathLoss(exponent=2.8)
    losses = [model.loss_db(d) for d in (1, 2, 5, 10, 20, 50)]
    assert losses == sorted(losses)


def test_below_reference_distance_clamped():
    model = LogDistancePathLoss()
    assert model.loss_db(0.01) == model.loss_db(model.reference_distance_m)


def test_invalid_exponent_rejected():
    with pytest.raises(ValueError):
        LogDistancePathLoss(exponent=0.0)


def test_invalid_reference_distance_rejected():
    with pytest.raises(ValueError):
        LogDistancePathLoss(reference_distance_m=-1.0)


def test_wavelength():
    model = LogDistancePathLoss(freq_hz=2.462e9)
    assert model.wavelength_m == pytest.approx(SPEED_OF_LIGHT / 2.462e9)
    assert 0.12 < model.wavelength_m < 0.125  # ~12 cm at 2.4 GHz (the paper)
