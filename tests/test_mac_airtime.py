"""Unit tests for 802.11 timing and airtime computation."""

import pytest

from repro.mac.airtime import (
    DEFAULT_TIMING,
    ampdu_airtime_s,
    beacon_airtime_s,
    block_ack_airtime_s,
    control_frame_airtime_s,
    max_mpdus_for_airtime,
    mpdu_wire_bytes,
)
from repro.phy.mcs import MCS_TABLE


def test_mpdu_overhead_added():
    assert mpdu_wire_bytes(1500) == 1534


def test_single_mpdu_airtime_reasonable():
    # 1500 B at MCS7 (72.2 Mb/s): ~170 us + preamble.
    airtime = ampdu_airtime_s([1500], MCS_TABLE[7])
    assert 150e-6 < airtime < 250e-6


def test_airtime_scales_with_mpdu_count():
    one = ampdu_airtime_s([1500], MCS_TABLE[4])
    ten = ampdu_airtime_s([1500] * 10, MCS_TABLE[4])
    assert ten > 8 * (one - DEFAULT_TIMING.preamble_s)


def test_airtime_lower_at_higher_mcs():
    slow = ampdu_airtime_s([1500] * 4, MCS_TABLE[0])
    fast = ampdu_airtime_s([1500] * 4, MCS_TABLE[7])
    assert fast < slow / 5


def test_airtime_rounds_to_symbols():
    airtime = ampdu_airtime_s([100], MCS_TABLE[0])
    data = airtime - DEFAULT_TIMING.preamble_s
    n_symbols = data / DEFAULT_TIMING.symbol_s
    assert n_symbols == pytest.approx(round(n_symbols))


def test_empty_ampdu_rejected():
    with pytest.raises(ValueError):
        ampdu_airtime_s([], MCS_TABLE[0])


def test_block_ack_airtime_short():
    assert block_ack_airtime_s() < 100e-6


def test_beacon_slower_than_block_ack():
    assert beacon_airtime_s() > block_ack_airtime_s()


def test_control_frame_rate_override():
    slow = control_frame_airtime_s(100, rate_mbps=6.0)
    fast = control_frame_airtime_s(100, rate_mbps=24.0)
    assert slow > fast


def test_max_mpdus_respects_count_cap():
    # Small frames at MCS7 hit the 32-frame driver cap, not airtime.
    assert max_mpdus_for_airtime(200, MCS_TABLE[7]) == DEFAULT_TIMING.max_ampdu_frames


def test_max_mpdus_respects_airtime_cap():
    n = max_mpdus_for_airtime(1500, MCS_TABLE[0])
    assert 1 <= n < DEFAULT_TIMING.max_ampdu_frames
    assert ampdu_airtime_s([1500] * n, MCS_TABLE[0]) <= DEFAULT_TIMING.max_ampdu_airtime_s


def test_difs_longer_than_sifs():
    assert DEFAULT_TIMING.difs_s > DEFAULT_TIMING.sifs_s
