"""Event tracing for post-hoc analysis.

Every experiment in the paper is an offline analysis of a ``tcpdump``
capture.  The simulated equivalent is a :class:`TraceRecorder`: components
emit typed records (packet delivered, AP switch, BA lost, ...) and the
metrics layer (:mod:`repro.experiments.metrics`) consumes them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped event emitted by a simulation component.

    ``kind`` is a short lowercase tag (``"dl_delivered"``, ``"ap_switch"``,
    ``"ba_lost"`` ...); ``fields`` carries kind-specific data.
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Collects :class:`TraceRecord` instances during a run.

    Recording can be limited to a set of kinds to bound memory in long
    sweeps; counters are always maintained for every kind seen.

    ``max_records`` additionally caps the number of *stored* records with
    ring-buffer semantics: once full, each new record evicts the oldest
    one.  Counters remain exact regardless of eviction, and
    ``dropped_records`` reports how many records were evicted.
    """

    def __init__(self, keep_kinds: Optional[set] = None,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._keep_kinds = keep_kinds
        self.max_records = max_records
        self.dropped_records = 0
        self.counters: Dict[str, int] = {}

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event of ``kind`` at simulation time ``time``."""
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if self._keep_kinds is None or kind in self._keep_kinds:
            if (self.max_records is not None
                    and len(self._records) == self.max_records):
                self.dropped_records += 1
                if self.max_records == 0:
                    return
            self._records.append(TraceRecord(time, kind, fields))

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` seen (recorded or not)."""
        return self.counters.get(kind, 0)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """All stored records, optionally filtered by kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def iter_records(self, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        for r in self._records:
            if kind is None or r.kind == kind:
                yield r

    def times(self, kind: str) -> List[float]:
        """Timestamps of every stored record of ``kind``."""
        return [r.time for r in self._records if r.kind == kind]

    def values(self, kind: str, field_name: str) -> List[Any]:
        """Extract one field from every stored record of ``kind``."""
        return [r.fields[field_name] for r in self._records if r.kind == kind]

    def clear(self) -> None:
        self._records.clear()
        self.counters.clear()
        self.dropped_records = 0

    def __len__(self) -> int:
        return len(self._records)
