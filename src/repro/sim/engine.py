"""Discrete-event simulation engine.

The engine is a classic priority-queue event loop.  Everything in the
reproduction -- frame airtime, backhaul latency, protocol timeouts, TCP
retransmission timers -- is expressed as callbacks scheduled on a single
:class:`Simulator` instance.

Design notes
------------
* Time is a ``float`` in **seconds**.  Sub-microsecond deltas occur (OFDM
  symbol boundaries), so callers should never compare times with ``==``;
  use :func:`repro.sim.engine.time_close` instead.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes the
  simulation fully deterministic for a fixed RNG seed.
* Events are cancellable: :meth:`Simulator.schedule` returns an
  :class:`EventHandle` whose :meth:`~EventHandle.cancel` marks the heap
  entry dead.  Dead entries are skipped on pop (lazy deletion), and a
  purge rebuilds the heap whenever dead entries outnumber live ones --
  cancellation-heavy workloads (BA timers, periodic re-arms) stay O(live)
  in memory instead of accumulating garbage for the life of a drive.
* The hot loop is allocation-light: fired :class:`EventHandle` objects
  are recycled through a freelist when (and only when) no caller still
  holds a reference, so steady-state event churn does not touch the
  allocator at all.
* Batching: :meth:`Simulator.schedule_batch` coalesces same-instant
  callbacks that share a key into one heap entry, and
  :meth:`Simulator.periodic_group` does the same for periodic work on a
  shared cadence.  Both count each *callback* as one fired event, so
  ``events_fired`` is invariant under coalescing -- a batched run reports
  the same event count as the equivalent unbatched run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from sys import getrefcount
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BatchEntry",
    "EventHandle",
    "GroupMember",
    "PeriodicGroup",
    "PeriodicTask",
    "Simulator",
    "SimulationError",
    "time_close",
]

#: The engine's single timestamp tolerance, used both for comparing
#: timestamps (:func:`time_close`) and for the scheduling-in-the-past
#: guard.  1e-9 s (one nanosecond) sits three orders of magnitude below
#: the shortest physical interval in the simulation (a 4 us OFDM symbol)
#: yet comfortably above accumulated float64 rounding error at realistic
#: simulation times (ulp(100 s) ~ 1.4e-14 s), so genuinely distinct
#: instants never compare equal and floating-point noise never compares
#: distinct.  Historically ``time_close`` defaulted to 1e-9 while the
#: scheduling guard used 1e-12; they are now one constant.
TIME_EPSILON = 1e-9

#: Upper bound on recycled EventHandle objects kept around.  Beyond this
#: the steady-state pool is large enough that allocation is off the hot
#: path; keeping more would just pin memory.
_FREELIST_MAX = 512

#: Dead heap entries are purged when they outnumber live ones and the
#: heap is at least this large (tiny heaps are cheaper to drain lazily).
_PURGE_MIN_HEAP = 64


def time_close(a: float, b: float, eps: float = TIME_EPSILON) -> bool:
    """Return True when two simulation timestamps are effectively equal."""
    return abs(a - b) <= eps


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule`; user code should
    never construct them directly.  Fired handles are recycled into a
    freelist *only* when the engine holds the last reference, so a handle
    a caller kept (e.g. a stored timer) is never resurrected as a
    different event: ``cancel`` on a stale handle is always a no-op.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        if self.fn is not None and not self.cancelled:
            sim = self._sim
            if sim is not None:
                sim._note_cancel()
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<EventHandle t={self.time:.9f} {name} {state}>"


class BatchEntry:
    """One callback inside a coalesced batch (see ``schedule_batch``)."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Optional[Callable[..., Any]], args: Tuple[Any, ...]):
        self.fn = fn
        self.args = args

    def cancel(self) -> None:
        """Remove this callback from its batch.  Safe to call repeatedly."""
        self.fn = None
        self.args = ()

    @property
    def pending(self) -> bool:
        return self.fn is not None


class _Batch:
    """Shared state of one coalesced same-instant event."""

    __slots__ = ("entries", "fired")

    def __init__(self) -> None:
        self.entries: List[BatchEntry] = []
        self.fired = False


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: Heap of (time, seq, handle) tuples: the (float, int) prefix
        #: keeps heapq comparisons at C speed instead of dispatching a
        #: Python-level __lt__ per sift (the hot loop's dominant cost at
        #: city scale), with the exact same (time, seq) ordering.
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0
        #: Live (scheduled, neither fired nor cancelled) event count,
        #: maintained incrementally -- ``pending_events`` is O(1).
        self._live = 0
        #: Cancelled entries still sitting in the heap awaiting lazy
        #: deletion; drives the purge threshold.
        self._dead = 0
        #: Recycled EventHandle pool (see EventHandle docstring).
        self._free: List[EventHandle] = []
        #: (key, time) -> open batch for schedule_batch coalescing.
        self._batches: Dict[Tuple[Any, float], _Batch] = {}
        #: (key, interval) -> shared periodic group.
        self._groups: Dict[Tuple[Any, float], "PeriodicGroup"] = {}

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for budget accounting/tests).

        Coalesced batches count one per callback run, so the number is
        identical whether or not same-instant work was batched.
        """
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled at the current instant.
        """
        if delay < 0:
            if delay < -TIME_EPSILON:
                raise SimulationError(f"cannot schedule {delay} s in the past")
            delay = 0.0
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {fn!r}")
        # Inlined schedule_at body (this is the hottest API entry point).
        when = self._now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            handle = free.pop()
            handle.time = when
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(when, seq, fn, args)
            handle._sim = self
        heapq.heappush(self._heap, (when, seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``when``."""
        if when < self._now - TIME_EPSILON:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {fn!r}")
        if when < self._now:
            when = self._now
        seq = next(self._seq)
        free = self._free
        if free:
            handle = free.pop()
            handle.time = when
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(when, seq, fn, args)
            handle._sim = self
        heapq.heappush(self._heap, (when, seq, handle))
        self._live += 1
        return handle

    def _note_cancel(self) -> None:
        """Bookkeeping for EventHandle.cancel: count + maybe purge."""
        self._live -= 1
        self._dead += 1
        heap = self._heap
        if self._dead * 2 > len(heap) and len(heap) >= _PURGE_MIN_HEAP:
            # More garbage than live events: rebuild in place (the run
            # loop holds an alias to the list).  (time, seq) is a total
            # order, so heapify preserves pop order exactly.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._dead = 0

    # ------------------------------------------------------------- batching
    def schedule_batch(
        self, delay: float, fn: Callable[..., Any], *args: Any, key: Any = None
    ) -> BatchEntry:
        """Schedule ``fn(*args)`` at ``now + delay``, coalescing with any
        other callback scheduled through this method for the *same key and
        instant* into a single heap event.

        Callbacks inside a batch fire in the order they were added, each
        counted as one fired event, so a batched schedule is
        behaviour- and accounting-equivalent to N plain ``schedule`` calls
        -- minus N-1 heap operations.  Use it for wake-ups that are known
        to share an instant (contention-round deferrals, heartbeat fans).

        Note the ordering contract: a callback appended to an existing
        batch fires at the *batch's* queue position, not at the position a
        fresh event would get.  Only coalesce work whose relative order
        with other same-instant events is immaterial.

        Returns a :class:`BatchEntry` whose ``cancel`` removes just this
        callback from the batch.
        """
        if delay < 0:
            if delay < -TIME_EPSILON:
                raise SimulationError(f"cannot schedule {delay} s in the past")
            delay = 0.0
        return self.schedule_batch_at(self._now + delay, fn, *args, key=key)

    def schedule_batch_at(
        self, when: float, fn: Callable[..., Any], *args: Any, key: Any = None
    ) -> BatchEntry:
        """Absolute-time variant of :meth:`schedule_batch`.

        Callers that coalesce on an externally computed instant (e.g. every
        deferred station waking at the same NAV edge) must use this form:
        round-tripping through a delay can perturb the last float ulp and
        silently split the batch.
        """
        if when < self._now - TIME_EPSILON:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {fn!r}")
        if when < self._now:
            when = self._now
        bkey = (key, when)
        batch = self._batches.get(bkey)
        if batch is None or batch.fired:
            batch = _Batch()
            self._batches[bkey] = batch
            self.schedule_at(when, self._fire_batch, bkey, batch)
        entry = BatchEntry(fn, args)
        batch.entries.append(entry)
        return entry

    def _fire_batch(self, bkey: Tuple[Any, float], batch: _Batch) -> None:
        batch.fired = True
        if self._batches.get(bkey) is batch:
            del self._batches[bkey]
        executed = 0
        for entry in batch.entries:
            fn = entry.fn
            if fn is None:
                continue
            args = entry.args
            entry.fn, entry.args = None, ()
            fn(*args)
            executed += 1
        # The run loop counted the batch itself as one event; correct the
        # total so it equals "one per callback executed" (an all-cancelled
        # batch counts zero, exactly like N cancelled plain events).
        self._events_fired += executed - 1

    def periodic_group(
        self, interval: float, key: Any = None, until: Optional[float] = None
    ) -> "PeriodicGroup":
        """A shared periodic cadence: all members fire from one heap event.

        Repeated calls with the same ``(key, interval)`` return the same
        group, so independent subsystems (e.g. every AP's degraded-mode
        evaluator) can pool their ticks without knowing about each other.
        Members added mid-cycle first fire on the group's next tick.
        """
        if interval <= 0 or not math.isfinite(interval):
            raise SimulationError(f"interval must be positive and finite, got {interval}")
        gkey = (key, interval)
        group = self._groups.get(gkey)
        if group is None or group.stopped:
            group = PeriodicGroup(self, interval, until=until)
            self._groups[gkey] = group
        return group

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring how a wall-clock
        experiment of fixed duration behaves.  A coalesced batch counts as
        a single event against ``max_events`` (it is atomic).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        free = self._free
        # Hoist the per-iteration None checks out of the loop: an infinite
        # bound compares identically to "no bound".
        until_bound = math.inf if until is None else until + TIME_EPSILON
        limit = math.inf if max_events is None else max_events
        try:
            while heap:
                when, _, ev = heap[0]
                if ev.cancelled:
                    pop(heap)
                    self._dead -= 1
                    if len(free) < _FREELIST_MAX and getrefcount(ev) == 2:
                        ev.cancelled = False
                        free.append(ev)
                    continue
                if when > until_bound:
                    break
                pop(heap)
                if when > self._now:
                    self._now = when
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()  # mark as fired
                assert fn is not None
                self._live -= 1
                fn(*args)
                self._events_fired += 1
                fired += 1
                # Recycle the handle iff nothing outside the engine still
                # references it (refs here: local ``ev`` + getrefcount arg).
                if len(free) < _FREELIST_MAX and getrefcount(ev) == 2:
                    free.append(ev)
                if fired >= limit:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._heap:
            when, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._dead -= 1
                continue
            if when > self._now:
                self._now = when
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            self._live -= 1
            fn(*args)
            self._events_fired += 1
            return True
        return False

    def clear(self) -> None:
        """Drop every pending event (the clock is left where it is)."""
        for _, _, ev in self._heap:
            ev.cancel()
        self._heap.clear()
        self._live = 0
        self._dead = 0
        self._batches.clear()

    # ------------------------------------------------------------- utilities
    def call_every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
        rng: Any = None,
        until: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds (plus optional
        uniform jitter drawn from ``rng``), starting one interval from now.

        Returns a :class:`PeriodicTask` that can be stopped.
        """
        if interval <= 0 or not math.isfinite(interval):
            raise SimulationError(f"interval must be positive and finite, got {interval}")
        return PeriodicTask(self, interval, fn, args, jitter=jitter, rng=rng, until=until)


class PeriodicTask:
    """Helper that reschedules a callback on a fixed cadence.

    Created through :meth:`Simulator.call_every`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        jitter: float = 0.0,
        rng: Any = None,
        until: Optional[float] = None,
    ):
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._args = args
        self._jitter = jitter
        self._rng = rng
        self._until = until
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._arm()

    def _arm(self) -> None:
        delay = self._interval
        if self._jitter > 0.0 and self._rng is not None:
            delay += self._rng.uniform(0.0, self._jitter)
        when = self._sim.now + delay
        if self._until is not None and when > self._until:
            self._stopped = True
            return
        self._handle = self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._handle = None
        if self._stopped:
            return
        self._fn(*self._args)
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop the periodic task; pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def stopped(self) -> bool:
        return self._stopped


class GroupMember:
    """One callback registered on a :class:`PeriodicGroup`."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Optional[Callable[..., Any]], args: Tuple[Any, ...]):
        self.fn = fn
        self.args = args

    def stop(self) -> None:
        """Unsubscribe from the group.  Safe to call repeatedly, including
        from inside the member's own callback."""
        self.fn = None
        self.args = ()

    @property
    def stopped(self) -> bool:
        return self.fn is None


class PeriodicGroup:
    """Many callbacks, one cadence, one heap event per tick.

    Where N :class:`PeriodicTask` objects on the same interval cost N heap
    pushes and N pops per cycle, a group costs one of each; members fire
    back-to-back in registration order and each execution counts as one
    fired event (same accounting as unpooled tasks).  Created through
    :meth:`Simulator.periodic_group`.
    """

    def __init__(self, sim: Simulator, interval: float, until: Optional[float] = None):
        self._sim = sim
        self._interval = interval
        self._until = until
        self._members: List[GroupMember] = []
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._arm()

    def add(self, fn: Callable[..., Any], *args: Any) -> GroupMember:
        """Register a callback; it first fires on the group's next tick."""
        if self._stopped:
            raise SimulationError("cannot add to a stopped PeriodicGroup")
        member = GroupMember(fn, args)
        self._members.append(member)
        return member

    def _arm(self) -> None:
        when = self._sim.now + self._interval
        if self._until is not None and when > self._until:
            self._stopped = True
            return
        self._handle = self._sim.schedule(self._interval, self._tick)

    def _tick(self) -> None:
        self._handle = None
        if self._stopped:
            return
        executed = 0
        live: List[GroupMember] = []
        for member in self._members:
            fn = member.fn
            if fn is None:
                continue
            fn(*member.args)
            executed += 1
            if member.fn is not None:  # may have stopped itself
                live.append(member)
        self._members = live
        # The engine counted this tick as one event; make the total equal
        # one per member executed (an empty tick counts zero).
        self._sim._events_fired += executed - 1
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop the whole group; pending tick is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def size(self) -> int:
        """Live member count."""
        return sum(1 for m in self._members if m.fn is not None)
