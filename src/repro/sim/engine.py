"""Discrete-event simulation engine.

The engine is a classic priority-queue event loop.  Everything in the
reproduction -- frame airtime, backhaul latency, protocol timeouts, TCP
retransmission timers -- is expressed as callbacks scheduled on a single
:class:`Simulator` instance.

Design notes
------------
* Time is a ``float`` in **seconds**.  Sub-microsecond deltas occur (OFDM
  symbol boundaries), so callers should never compare times with ``==``;
  use :func:`repro.sim.engine.time_close` instead.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes the
  simulation fully deterministic for a fixed RNG seed.
* Events are cancellable: :meth:`Simulator.schedule` returns an
  :class:`EventHandle` whose :meth:`~EventHandle.cancel` marks the heap
  entry dead.  Dead entries are skipped on pop (lazy deletion).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventHandle", "PeriodicTask", "Simulator", "SimulationError", "time_close"]

#: The engine's single timestamp tolerance, used both for comparing
#: timestamps (:func:`time_close`) and for the scheduling-in-the-past
#: guard.  1e-9 s (one nanosecond) sits three orders of magnitude below
#: the shortest physical interval in the simulation (a 4 us OFDM symbol)
#: yet comfortably above accumulated float64 rounding error at realistic
#: simulation times (ulp(100 s) ~ 1.4e-14 s), so genuinely distinct
#: instants never compare equal and floating-point noise never compares
#: distinct.  Historically ``time_close`` defaulted to 1e-9 while the
#: scheduling guard used 1e-12; they are now one constant.
TIME_EPSILON = 1e-9


def time_close(a: float, b: float, eps: float = TIME_EPSILON) -> bool:
    """Return True when two simulation timestamps are effectively equal."""
    return abs(a - b) <= eps


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule`; user code should
    never construct them directly.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<EventHandle t={self.time:.9f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: Heap of (time, seq, handle) tuples: the (float, int) prefix
        #: keeps heapq comparisons at C speed instead of dispatching a
        #: Python-level __lt__ per sift (the hot loop's dominant cost at
        #: city scale), with the exact same (time, seq) ordering.
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for budget accounting/tests)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled at the current instant.
        """
        if delay < 0:
            if delay < -TIME_EPSILON:
                raise SimulationError(f"cannot schedule {delay} s in the past")
            delay = 0.0
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``when``."""
        if when < self._now - TIME_EPSILON:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {fn!r}")
        when = max(when, self._now)
        seq = next(self._seq)
        handle = EventHandle(when, seq, fn, args)
        heapq.heappush(self._heap, (when, seq, handle))
        return handle

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring how a wall-clock
        experiment of fixed duration behaves.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                when, _, ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until + TIME_EPSILON:
                    break
                heapq.heappop(self._heap)
                self._now = max(self._now, when)
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()  # mark as fired
                assert fn is not None
                fn(*args)
                self._events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._heap:
            when, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = max(self._now, when)
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            fn(*args)
            self._events_fired += 1
            return True
        return False

    def clear(self) -> None:
        """Drop every pending event (the clock is left where it is)."""
        for _, _, ev in self._heap:
            ev.cancel()
        self._heap.clear()

    # ------------------------------------------------------------- utilities
    def call_every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
        rng: Any = None,
        until: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds (plus optional
        uniform jitter drawn from ``rng``), starting one interval from now.

        Returns a :class:`PeriodicTask` that can be stopped.
        """
        if interval <= 0 or not math.isfinite(interval):
            raise SimulationError(f"interval must be positive and finite, got {interval}")
        return PeriodicTask(self, interval, fn, args, jitter=jitter, rng=rng, until=until)


class PeriodicTask:
    """Helper that reschedules a callback on a fixed cadence.

    Created through :meth:`Simulator.call_every`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        jitter: float = 0.0,
        rng: Any = None,
        until: Optional[float] = None,
    ):
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._args = args
        self._jitter = jitter
        self._rng = rng
        self._until = until
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self._arm()

    def _arm(self) -> None:
        delay = self._interval
        if self._jitter > 0.0 and self._rng is not None:
            delay += self._rng.uniform(0.0, self._jitter)
        when = self._sim.now + delay
        if self._until is not None and when > self._until:
            self._stopped = True
            return
        self._handle = self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn(*self._args)
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop the periodic task; pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def stopped(self) -> bool:
        return self._stopped
