"""Discrete-event simulation core: engine, tracing, wireless medium."""

from .engine import EventHandle, PeriodicTask, SimulationError, Simulator, time_close
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "EventHandle",
    "PeriodicTask",
    "SimulationError",
    "Simulator",
    "time_close",
    "TraceRecord",
    "TraceRecorder",
]
