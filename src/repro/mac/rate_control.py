"""Bit-rate adaptation.

The testbed keeps the drivers' default rate control (Minstrel).
:class:`MinstrelLite` is a compact sampling-based Minstrel: it tracks an
EWMA of per-MPDU delivery per rate, transmits at the best expected
throughput, and periodically probes other rates.  :class:`EsnrRateControl`
is an oracle alternative that maps the latest ESNR straight to an MCS
(used by ablation benchmarks to separate rate-control effects from AP
selection effects, as section 5.2.1 of the paper argues AP selection
dominates).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..phy.mcs import MCS_TABLE, McsEntry, best_mcs_for_esnr

__all__ = ["RateController", "MinstrelLite", "EsnrRateControl"]


class RateController:
    """Interface: pick an MCS for the next aggregate to one peer.

    ``retry_level`` is how many delivery attempts the aggregate's head
    frame has already burned: like the ath9k multi-rate retry chain, the
    controller steps the rate down as retries accumulate so a frame
    always reaches the most robust rate before the retry limit.
    """

    def choose(self, retry_level: int = 0) -> McsEntry:
        raise NotImplementedError

    def on_result(self, mcs: McsEntry, n_sent: int, n_acked: int) -> None:
        """Feed back the outcome of one aggregate sent at ``mcs``."""

    def on_esnr(self, esnr_db: float) -> None:
        """Feed back a fresh channel-quality estimate (optional)."""


class MinstrelLite(RateController):
    """Minstrel-style EWMA throughput maximiser with rate probing.

    Parameters
    ----------
    ewma_weight:
        Weight of history in the EWMA (Minstrel uses 75 %).
    probe_interval:
        Probe every Nth aggregate with a non-best rate.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        table: Sequence[McsEntry] = tuple(MCS_TABLE),
        ewma_weight: float = 0.75,
        probe_interval: int = 10,
    ):
        if not 0.0 <= ewma_weight < 1.0:
            raise ValueError("ewma_weight must be in [0, 1)")
        self.rng = rng
        self.table = list(table)
        self.ewma_weight = ewma_weight
        self.probe_interval = probe_interval
        # Optimistic start biases early probing upward, like Minstrel.
        self._success = [0.5] * len(self.table)
        self._attempts = [0] * len(self.table)
        self._aggregates = 0

    def _best_index(self) -> int:
        throughput = [
            entry.phy_rate_mbps * self._success[i]
            for i, entry in enumerate(self.table)
        ]
        return int(np.argmax(throughput))

    def choose(self, retry_level: int = 0) -> McsEntry:
        self._aggregates += 1
        best = self._best_index()
        if retry_level > 0:
            # Multi-rate retry chain: drop one rate per prior attempt.
            return self.table[max(0, best - retry_level)]
        if self.probe_interval and self._aggregates % self.probe_interval == 0:
            # Probe a random different rate, biased to neighbours of best.
            candidates = [i for i in range(len(self.table)) if i != best]
            weights = np.array(
                [1.0 / (1.0 + abs(i - best)) for i in candidates], dtype=float
            )
            weights /= weights.sum()
            probe = int(self.rng.choice(candidates, p=weights))
            return self.table[probe]
        return self.table[best]

    def on_result(self, mcs: McsEntry, n_sent: int, n_acked: int) -> None:
        if n_sent <= 0:
            return
        idx = next(
            (i for i, e in enumerate(self.table) if e.index == mcs.index), None
        )
        if idx is None:
            return
        sample = n_acked / n_sent
        w = self.ewma_weight
        self._success[idx] = w * self._success[idx] + (1.0 - w) * sample
        self._attempts[idx] += n_sent

    def success_estimate(self, mcs: McsEntry) -> float:
        for i, e in enumerate(self.table):
            if e.index == mcs.index:
                return self._success[i]
        raise KeyError(f"MCS {mcs.index} not in table")


class EsnrRateControl(RateController):
    """Oracle rate control: highest MCS predicted to meet a PDR target.

    Tracks the most recent ESNR report; with no report yet it stays at the
    most robust rate.
    """

    def __init__(
        self,
        min_pdr: float = 0.9,
        table: Sequence[McsEntry] = tuple(MCS_TABLE),
    ):
        self.min_pdr = min_pdr
        self.table = list(table)
        self._esnr_db: Optional[float] = None

    def choose(self, retry_level: int = 0) -> McsEntry:
        if self._esnr_db is None:
            return self.table[0]
        chosen = best_mcs_for_esnr(self._esnr_db, self.min_pdr, self.table)
        if retry_level > 0:
            idx = next(
                i for i, e in enumerate(self.table) if e.index == chosen.index
            )
            return self.table[max(0, idx - retry_level)]
        return chosen

    def on_esnr(self, esnr_db: float) -> None:
        self._esnr_db = esnr_db
