"""Receiver-side block-ACK reordering (802.11n receive reorder buffer).

Link-layer retransmissions deliver MPDUs out of sequence-number order.  A
real 802.11n receiver holds out-of-order MPDUs in a per-originator
reorder buffer and releases them in order, so upper layers (TCP!) never
see MAC-level reordering; a timeout bounds head-of-line blocking when the
transmitter gives up on a frame.  Without this, every link-layer retry
would surface as TCP duplicate ACKs and trigger spurious fast
retransmits.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..sim.engine import EventHandle, Simulator
from .block_ack import seq_distance
from .frames import SEQ_MODULO

__all__ = ["RxReorderBuffer"]

#: Half the sequence space: anything further "ahead" is treated as behind.
_HALF_SPACE = SEQ_MODULO // 2

DeliverFn = Callable[[Any], None]


class RxReorderBuffer:
    """In-order release of MPDUs received from one transmitter.

    Parameters
    ----------
    timeout_s:
        How long the head-of-line gap may block delivery before the
        window is forced forward (covers transmitter retry give-ups).
    """

    def __init__(self, sim: Simulator, deliver: DeliverFn, timeout_s: float = 0.020):
        self.sim = sim
        self.deliver = deliver
        self.timeout_s = timeout_s
        self._next_seq: Optional[int] = None
        self._buffer: Dict[int, Any] = {}
        self._timer: Optional[EventHandle] = None
        self.delivered = 0
        self.duplicates = 0
        self.timeouts = 0

    def on_mpdu(self, seq: int, payload: Any) -> None:
        """Accept one decoded MPDU."""
        nxt = self._next_seq
        if seq == nxt or nxt is None:
            # Fast path: strictly in-order arrival (the overwhelmingly
            # common case on a healthy link) releases immediately.
            if nxt is None:
                self._next_seq = seq
            self.deliver(payload)
            self.delivered += 1
            self._next_seq = (self._next_seq + 1) % SEQ_MODULO
            if self._buffer:
                self._flush_consecutive()
            elif self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        behind = seq_distance(seq, nxt)
        if 0 < behind <= _HALF_SPACE:
            # At or before the window start: duplicate of something already
            # released (a link-layer retry we have already seen).
            self.duplicates += 1
            return
        if seq in self._buffer:
            self.duplicates += 1
            return
        self._buffer[seq] = payload
        self._arm_timer()

    # ------------------------------------------------------------- internals
    def _release(self, payload: Any) -> None:
        self.deliver(payload)
        self.delivered += 1
        self._next_seq = (self._next_seq + 1) % SEQ_MODULO

    def _flush_consecutive(self) -> None:
        while self._next_seq in self._buffer:
            self._release(self._buffer.pop(self._next_seq))
        if not self._buffer and self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm_timer(self) -> None:
        if self._timer is None:
            self._timer = self.sim.schedule(self.timeout_s, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if not self._buffer:
            return
        self.timeouts += 1
        # Jump the window to the earliest buffered frame and flush.
        earliest = min(
            self._buffer, key=lambda s: seq_distance(self._next_seq, s)
        )
        self._next_seq = earliest
        self._flush_consecutive()
        if self._buffer:
            self._arm_timer()

    @property
    def pending(self) -> int:
        return len(self._buffer)
