"""802.11n MAC substrate: frames, aggregation, block ACKs, rate control,
channel access, and the shared wireless medium."""

from .airtime import (
    DEFAULT_TIMING,
    MacTiming,
    ampdu_airtime_s,
    beacon_airtime_s,
    block_ack_airtime_s,
    control_frame_airtime_s,
    max_mpdus_for_airtime,
    mpdu_wire_bytes,
)
from .block_ack import BlockAckScoreboard, SequenceCounter, seq_distance
from .frames import SEQ_MODULO, Ampdu, Beacon, BlockAck, MgmtFrame, Mpdu
from .medium import Medium, MediumParams, Transmission
from .radio import DEFAULT_RETRY_LIMIT, PeerState, Radio
from .rate_control import EsnrRateControl, MinstrelLite, RateController

__all__ = [
    "DEFAULT_TIMING",
    "MacTiming",
    "ampdu_airtime_s",
    "beacon_airtime_s",
    "block_ack_airtime_s",
    "control_frame_airtime_s",
    "max_mpdus_for_airtime",
    "mpdu_wire_bytes",
    "BlockAckScoreboard",
    "SequenceCounter",
    "seq_distance",
    "SEQ_MODULO",
    "Ampdu",
    "Beacon",
    "BlockAck",
    "MgmtFrame",
    "Mpdu",
    "Medium",
    "MediumParams",
    "Transmission",
    "DEFAULT_RETRY_LIMIT",
    "PeerState",
    "Radio",
    "EsnrRateControl",
    "MinstrelLite",
    "RateController",
]
