"""Station MAC: aggregation, block-ACK exchange, retransmission.

:class:`Radio` implements the parts of the 802.11n data path that APs and
clients share: winning medium access, building A-MPDUs under the airtime
and count caps, the stop-and-wait block-ACK exchange, per-MPDU
retransmission with a retry limit, receiver-side duplicate filtering, and
BA generation.  AP- and client-specific behaviour (queue stacks, CSI
reporting, association) lives in subclasses under :mod:`repro.core`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..net.packet import Packet
from ..phy.antenna import OmniAntenna
from ..phy.mcs import McsEntry
from ..sim.engine import EventHandle, Simulator
from ..sim.trace import TraceRecorder
from .airtime import DEFAULT_TIMING, MacTiming, ampdu_airtime_s, block_ack_airtime_s
from .block_ack import BlockAckScoreboard
from .frames import Ampdu, Beacon, BlockAck, MgmtFrame, Mpdu
from .medium import Medium
from .rate_control import MinstrelLite, RateController
from .reorder import RxReorderBuffer

__all__ = ["Radio", "PeerState"]

#: Receiver-side duplicate window (sequence numbers remembered per peer).
RX_DEDUP_WINDOW = 512

#: Per-MPDU software retry limit (ath9k-like).
DEFAULT_RETRY_LIMIT = 10


class PeerState:
    """Per-peer transmit state: sequence space, scoreboard, retries, rate."""

    def __init__(self, rate_ctrl: RateController):
        self.seq_counter_value = 0
        self.scoreboard = BlockAckScoreboard()
        self.rate_ctrl = rate_ctrl
        self.retry_queue: Deque[Mpdu] = deque()
        #: seq -> Mpdu for the aggregate currently awaiting its BA.
        self.outstanding: Dict[int, Mpdu] = {}
        self.mpdus_sent = 0
        self.mpdus_acked = 0
        self.mpdus_dropped = 0
        self.ba_timeouts = 0
        #: Armed by flush_retries: MPDUs that come back unacked after the
        #: flush (they were already on the air when it ran) are dropped
        #: instead of re-queued.  Cleared when fresh data is built for
        #: the peer, i.e. this station legitimately serves it again.
        self.drop_requeues = False

    def next_seq(self) -> int:
        seq = self.seq_counter_value
        self.seq_counter_value = (seq + 1) % 4096
        return seq


class Radio:
    """One 802.11 station (base class for AP and client radios).

    Subclass hooks
    --------------
    ``_select_peer()``
        Which peer the next data aggregate should go to (None = no data).
    ``_pull_packets(peer, max_n)``
        Pop up to ``max_n`` packets destined to ``peer`` from the
        station's queue stack.
    ``_deliver(packet, src, t)``
        A data packet was decoded and passed the duplicate filter.
    ``_on_peer_frame_decoded(src, t)``
        Any frame from ``src`` was decoded (APs hook CSI reporting here).
    ``on_mgmt(frame, src, t)`` / ``on_beacon(beacon, src, t)``
        Management traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        rng: np.random.Generator,
        is_ap: bool,
        position_fn: Callable[[float], Tuple[float, float, float]],
        trace: Optional[TraceRecorder] = None,
        bssid: Optional[int] = None,
        antenna=None,
        tx_power_dbm: float = 18.0,
        timing: MacTiming = DEFAULT_TIMING,
        rate_ctrl_factory: Optional[Callable[[], RateController]] = None,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        monitor: bool = False,
        channel: int = 11,
    ):
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.rng = rng
        self.is_ap = is_ap
        self.position = position_fn
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.bssid = bssid if bssid is not None else node_id
        self.antenna = antenna or OmniAntenna(0.0)
        self.tx_power_dbm = tx_power_dbm
        self.timing = timing
        self.retry_limit = retry_limit
        self.monitor = monitor
        #: 2.4 GHz channel number.  The testbed runs everything on channel
        #: 11; the multi-channel extension (paper section 7) assigns
        #: alternating channels to adjacent APs.
        self.channel = channel
        self._rate_ctrl_factory = rate_ctrl_factory or (
            lambda: MinstrelLite(self.rng)
        )
        self.peers: Dict[int, PeerState] = {}
        self._mgmt_queue: Deque[MgmtFrame] = deque()
        self._beacon_queue: Deque[Beacon] = deque()
        self._rx_reorder: Dict[int, RxReorderBuffer] = {}
        self._awaiting_ba: Optional[Tuple[int, Ampdu]] = None
        self._ba_timer: Optional[EventHandle] = None
        self.enabled = True
        #: Opt-in (city builder arms it on APs): after flush_retries, an
        #: aggregate that was already on the air when the flush ran is
        #: dropped on BA timeout instead of re-queued.  Off by default so
        #: single-road drives stay bit-identical to the golden digests.
        self.strict_flush = False
        medium.register_radio(self)

    # ------------------------------------------------------------- peer state
    def peer(self, peer_id: int) -> PeerState:
        state = self.peers.get(peer_id)
        if state is None:
            state = PeerState(self._rate_ctrl_factory())
            self.peers[peer_id] = state
        return state

    def reset_peer(self, peer_id: int) -> None:
        """Drop all transmit state towards a peer (association change)."""
        self.peers.pop(peer_id, None)
        if self._awaiting_ba is not None and self._awaiting_ba[0] == peer_id:
            self._clear_ba_wait()

    def flush_retries(self, peer_id: int) -> int:
        """Discard queued retransmissions towards a peer.

        Used after a WGTT stop(c): once the NIC backlog has drained, the
        old AP must not keep retrying on its inferior link -- the new AP
        owns delivery from index k onward.  Returns how many were dropped.
        """
        state = self.peers.get(peer_id)
        if state is None:
            return 0
        dropped = len(state.retry_queue)
        state.scoreboard.forget([m.seq for m in state.retry_queue])
        state.mpdus_dropped += dropped
        state.retry_queue.clear()
        # An aggregate already on the air survives the flush; without
        # this latch its BA timeout would re-queue the stale MPDUs and
        # this station would retry them long after delivery moved on
        # (deep reordering at the client under saturation).
        if self.strict_flush:
            state.drop_requeues = True
        return dropped

    # ----------------------------------------------------------- power state
    def power_off(self) -> None:
        """Take the station off the air (fault injection: AP crash).

        A disabled radio neither transmits (``kick``/``build_transmission``
        bail out) nor decodes (``on_frame`` bails out).  Queued management
        frames and the pending block-ACK exchange die with the power.
        """
        self.enabled = False
        self._mgmt_queue.clear()
        self._beacon_queue.clear()
        self._clear_ba_wait()

    def power_on(self) -> None:
        """Bring a powered-off station back (fault injection: AP restart)."""
        self.enabled = True
        self.kick()

    # ------------------------------------------------------------ tx plumbing
    def kick(self) -> None:
        """Notify the MAC that there may be something to send."""
        if not self.enabled:
            return
        if self._awaiting_ba is not None:
            return  # stop-and-wait: finish the current exchange first
        if self._mgmt_queue or self._beacon_queue or self._has_data():
            self.medium.request_access(self)

    def send_mgmt(self, frame: MgmtFrame) -> None:
        self._mgmt_queue.append(frame)
        self.kick()

    def send_beacon(self, beacon: Beacon) -> None:
        self._beacon_queue.append(beacon)
        self.kick()

    def _has_data(self) -> bool:
        if any(state.retry_queue for state in self.peers.values()):
            return True
        return self._select_peer() is not None

    def build_transmission(self):
        """Called by the medium when this station wins channel access.

        Returns ``(frame, mcs_or_None)`` or None when there is nothing to
        send (the trigger condition evaporated while contending).
        """
        if not self.enabled:
            return None
        if self._beacon_queue:
            return self._beacon_queue.popleft(), None
        if self._mgmt_queue:
            return self._mgmt_queue.popleft(), None
        if self._awaiting_ba is not None:
            return None
        ampdu = self._build_data_ampdu()
        if ampdu is None:
            return None
        return ampdu, ampdu.mcs

    def _retry_peer(self) -> Optional[int]:
        for peer_id, state in self.peers.items():
            if state.retry_queue:
                return peer_id
        return None

    def _build_data_ampdu(self) -> Optional[Ampdu]:
        peer_id = self._retry_peer()
        if peer_id is None:
            peer_id = self._select_peer()
        if peer_id is None:
            return None
        state = self.peer(peer_id)
        retry_level = state.retry_queue[0].retries if state.retry_queue else 0
        mcs = state.rate_ctrl.choose(retry_level)
        mpdus: List[Mpdu] = []
        payloads: List[int] = []
        # Retries first (they hold the lowest sequence numbers).
        while state.retry_queue and len(mpdus) < self.timing.max_ampdu_frames:
            candidate = state.retry_queue[0]
            if not self._fits(payloads, candidate.payload_bytes, mcs):
                break
            state.retry_queue.popleft()
            mpdus.append(candidate)
            payloads.append(candidate.payload_bytes)
        while len(mpdus) < self.timing.max_ampdu_frames:
            pulled = self._pull_packets(peer_id, 1)
            if not pulled:
                break
            packet = pulled[0]
            if not self._fits(payloads, packet.size_bytes, mcs) and mpdus:
                self._unpull_packet(peer_id, packet)
                break
            mpdus.append(Mpdu(packet=packet, seq=state.next_seq()))
            payloads.append(packet.size_bytes)
            state.drop_requeues = False
        if not mpdus:
            return None
        return Ampdu(
            src=self.node_id,
            dst=peer_id,
            mpdus=mpdus,
            mcs=mcs,
            uplink=not self.is_ap,
        )

    def _fits(self, payloads: List[int], extra: int, mcs: McsEntry) -> bool:
        airtime = ampdu_airtime_s(payloads + [extra], mcs, self.timing)
        return airtime <= self.timing.max_ampdu_airtime_s

    # Subclass hooks -------------------------------------------------------
    def _select_peer(self) -> Optional[int]:
        return None

    def _pull_packets(self, peer_id: int, max_n: int) -> List[Packet]:
        return []

    def _unpull_packet(self, peer_id: int, packet: Packet) -> None:
        """Return a pulled packet that did not fit (subclasses override)."""

    def _deliver(self, packet: Packet, src: int, t: float) -> None:
        pass

    def _on_peer_frame_decoded(self, src: int, t: float) -> None:
        pass

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        pass

    def on_beacon(self, beacon: Beacon, src: int, t: float) -> None:
        pass

    def on_overheard_block_ack(self, ba: BlockAck, t: float) -> None:
        """Monitor-mode hook: a BA addressed to someone else was decoded."""

    def _ba_response_delay(self) -> float:
        """SIFS, plus the microsecond jitter APs exhibit (section 5.3.2)."""
        if self.is_ap:
            return self.timing.sifs_s + float(
                self.rng.uniform(0.0, self.medium.params.ba_jitter_s)
            )
        return self.timing.sifs_s

    # --------------------------------------------------------- medium events
    def on_transmission_started(self, tx) -> None:
        frame = tx.frame
        if isinstance(frame, Ampdu):
            state = self.peer(frame.dst)
            seqs = frame.seqs()
            state.scoreboard.record_sent(seqs)
            for mpdu in frame.mpdus:
                state.outstanding[mpdu.seq] = mpdu
                mpdu.retries += 1
            state.mpdus_sent += len(seqs)
            self._awaiting_ba = (frame.dst, frame)
            self.trace.emit(
                self.sim.now, "ampdu_tx",
                node=self.node_id, dst=frame.dst, mcs=frame.mcs.index,
                rate_mbps=frame.mcs.phy_rate_mbps, n_mpdus=frame.n_mpdus,
                uplink=frame.uplink,
            )

    def on_transmission_complete(self, tx) -> None:
        frame = tx.frame
        if isinstance(frame, Ampdu):
            # Arm the BA timeout: SIFS + jitter window + BA airtime + slack.
            timeout = (
                self.timing.sifs_s
                + self.medium.params.ba_jitter_s
                + block_ack_airtime_s(self.timing)
                + 60e-6
            )
            self._ba_timer = self.sim.schedule(timeout, self._ba_timeout, frame)
        else:
            self.sim.schedule(0.0, self.kick)

    def on_frame(self, frame, src: int, outcome, t: float) -> None:
        """Entry point from the medium for every decodable frame."""
        if not self.enabled:
            return
        if isinstance(frame, Ampdu):
            self._on_data_ampdu(frame, src, outcome, t)
        elif isinstance(frame, BlockAck):
            # Any decoded frame from a peer is a channel measurement
            # opportunity (the CSI tool measures *every* incoming frame).
            self._on_peer_frame_decoded(frame.src, t)
            if frame.dst == self.node_id or frame.dst == self.bssid:
                self._on_block_ack(frame, t)
            elif self.monitor:
                self.on_overheard_block_ack(frame, t)
        elif isinstance(frame, MgmtFrame):
            self._on_peer_frame_decoded(src, t)
            self.on_mgmt(frame, src, t)
        elif isinstance(frame, Beacon):
            self.on_beacon(frame, src, t)

    # ------------------------------------------------------------- data path
    def _on_data_ampdu(self, frame: Ampdu, src: int, outcome: Dict[int, bool], t: float) -> None:
        decoded = [m for m in frame.mpdus if outcome.get(m.seq)]
        addressed_to_me = frame.dst == self.node_id or frame.dst == self.bssid
        if decoded:
            self._on_peer_frame_decoded(src, t)
        if not addressed_to_me:
            # Monitor path: data overheard but not ours; APs may still use
            # the decode event for CSI (handled above).
            return
        if decoded:
            reorder = self._rx_reorder.get(src)
            if reorder is None:
                # 802.11n receive reorder buffer: releases MPDUs to the
                # upper layers in sequence order despite link retries.
                reorder = RxReorderBuffer(
                    self.sim,
                    lambda pkt, _src=src: self._deliver(pkt, _src, self.sim.now),
                )
                self._rx_reorder[src] = reorder
            for mpdu in decoded:
                reorder.on_mpdu(mpdu.seq, mpdu.packet)
            # APs acknowledge as the BSSID: the client sees one AP identity
            # no matter which physical AP answered (thin-AP illusion).
            ba = BlockAck.for_seqs(
                src=self.bssid if self.is_ap else self.node_id,
                dst=src,
                seqs=[m.seq for m in decoded],
                start_seq=frame.mpdus[0].seq,
            )
            self.medium.send_response(self, ba, self._ba_response_delay())

    def _on_block_ack(self, ba: BlockAck, t: float) -> None:
        if self._awaiting_ba is None:
            # Late or forwarded BA; still apply to cancel queued retries.
            self._apply_ba(ba, t, live=False)
            return
        peer_id, _frame = self._awaiting_ba
        self._apply_ba(ba, t, live=(ba.src == peer_id))

    def apply_forwarded_block_ack(self, ba: BlockAck, t: float) -> None:
        """Apply a BA that arrived over the backhaul (WGTT forwarding)."""
        self._apply_ba(ba, t, live=self._awaiting_ba is not None)

    def _ba_peer_state(self, ba: BlockAck) -> Optional[Tuple[int, PeerState]]:
        # The BA's src is the acknowledging station.  Downlink: src is the
        # client.  Uplink: the AP answers with src == bssid, so the client
        # resolves it to its serving peer.
        if ba.src in self.peers:
            return ba.src, self.peers[ba.src]
        if self._awaiting_ba is not None:
            peer_id = self._awaiting_ba[0]
            if peer_id in self.peers:
                return peer_id, self.peers[peer_id]
        return None

    def _apply_ba(self, ba: BlockAck, t: float, live: bool) -> None:
        resolved = self._ba_peer_state(ba)
        if resolved is None:
            return
        peer_id, state = resolved
        result = state.scoreboard.apply_block_ack(ba)
        if result is None:
            return  # duplicate BA (air + backhaul copies)
        acked, _unacked = result
        for seq in acked:
            mpdu = state.outstanding.pop(seq, None)
            if mpdu is not None:
                state.mpdus_acked += 1
                self._on_mpdu_acked(peer_id, mpdu, t)
            else:
                self._cancel_retry(state, seq, peer_id, t)
        if live and self._awaiting_ba is not None and self._awaiting_ba[0] == peer_id:
            _pid, frame = self._awaiting_ba
            n_sent = frame.n_mpdus
            n_acked = sum(1 for m in frame.mpdus if m.seq in set(acked))
            state.rate_ctrl.on_result(frame.mcs, n_sent, n_acked)
            # Whatever was not acked goes to the retry queue now.
            self._queue_retries(peer_id, state, frame, t)
            self._clear_ba_wait()
            self.sim.schedule(0.0, self.kick)

    def _cancel_retry(self, state: PeerState, seq: int, peer_id: int, t: float) -> None:
        for mpdu in list(state.retry_queue):
            if mpdu.seq == seq:
                state.retry_queue.remove(mpdu)
                state.mpdus_acked += 1
                self._on_mpdu_acked(peer_id, mpdu, t)
                return

    def _queue_retries(self, peer_id: int, state: PeerState, frame: Ampdu, t: float) -> None:
        for mpdu in frame.mpdus:
            if mpdu.seq not in state.outstanding:
                continue
            del state.outstanding[mpdu.seq]
            if mpdu.retries >= self.retry_limit or state.drop_requeues:
                state.mpdus_dropped += 1
                state.scoreboard.forget([mpdu.seq])
                self._on_mpdu_dropped(peer_id, mpdu, t)
            else:
                state.retry_queue.append(mpdu)

    def _ba_timeout(self, frame: Ampdu) -> None:
        if self._awaiting_ba is None or self._awaiting_ba[1] is not frame:
            return
        peer_id = frame.dst
        state = self.peer(peer_id)
        state.ba_timeouts += 1
        state.rate_ctrl.on_result(frame.mcs, frame.n_mpdus, 0)
        self.trace.emit(self.sim.now, "ba_timeout", node=self.node_id, peer=peer_id)
        self._queue_retries(peer_id, state, frame, self.sim.now)
        self._clear_ba_wait()
        self.kick()

    def _clear_ba_wait(self) -> None:
        self._awaiting_ba = None
        if self._ba_timer is not None:
            self._ba_timer.cancel()
            self._ba_timer = None

    # ---------------------------------------------------------- subclass API
    def _on_mpdu_acked(self, peer_id: int, mpdu: Mpdu, t: float) -> None:
        pass

    def _on_mpdu_dropped(self, peer_id: int, mpdu: Mpdu, t: float) -> None:
        pass
