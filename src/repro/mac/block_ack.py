"""Block-acknowledgement bookkeeping.

Two pieces:

* :class:`SequenceCounter` -- the transmitter's 12-bit per-peer sequence
  space.
* :class:`BlockAckScoreboard` -- the transmitter-side record of which
  in-flight sequence numbers an aggregate is waiting on, plus duplicate-BA
  suppression for the WGTT forwarding path (an AP must not apply the same
  BA twice when it arrives both over the air and over the backhaul,
  section 3.2.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .frames import SEQ_MODULO, BlockAck

__all__ = ["SequenceCounter", "BlockAckScoreboard", "seq_distance"]


def seq_distance(a: int, b: int) -> int:
    """Forward distance from ``a`` to ``b`` in 12-bit sequence space."""
    return (b - a) % SEQ_MODULO


class SequenceCounter:
    """Allocates consecutive 12-bit sequence numbers per peer."""

    def __init__(self) -> None:
        self._next: Dict[int, int] = {}

    def allocate(self, peer: int) -> int:
        seq = self._next.get(peer, 0)
        self._next[peer] = (seq + 1) % SEQ_MODULO
        return seq

    def peek(self, peer: int) -> int:
        return self._next.get(peer, 0)


class BlockAckScoreboard:
    """Transmitter-side block-ACK state for one peer.

    Life cycle per aggregate: :meth:`record_sent` registers the in-flight
    sequence numbers; :meth:`apply_block_ack` resolves them into
    (acked, unacked) lists.  BAs already applied (identified by
    ``(start_seq, bitmap)`` like the real forwarding path's duplicate
    check) are ignored.
    """

    def __init__(self, history: int = 16):
        self._in_flight: Set[int] = set()
        self._applied_bas: List[Tuple[int, int]] = []
        self._history = history
        self.bas_applied = 0
        self.bas_duplicate = 0

    @property
    def in_flight(self) -> Set[int]:
        return set(self._in_flight)

    def record_sent(self, seqs: List[int]) -> None:
        """Mark sequence numbers as awaiting acknowledgement."""
        self._in_flight.update(seqs)

    def apply_block_ack(self, ba: BlockAck) -> Optional[Tuple[List[int], List[int]]]:
        """Resolve a BA against in-flight state.

        Returns ``(acked, still_unacked)`` over the BA's 64-seq window, or
        ``None`` if this exact BA was seen before (duplicate from the
        forwarding path).
        """
        key = (ba.start_seq, ba.bitmap)
        if key in self._applied_bas:
            self.bas_duplicate += 1
            return None
        self._applied_bas.append(key)
        if len(self._applied_bas) > self._history:
            self._applied_bas.pop(0)
        self.bas_applied += 1

        acked = [s for s in ba.acked if s in self._in_flight]
        for s in acked:
            self._in_flight.discard(s)
        window = {
            (ba.start_seq + i) % SEQ_MODULO for i in range(64)
        }
        unacked = [s for s in self._in_flight if s in window]
        return acked, unacked

    def forget(self, seqs: List[int]) -> None:
        """Drop sequence numbers without acknowledgement (retry give-up)."""
        for s in seqs:
            self._in_flight.discard(s)

    def reset(self) -> None:
        """Clear all state (used when the serving AP changes)."""
        self._in_flight.clear()
        self._applied_bas.clear()
