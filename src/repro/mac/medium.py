"""The shared wireless channel.

All APs and clients operate on one 2.4 GHz channel (channel 11 in the
testbed).  The medium model provides:

* **Channel access** -- CSMA/CA with DIFS + uniform backoff.  Carrier
  sense has finite range (computed from mean received power against a CS
  threshold), so spatially separated exchanges proceed concurrently --
  this is what differentiates the paper's parallel-driving and
  opposing-driving scenarios (Fig. 20).
* **The vulnerable window** -- a station that starts transmitting cannot
  be sensed for one slot; a second station starting within that slot
  collides rather than defers.
* **Reception** -- per-MPDU Bernoulli delivery from the link's
  instantaneous ESNR, SINR capture checks against overlapping
  transmissions, and delivery to monitor-mode interfaces (the WGTT block
  ACK forwarding path overhears through these).
* **Responses** -- block ACKs are scheduled SIFS after the data (plus a
  microsecond-scale jitter for AP responders), transmitted without
  contention inside the initiator's NAV window.  Multiple APs answering
  the same uplink aggregate can therefore collide at the client, which is
  exactly the effect Table 3 quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..phy.channel import Link
from ..phy.mcs import MCS_TABLE, McsEntry, pdr
from ..phy.pathloss import LogDistancePathLoss
from ..sim.engine import EventHandle, Simulator
from ..sim.trace import TraceRecorder
from .airtime import (
    BLOCK_ACK_BYTES,
    DEFAULT_TIMING,
    MacTiming,
    ampdu_airtime_s,
    beacon_airtime_s,
    block_ack_airtime_s,
    control_frame_airtime_s,
    MGMT_BYTES,
)
from .frames import Ampdu, Beacon, BlockAck, MgmtFrame

__all__ = ["Medium", "MediumParams", "Transmission"]

Frame = Union[Ampdu, BlockAck, MgmtFrame, Beacon]

#: Robust MCS used to model decoding of legacy-rate control/mgmt frames.
CTRL_MCS = MCS_TABLE[0]


@dataclass
class MediumParams:
    """Knobs of the channel-access and capture model."""

    cs_threshold_dbm: float = -82.0
    capture_margin_db: float = 10.0
    #: Minimum mean SNR for a receiver to even attempt decoding (cheap cull).
    decode_floor_db: float = -3.0
    #: AP block-ACK response jitter upper bound (the paper measured the
    #: HT-immediate BA turnaround varying on a microsecond scale).  Wide
    #: enough that two responders' starts rarely fall within the preamble
    #: detection window, so deferral -- not collision -- is the norm.
    ba_jitter_s: float = 150e-6
    rx_processing_s: float = 0.0


@dataclass(slots=True)
class Transmission:
    """One frame on the air."""

    radio: "object"  # repro.mac.radio.Radio (duck-typed to avoid a cycle)
    frame: Frame
    t_start: float
    data_end: float
    nav_end: float
    is_response: bool = False

    def overlaps(self, other: "Transmission") -> bool:
        return self.t_start < other.data_end and other.t_start < self.data_end


class Medium:
    """Single-channel wireless medium with spatial carrier sense."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        timing: MacTiming = DEFAULT_TIMING,
        params: Optional[MediumParams] = None,
    ):
        self.sim = sim
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.timing = timing
        self.params = params or MediumParams()
        self._radios: Dict[int, object] = {}
        #: (ap_id, client_id) -> Link.  The only radio channel pairs with a
        #: full fading model; infra-infra and client-client coupling use
        #: mean path loss (they matter only for carrier sense/capture).
        self._links: Dict[Tuple[int, int], Link] = {}
        # AP-AP coupling: the array shares one building face, so APs hear
        # each other through near-line-of-sight leakage regardless of where
        # their parabolic antennas point (0 dBi effective gain, free-space
        # exponent).  Client-client coupling is street-level omni.
        self._infra_pathloss = LogDistancePathLoss(exponent=2.0)
        self._street_pathloss = LogDistancePathLoss(exponent=2.8, extra_loss_db=10.0)
        self._active: List[Transmission] = []
        self._pending_access: Dict[int, EventHandle] = {}
        self._retry_cw: Dict[int, int] = {}
        # Statistics
        self.data_transmissions = 0
        self.response_transmissions = 0
        self.responses_suppressed = 0
        self.collisions = 0

    # ---------------------------------------------------------- registration
    def register_radio(self, radio) -> None:
        if radio.node_id in self._radios:
            raise ValueError(f"radio {radio.node_id} already registered")
        self._radios[radio.node_id] = radio

    def add_link(self, ap_id: int, client_id: int, link: Link) -> None:
        self._links[(ap_id, client_id)] = link

    def link_between(self, node_a: int, node_b: int) -> Optional[Tuple[Link, bool]]:
        """Return (link, uplink?) for an AP/client pair, else None.

        ``uplink`` is True when ``node_a`` (the transmitter) is the client.
        """
        if (node_a, node_b) in self._links:
            return self._links[(node_a, node_b)], False
        if (node_b, node_a) in self._links:
            return self._links[(node_b, node_a)], True
        return None

    def radios(self) -> List[object]:
        return list(self._radios.values())

    # -------------------------------------------------------------- RF maths
    def rx_power_dbm(self, tx_radio, rx_radio, t: float) -> float:
        """Mean received power of ``tx_radio``'s signal at ``rx_radio``."""
        pair = self.link_between(tx_radio.node_id, rx_radio.node_id)
        if pair is not None:
            link, uplink = pair
            return link.rx_power_dbm(t, uplink=uplink)
        tx_pos = tx_radio.position(t)
        rx_pos = rx_radio.position(t)
        d = math.dist(tx_pos, rx_pos)
        if tx_radio.is_ap and rx_radio.is_ap:
            # Leakage path between co-sited APs: pattern-independent.
            return tx_radio.tx_power_dbm - self._infra_pathloss.loss_db(d)
        # Client-client: omni antennas at street level.
        return tx_radio.tx_power_dbm - self._street_pathloss.loss_db(d)

    @staticmethod
    def _same_channel(a, b) -> bool:
        return getattr(a, "channel", 11) == getattr(b, "channel", 11)

    def _audible(self, tx_radio, rx_radio, t: float) -> bool:
        if tx_radio is rx_radio:
            return False
        if not self._same_channel(tx_radio, rx_radio):
            return False  # 2.4 GHz channels 1/6/11 are orthogonal
        return self.rx_power_dbm(tx_radio, rx_radio, t) > self.params.cs_threshold_dbm

    # ------------------------------------------------------- candidate hooks
    # Subclasses with spatial partitioning (repro.city.ShardedMedium)
    # override these five hooks to bound the sets scanned by carrier
    # sense, capture, and reception.  The base implementations return the
    # global sets in insertion order, so the default single-road medium
    # is bit-identical to the pre-hook code.
    def _activate(self, tx: Transmission) -> None:
        """Record ``tx`` as on the air."""
        self._active.append(tx)

    def _deactivate(self, tx: Transmission) -> None:
        """Remove ``tx`` from the on-air set (idempotent)."""
        try:
            self._active.remove(tx)
        except ValueError:  # pragma: no cover - defensive
            pass

    def _active_near(self, radio) -> List[Transmission]:
        """Active transmissions that could be audible at ``radio``."""
        return self._active

    def _interference_candidates(self, tx: Transmission, rx_radio) -> List[Transmission]:
        """Active transmissions that could interfere with ``tx`` at ``rx_radio``."""
        return self._active

    def _receiver_candidates(self, tx: Transmission) -> List[object]:
        """Radios that could possibly hear ``tx``."""
        return list(self._radios.values())

    def busy_until(self, radio, t: float) -> float:
        """Latest NAV end among transmissions audible to ``radio``."""
        busy = t
        for tx in self._active_near(radio):
            if tx.radio is radio:
                busy = max(busy, tx.nav_end)
            elif tx.nav_end > t and self._audible(tx.radio, radio, t):
                busy = max(busy, tx.nav_end)
        return busy

    # --------------------------------------------------------- channel access
    def request_access(self, radio) -> None:
        """Ask for a transmit opportunity; the medium will call
        ``radio.build_transmission()`` when the station wins access.

        Idempotent while a request is outstanding.
        """
        if radio.node_id in self._pending_access:
            return
        self._retry_cw.setdefault(radio.node_id, self.timing.cw_min)
        handle = self.sim.schedule(0.0, self._attempt, radio)
        self._pending_access[radio.node_id] = handle

    def cancel_access(self, radio) -> None:
        handle = self._pending_access.pop(radio.node_id, None)
        if handle is not None:
            handle.cancel()

    def _attempt(self, radio) -> None:
        now = self.sim.now
        busy = self.busy_until(radio, now)
        if busy > now + 1e-12:
            # Defer: come back when the channel frees up.  Every station
            # parked behind the same NAV edge wakes at the same instant, so
            # the whole contention round is coalesced into one heap event;
            # stations re-attempt (and draw backoff) in the order they
            # deferred, exactly as N separate wake-ups would have.
            self._pending_access[radio.node_id] = self.sim.schedule_batch_at(
                busy + 1e-9, self._attempt, radio, key=self
            )
            return
        cw = self._retry_cw.get(radio.node_id, self.timing.cw_min)
        backoff_slots = int(self.rng.integers(0, cw))
        start = now + self.timing.difs_s + backoff_slots * self.timing.slot_s
        self._pending_access[radio.node_id] = self.sim.schedule_at(
            start, self._start_tx, radio
        )

    def _start_tx(self, radio) -> None:
        now = self.sim.now
        self._pending_access.pop(radio.node_id, None)
        # Re-check the channel.  A transmission that started more than one
        # slot ago is sensed (defer); one inside the vulnerable window is
        # not (we transmit anyway and may collide).
        for tx in self._active_near(radio):
            if tx.nav_end > now and tx.t_start < now - self.timing.slot_s:
                if self._audible(tx.radio, radio, now):
                    self._pending_access[radio.node_id] = self.sim.schedule(
                        0.0, self._attempt, radio
                    )
                    return
        descriptor = radio.build_transmission()
        if descriptor is None:
            return  # nothing to send any more
        frame, mcs = descriptor
        self._transmit(radio, frame, mcs)

    # ----------------------------------------------------------- transmission
    def _frame_airtime(self, frame: Frame, mcs: Optional[McsEntry]) -> float:
        if isinstance(frame, Ampdu):
            assert mcs is not None
            return ampdu_airtime_s(
                [m.payload_bytes for m in frame.mpdus], mcs, self.timing
            )
        if isinstance(frame, BlockAck):
            return block_ack_airtime_s(self.timing)
        if isinstance(frame, Beacon):
            return beacon_airtime_s(self.timing)
        return control_frame_airtime_s(MGMT_BYTES, self.timing)

    def _transmit(self, radio, frame: Frame, mcs: Optional[McsEntry]) -> None:
        now = self.sim.now
        airtime = self._frame_airtime(frame, mcs)
        data_end = now + airtime
        nav_end = data_end
        if isinstance(frame, Ampdu):
            # Reserve room for the BA exchange inside the NAV.
            nav_end += (
                self.timing.sifs_s
                + self.params.ba_jitter_s
                + block_ack_airtime_s(self.timing)
            )
        tx = Transmission(radio, frame, now, data_end, nav_end)
        self._activate(tx)
        self.data_transmissions += 1
        self.sim.schedule_at(data_end, self._complete, tx, mcs)
        self.sim.schedule_at(nav_end + 1e-9, self._cleanup, tx)
        # Access won: reset this station's contention window.
        self._retry_cw[radio.node_id] = self.timing.cw_min
        radio.on_transmission_started(tx)

    def send_response(self, radio, frame: Frame, delay_s: float) -> None:
        """Send a control response (block ACK) ``delay_s`` after now.

        Responses skip contention: 802.11 responses go out SIFS after the
        soliciting frame, inside its NAV reservation.
        """
        self.sim.schedule(delay_s, self._transmit_response, radio, frame)

    def _transmit_response(self, radio, frame: Frame) -> None:
        now = self.sim.now
        # Responder-side deferral: when several APs decode the same uplink
        # aggregate, the one whose turnaround jitter fires later *hears*
        # the earlier BA already on the air (co-sited APs are mutually
        # audible) and suppresses its own -- the mechanism the paper
        # credits for the near-zero collision rate of Table 3.  Only
        # starts within the preamble-detection window can still collide.
        detect_window = 2e-6
        for other in self._active_near(radio):
            if (
                other.is_response
                and other.data_end > now
                and other.t_start <= now - detect_window
                and self._audible(other.radio, radio, now)
            ):
                self.responses_suppressed += 1
                return
        airtime = self._frame_airtime(frame, None)
        tx = Transmission(radio, frame, now, now + airtime, now + airtime, is_response=True)
        self._activate(tx)
        self.response_transmissions += 1
        self.sim.schedule_at(tx.data_end, self._complete, tx, None)
        self.sim.schedule_at(tx.nav_end + 1e-9, self._cleanup, tx)

    def _cleanup(self, tx: Transmission) -> None:
        self._deactivate(tx)

    # -------------------------------------------------------------- reception
    def _interferers(self, tx: Transmission, rx_radio, t: float) -> List[Transmission]:
        out = []
        for other in self._interference_candidates(tx, rx_radio):
            if other is tx or other.radio is tx.radio or other.radio is rx_radio:
                continue
            if not self._same_channel(other.radio, rx_radio):
                continue
            if other.overlaps(tx):
                out.append(other)
        return out

    def _captured(self, tx: Transmission, rx_radio, t: float) -> bool:
        """True when ``rx_radio`` can decode ``tx`` despite any overlap."""
        interferers = self._interferers(tx, rx_radio, t)
        if not interferers:
            return True
        p_sig = self.rx_power_dbm(tx.radio, rx_radio, t)
        p_int_max = max(
            self.rx_power_dbm(o.radio, rx_radio, t) for o in interferers
        )
        # Interference far below the CS threshold cannot break reception.
        if p_int_max < self.params.cs_threshold_dbm - 10.0:
            return True
        if p_sig - p_int_max >= self.params.capture_margin_db:
            return True
        self.collisions += 1
        self.trace.emit(t, "phy_collision", rx=rx_radio.node_id, tx=tx.radio.node_id)
        return False

    def _candidate_receivers(self, tx: Transmission) -> List[object]:
        # The frame's type is fixed across the scan, so branch on it once
        # and run a type-specialised loop (same membership, same order).
        frame = tx.frame
        tx_radio = tx.radio
        same_channel = self._same_channel
        out = []
        if isinstance(frame, Beacon):
            for radio in self._receiver_candidates(tx):
                if radio is tx_radio or radio.is_ap:
                    continue
                if same_channel(tx_radio, radio):
                    out.append(radio)
        elif isinstance(frame, MgmtFrame):
            # Management frames are processed by any station that can
            # decode them (the baseline forwards overheard assoc frames).
            for radio in self._receiver_candidates(tx):
                if radio is not tx_radio and same_channel(tx_radio, radio):
                    out.append(radio)
        else:
            dst = frame.dst
            from_client = not tx_radio.is_ap
            for radio in self._receiver_candidates(tx):
                if radio is tx_radio:
                    continue
                if not same_channel(tx_radio, radio):
                    continue  # a receiver tuned elsewhere hears nothing
                if dst == radio.node_id or dst == getattr(radio, "bssid", None):
                    out.append(radio)
                elif from_client and getattr(radio, "monitor", False):
                    # Monitor interfaces only care about client-originated
                    # frames (uplink data and the client's block ACKs).
                    out.append(radio)
        return out

    def _complete(self, tx: Transmission, mcs: Optional[McsEntry]) -> None:
        t = self.sim.now
        frame = tx.frame
        tx_id = tx.radio.node_id
        floor = self.params.decode_floor_db
        rng_random = self.rng.random
        link_between = self.link_between
        is_ampdu = isinstance(frame, Ampdu)
        if is_ampdu:
            # All PHY quantities of a data frame are sampled at the frame
            # midpoint: the floor cull, the capture check, and the ESNR the
            # per-MPDU Bernoulli draws use.  One instant per frame means the
            # link memo serves every nested lookup after the first.
            sample_t = tx.t_start + (tx.data_end - tx.t_start) / 2.0
            mpdu_sizes = [(m.seq, m.payload_bytes) for m in frame.mpdus]
        else:
            # Control/management frames sample at the preamble (t_start),
            # where detection physically happens; the RSSI proxy below
            # already did, so floor + capture + quality share one memo key.
            sample_t = tx.t_start
            ctrl_bytes = BLOCK_ACK_BYTES if isinstance(frame, BlockAck) else MGMT_BYTES
        for radio in self._candidate_receivers(tx):
            pair = link_between(tx_id, radio.node_id)
            if pair is None:
                # Infra-infra/client-client: only mgmt matters and only at
                # extreme proximity; skip (backhaul carries infra traffic).
                continue
            link, uplink = pair
            if link.mean_snr_db(sample_t, uplink=uplink) < floor:
                continue
            if not self._captured(tx, radio, sample_t):
                if is_ampdu:
                    radio.on_frame(frame, tx_id, {s: False for s in frame.seqs()}, t)
                continue
            if is_ampdu:
                esnr = link.esnr_db(sample_t, uplink=uplink)
                outcomes = {}
                pdr_by_size: Dict[int, float] = {}
                for seq, n_bytes in mpdu_sizes:
                    p = pdr_by_size.get(n_bytes)
                    if p is None:
                        p = pdr(esnr, mcs, n_bytes=n_bytes)
                        pdr_by_size[n_bytes] = p
                    outcomes[seq] = bool(rng_random() < p)
                radio.on_frame(frame, tx_id, outcomes, t)
            else:
                # The wideband RSSI proxy (flat fading gain) is accurate
                # enough here and far cheaper than a full ESNR evaluation.
                quality = link.rssi_db(sample_t, uplink=uplink)
                ok = rng_random() < pdr(quality, CTRL_MCS, n_bytes=ctrl_bytes)
                if ok:
                    radio.on_frame(frame, tx_id, True, t)
        tx.radio.on_transmission_complete(tx)
