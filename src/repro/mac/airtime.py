"""802.11n frame timing and airtime computation.

All the timing constants the MAC needs: slot/SIFS/DIFS, PHY preambles,
A-MPDU duration, block-ACK and beacon airtime.  Values follow 802.11n in
the 2.4 GHz band (HT-mixed format, short guard interval), matching the
TP-Link N750 testbed configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..phy.mcs import McsEntry

__all__ = ["MacTiming", "DEFAULT_TIMING", "ampdu_airtime_s", "mpdu_wire_bytes"]

#: MAC header (QoS data, 26 B) + FCS (4 B) + A-MPDU delimiter & padding (4 B).
MPDU_OVERHEAD_BYTES = 34

#: Block ACK frame body (compressed bitmap variant).
BLOCK_ACK_BYTES = 32

#: Management frame sizes (order of magnitude; beacons carry IEs).
BEACON_BYTES = 220
MGMT_BYTES = 120
NULL_DATA_BYTES = 28


@dataclass(frozen=True)
class MacTiming:
    """Channel-access timing for 802.11 at 2.4 GHz (DSSS-OFDM coexistence).

    ``basic_rate_mbps`` is the legacy OFDM rate used for control responses
    (block ACKs) and management frames.
    """

    slot_s: float = 9e-6
    sifs_s: float = 10e-6
    difs_s: float = 28e-6  # SIFS + 2 * slot
    cw_min: int = 16
    cw_max: int = 1024
    preamble_s: float = 36e-6  # HT-mixed: L-STF+L-LTF+L-SIG+HT-SIG+HT-STF+HT-LTF
    legacy_preamble_s: float = 20e-6
    symbol_s: float = 3.6e-6  # OFDM symbol with short GI
    basic_rate_mbps: float = 24.0
    beacon_rate_mbps: float = 6.0
    #: Regulatory/driver cap on a single A-MPDU's airtime.
    max_ampdu_airtime_s: float = 4e-3
    #: Driver cap on MPDUs per aggregate (ath9k default region).
    max_ampdu_frames: int = 32


DEFAULT_TIMING = MacTiming()


def mpdu_wire_bytes(payload_bytes: int) -> int:
    """Bytes of one MPDU on the air, including MAC framing."""
    return payload_bytes + MPDU_OVERHEAD_BYTES


def ampdu_airtime_s(
    mpdu_payload_bytes, mcs: McsEntry, timing: MacTiming = DEFAULT_TIMING
) -> float:
    """Airtime of an A-MPDU carrying the given MPDU payloads.

    ``mpdu_payload_bytes`` is an iterable of per-MPDU payload sizes in
    bytes.  Duration = HT preamble + data bits rounded up to whole OFDM
    symbols.
    """
    total_bits = 0
    for b in mpdu_payload_bytes:
        total_bits += b + MPDU_OVERHEAD_BYTES
    total_bits *= 8
    if total_bits == 0:
        raise ValueError("cannot compute airtime of an empty A-MPDU")
    bits_per_symbol = mcs.phy_rate_mbps * timing.symbol_s * 1e6
    n_symbols = math.ceil(total_bits / bits_per_symbol)
    return timing.preamble_s + n_symbols * timing.symbol_s


def control_frame_airtime_s(
    frame_bytes: int, timing: MacTiming = DEFAULT_TIMING, rate_mbps: float = None
) -> float:
    """Airtime of a legacy-format control/management frame."""
    rate = rate_mbps if rate_mbps is not None else timing.basic_rate_mbps
    symbols = math.ceil((frame_bytes * 8) / (rate * 4.0))  # 4 us legacy symbols
    return timing.legacy_preamble_s + symbols * 4e-6


def block_ack_airtime_s(timing: MacTiming = DEFAULT_TIMING) -> float:
    """Airtime of one compressed block ACK."""
    return control_frame_airtime_s(BLOCK_ACK_BYTES, timing)


def beacon_airtime_s(timing: MacTiming = DEFAULT_TIMING) -> float:
    """Airtime of one beacon at the (low) beacon rate."""
    return control_frame_airtime_s(BEACON_BYTES, timing, rate_mbps=timing.beacon_rate_mbps)


def max_mpdus_for_airtime(
    payload_bytes: int, mcs: McsEntry, timing: MacTiming = DEFAULT_TIMING
) -> int:
    """How many equal-size MPDUs fit in the A-MPDU airtime/count caps."""
    limit = timing.max_ampdu_frames
    for n in range(1, timing.max_ampdu_frames + 1):
        if ampdu_airtime_s([payload_bytes] * n, mcs, timing) > timing.max_ampdu_airtime_s:
            limit = n - 1
            break
    return max(1, limit)
