"""802.11 frame objects exchanged over the simulated medium."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from ..net.packet import Packet
from ..phy.mcs import McsEntry

__all__ = ["Mpdu", "Ampdu", "BlockAck", "MgmtFrame", "Beacon", "SEQ_MODULO"]

#: 802.11 sequence numbers are 12 bits.
SEQ_MODULO = 4096

_frame_uid = itertools.count(1)


@dataclass(slots=True)
class Mpdu:
    """One MAC protocol data unit inside an aggregate.

    ``seq`` is the 12-bit 802.11 sequence number assigned by the
    transmitter's per-peer counter; ``retries`` counts delivery attempts.
    """

    packet: Packet
    seq: int
    retries: int = 0

    @property
    def payload_bytes(self) -> int:
        return self.packet.size_bytes


@dataclass(slots=True)
class Ampdu:
    """An aggregated frame: the unit of medium access for data.

    A single-MPDU transmission is an Ampdu of length one (802.11n sends
    everything under a block-ACK agreement once one is set up).
    """

    src: int
    dst: int
    mpdus: List[Mpdu]
    mcs: McsEntry
    uplink: bool = False
    uid: int = field(default_factory=lambda: next(_frame_uid))

    def __post_init__(self) -> None:
        if not self.mpdus:
            raise ValueError("A-MPDU must contain at least one MPDU")

    @property
    def n_mpdus(self) -> int:
        return len(self.mpdus)

    @property
    def total_payload_bytes(self) -> int:
        return sum(m.payload_bytes for m in self.mpdus)

    def seqs(self) -> List[int]:
        return [m.seq for m in self.mpdus]


@dataclass(slots=True)
class BlockAck:
    """Compressed block ACK: a start sequence + 64-bit bitmap.

    ``acked`` maps each acknowledged 12-bit sequence number; it is the
    decoded form of the bitmap (the start_seq/bitmap pair is kept so the
    forwarding path can re-encode it faithfully).
    """

    src: int  # the acknowledging station (client for downlink data)
    dst: int  # the station being acknowledged
    start_seq: int
    bitmap: int
    uid: int = field(default_factory=lambda: next(_frame_uid))

    @property
    def acked(self) -> List[int]:
        # Iterate set bits only (ascending, same order as the historical
        # 0..63 scan) instead of probing all 64 positions.
        out = []
        bitmap = self.bitmap & (1 << 64) - 1
        start_seq = self.start_seq
        while bitmap:
            low = bitmap & -bitmap
            out.append((start_seq + low.bit_length() - 1) % SEQ_MODULO)
            bitmap ^= low
        return out

    @classmethod
    def for_seqs(cls, src: int, dst: int, seqs: List[int], start_seq: int) -> "BlockAck":
        """Build a BA acknowledging ``seqs`` relative to ``start_seq``.

        Sequence numbers outside the 64-frame window are silently ignored,
        exactly as a real compressed BA cannot represent them.
        """
        bitmap = 0
        for seq in seqs:
            offset = (seq - start_seq) % SEQ_MODULO
            if offset < 64:
                bitmap |= 1 << offset
        return cls(src=src, dst=dst, start_seq=start_seq, bitmap=bitmap)


@dataclass(slots=True)
class MgmtFrame:
    """Management frame: (re)association, probe, null-data keepalive."""

    src: int
    dst: int
    kind: str  # "reassoc_req" | "reassoc_resp" | "null" | "probe"
    info: Dict = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_frame_uid))


@dataclass(slots=True)
class Beacon:
    """Periodic beacon announcing an AP (or the shared WGTT BSSID)."""

    src: int
    bssid: int
    uid: int = field(default_factory=lambda: next(_frame_uid))
