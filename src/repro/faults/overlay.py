"""Backhaul fault overlay: the data-plane half of fault injection.

The :class:`Backhaul` consults an attached overlay on every ``send``.
The overlay answers two questions -- *drop this packet?* and *how much
extra latency?* -- from its node-down set and its list of time-windowed
link rules.  It owns a dedicated RNG seeded from the scenario, so a run
with an overlay attached but no rule matching draws nothing from the
simulation's own streams.

Only the injector mutates the overlay (node failures at event times);
rules are installed once at arm time and gate themselves on ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from ..sim.trace import TraceRecorder

__all__ = ["LinkRule", "BackhaulFaultOverlay", "SendVerdict"]


@dataclass
class LinkRule:
    """One time-windowed fault on a set of backhaul links.

    ``group_a`` / ``group_b`` are *node ids* (the injector resolves AP
    indices before installing rules).  ``None`` for a group means "any
    node" on that side; rules match symmetrically when ``bidirectional``.
    ``csi_only`` restricts the rule to CSI-report packets, ``ctrl_only``
    to any control packet -- the knobs behind the ``csi_drop`` and
    ``ctrl_delay`` fault models.
    """

    t0: float
    t1: float
    group_a: Optional[frozenset] = None
    group_b: Optional[frozenset] = None
    loss_probability: float = 0.0
    extra_latency_s: float = 0.0
    jitter_s: float = 0.0
    ctrl_only: bool = False
    csi_only: bool = False
    bidirectional: bool = True
    kind: str = "link"

    def active(self, now: float) -> bool:
        return self.t0 <= now < self.t1

    def _sides_match(self, src: int, dst: int) -> bool:
        a, b = self.group_a, self.group_b
        forward = (a is None or src in a) and (b is None or dst in b)
        if forward:
            return True
        if not self.bidirectional:
            return False
        return (a is None or dst in a) and (b is None or src in b)

    def matches(self, src: int, dst: int, packet, now: float) -> bool:
        if not self.active(now):
            return False
        if self.ctrl_only and packet.protocol != "ctrl":
            return False
        if self.csi_only and not _is_csi(packet):
            return False
        return self._sides_match(src, dst)


def _is_csi(packet) -> bool:
    payload = getattr(packet, "payload", None)
    return type(payload).__name__ == "CsiReport"


@dataclass
class SendVerdict:
    """The overlay's answer for one packet."""

    drop: bool = False
    reason: str = ""
    extra_latency_s: float = 0.0


class BackhaulFaultOverlay:
    """Holds injected backhaul faults and adjudicates every send.

    Attach with :meth:`repro.net.ethernet.Backhaul.attach_fault_overlay`.
    While attached, a send to a dead or unregistered node is a traced
    drop instead of a hard ``KeyError`` -- infrastructure failure is an
    expected condition under injection, a wiring bug otherwise.
    """

    def __init__(self, rng: np.random.Generator,
                 trace: Optional[TraceRecorder] = None):
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self._down: Set[int] = set()
        self._rules: list = []
        self.drops_node_down = 0
        self.drops_rule = 0
        self.delayed_packets = 0

    # ------------------------------------------------------------ topology
    def fail_node(self, node_id: int, now: float) -> None:
        self._down.add(node_id)
        self.trace.emit(now, "fault_node_down", node=node_id)

    def revive_node(self, node_id: int, now: float) -> None:
        self._down.discard(node_id)
        self.trace.emit(now, "fault_node_up", node=node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    @property
    def down_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._down))

    # --------------------------------------------------------------- rules
    def add_rule(self, rule: LinkRule) -> LinkRule:
        self._rules.append(rule)
        return rule

    # ------------------------------------------------------------ verdicts
    def on_send(self, src: int, dst: int, packet, now: float,
                dst_registered: bool = True) -> SendVerdict:
        """Adjudicate one backhaul send (called by ``Backhaul.send``)."""
        if src in self._down or dst in self._down or not dst_registered:
            self.drops_node_down += 1
            reason = "node_down" if dst_registered else "unregistered"
            self.trace.emit(now, "fault_backhaul_drop", src=src, dst=dst,
                            reason=reason)
            return SendVerdict(drop=True, reason=reason)
        extra = 0.0
        for rule in self._rules:
            if not rule.matches(src, dst, packet, now):
                continue
            if rule.loss_probability > 0.0 and (
                rule.loss_probability >= 1.0
                or self.rng.random() < rule.loss_probability
            ):
                self.drops_rule += 1
                self.trace.emit(now, "fault_backhaul_drop", src=src, dst=dst,
                                reason=rule.kind)
                return SendVerdict(drop=True, reason=rule.kind)
            if rule.extra_latency_s > 0.0 or rule.jitter_s > 0.0:
                extra += rule.extra_latency_s
                if rule.jitter_s > 0.0:
                    extra += float(self.rng.uniform(0.0, rule.jitter_s))
        if extra > 0.0:
            self.delayed_packets += 1
        return SendVerdict(extra_latency_s=extra)
