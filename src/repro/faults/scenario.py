"""Declarative fault scenarios.

A :class:`FaultScenario` is an ordered list of timed :class:`FaultEvent`
records -- AP crashes and restarts, controller crashes and restarts,
per-link loss/latency faults, LAN partitions, LAN-wide congestion,
CSI-report drop bursts, and control-message delays.  It is a
plain value: JSON-roundtrippable, hashable into cache keys, and picklable
across sweep-worker boundaries, so faulty drives flow through the same
orchestration and persistent result cache as healthy ones.

Events are either written down explicitly (absolute times) or generated
from a seeded probabilistic process (:meth:`FaultScenario.poisson_ap_crashes`),
which materialises concrete timed events deterministically -- the same
seed always yields the same scenario, so faulty runs stay bit-reproducible.

APs are addressed by *index* into the road layout (0..n_aps-1), not by
node id: node ids are an artefact of build order, while the AP index is
part of the experiment's declarative description.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultScenario", "FAULT_KINDS"]

#: Every fault model the injector understands.
FAULT_KINDS = (
    "ap_crash",      # AP dies: radio off, backhaul drops everything to/from it
    "ap_restart",    # a crashed AP comes back with cold queues
    "link_loss",     # per-link probabilistic loss between two node groups
    "link_jitter",   # extra latency (+ uniform jitter) between two node groups
    "partition",     # hard partition: everything between the groups is dropped
    "csi_drop",      # burst-drop CSI reports from one AP (or all APs)
    "ctrl_delay",    # delay controller-originated control messages
    "controller_crash",    # the (primary) controller process dies
    "controller_restart",  # a crashed controller cold-restarts
    "backhaul_congestion",  # LAN-wide loss + latency + jitter on every link
)

#: Kinds that require an ``ap`` index.
_AP_KINDS = ("ap_crash", "ap_restart")

#: Kinds that install a windowed backhaul rule.
_RULE_KINDS = (
    "link_loss", "link_jitter", "partition", "csi_drop", "ctrl_delay",
    "backhaul_congestion",
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    ``time`` is the absolute simulation time the fault begins;
    ``duration_s`` bounds windowed faults (None = for the rest of the
    run; crashes last until a matching ``ap_restart``).

    Group fields (``aps_a`` / ``aps_b``) select the link endpoints of
    ``link_loss`` / ``link_jitter`` / ``partition`` rules by AP index;
    an empty group means *the controller side* for ``aps_a`` and
    *everyone else* for ``aps_b``.
    """

    kind: str
    time: float
    duration_s: Optional[float] = None
    #: AP index for ap_crash / ap_restart / csi_drop (csi_drop: None = all APs).
    ap: Optional[int] = None
    aps_a: Tuple[int, ...] = ()
    aps_b: Tuple[int, ...] = ()
    #: link_loss / csi_drop drop probability.
    loss_probability: float = 1.0
    #: link_jitter / ctrl_delay fixed extra one-way latency.
    extra_latency_s: float = 0.0
    #: link_jitter / ctrl_delay uniform jitter on top of the extra latency.
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )
        if self.extra_latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency/jitter must be non-negative")
        if self.kind in _AP_KINDS and self.ap is None:
            raise ValueError(f"{self.kind} requires an ap index")
        object.__setattr__(self, "aps_a", tuple(int(a) for a in self.aps_a))
        object.__setattr__(self, "aps_b", tuple(int(b) for b in self.aps_b))

    @property
    def end_time(self) -> float:
        """When the fault window closes (inf for open-ended faults)."""
        if self.duration_s is None:
            return float("inf")
        return self.time + self.duration_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; defaulted fields are omitted for stable keys."""
        out: Dict[str, Any] = {"kind": self.kind, "time": self.time}
        for f in fields(self):
            if f.name in ("kind", "time"):
                continue
            value = getattr(self, f.name)
            default = f.default
            if isinstance(value, tuple):
                if value:
                    out[f.name] = list(value)
            elif value != default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        kwargs = dict(data)
        for group in ("aps_a", "aps_b"):
            if group in kwargs:
                kwargs[group] = tuple(kwargs[group])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultScenario:
    """An immutable, JSON-roundtrippable schedule of fault events.

    ``seed`` drives every probabilistic draw the injector makes while the
    scenario runs (loss coin flips, jitter), independent of the
    simulation's own RNG streams -- a healthy run and a faulty run of the
    same config draw identical values everywhere outside the fault path.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    #: Controller AP-liveness eviction timeout enabled while this
    #: scenario is armed (None = keep the controller's own setting).
    liveness_timeout_s: Optional[float] = 0.25

    def __post_init__(self) -> None:
        normalized = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
            for e in self.events
        )
        ordered = tuple(sorted(normalized, key=lambda e: (e.time, e.kind)))
        object.__setattr__(self, "events", ordered)
        # A controller_restart must follow a controller_crash it can undo.
        # Restarting an alive controller is a silent no-op at the injector,
        # which would mask a mis-written scenario; reject it here instead.
        # (A crash with duration_s schedules its own implied restart and
        # opens no pending crash for an explicit restart to match.)
        pending_crashes = 0
        for event in ordered:
            if event.kind == "controller_crash" and event.duration_s is None:
                pending_crashes += 1
            elif event.kind == "controller_restart":
                if pending_crashes == 0:
                    raise ValueError(
                        f"controller_restart at t={event.time} has no "
                        f"preceding open controller_crash to undo; order "
                        f"crash before restart (or give the crash a "
                        f"duration_s for an implied restart)"
                    )
                pending_crashes -= 1

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "events": [e.to_dict() for e in self.events],
            "seed": self.seed,
        }
        if self.liveness_timeout_s != 0.25:
            out["liveness_timeout_s"] = self.liveness_timeout_s
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultScenario":
        kwargs = dict(data)
        kwargs["events"] = tuple(
            FaultEvent.from_dict(e) for e in kwargs.get("events", ())
        )
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON encoding (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))

    def key_hash(self, length: int = 10) -> str:
        """Short stable digest for cache keys and job identity strings."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:length]

    # ---------------------------------------------------------- generators
    @classmethod
    def single_ap_crash(
        cls,
        ap: int,
        at: float,
        restart_after_s: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultScenario":
        """The canonical resilience experiment: one AP dies mid-drive."""
        events: List[FaultEvent] = [FaultEvent(kind="ap_crash", time=at, ap=ap)]
        if restart_after_s is not None:
            events.append(
                FaultEvent(kind="ap_restart", time=at + restart_after_s, ap=ap)
            )
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def single_controller_crash(
        cls,
        at: float,
        restart_after_s: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultScenario":
        """The canonical HA experiment: the controller dies mid-drive."""
        events: List[FaultEvent] = [FaultEvent(kind="controller_crash", time=at)]
        if restart_after_s is not None:
            events.append(
                FaultEvent(kind="controller_restart", time=at + restart_after_s)
            )
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def poisson_ap_crashes(
        cls,
        n_aps: int,
        duration_s: float,
        crash_rate_per_ap_hz: float,
        mean_downtime_s: float = 2.0,
        seed: int = 0,
        controller_crash_rate_hz: float = 0.0,
        controller_mean_downtime_s: float = 1.0,
    ) -> "FaultScenario":
        """Materialise a seeded crash/restart process into timed events.

        Each AP fails as an independent Poisson process; downtimes are
        exponential with mean ``mean_downtime_s``.  The draw order is
        fixed (AP by AP), so the same arguments always produce the same
        scenario.

        With ``controller_crash_rate_hz > 0`` the controller itself also
        fails as a Poisson process (exponential downtimes with mean
        ``controller_mean_downtime_s``).  Controller draws happen after
        every AP draw, so scenarios generated with the controller rate at
        its default 0 are byte-identical to those this generator produced
        before the controller process existed.
        """
        if n_aps <= 0 or duration_s <= 0 or crash_rate_per_ap_hz < 0:
            raise ValueError("n_aps/duration_s must be positive, rate >= 0")
        if controller_crash_rate_hz < 0:
            raise ValueError("controller_crash_rate_hz must be >= 0")
        rng = np.random.default_rng([int(seed), 0xFA17])
        events: List[FaultEvent] = []
        for ap in range(n_aps):
            t = 0.0
            while crash_rate_per_ap_hz > 0:
                t += float(rng.exponential(1.0 / crash_rate_per_ap_hz))
                if t >= duration_s:
                    break
                down = float(rng.exponential(mean_downtime_s))
                events.append(FaultEvent(kind="ap_crash", time=round(t, 6), ap=ap))
                t += max(down, 1e-3)
                if t >= duration_s:
                    break
                events.append(FaultEvent(kind="ap_restart", time=round(t, 6), ap=ap))
        t = 0.0
        while controller_crash_rate_hz > 0:
            t += float(rng.exponential(1.0 / controller_crash_rate_hz))
            if t >= duration_s:
                break
            down = float(rng.exponential(controller_mean_downtime_s))
            events.append(FaultEvent(kind="controller_crash", time=round(t, 6)))
            t += max(down, 1e-3)
            if t >= duration_s:
                break
            events.append(FaultEvent(kind="controller_restart", time=round(t, 6)))
        return cls(events=tuple(events), seed=seed)


def coerce_scenario(value: Any) -> Optional[FaultScenario]:
    """Accept a FaultScenario, dict, or JSON string (None passes through)."""
    if value is None or isinstance(value, FaultScenario):
        return value
    if isinstance(value, str):
        return FaultScenario.from_json(value)
    if isinstance(value, dict):
        return FaultScenario.from_dict(value)
    raise TypeError(
        f"fault scenario must be FaultScenario, dict, or JSON str, "
        f"got {type(value).__name__}"
    )
