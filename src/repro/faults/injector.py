"""Applies a :class:`FaultScenario` to a built network.

The injector is armed once at build time: it attaches a
:class:`~repro.faults.overlay.BackhaulFaultOverlay` to the backhaul,
installs the scenario's windowed link rules, and schedules the discrete
events (AP crashes/restarts) on the simulator.  Everything it does is
deterministic in (config seed, scenario) -- the overlay RNG is derived
from both, independent of every other stream in the simulation.
"""

from __future__ import annotations


import numpy as np

from .overlay import BackhaulFaultOverlay, LinkRule
from .scenario import FaultEvent, FaultScenario

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms one scenario against one built :class:`~repro.experiments.builder.Network`."""

    def __init__(self, net, scenario: FaultScenario):
        self.net = net
        self.scenario = scenario
        self.overlay = BackhaulFaultOverlay(
            rng=np.random.default_rng(
                [int(net.config.seed), 0xFA, int(scenario.seed)]
            ),
            trace=net.trace,
        )
        self.applied_events = 0
        self._armed = False

    # ------------------------------------------------------------- address
    def _ap(self, index: int):
        aps = self.net.aps
        if not 0 <= index < len(aps):
            raise ValueError(
                f"fault references AP index {index}, network has {len(aps)} APs"
            )
        return aps[index]

    def _group(self, indices, empty_means_controller: bool):
        """Resolve AP indices to node ids; () = controller side or wildcard."""
        if not indices:
            if empty_means_controller:
                return frozenset({self.net.controller_id})
            return None  # wildcard: any node
        return frozenset(self._ap(i).node_id for i in indices)

    # ----------------------------------------------------------------- arm
    def arm(self) -> None:
        """Attach the overlay and schedule every event.  Idempotent."""
        if self._armed:
            return
        self._armed = True
        self.net.backhaul.attach_fault_overlay(self.overlay)
        for event in self.scenario.events:
            if event.kind == "ap_crash":
                self.net.sim.schedule_at(event.time, self._crash_ap, event)
                if event.duration_s is not None:
                    restart = FaultEvent(
                        kind="ap_restart", time=event.end_time, ap=event.ap
                    )
                    self.net.sim.schedule_at(restart.time, self._restart_ap, restart)
            elif event.kind == "ap_restart":
                self.net.sim.schedule_at(event.time, self._restart_ap, event)
            elif event.kind == "controller_crash":
                self.net.sim.schedule_at(event.time, self._crash_controller, event)
                if event.duration_s is not None:
                    restart = FaultEvent(
                        kind="controller_restart", time=event.end_time
                    )
                    self.net.sim.schedule_at(
                        restart.time, self._restart_controller, restart
                    )
            elif event.kind == "controller_restart":
                self.net.sim.schedule_at(
                    event.time, self._restart_controller, event
                )
            else:
                self.overlay.add_rule(self._rule_for(event))

    # -------------------------------------------------------------- events
    def _crash_ap(self, event: FaultEvent) -> None:
        ap = self._ap(event.ap)
        now = self.net.sim.now
        self.applied_events += 1
        self.net.trace.emit(now, "fault_ap_crash", ap=ap.node_id,
                            ap_index=event.ap)
        ap.fail()
        self.overlay.fail_node(ap.node_id, now)

    def _restart_ap(self, event: FaultEvent) -> None:
        ap = self._ap(event.ap)
        now = self.net.sim.now
        self.applied_events += 1
        self.net.trace.emit(now, "fault_ap_restart", ap=ap.node_id,
                            ap_index=event.ap)
        self.overlay.revive_node(ap.node_id, now)
        ap.restore()

    def _crash_controller(self, event: FaultEvent) -> None:
        controller = self.net.controller
        now = self.net.sim.now
        self.applied_events += 1
        self.net.trace.emit(now, "fault_controller_crash",
                            node=controller.node_id)
        controller.fail()
        self.overlay.fail_node(controller.node_id, now)

    def _restart_controller(self, event: FaultEvent) -> None:
        controller = self.net.controller
        now = self.net.sim.now
        self.applied_events += 1
        self.net.trace.emit(now, "fault_controller_restart",
                            node=controller.node_id)
        # Revive on the backhaul first so the restart's ControllerHello
        # broadcast is not swallowed by the node-down drop rule.
        self.overlay.revive_node(controller.node_id, now)
        controller.restore()

    # --------------------------------------------------------------- rules
    def _rule_for(self, event: FaultEvent) -> LinkRule:
        if event.kind == "link_loss":
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=self._group(event.aps_a, empty_means_controller=True),
                group_b=self._group(event.aps_b, empty_means_controller=False),
                loss_probability=event.loss_probability,
                kind="link_loss",
            )
        if event.kind == "link_jitter":
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=self._group(event.aps_a, empty_means_controller=True),
                group_b=self._group(event.aps_b, empty_means_controller=False),
                extra_latency_s=event.extra_latency_s,
                jitter_s=event.jitter_s,
                kind="link_jitter",
            )
        if event.kind == "partition":
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=self._group(event.aps_a, empty_means_controller=True),
                group_b=self._group(event.aps_b, empty_means_controller=False),
                loss_probability=1.0,
                kind="partition",
            )
        if event.kind == "csi_drop":
            sources = (
                frozenset({self._ap(event.ap).node_id})
                if event.ap is not None else None
            )
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=sources,
                group_b=frozenset({self.net.controller_id}),
                loss_probability=event.loss_probability,
                csi_only=True,
                bidirectional=False,
                kind="csi_drop",
            )
        if event.kind == "backhaul_congestion":
            # Whole-LAN stress: every backhaul link (empty groups stay
            # wildcards) gets the loss/latency/jitter treatment at once.
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=self._group(event.aps_a, empty_means_controller=False),
                group_b=self._group(event.aps_b, empty_means_controller=False),
                loss_probability=event.loss_probability,
                extra_latency_s=event.extra_latency_s,
                jitter_s=event.jitter_s,
                kind="backhaul_congestion",
            )
        if event.kind == "ctrl_delay":
            return LinkRule(
                t0=event.time, t1=event.end_time,
                group_a=frozenset({self.net.controller_id}),
                group_b=self._group(event.aps_b, empty_means_controller=False),
                extra_latency_s=event.extra_latency_s,
                jitter_s=event.jitter_s,
                ctrl_only=True,
                bidirectional=False,
                kind="ctrl_delay",
            )
        raise ValueError(f"unhandled fault kind {event.kind!r}")

    # ------------------------------------------------------------- queries
    def stats(self) -> dict:
        return {
            "applied_events": self.applied_events,
            "drops_node_down": self.overlay.drops_node_down,
            "drops_rule": self.overlay.drops_rule,
            "delayed_packets": self.overlay.delayed_packets,
            "down_nodes": list(self.overlay.down_nodes),
        }
