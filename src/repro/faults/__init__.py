"""Deterministic fault injection for resilience experiments.

The paper's evaluation assumes healthy infrastructure; this package asks
the production questions -- what happens when AP 5 crashes at t=12 s, or
the LAN partitions mid-switch?  A :class:`FaultScenario` declares timed
fault events (JSON-roundtrippable, cache-keyable); a
:class:`FaultInjector` arms it against a built network via a
:class:`BackhaulFaultOverlay` and scheduled AP crash/restart events.

Fault injection is strictly opt-in: with no scenario supplied, no
overlay is attached, no RNG stream is touched, and every result is
bit-identical to a build without this package.
"""

from .injector import FaultInjector
from .overlay import BackhaulFaultOverlay, LinkRule, SendVerdict
from .scenario import FAULT_KINDS, FaultEvent, FaultScenario, coerce_scenario

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultScenario",
    "FaultInjector",
    "BackhaulFaultOverlay",
    "LinkRule",
    "SendVerdict",
    "coerce_scenario",
]
