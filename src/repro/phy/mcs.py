"""802.11n single-stream MCS table and packet-delivery model.

The testbed APs are HT20 single-spatial-stream (the splitter combines all
three radio chains into one directional antenna), short guard interval,
giving PHY rates of 7.2-72.2 Mbit/s -- consistent with the ~70 Mbit/s
90th-percentile link rate in Fig. 16 of the paper.

Delivery model
--------------
Per-MPDU delivery probability is a logistic curve in ESNR:

``PDR(esnr) = 1 / (1 + exp(-(esnr - threshold_mcs) / scale))``

with thresholds calibrated from the uncoded BER curves (the SNR at which
the constellation+code first sustains ~10% PER for a 1500 B frame, the
usual rate-selection operating point).  A logistic in effective SNR is the
standard abstraction for coded OFDM links and preserves the property the
paper relies on: delivery collapses over a few dB, so picking the right AP
matters much more than picking the right bit rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from .modulation import Constellation

__all__ = ["McsEntry", "MCS_TABLE", "pdr", "best_mcs_for_esnr", "expected_throughput_mbps", "link_capacity_mbps"]


@dataclass(frozen=True)
class McsEntry:
    """One modulation-and-coding scheme.

    ``pdr_threshold_db`` is the ESNR midpoint of the logistic delivery
    curve; ``pdr_scale_db`` its width parameter.
    """

    index: int
    constellation: str
    coding_rate: float
    phy_rate_mbps: float
    pdr_threshold_db: float
    pdr_scale_db: float = 1.0

    def data_bits_per_us(self) -> float:
        return self.phy_rate_mbps  # 1 Mbit/s == 1 bit/us


# HT20, 1 spatial stream, short guard interval (400 ns).
MCS_TABLE: List[McsEntry] = [
    McsEntry(0, Constellation.BPSK, 1 / 2, 7.2, 4.0),
    McsEntry(1, Constellation.QPSK, 1 / 2, 14.4, 7.0),
    McsEntry(2, Constellation.QPSK, 3 / 4, 21.7, 10.0),
    McsEntry(3, Constellation.QAM16, 1 / 2, 28.9, 13.0),
    McsEntry(4, Constellation.QAM16, 3 / 4, 43.3, 16.5),
    McsEntry(5, Constellation.QAM64, 2 / 3, 57.8, 21.0),
    McsEntry(6, Constellation.QAM64, 3 / 4, 65.0, 22.5),
    McsEntry(7, Constellation.QAM64, 5 / 6, 72.2, 24.5),
]


def pdr(esnr_db: float, mcs: McsEntry, n_bytes: int = 1500) -> float:
    """Per-MPDU delivery probability at ``esnr_db`` for ``mcs``.

    The logistic midpoint is calibrated for 1500-byte MPDUs; shorter frames
    get a small threshold credit (fewer bits at risk), longer aggregates
    are handled per-MPDU by the MAC.
    """
    threshold = mcs.pdr_threshold_db
    if n_bytes != 1500 and n_bytes > 0:
        # 10*log10 scaling of the bits-at-risk ratio, bounded to +-2 dB.
        delta = 10.0 * math.log10(n_bytes / 1500.0) * 0.3
        threshold += max(-2.0, min(2.0, delta))
    x = (esnr_db - threshold) / mcs.pdr_scale_db
    if x > 35.0:
        return 1.0
    if x < -35.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def best_mcs_for_esnr(
    esnr_db: float,
    min_pdr: float = 0.9,
    table: Sequence[McsEntry] = tuple(MCS_TABLE),
) -> McsEntry:
    """Highest-rate MCS whose predicted PDR meets ``min_pdr``.

    Falls back to MCS 0 when even the most robust rate misses the target
    (the sender has to try *something*).
    """
    chosen = table[0]
    for entry in table:
        if pdr(esnr_db, entry) >= min_pdr:
            chosen = entry
    return chosen


def expected_throughput_mbps(esnr_db: float, mcs: McsEntry) -> float:
    """PHY rate discounted by delivery probability (no MAC overhead)."""
    return mcs.phy_rate_mbps * pdr(esnr_db, mcs)


def link_capacity_mbps(esnr_db: float, table: Sequence[McsEntry] = tuple(MCS_TABLE)) -> float:
    """Best achievable expected PHY throughput at ``esnr_db``.

    This is the 'channel capacity' proxy used for the paper's capacity-loss
    metric (Figs. 4 and 21): the rate an ideal rate controller would get.
    """
    return max(expected_throughput_mbps(esnr_db, entry) for entry in table)
