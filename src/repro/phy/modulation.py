"""Uncoded bit-error-rate curves for the 802.11 constellations.

These are the standard AWGN expressions used by Halperin et al.'s Effective
SNR work ("Predictable 802.11 packet delivery from wireless channel
measurements", SIGCOMM 2010), which the paper adopts for AP selection.

All functions take SNR as a *linear* ratio (not dB) and are vectorised over
numpy arrays.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np
from scipy.special import erfc

__all__ = [
    "Constellation",
    "ber_bpsk",
    "ber_qpsk",
    "ber_qam16",
    "ber_qam64",
    "BER_FUNCTIONS",
    "db_to_linear",
    "linear_to_db",
]


def db_to_linear(db):
    """Convert decibels to a linear power ratio (vectorised)."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear):
    """Convert a linear power ratio to decibels (vectorised, floors at 1e-12)."""
    return 10.0 * np.log10(np.maximum(np.asarray(linear, dtype=float), 1e-12))


def _q(x):
    """Gaussian tail function Q(x) = 0.5 * erfc(x / sqrt(2))."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))


def ber_bpsk(snr_linear):
    """BPSK bit error rate: Q(sqrt(2*SNR))."""
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    return _q(np.sqrt(2.0 * snr))


def ber_qpsk(snr_linear):
    """QPSK bit error rate: identical per-bit performance to BPSK."""
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    return _q(np.sqrt(snr))


def ber_qam16(snr_linear):
    """Gray-coded 16-QAM approximate BER: (3/4) * Q(sqrt(SNR / 5))."""
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    return 0.75 * _q(np.sqrt(snr / 5.0))


def ber_qam64(snr_linear):
    """Gray-coded 64-QAM approximate BER: (7/12) * Q(sqrt(SNR / 21))."""
    snr = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    return (7.0 / 12.0) * _q(np.sqrt(snr / 21.0))


class Constellation:
    """Names for the constellations used by 802.11n MCS 0-7."""

    BPSK = "bpsk"
    QPSK = "qpsk"
    QAM16 = "qam16"
    QAM64 = "qam64"

    ALL = (BPSK, QPSK, QAM16, QAM64)

    BITS_PER_SYMBOL = {BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6}


BER_FUNCTIONS: Dict[str, Callable] = {
    Constellation.BPSK: ber_bpsk,
    Constellation.QPSK: ber_qpsk,
    Constellation.QAM16: ber_qam16,
    Constellation.QAM64: ber_qam64,
}
