"""Spatially-correlated log-normal shadowing.

An optional realism layer between path loss and fast fading: obstacles
(parked vans, street furniture, foliage) impose dB-scale gain variations
that are fixed in *space*, not time -- a car driving the same stretch
sees the same shadow.  Modelled as a Gaussian process over the along-road
coordinate with exponential autocorrelation (the Gudmundson model),
synthesised by an AR(1) sequence on a fixed grid and linearly
interpolated.

Disabled by default (``sigma_db = 0`` in :class:`repro.phy.channel.
RadioParams`); the shadowing robustness benchmark turns it on to check
that WGTT's advantage survives a rougher large-scale channel.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ShadowingField"]


class ShadowingField:
    """A 1-D correlated shadowing field along the road.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing gain in dB.
    decorrelation_m:
        Distance at which the autocorrelation drops to 1/e
        (Gudmundson's model; ~5 m for street-level links).
    span_m:
        (x_min, x_max) extent to synthesise; positions outside are clamped.
    grid_m:
        Sample spacing of the underlying AR(1) process.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        sigma_db: float = 4.0,
        decorrelation_m: float = 5.0,
        span_m: tuple = (-50.0, 150.0),
        grid_m: float = 0.5,
    ):
        if sigma_db < 0:
            raise ValueError("shadowing sigma cannot be negative")
        if decorrelation_m <= 0:
            raise ValueError("decorrelation distance must be positive")
        if span_m[1] <= span_m[0]:
            raise ValueError("span must be increasing")
        self.sigma_db = sigma_db
        self.decorrelation_m = decorrelation_m
        self.x0 = span_m[0]
        self.grid_m = grid_m
        n = int(math.ceil((span_m[1] - span_m[0]) / grid_m)) + 1
        # AR(1) with correlation rho per step gives exponential ACF.
        rho = math.exp(-grid_m / decorrelation_m)
        innovations = rng.normal(0.0, 1.0, size=n)
        samples = np.empty(n)
        samples[0] = innovations[0]
        scale = math.sqrt(1.0 - rho * rho)
        for i in range(1, n):
            samples[i] = rho * samples[i - 1] + scale * innovations[i]
        self._samples = samples * sigma_db

    def gain_db(self, x: float) -> float:
        """Shadowing gain in dB at along-road position ``x`` (interpolated)."""
        if self.sigma_db == 0.0:
            return 0.0
        pos = (x - self.x0) / self.grid_m
        idx = int(np.clip(math.floor(pos), 0, len(self._samples) - 2))
        frac = min(max(pos - idx, 0.0), 1.0)
        return float(
            (1.0 - frac) * self._samples[idx] + frac * self._samples[idx + 1]
        )

    def empirical_std_db(self) -> float:
        return float(np.std(self._samples))
