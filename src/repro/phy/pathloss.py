"""Large-scale path loss models.

The roadside link budget in the paper is set by three things: distance
(log-distance path loss), the 14 dBi / 21-degree parabolic antenna
(:mod:`repro.phy.antenna`), and building/window penetration on the way out
of the third-floor office.  This module covers the distance term.
"""

from __future__ import annotations

import math

__all__ = ["LogDistancePathLoss", "free_space_path_loss_db", "SPEED_OF_LIGHT"]

SPEED_OF_LIGHT = 299_792_458.0  # m/s


def free_space_path_loss_db(distance_m: float, freq_hz: float) -> float:
    """Free-space path loss (Friis) in dB at ``distance_m`` metres.

    Distances below one metre are clamped to avoid a singularity at the
    antenna; the model is not meaningful in the reactive near field anyway.
    """
    d = max(distance_m, 1.0)
    wavelength = SPEED_OF_LIGHT / freq_hz
    return 20.0 * math.log10(4.0 * math.pi * d / wavelength)


class LogDistancePathLoss:
    """Log-distance path loss with a free-space reference at ``d0``.

    ``PL(d) = PL_fs(d0) + 10 * n * log10(d / d0) + extra_loss_db``

    Parameters
    ----------
    exponent:
        Path loss exponent ``n``.  2.0 is free space; urban street canyons
        are typically 2.7-3.5.  The testbed default of 2.8 is calibrated so
        the simulated ESNR heatmap matches the shape of Fig. 10.
    reference_distance_m:
        ``d0`` for the free-space reference segment.
    extra_loss_db:
        Fixed additional losses: window penetration from the third-floor
        office, cabling and splitter losses.
    """

    def __init__(
        self,
        freq_hz: float = 2.462e9,  # channel 11
        exponent: float = 2.8,
        reference_distance_m: float = 1.0,
        extra_loss_db: float = 0.0,
    ):
        if exponent <= 0:
            raise ValueError(f"path loss exponent must be positive, got {exponent}")
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        self.freq_hz = freq_hz
        self.exponent = exponent
        self.reference_distance_m = reference_distance_m
        self.extra_loss_db = extra_loss_db
        self._pl0 = free_space_path_loss_db(reference_distance_m, freq_hz)

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.freq_hz

    def loss_db(self, distance_m: float) -> float:
        """Total path loss in dB at ``distance_m`` metres."""
        d = max(distance_m, self.reference_distance_m)
        return (
            self._pl0
            + 10.0 * self.exponent * math.log10(d / self.reference_distance_m)
            + self.extra_loss_db
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LogDistancePathLoss(f={self.freq_hz/1e9:.3f} GHz, n={self.exponent}, "
            f"extra={self.extra_loss_db} dB)"
        )
