"""Channel State Information (CSI) readings.

Each WGTT AP runs the Atheros CSI tool: for every decoded uplink frame the
NIC reports the complex channel gain on all 56 HT20 subcarriers.  The AP
encapsulates the reading in a UDP packet to the controller, which computes
ESNR from it.  :class:`CSIReading` is the simulated equivalent of that UDP
payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .esnr import DEFAULT_ESNR_CONSTELLATION, effective_snr_db, subcarrier_snr_db_from_csi
from .modulation import linear_to_db

__all__ = ["CSIReading"]


@dataclass
class CSIReading:
    """One CSI measurement of a client->AP link.

    Attributes
    ----------
    time:
        Simulation time at which the uplink frame was received.
    ap_id / client_id:
        Identifiers of the measuring AP and the transmitting client.
    csi:
        Complex channel gains per subcarrier, unit mean power (fading only).
    mean_snr_db:
        Large-scale mean SNR of the link at measurement time (path loss,
        antenna gains, transmit power, noise floor folded in).
    """

    time: float
    ap_id: int
    client_id: int
    csi: np.ndarray
    mean_snr_db: float
    _esnr_cache: Optional[float] = field(default=None, repr=False, compare=False)

    @property
    def n_subcarriers(self) -> int:
        return int(np.asarray(self.csi).size)

    def subcarrier_snr_db(self) -> np.ndarray:
        """Per-subcarrier SNR in dB."""
        return subcarrier_snr_db_from_csi(self.csi, self.mean_snr_db)

    def esnr_db(self, constellation: str = DEFAULT_ESNR_CONSTELLATION) -> float:
        """Effective SNR of this reading (cached for the default constellation)."""
        if constellation == DEFAULT_ESNR_CONSTELLATION:
            if self._esnr_cache is None:
                self._esnr_cache = effective_snr_db(
                    self.subcarrier_snr_db(), constellation
                )
            return self._esnr_cache
        return effective_snr_db(self.subcarrier_snr_db(), constellation)

    def rssi_db(self) -> float:
        """Wideband received-power proxy: mean subcarrier SNR in dB.

        This is what the Enhanced 802.11r baseline keys its handover on --
        deliberately blind to frequency selectivity.
        """
        power = np.mean(np.abs(np.asarray(self.csi)) ** 2)
        return self.mean_snr_db + float(linear_to_db(power))
