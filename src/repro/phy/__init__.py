"""Physical-layer substrate: path loss, antennas, fading, CSI, ESNR, MCS.

This package replaces the testbed radio hardware (TP-Link N750 + Laird
parabolic antennas + the Atheros CSI tool) with a calibrated statistical
model of the same quantities.  See DESIGN.md section 2 for the
substitution rationale.
"""

from .antenna import OmniAntenna, ParabolicAntenna, angle_between_deg
from .channel import Link, RadioParams
from .csi import CSIReading
from .esnr import (
    effective_snr_db,
    effective_snr_db_batch,
    invert_ber,
    invert_ber_batch,
    invert_ber_bisect,
)
from .fading import (
    TappedDelayChannel,
    RayleighTap,
    coherence_time_s,
    doppler_hz,
    ht20_subcarrier_freqs,
    steering_matrix,
)
from .mcs import (
    MCS_TABLE,
    McsEntry,
    best_mcs_for_esnr,
    expected_throughput_mbps,
    link_capacity_mbps,
    pdr,
)
from .modulation import (
    BER_FUNCTIONS,
    Constellation,
    ber_bpsk,
    ber_qam16,
    ber_qam64,
    ber_qpsk,
    db_to_linear,
    linear_to_db,
)
from .pathloss import LogDistancePathLoss, free_space_path_loss_db

__all__ = [
    "OmniAntenna",
    "ParabolicAntenna",
    "angle_between_deg",
    "Link",
    "RadioParams",
    "CSIReading",
    "effective_snr_db",
    "effective_snr_db_batch",
    "invert_ber",
    "invert_ber_batch",
    "invert_ber_bisect",
    "TappedDelayChannel",
    "RayleighTap",
    "coherence_time_s",
    "doppler_hz",
    "ht20_subcarrier_freqs",
    "steering_matrix",
    "MCS_TABLE",
    "McsEntry",
    "best_mcs_for_esnr",
    "expected_throughput_mbps",
    "link_capacity_mbps",
    "pdr",
    "BER_FUNCTIONS",
    "Constellation",
    "ber_bpsk",
    "ber_qam16",
    "ber_qam64",
    "ber_qpsk",
    "db_to_linear",
    "linear_to_db",
    "LogDistancePathLoss",
    "free_space_path_loss_db",
]
