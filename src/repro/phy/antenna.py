"""Antenna gain patterns.

Each testbed AP uses a Laird 14 dBi parabolic grid antenna with a 21-degree
3 dB beamwidth, aimed at the road.  The narrow main lobe is what creates the
meter-scale picocells: a car a few metres past boresight falls off the main
lobe and the link collapses even though the geometric distance barely
changed.  Clients use (approximately) omnidirectional antennas.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["ParabolicAntenna", "OmniAntenna", "angle_between_deg"]

Vec3 = Tuple[float, float, float]


def _normalize(v: Vec3) -> Vec3:
    norm = math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2)
    if norm == 0.0:
        raise ValueError("zero-length direction vector")
    return (v[0] / norm, v[1] / norm, v[2] / norm)


def angle_between_deg(a: Sequence[float], b: Sequence[float]) -> float:
    """Angle between two 3-vectors in degrees, in [0, 180]."""
    ax, ay, az = _normalize((a[0], a[1], a[2]))
    bx, by, bz = _normalize((b[0], b[1], b[2]))
    dot = max(-1.0, min(1.0, ax * bx + ay * by + az * bz))
    return math.degrees(math.acos(dot))


class OmniAntenna:
    """Idealised omnidirectional antenna with a flat gain."""

    def __init__(self, gain_dbi: float = 0.0):
        self.gain_dbi = gain_dbi
        self.peak_gain_dbi = gain_dbi

    def gain_db(self, off_boresight_deg: float) -> float:
        return self.gain_dbi

    def gain_towards(self, from_pos: Vec3, to_pos: Vec3) -> float:
        return self.gain_dbi


class ParabolicAntenna:
    """Parabolic antenna with a quadratic main lobe and a side-lobe floor.

    The main lobe follows the standard parabolic approximation
    ``G(theta) = G0 - 12 * (theta / theta_3dB)^2`` dB, clamped at
    ``G0 - sidelobe_down_db`` once the quadratic roll-off exceeds the
    side-lobe level (ITU-R F.699-style).

    Parameters
    ----------
    peak_gain_dbi:
        Boresight gain (14 dBi for the Laird GD24BP).
    beamwidth_deg:
        Full 3 dB beamwidth.  The Laird GD24BP is 21 degrees in azimuth
        and 17 degrees in elevation; the roadside geometry mixes both
        planes, and 17 reproduces the paper's 5.2 m cell size.
    sidelobe_down_db:
        How far below boresight the side-lobe floor sits.
    boresight:
        Direction the antenna points, as a 3-vector (need not be unit).
    """

    def __init__(
        self,
        peak_gain_dbi: float = 14.0,
        beamwidth_deg: float = 17.0,
        sidelobe_down_db: float = 30.0,
        boresight: Vec3 = (0.0, 1.0, 0.0),
    ):
        if beamwidth_deg <= 0:
            raise ValueError("beamwidth must be positive")
        if sidelobe_down_db < 0:
            raise ValueError("side-lobe attenuation cannot be negative")
        self.peak_gain_dbi = peak_gain_dbi
        self.beamwidth_deg = beamwidth_deg
        self.sidelobe_down_db = sidelobe_down_db
        self.boresight = _normalize(boresight)
        # What angle_between_deg would compute per call: the stored (unit)
        # boresight normalised once more.  Precomputing it keeps the hot
        # gain_towards path to one sqrt while reproducing the historical
        # float results exactly (renormalising can shift the last ulp).
        self._boresight_unit = _normalize(self.boresight)

    def gain_db(self, off_boresight_deg: float) -> float:
        """Gain in dBi at ``off_boresight_deg`` degrees off the main axis."""
        theta = abs(off_boresight_deg)
        half_beamwidth = self.beamwidth_deg / 2.0
        # Quadratic main lobe: 3 dB down at the half-beamwidth edge.
        rolloff = 3.0 * (theta / half_beamwidth) ** 2
        return self.peak_gain_dbi - min(rolloff, self.sidelobe_down_db)

    def gain_towards(self, from_pos: Vec3, to_pos: Vec3) -> float:
        """Gain in dBi from the antenna at ``from_pos`` towards ``to_pos``."""
        # Inlined angle_between_deg(direction, self.boresight) with the
        # boresight's renormalisation hoisted to __init__ -- identical
        # arithmetic, one normalisation per call instead of two.
        dx = to_pos[0] - from_pos[0]
        dy = to_pos[1] - from_pos[1]
        dz = to_pos[2] - from_pos[2]
        norm = math.sqrt(dx ** 2 + dy ** 2 + dz ** 2)
        if norm == 0.0:
            raise ValueError("zero-length direction vector")
        bx, by, bz = self._boresight_unit
        dot = (dx / norm) * bx + (dy / norm) * by + (dz / norm) * bz
        if dot > 1.0:
            dot = 1.0
        elif dot < -1.0:
            dot = -1.0
        theta = math.degrees(math.acos(dot))
        return self.gain_db(theta)

    @classmethod
    def aimed_at(
        cls,
        position: Vec3,
        target: Vec3,
        peak_gain_dbi: float = 14.0,
        beamwidth_deg: float = 17.0,
        sidelobe_down_db: float = 30.0,
    ) -> "ParabolicAntenna":
        """Build an antenna at ``position`` whose boresight points at ``target``."""
        boresight = (
            target[0] - position[0],
            target[1] - position[1],
            target[2] - position[2],
        )
        return cls(
            peak_gain_dbi=peak_gain_dbi,
            beamwidth_deg=beamwidth_deg,
            sidelobe_down_db=sidelobe_down_db,
            boresight=boresight,
        )
