"""Small-scale (fast) fading.

The vehicular picocell regime (Fig. 2 of the paper) is driven by Rayleigh
fast fading whose coherence time at 2.4 GHz and driving speed is two to
three milliseconds.  We model each link as a tapped delay line; each tap is
an independent Rayleigh process generated with Clarke/Jakes sum-of-sinusoids
so that the process is

* **time-selective** -- the Doppler spread is ``v / lambda``, tying the
  coherence time to vehicle speed exactly as in the paper, and
* **frequency-selective** -- multiple delay taps make the 56 OFDM
  subcarriers fade differently, which is what makes ESNR a better
  predictor than RSSI.

The process is evaluated lazily at arbitrary timestamps, so the simulator
only pays for fading computation when a frame or CSI sample needs it.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..perf import PERF

__all__ = [
    "doppler_hz",
    "coherence_time_s",
    "RayleighTap",
    "TappedDelayChannel",
    "DEFAULT_TAP_DELAYS_NS",
    "DEFAULT_TAP_POWERS_DB",
    "ht20_subcarrier_freqs",
    "steering_matrix",
]

# Small-cell roadside environment: short delay spread, similar to indoor
# (the paper notes the standard cyclic prefix suffices).  The direct path
# dominates strongly: the parabolic antenna suppresses long echoes, so
# late taps carry little power -- mild frequency selectivity, consistent
# with the top MCS rates being reachable near boresight (Fig. 16).
DEFAULT_TAP_DELAYS_NS = (0.0, 50.0, 120.0, 200.0)
DEFAULT_TAP_POWERS_DB = (0.0, -6.0, -13.0, -20.0)


def doppler_hz(speed_mps: float, freq_hz: float = 2.462e9) -> float:
    """Maximum Doppler shift for a given speed and carrier frequency."""
    from .pathloss import SPEED_OF_LIGHT

    return abs(speed_mps) * freq_hz / SPEED_OF_LIGHT


def coherence_time_s(speed_mps: float, freq_hz: float = 2.462e9) -> float:
    """Channel coherence time (Clarke's 0.423/f_d rule of thumb).

    At 25 mph (11.2 m/s) and 2.462 GHz this is ~4.6 ms, consistent with the
    two-to-three millisecond figure the paper quotes for its regime.
    """
    fd = doppler_hz(speed_mps, freq_hz)
    if fd <= 0.0:
        return math.inf
    return 0.423 / fd


class RayleighTap:
    """A single fading tap built from N sinusoids (Clarke's model), with an
    optional Rician line-of-sight component.

    Scattered part:
    ``h_s(t) = sqrt(p_s / N) * sum_n exp(j*(2*pi*f_d*cos(alpha_n)*t + phi_n))``

    With a Rician K factor the tap adds a deterministic LoS phasor of power
    ``K/(K+1)`` of the tap total, Doppler-rotating at a single angle -- the
    roadside geometry (directional antenna aimed at the car) has a strong
    direct path, so the first tap is Rician in practice.

    With N >= 8 the scattered envelope is close to Rayleigh; we default to
    16.  Arrival angles use the deterministic Pop-Beaulieu layout with a
    random rotation so that different taps/links decorrelate.
    """

    __slots__ = ("power", "_amplitude", "_omega", "_phase", "_los_amp",
                 "_los_omega", "_los_phase")

    def __init__(
        self,
        rng: np.random.Generator,
        doppler_hz: float,
        power: float = 1.0,
        n_sinusoids: int = 16,
        k_factor: float = 0.0,
    ):
        if power < 0:
            raise ValueError("tap power cannot be negative")
        if n_sinusoids < 1:
            raise ValueError("need at least one sinusoid")
        if k_factor < 0:
            raise ValueError("Rician K factor cannot be negative")
        self.power = power
        n = np.arange(n_sinusoids)
        rotation = rng.uniform(0.0, 2.0 * np.pi)
        alpha = (2.0 * np.pi * n + rotation) / n_sinusoids
        # A floor on the Doppler keeps even the "static" case slowly mobile
        # (scatterers around a parked car still move).
        fd = max(doppler_hz, 0.2)
        self._omega = 2.0 * np.pi * fd * np.cos(alpha)
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=n_sinusoids)
        scattered_power = power / (1.0 + k_factor)
        los_power = power - scattered_power
        self._amplitude = math.sqrt(scattered_power / n_sinusoids)
        self._los_amp = math.sqrt(los_power)
        self._los_omega = 2.0 * np.pi * fd * math.cos(rng.uniform(0, 2 * np.pi))
        self._los_phase = rng.uniform(0.0, 2.0 * np.pi)

    def gain(self, t: float) -> complex:
        """Complex tap gain at time ``t`` (seconds).

        This is the scalar *reference* implementation; the hot path goes
        through the stacked kernel in :class:`TappedDelayChannel`, which is
        bit-identical (locked in by ``tests/test_phy_fastpath.py``).
        """
        angles = self._omega * t + self._phase
        scattered = self._amplitude * complex(
            float(np.sum(np.cos(angles))), float(np.sum(np.sin(angles)))
        )
        if self._los_amp == 0.0:
            return scattered
        los_angle = self._los_omega * t + self._los_phase
        return scattered + self._los_amp * complex(
            math.cos(los_angle), math.sin(los_angle)
        )


class TappedDelayChannel:
    """Frequency-selective fading channel: several Rayleigh taps + FFT.

    ``subcarrier_gains(t)`` returns the complex gain on each OFDM
    subcarrier, normalised so the *expected* per-subcarrier power is one --
    path loss and antenna gain are applied separately by
    :class:`repro.phy.channel.Link`.

    All per-tap sinusoid parameters are stacked into ``(n_taps,
    n_sinusoids)`` arrays at construction, so a gain query is one ``cos`` /
    ``sin`` kernel evaluation instead of a Python loop over taps, and the
    batched ``*_at(ts)`` variants amortise that kernel over many
    timestamps at once (the metrics/CLI sampling loops).  Every variant is
    bit-identical to the scalar :meth:`RayleighTap.gain` reference.
    """

    #: Timestamps per chunk in the batched kernels; bounds the (chunk,
    #: n_taps, n_sinusoids) temporary to a few MB regardless of batch size.
    BATCH_CHUNK = 16384

    def __init__(
        self,
        rng: np.random.Generator,
        doppler_hz: float,
        tap_delays_ns: Sequence[float] = DEFAULT_TAP_DELAYS_NS,
        tap_powers_db: Sequence[float] = DEFAULT_TAP_POWERS_DB,
        n_sinusoids: int = 16,
        subcarrier_freqs_hz: Optional[np.ndarray] = None,
        rician_k: float = 0.0,
    ):
        if len(tap_delays_ns) != len(tap_powers_db):
            raise ValueError("tap delay/power lists must be the same length")
        powers = np.power(10.0, np.asarray(tap_powers_db, dtype=float) / 10.0)
        powers /= powers.sum()  # unit total power
        self.doppler_hz = doppler_hz
        self.rician_k = rician_k
        # Only the first (direct-path) tap carries the LoS component.
        # RayleighTap draws from ``rng`` in the exact same order as the
        # scalar implementation always has, so seeded channels reproduce.
        self.taps = [
            RayleighTap(
                rng, doppler_hz, power=p, n_sinusoids=n_sinusoids,
                k_factor=rician_k if i == 0 else 0.0,
            )
            for i, p in enumerate(powers)
        ]
        # Stacked kernel parameters: one trig evaluation covers all taps.
        self._omegas = np.stack([tap._omega for tap in self.taps])
        self._phases = np.stack([tap._phase for tap in self.taps])
        self._amps = np.array([tap._amplitude for tap in self.taps])
        self._los_amps = np.array([tap._los_amp for tap in self.taps])
        self._los_omegas = np.array([tap._los_omega for tap in self.taps])
        self._los_phases = np.array([tap._los_phase for tap in self.taps])
        self._los_idx = np.flatnonzero(self._los_amps > 0.0)
        self._delays_s = np.asarray(tap_delays_ns, dtype=float) * 1e-9
        # Hot-path scratch: reused per tap_gains call so the (n_taps,
        # n_sinusoids) temporaries are allocated once, not per event.
        self._angle_buf = np.empty_like(self._omegas)
        self._trig_buf = np.empty_like(self._omegas)
        # With exactly one LoS tap (the common Rician-first-tap setup)
        # the per-call fancy indexing collapses to scalar arithmetic.
        if self._los_idx.size == 1:
            i0 = int(self._los_idx[0])
            self._los_one = (
                i0,
                float(self._los_amps[i0]),
                float(self._los_omegas[i0]),
                float(self._los_phases[i0]),
            )
        else:
            self._los_one = None
        if subcarrier_freqs_hz is None:
            subcarrier_freqs_hz = ht20_subcarrier_freqs()
        self.subcarrier_freqs_hz = subcarrier_freqs_hz
        # (n_subcarriers x n_taps) steering matrix, shared across all links
        # with the same subcarrier grid and delay profile.
        self._steering = steering_matrix(subcarrier_freqs_hz, self._delays_s)

    @property
    def n_subcarriers(self) -> int:
        return len(self.subcarrier_freqs_hz)

    def tap_gains(self, t: float) -> np.ndarray:
        """Complex gain of every tap at time ``t``."""
        PERF.count("phy.tap_eval_points")
        # ufuncs write into preallocated scratch; same operations in the
        # same order as the allocating form, so results are bit-identical.
        angles = self._angle_buf
        np.multiply(self._omegas, t, out=angles)
        angles += self._phases
        trig = self._trig_buf
        gains = np.empty(len(self._amps), dtype=complex)
        # ndarray.sum is the same ufunc reduction as np.sum minus the
        # dispatch wrapper (bit-identical result, hot-path win).
        np.cos(angles, out=trig)
        gains.real = self._amps * trig.sum(axis=1)
        np.sin(angles, out=trig)
        gains.imag = self._amps * trig.sum(axis=1)
        los_one = self._los_one
        if los_one is not None:
            i0, amp, omega, phase = los_one
            ang = omega * t + phase
            gains.real[i0] += amp * np.cos(ang)
            gains.imag[i0] += amp * np.sin(ang)
        else:
            idx = self._los_idx
            if idx.size:
                los_angles = self._los_omegas[idx] * t + self._los_phases[idx]
                gains.real[idx] += self._los_amps[idx] * np.cos(los_angles)
                gains.imag[idx] += self._los_amps[idx] * np.sin(los_angles)
        return gains

    def tap_gains_at(self, ts) -> np.ndarray:
        """Complex tap gains at a batch of timestamps: shape (len(ts), n_taps)."""
        ts = np.asarray(ts, dtype=float)
        if ts.ndim != 1:
            raise ValueError("tap_gains_at expects a 1-D array of timestamps")
        PERF.count("phy.tap_eval_points", ts.size)
        n_taps = len(self.taps)
        gains = np.empty((ts.size, n_taps), dtype=complex)
        idx = self._los_idx
        for lo in range(0, ts.size, self.BATCH_CHUNK):
            hi = min(lo + self.BATCH_CHUNK, ts.size)
            chunk = ts[lo:hi]
            angles = (self._omegas[None, :, :] * chunk[:, None, None]
                      + self._phases[None, :, :])
            gains.real[lo:hi] = self._amps * np.sum(np.cos(angles), axis=2)
            gains.imag[lo:hi] = self._amps * np.sum(np.sin(angles), axis=2)
            if idx.size:
                los_angles = (self._los_omegas[idx][None, :] * chunk[:, None]
                              + self._los_phases[idx][None, :])
                gains.real[lo:hi, idx] += self._los_amps[idx] * np.cos(los_angles)
                gains.imag[lo:hi, idx] += self._los_amps[idx] * np.sin(los_angles)
        return gains

    def subcarrier_gains(self, t: float) -> np.ndarray:
        """Complex gain on every subcarrier at time ``t``.

        ``H_k(t) = sum_l h_l(t) * exp(-j*2*pi*f_k*tau_l)``
        """
        return self._steering @ self.tap_gains(t)

    def subcarrier_gains_at(self, ts) -> np.ndarray:
        """Subcarrier gains at a batch of timestamps: (len(ts), n_subcarriers).

        Uses a broadcast matmul that is bit-identical to evaluating
        ``steering @ tap_gains(t)`` timestamp by timestamp.
        """
        gains = self.tap_gains_at(ts)
        return np.matmul(self._steering[None, :, :], gains[:, :, None])[:, :, 0]

    def flat_gain(self, t: float) -> complex:
        """Wideband (frequency-flat) gain: the tap sum without dispersion."""
        return complex(self.tap_gains(t).sum())

    def flat_gains_at(self, ts) -> np.ndarray:
        """Wideband gains at a batch of timestamps: shape (len(ts),)."""
        return np.sum(self.tap_gains_at(ts), axis=1)


@lru_cache(maxsize=8)
def ht20_subcarrier_freqs(n_subcarriers: int = 56, spacing_hz: float = 312_500.0) -> np.ndarray:
    """Baseband frequencies of the 56 occupied HT20 subcarriers (-28..28, no DC).

    Memoised: every link shares one immutable frequency grid instead of
    rebuilding it per :class:`~repro.phy.channel.Link` (one per AP x client).
    """
    idx = np.concatenate(
        [np.arange(-n_subcarriers // 2, 0), np.arange(1, n_subcarriers // 2 + 1)]
    )
    freqs = idx * spacing_hz
    freqs.setflags(write=False)
    return freqs


#: Shared steering matrices keyed by (subcarrier freqs, tap delays).
_STEERING_CACHE: Dict[Tuple[bytes, bytes], np.ndarray] = {}


def steering_matrix(subcarrier_freqs_hz: np.ndarray, delays_s: np.ndarray) -> np.ndarray:
    """The (n_subcarriers x n_taps) matrix ``exp(-j*2*pi*f_k*tau_l)``.

    Cached by content: every link with the same subcarrier grid and delay
    profile (i.e. all of them, in a standard deployment) shares one
    immutable matrix instead of rebuilding an identical 56x4 complex array
    per AP x client pair.
    """
    freqs = np.asarray(subcarrier_freqs_hz, dtype=float)
    delays = np.asarray(delays_s, dtype=float)
    key = (freqs.tobytes(), delays.tobytes())
    cached = _STEERING_CACHE.get(key)
    if cached is None:
        PERF.count("phy.steering_builds")
        cached = np.exp(-2j * np.pi * np.outer(freqs, delays))
        cached.setflags(write=False)
        _STEERING_CACHE[key] = cached
    else:
        PERF.count("phy.steering_cache_hits")
    return cached
