"""Composite link channel: geometry + path loss + antennas + fast fading.

One :class:`Link` models the (reciprocal) radio channel between an AP and a
mobile client.  Large-scale gain follows the client's trajectory through
the AP's antenna pattern; small-scale gain is the tapped Rayleigh process
from :mod:`repro.phy.fading`.  All the quantities the rest of the system
needs -- mean SNR, per-packet CSI, ESNR, per-MPDU delivery probability --
are derived here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..perf import PERF
from .antenna import OmniAntenna, ParabolicAntenna
from .csi import CSIReading
from .esnr import (
    DEFAULT_ESNR_CONSTELLATION,
    effective_snr_db,
    effective_snr_db_batch,
    subcarrier_snr_db_from_csi,
)
from .fading import TappedDelayChannel, doppler_hz
from .mcs import MCS_TABLE, McsEntry, link_capacity_mbps, pdr
from .modulation import linear_to_db
from .pathloss import LogDistancePathLoss

__all__ = ["RadioParams", "Link"]

#: Sentinel distinguishing "not cached" from a cached None/0.0.
_MEMO_MISS = object()

Vec3 = Tuple[float, float, float]
PositionFn = Callable[[float], Vec3]


@dataclass
class RadioParams:
    """Link-budget constants shared by every AP in a deployment.

    Defaults are calibrated so that a static client at boresight sees
    ~35 dB mean SNR and the usable cell (ESNR above the MCS0 threshold)
    spans roughly 8-10 m along the road with 6-10 m overlap between
    adjacent APs, matching the heatmap in Fig. 10.
    """

    freq_hz: float = 2.462e9
    ap_tx_power_dbm: float = 18.0
    client_tx_power_dbm: float = 15.0
    noise_floor_dbm: float = -92.0
    pathloss_exponent: float = 2.8
    penetration_loss_db: float = 14.0  # third-floor window + cabling/splitter
    client_antenna_gain_dbi: float = 0.0
    #: Rician K factor (linear) of the direct-path tap.  The parabolic
    #: antenna keeps a strong LoS component on the road, so the channel is
    #: Rician rather than pure Rayleigh; K=4 (~6 dB) matches the ~10 dB
    #: ESNR swings visible in Fig. 2 of the paper.
    rician_k: float = 4.0
    #: Log-normal shadowing standard deviation (dB).  0 disables; the
    #: shadowing robustness benchmark turns it on.
    shadowing_sigma_db: float = 0.0
    shadowing_decorrelation_m: float = 5.0


class Link:
    """The radio channel between one AP and one client.

    Parameters
    ----------
    ap_position / ap_antenna:
        Where the AP is and how its parabolic antenna is aimed.
    client_position_fn:
        Maps simulation time to the client's (x, y, z) position.
    speed_mps:
        Client ground speed; sets the Doppler spread of the fading process.
    rng:
        Numpy Generator; each link gets independent fading.
    """

    def __init__(
        self,
        ap_position: Vec3,
        ap_antenna: ParabolicAntenna,
        client_position_fn: PositionFn,
        speed_mps: float,
        rng: np.random.Generator,
        params: Optional[RadioParams] = None,
        n_subcarriers: int = 56,
        memoize: bool = True,
    ):
        self.params = params or RadioParams()
        self.ap_position = ap_position
        self.ap_antenna = ap_antenna
        self.client_position_fn = client_position_fn
        self.client_antenna = OmniAntenna(self.params.client_antenna_gain_dbi)
        self.pathloss = LogDistancePathLoss(
            freq_hz=self.params.freq_hz,
            exponent=self.params.pathloss_exponent,
            extra_loss_db=self.params.penetration_loss_db,
        )
        self.fading = TappedDelayChannel(
            rng,
            doppler_hz(speed_mps, self.params.freq_hz),
            rician_k=self.params.rician_k,
        )
        if self.params.shadowing_sigma_db > 0.0:
            from .shadowing import ShadowingField

            self.shadowing: Optional[ShadowingField] = ShadowingField(
                rng,
                sigma_db=self.params.shadowing_sigma_db,
                decorrelation_m=self.params.shadowing_decorrelation_m,
            )
        else:
            self.shadowing = None
        self.n_subcarriers = n_subcarriers
        # Exact-timestamp memoisation of the mean (large-scale) SNR, keyed
        # by (uplink, t).  Measurement on the default drive showed the mean
        # SNR is the *only* per-link quantity queried twice at one instant:
        # every derived evaluation (ESNR for delivery, the RSSI proxy, CSI
        # measurement) re-reads it after the decode-floor cull already did,
        # because the MAC samples a whole frame at one instant (A-MPDU
        # midpoint / control preamble).  The derived quantities themselves
        # (CSI draw, subcarrier SNR, ESNR, RSSI) are each evaluated exactly
        # once per (link, t) -- caching them is pure overhead, so they
        # compute directly.  Historically a single-timestamp cache covering
        # all quantities sat here; interleaved per-exchange timestamps
        # thrashed it (~3% hit rate).  The channel is a pure function of
        # time, so memo hits are free and bit-identical, and the eviction
        # policy can never change values.
        self.memoize = memoize
        self._memo: Dict[Tuple, float] = {}

    #: Bound on distinct (uplink, timestamp) memo entries per link.  One
    #: frame exchange touches a handful of instants; 64 covers several
    #: overlapping exchanges (ACKs, retries, neighbour carrier-sense
    #: probes) with room to spare while keeping memory O(1).
    MEMO_CAPACITY = 64

    # ------------------------------------------------------------ large scale
    def distance_m(self, t: float) -> float:
        cx, cy, cz = self.client_position_fn(t)
        ax, ay, az = self.ap_position
        return math.sqrt((cx - ax) ** 2 + (cy - ay) ** 2 + (cz - az) ** 2)

    def mean_snr_db(self, t: float, uplink: bool = False) -> float:
        """Large-scale mean SNR (dB) at time ``t``.

        The channel is reciprocal; uplink and downlink differ only in
        transmit power (client radios transmit at lower power).
        """
        if not self.memoize:
            return self._mean_snr_db(t, uplink)
        memo = self._memo
        key = (uplink, t)
        value = memo.get(key, _MEMO_MISS)
        if value is not _MEMO_MISS:
            PERF.count("link.memo_hits")
            return value
        PERF.count("link.memo_misses")
        value = self._mean_snr_db(t, uplink)
        if len(memo) >= self.MEMO_CAPACITY:
            # FIFO eviction: drop the oldest insertion.
            del memo[next(iter(memo))]
        memo[key] = value
        return value

    def _mean_snr_db(self, t: float, uplink: bool) -> float:
        params = self.params
        client_pos = self.client_position_fn(t)
        tx_power = params.client_tx_power_dbm if uplink else params.ap_tx_power_dbm
        ap_pos = self.ap_position
        gain_ap = self.ap_antenna.gain_towards(ap_pos, client_pos)
        # Inline distance (same expression as distance_m) so the client
        # position is evaluated once per call instead of twice.
        cx, cy, cz = client_pos
        ax, ay, az = ap_pos
        d = math.sqrt((cx - ax) ** 2 + (cy - ay) ** 2 + (cz - az) ** 2)
        loss = self.pathloss.loss_db(d)
        rx_power = tx_power + gain_ap + params.client_antenna_gain_dbi - loss
        if self.shadowing is not None:
            rx_power += self.shadowing.gain_db(cx)
        return rx_power - params.noise_floor_dbm

    def rx_power_dbm(self, t: float, uplink: bool = False) -> float:
        """Mean received power in dBm (used for capture/collision decisions)."""
        return self.mean_snr_db(t, uplink=uplink) + self.params.noise_floor_dbm

    # ------------------------------------------------------------ small scale
    def csi(self, t: float) -> np.ndarray:
        """Instantaneous complex subcarrier gains (unit mean power)."""
        gains = self.fading.subcarrier_gains(t)
        gains.setflags(write=False)  # shared with callers that keep it
        return gains

    def subcarrier_snr_db(self, t: float, uplink: bool = False) -> np.ndarray:
        snr = subcarrier_snr_db_from_csi(
            self.csi(t), self.mean_snr_db(t, uplink=uplink)
        )
        snr.setflags(write=False)
        return snr

    def esnr_db(
        self,
        t: float,
        uplink: bool = False,
        constellation: str = DEFAULT_ESNR_CONSTELLATION,
    ) -> float:
        """Instantaneous effective SNR of the link."""
        return effective_snr_db(
            self.subcarrier_snr_db(t, uplink=uplink), constellation
        )

    def rssi_db(self, t: float, uplink: bool = False) -> float:
        """Wideband received-SNR proxy: mean SNR plus the flat fading gain.

        This is the quantity a beacon-scanning client observes -- blind to
        frequency selectivity, which is the baseline's handicap.
        """
        h = self.fading.flat_gain(t)
        power = max(abs(h) ** 2, 1e-12)
        return self.mean_snr_db(t, uplink=uplink) + float(linear_to_db(power))

    def capacity_mbps(self, t: float) -> float:
        """Ideal-rate-control expected PHY throughput right now (downlink)."""
        return link_capacity_mbps(self.esnr_db(t))

    # ------------------------------------------------------------ batched
    def csi_at(self, ts) -> np.ndarray:
        """CSI at a batch of timestamps: shape (len(ts), n_subcarriers)."""
        return self.fading.subcarrier_gains_at(ts)

    def mean_snr_db_at(self, ts, uplink: bool = False) -> np.ndarray:
        """Large-scale mean SNR at a batch of timestamps."""
        return np.array(
            [self._mean_snr_db(float(t), uplink) for t in np.asarray(ts, dtype=float)]
        )

    def subcarrier_snr_db_at(self, ts, uplink: bool = False) -> np.ndarray:
        """Per-subcarrier SNR at a batch of timestamps: (len(ts), n_subcarriers).

        Row ``i`` is bit-identical to ``subcarrier_snr_db(ts[i], uplink)``.
        """
        csi = self.csi_at(ts)
        mean_snr = self.mean_snr_db_at(ts, uplink=uplink)
        return subcarrier_snr_db_from_csi(csi, mean_snr[:, None])

    def esnr_db_at(
        self,
        ts,
        uplink: bool = False,
        constellation: str = DEFAULT_ESNR_CONSTELLATION,
    ) -> np.ndarray:
        """Effective SNR at a batch of timestamps (bit-identical per element).

        This is the fast path for the metrics/CLI sampling loops, which
        previously paid the full scalar PHY stack once per sample.
        """
        return effective_snr_db_batch(
            self.subcarrier_snr_db_at(ts, uplink=uplink), constellation
        )

    def capacity_mbps_at(self, ts) -> np.ndarray:
        """Ideal-rate-control capacity at a batch of timestamps (downlink).

        Vectorises :func:`repro.phy.mcs.link_capacity_mbps` over the MCS
        table.  The ESNR input is bit-identical to the scalar path; the
        logistic itself goes through ``np.exp`` rather than ``math.exp``,
        which can differ in the last ulp, so compare against
        ``capacity_mbps(t)`` with a tolerance, not exact equality.
        """
        esnr = self.esnr_db_at(ts)
        best = np.zeros(esnr.shape, dtype=float)
        for mcs in MCS_TABLE:
            x = (esnr - mcs.pdr_threshold_db) / mcs.pdr_scale_db
            rate = np.where(
                x > 35.0, mcs.phy_rate_mbps,
                np.where(x < -35.0, 0.0,
                         mcs.phy_rate_mbps / (1.0 + np.exp(-x))),
            )
            np.maximum(best, rate, out=best)
        return best

    # ------------------------------------------------------- packet delivery
    def mpdu_success_probability(
        self, t: float, mcs: McsEntry, n_bytes: int = 1500, uplink: bool = False
    ) -> float:
        """Probability one MPDU at ``mcs`` gets through at time ``t``.

        Uses the system-wide ESNR metric (the PDR thresholds in
        :mod:`repro.phy.mcs` are calibrated against it).
        """
        esnr = self.esnr_db(t, uplink=uplink)
        return pdr(esnr, mcs, n_bytes=n_bytes)

    def measure_csi(self, t: float, ap_id: int, client_id: int) -> CSIReading:
        """Produce the CSI reading an AP would report for an uplink frame."""
        return CSIReading(
            time=t,
            ap_id=ap_id,
            client_id=client_id,
            csi=self.csi(t),
            mean_snr_db=self.mean_snr_db(t, uplink=True),
        )
