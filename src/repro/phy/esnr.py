"""Effective SNR (ESNR) computation from per-subcarrier CSI.

ESNR (Halperin et al., SIGCOMM 2010) condenses a frequency-selective
channel into one number per constellation: the SNR of a *flat* AWGN channel
that would produce the same average bit error rate.  Because it weights
deeply-faded subcarriers by their (large) BER contribution, it predicts
packet delivery far better than RSSI in multipath -- which is why the WGTT
controller keys its AP selection on it.

Procedure (faithful to the original):

1. per-subcarrier SNR ``rho_k`` from the CSI magnitudes,
2. average BER ``BER_eff = mean_k BER_mod(rho_k)`` for the modulation,
3. invert: ``ESNR = BER_mod^{-1}(BER_eff)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .modulation import BER_FUNCTIONS, Constellation, db_to_linear, linear_to_db

__all__ = [
    "effective_snr_db",
    "invert_ber",
    "esnr_all_constellations",
    "DEFAULT_ESNR_CONSTELLATION",
]

#: Constellation used for the system-wide ESNR ranking metric.  64-QAM's BER
#: curve stays numerically well-conditioned up to ~40 dB, so strong links
#: remain distinguishable (QPSK BER underflows to zero above ~17 dB mean SNR,
#: which would clamp every good link to the same ESNR).
DEFAULT_ESNR_CONSTELLATION = Constellation.QAM64

# Inversion search range in dB.  BER curves are monotone over this range.
_ESNR_MIN_DB = -15.0
_ESNR_MAX_DB = 55.0


def invert_ber(
    target_ber: float,
    constellation: str,
    tol_db: float = 0.01,
) -> float:
    """Return the AWGN SNR (dB) at which ``constellation`` has ``target_ber``.

    Uses bisection: every BER curve in :mod:`repro.phy.modulation` is
    strictly decreasing in SNR.  Values outside the representable range are
    clamped to the search bounds.
    """
    ber_fn = BER_FUNCTIONS[constellation]
    lo, hi = _ESNR_MIN_DB, _ESNR_MAX_DB
    if target_ber >= float(ber_fn(db_to_linear(lo))):
        return lo
    if target_ber <= float(ber_fn(db_to_linear(hi))):
        return hi
    while hi - lo > tol_db:
        mid = 0.5 * (lo + hi)
        if float(ber_fn(db_to_linear(mid))) > target_ber:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def effective_snr_db(
    subcarrier_snr_db: np.ndarray,
    constellation: str = DEFAULT_ESNR_CONSTELLATION,
) -> float:
    """Effective SNR in dB for a vector of per-subcarrier SNRs (dB).

    Parameters
    ----------
    subcarrier_snr_db:
        SNR of each OFDM subcarrier in dB (any length >= 1).
    constellation:
        Which constellation's BER curve to average through.  The paper uses
        a single ESNR value per link for ranking APs; we default to 64-QAM
        (see :data:`DEFAULT_ESNR_CONSTELLATION`).
    """
    snr_db = np.asarray(subcarrier_snr_db, dtype=float)
    if snr_db.size == 0:
        raise ValueError("need at least one subcarrier SNR")
    ber_fn = BER_FUNCTIONS[constellation]
    mean_ber = float(np.mean(ber_fn(db_to_linear(snr_db))))
    return invert_ber(mean_ber, constellation)


def esnr_all_constellations(subcarrier_snr_db: np.ndarray) -> dict:
    """ESNR under each constellation; used by rate prediction.

    Returns a dict mapping constellation name to ESNR in dB.
    """
    return {
        c: effective_snr_db(subcarrier_snr_db, c) for c in Constellation.ALL
    }


def subcarrier_snr_db_from_csi(
    csi: np.ndarray, mean_snr_db: float, floor_db: Optional[float] = -20.0
) -> np.ndarray:
    """Per-subcarrier SNR given unit-mean-power CSI and the link's mean SNR.

    ``rho_k = mean_snr * |H_k|^2``.  A floor keeps deep nulls finite in dB.
    """
    power = np.abs(np.asarray(csi)) ** 2
    snr_db = mean_snr_db + linear_to_db(power)
    if floor_db is not None:
        snr_db = np.maximum(snr_db, floor_db)
    return snr_db
