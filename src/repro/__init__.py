"""Wi-Fi Goes to Town -- a full reproduction of the SIGCOMM 2017 system.

The package is layered bottom-up:

* :mod:`repro.sim` -- discrete-event engine and tracing.
* :mod:`repro.phy` -- path loss, antennas, Rayleigh fading, CSI, ESNR, MCS.
* :mod:`repro.mac` -- 802.11n aggregation, block ACKs, rate control, medium.
* :mod:`repro.net` -- packets, queues, Ethernet backhaul.
* :mod:`repro.transport` -- TCP Reno and UDP CBR.
* :mod:`repro.mobility` -- road layout, trajectories, driving scenarios.
* :mod:`repro.core` -- the WGTT contribution (AP selection, switching
  protocol, cyclic queues, BA forwarding, de-dup) and the Enhanced
  802.11r baseline.
* :mod:`repro.apps` -- video streaming, conferencing, web-browsing models.
* :mod:`repro.experiments` -- builders, metrics, and per-figure runners.

Quickstart::

    from repro.experiments import run_single_drive
    result = run_single_drive(mode="wgtt", speed_mph=15, traffic="tcp")
    print(result.throughput_mbps)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
