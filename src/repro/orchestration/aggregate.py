"""Incremental sweep aggregation: running per-cell stats, updated as
summaries land.

Figures are per-*cell* aggregates (a cell is one ``(mode, speed,
traffic, policy)`` grid point; seeds are its replicates).  With a queue
backend, summaries arrive in arbitrary order across workers; a
:class:`SweepAggregator` consumes them one at a time and can emit a
consistent snapshot at *any* moment -- so a Fig. 13 curve can redraw
mid-sweep instead of after the last job.

Determinism: snapshots are byte-identical for the same set of consumed
summaries regardless of arrival order.  The aggregator keys each value
by its ``job_key`` inside the cell and computes cell statistics over
values sorted by that key, so floating-point reduction order is pinned.
Re-adding a job key (a crash-window duplicate run) overwrites rather
than double-counts -- the value is identical anyway, by the determinism
contract of the queue.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .summary import DriveSummary

__all__ = ["SweepAggregator"]

#: The summary field each cell aggregates (the Fig. 13 metric).
DEFAULT_METRIC = "coverage_throughput_mbps"

_CellKey = Tuple[str, float, str, str]


class SweepAggregator:
    """Order-independent streaming aggregation of drive summaries."""

    def __init__(self, metric: str = DEFAULT_METRIC):
        self.metric = metric
        #: cell -> {job_key: value}
        self._cells: Dict[_CellKey, Dict[str, float]] = {}
        self.jobs_seen = 0

    # ------------------------------------------------------------- feed
    def add(self, summary: DriveSummary) -> None:
        key: _CellKey = (summary.mode, float(summary.speed_mph),
                         summary.traffic, summary.policy)
        cell = self._cells.setdefault(key, {})
        if summary.job_key not in cell:
            self.jobs_seen += 1
        cell[summary.job_key] = float(getattr(summary, self.metric))

    def consume_store(self, store) -> int:
        """Aggregate a whole :class:`~repro.orchestration.store.ColumnarStore`.

        Reads only the five columns it needs -- one ``np.load`` per
        shard, no per-job file opens and no summary reconstruction.
        """
        cols = store.query("job_key", "mode", "speed_mph", "traffic",
                           "policy", self.metric)
        n = len(cols["job_key"])
        for i in range(n):
            key: _CellKey = (str(cols["mode"][i]),
                             float(cols["speed_mph"][i]),
                             str(cols["traffic"][i]),
                             str(cols["policy"][i]))
            cell = self._cells.setdefault(key, {})
            job_key = str(cols["job_key"][i])
            if job_key not in cell:
                self.jobs_seen += 1
            cell[job_key] = float(cols[self.metric][i])
        return n

    # ---------------------------------------------------------- queries
    def snapshot(self) -> Dict[str, Any]:
        """Per-cell stats over everything consumed so far.

        Cells are sorted by key and each cell's values by job key, so
        two aggregators that consumed the same summaries -- in any order
        -- serialise to identical bytes.
        """
        cells = []
        for key in sorted(self._cells):
            mode, speed, traffic, policy = key
            values = [v for _k, v in sorted(self._cells[key].items())]
            n = len(values)
            mean = sum(values) / n
            var = sum((v - mean) ** 2 for v in values) / n
            cells.append({
                "mode": mode,
                "speed_mph": speed,
                "traffic": traffic,
                "policy": policy,
                "n": n,
                "mean": mean,
                "std": var ** 0.5,
                "min": min(values),
                "max": max(values),
            })
        return {"metric": self.metric, "jobs_seen": self.jobs_seen,
                "cells": cells}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def write_snapshot(self, path: os.PathLike) -> None:
        """Atomically publish the current snapshot (safe to poll)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def cell_mean(self, mode: str, speed_mph: float, traffic: str,
                  policy: str = "") -> Optional[float]:
        cell = self._cells.get((mode, float(speed_mph), traffic, policy))
        if not cell:
            return None
        values = [v for _k, v in sorted(cell.items())]
        return sum(values) / len(values)
