"""Sweep progress and telemetry.

The runner calls a :class:`ProgressReporter` as jobs finish; the reporter
keeps the running :class:`SweepStats` (done / failed / cached, wall
clock, simulated events per second) and optionally prints one line per
job plus a closing summary -- the sweep-scale equivalent of iperf3's
interval lines.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Optional, TextIO

__all__ = ["ProgressReporter", "SweepStats"]


@dataclass
class SweepStats:
    """Aggregate telemetry for one sweep run."""

    total: int = 0
    completed: int = 0      # fresh simulations that succeeded
    cached: int = 0         # served from the persistent cache
    failed: int = 0         # exhausted their retry budget
    retries: int = 0        # extra attempts beyond the first
    events_fired: int = 0   # simulation events across fresh runs
    wall_clock_s: float = 0.0

    @property
    def done(self) -> int:
        return self.completed + self.cached + self.failed

    @property
    def events_per_sec(self) -> float:
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.events_fired / self.wall_clock_s

    @property
    def cache_hit_rate(self) -> float:
        finished = self.completed + self.cached
        return self.cached / finished if finished else 0.0

    def one_line(self) -> str:
        parts = [
            f"{self.completed} run",
            f"{self.cached} cached",
            f"{self.failed} failed",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        rate = (f"{self.events_per_sec / 1e3:.0f}k ev/s"
                if self.events_per_sec >= 1e3 else
                f"{self.events_per_sec:.0f} ev/s")
        return (f"{self.done}/{self.total} jobs ({', '.join(parts)}) in "
                f"{self.wall_clock_s:.1f}s wall, "
                f"{self.events_fired} events ({rate})")


class ProgressReporter:
    """Collects :class:`SweepStats` and optionally narrates the sweep."""

    def __init__(self, verbose: bool = False, stream: Optional[TextIO] = None):
        self.verbose = verbose
        self.stream = stream if stream is not None else sys.stderr
        self.stats = SweepStats()
        self._t0: Optional[float] = None

    # ------------------------------------------------------------- hooks
    def begin(self, total: int) -> None:
        self.stats = SweepStats(total=total)
        self._t0 = time.perf_counter()
        if self.verbose:
            print(f"sweep: {total} jobs", file=self.stream)

    def job_done(self, job_key: str, events_fired: int, wall_s: float,
                 cached: bool) -> None:
        if cached:
            self.stats.cached += 1
        else:
            self.stats.completed += 1
            self.stats.events_fired += events_fired
        self._tick()
        if self.verbose:
            tag = "cached" if cached else f"{wall_s:.1f}s, {events_fired} events"
            print(f"  [{self.stats.done}/{self.stats.total}] {job_key} ({tag})",
                  file=self.stream)

    def job_retry(self, job_key: str, attempt: int, error: str) -> None:
        self.stats.retries += 1
        if self.verbose:
            print(f"  retry #{attempt} {job_key}: {error}", file=self.stream)

    def job_failed(self, job_key: str, attempts: int, error: str) -> None:
        self.stats.failed += 1
        self._tick()
        if self.verbose:
            print(f"  FAILED {job_key} after {attempts} attempts: {error}",
                  file=self.stream)

    def end(self) -> SweepStats:
        self._tick()
        if self.verbose:
            print(f"sweep: {self.stats.one_line()}", file=self.stream)
        return self.stats

    def _tick(self) -> None:
        if self._t0 is not None:
            self.stats.wall_clock_s = time.perf_counter() - self._t0
