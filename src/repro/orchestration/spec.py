"""Declarative sweep specifications.

A :class:`SweepSpec` describes a parameter grid (mode x speed x traffic x
seed, plus scalar config overrides); :meth:`SweepSpec.expand` turns it
into a deterministic, ordered list of hashable :class:`JobSpec` jobs.
Jobs are plain values -- they pickle across process boundaries, hash into
cache keys, and round-trip through JSON.

Seed policy
-----------
Either list explicit ``seeds`` (each grid point is run once per seed), or
set ``replicates=N`` and every job derives its seed from ``base_seed``
and its own grid coordinates via :func:`derive_seed`.  Derived seeds are
stable across runs, execution order, and worker count, so a sweep is
reproducible bit-for-bit no matter how it is scheduled.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults import FaultScenario, coerce_scenario
from ..policies import coerce_policy

__all__ = ["FaultCampaign", "JobSpec", "SweepSpec", "coerce_campaign",
           "derive_seed"]


def _canonical_scenario_json(value: Any) -> Optional[str]:
    """Normalise any accepted scenario form to its canonical JSON string.

    Jobs carry fault scenarios as canonical JSON: a hashable scalar that
    pickles across worker boundaries and produces one cache key no matter
    whether the caller supplied a FaultScenario, a dict, or a string.
    """
    scenario = coerce_scenario(value)
    return None if scenario is None else scenario.to_json()


def _canonical_policy_json(value: Any) -> Optional[str]:
    """Normalise any accepted policy form to its canonical JSON string.

    Same contract as fault scenarios: a PolicySpec, a dict, a bare
    registry name, or a JSON string all normalise to one canonical
    encoding, so equal policies always produce equal jobs and cache keys
    -- and distinct policies (even same-name, different-params) never
    collide.
    """
    spec = coerce_policy(value)
    return None if spec is None else spec.to_json()


def _canonical_city_json(value: Any) -> Optional[str]:
    """Normalise any accepted city form to its canonical JSON string."""
    from ..city.config import coerce_city

    city = coerce_city(value)
    return None if city is None else city.to_json()

#: Scalar types allowed in job overrides (anything else cannot be hashed
#: into a stable cache key or serialised to JSON losslessly).
_SCALAR_TYPES = (int, float, str, bool, type(None))


@dataclass(frozen=True)
class FaultCampaign:
    """A sweep-level probabilistic fault regime, crossed with the grid.

    Instead of one literal :class:`~repro.faults.FaultScenario` applied
    to every job, a campaign *derives* a fresh scenario per grid point:
    the Poisson generator is seeded with
    ``derive_seed(base_seed, "fault-campaign", mode, speed, traffic, seed)``,
    so the per-job fault schedule is a pure function of the sweep seed
    and the job's own coordinates -- independent of execution order,
    worker count, or queue scheduling.  Reruns regenerate byte-identical
    scenarios and therefore identical cache keys (100 % hits).
    """

    crash_rate_per_ap_hz: float
    mean_downtime_s: float = 2.0
    #: Window the generator materialises events over.  Events past the
    #: end of a shorter drive simply never fire.
    duration_s: float = 8.0
    #: AP count the generator draws for (None = the sweep's ``n_aps``,
    #: falling back to the default 8-AP testbed).
    n_aps: Optional[int] = None
    controller_crash_rate_hz: float = 0.0
    controller_mean_downtime_s: float = 1.0

    def __post_init__(self) -> None:
        if self.crash_rate_per_ap_hz < 0 or self.controller_crash_rate_hz < 0:
            raise ValueError("crash rates must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"crash_rate_per_ap_hz": self.crash_rate_per_ap_hz}
        for f in fields(self):
            if f.name == "crash_rate_per_ap_hz":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultCampaign":
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def scenario_for(self, base_seed: int, mode: str, speed: float,
                     traffic: str, seed: int,
                     default_n_aps: int) -> FaultScenario:
        """Materialise this campaign for one grid point, deterministically."""
        scenario_seed = derive_seed(
            base_seed, "fault-campaign", mode, speed, traffic, seed
        )
        return FaultScenario.poisson_ap_crashes(
            n_aps=self.n_aps if self.n_aps is not None else default_n_aps,
            duration_s=self.duration_s,
            crash_rate_per_ap_hz=self.crash_rate_per_ap_hz,
            mean_downtime_s=self.mean_downtime_s,
            seed=scenario_seed,
            controller_crash_rate_hz=self.controller_crash_rate_hz,
            controller_mean_downtime_s=self.controller_mean_downtime_s,
        )


def coerce_campaign(value: Any) -> Optional[FaultCampaign]:
    """Accept a FaultCampaign, dict, or JSON string (None passes through)."""
    if value is None or isinstance(value, FaultCampaign):
        return value
    if isinstance(value, str):
        return FaultCampaign.from_dict(json.loads(value))
    if isinstance(value, dict):
        return FaultCampaign.from_dict(value)
    raise TypeError(
        f"fault campaign must be FaultCampaign, dict, or JSON str, "
        f"got {type(value).__name__}"
    )


def derive_seed(base_seed: int, *components: Any) -> int:
    """Derive a deterministic 31-bit seed from ``base_seed`` and labels.

    The derivation is a SHA-256 over the canonical JSON encoding, so it is
    stable across Python versions, processes, and platforms (unlike
    ``hash()``, which is salted per interpreter).
    """
    payload = json.dumps([int(base_seed), *components], sort_keys=True,
                         default=str).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class JobSpec:
    """One independent drive: everything a worker needs, nothing live.

    ``overrides`` carries extra ``run_single_drive`` keyword arguments as
    a sorted tuple of ``(name, value)`` pairs -- tuple form keeps the
    dataclass hashable.  Only scalars are allowed; rich objects (roads,
    configs) cannot cross the cache boundary canonically.
    """

    mode: str = "wgtt"
    speed_mph: float = 15.0
    traffic: str = "tcp"
    udp_rate_mbps: float = 50.0
    seed: int = 0
    duration_s: Optional[float] = None
    warmup_s: float = 0.5
    n_aps: Optional[int] = None
    ap_spacing_m: Optional[float] = None
    #: Fault scenario as canonical JSON (None = healthy run).  Accepts a
    #: FaultScenario or dict at construction; stored normalised so equal
    #: scenarios always produce equal jobs and cache keys.
    fault_scenario: Optional[str] = None
    #: Handover policy as canonical JSON (None = the default
    #: ``wgtt-max-median``).  Accepts a PolicySpec, dict, bare name, or
    #: JSON string at construction; stored normalised.  Note the derived
    #: seed does NOT depend on the policy, so policies in one sweep
    #: compare on identical channel realisations.
    policy: Optional[str] = None
    #: City grid spec as canonical JSON (None = single-road drive).
    #: Accepts a CityConfig, dict, or JSON string at construction;
    #: stored normalised.  ``speed_mph``/``n_aps``/``ap_spacing_m`` are
    #: ignored when set (the city spec carries its own geometry).
    city: Optional[str] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("wgtt", "baseline"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.traffic not in ("tcp", "udp"):
            raise ValueError(f"unknown traffic {self.traffic!r}")
        object.__setattr__(
            self, "fault_scenario", _canonical_scenario_json(self.fault_scenario)
        )
        object.__setattr__(
            self, "policy", _canonical_policy_json(self.policy)
        )
        object.__setattr__(self, "city", _canonical_city_json(self.city))
        if self.city is not None and self.mode != "wgtt":
            raise ValueError("city drives support wgtt mode only")
        normalized = tuple(sorted((str(k), v) for k, v in self.overrides))
        for name, value in normalized:
            if not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"override {name!r} must be a scalar, got {type(value).__name__}"
                )
        object.__setattr__(self, "overrides", normalized)

    # ---------------------------------------------------------- identity
    def canonical(self) -> Dict[str, Any]:
        """A JSON-safe dict with a stable field order (the cache identity)."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "overrides":
                value = [[k, v] for k, v in value]
            out[f.name] = value
        return out

    def key(self) -> str:
        """Compact human-readable identity, e.g. ``wgtt:25:udp:r50:s7``."""
        parts = [self.mode, f"{self.speed_mph:g}", self.traffic,
                 f"r{self.udp_rate_mbps:g}", f"s{self.seed}"]
        if self.n_aps is not None:
            parts.append(f"aps{self.n_aps}")
        if self.ap_spacing_m is not None:
            parts.append(f"sp{self.ap_spacing_m:g}")
        if self.duration_s is not None:
            parts.append(f"d{self.duration_s:g}")
        if self.fault_scenario is not None:
            parts.append(f"fault={coerce_scenario(self.fault_scenario).key_hash()}")
        if self.policy is not None:
            parts.append(f"policy={coerce_policy(self.policy).label()}")
        if self.city is not None:
            from ..city.config import coerce_city

            parts.append(f"city={coerce_city(self.city).key_hash()}")
        parts.extend(f"{k}={v}" for k, v in self.overrides)
        return ":".join(parts)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        kwargs = dict(data)
        kwargs["overrides"] = tuple(
            (k, v) for k, v in kwargs.get("overrides", ())
        )
        return cls(**kwargs)

    # ------------------------------------------------------------ running
    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.experiments.run_single_drive`."""
        kwargs: Dict[str, Any] = dict(
            mode=self.mode,
            speed_mph=self.speed_mph,
            traffic=self.traffic,
            udp_rate_mbps=self.udp_rate_mbps,
            seed=self.seed,
            warmup_s=self.warmup_s,
        )
        if self.duration_s is not None:
            kwargs["duration_s"] = self.duration_s
        if self.n_aps is not None or self.ap_spacing_m is not None:
            from ..mobility.trajectory import (
                DEFAULT_AP_SPACING_M,
                DEFAULT_N_APS,
                RoadLayout,
            )
            kwargs["road"] = RoadLayout.uniform(
                self.n_aps if self.n_aps is not None else DEFAULT_N_APS,
                self.ap_spacing_m if self.ap_spacing_m is not None
                else DEFAULT_AP_SPACING_M,
            )
        if self.fault_scenario is not None:
            # Passed through as the JSON string; ExperimentConfig coerces.
            kwargs["fault_scenario"] = self.fault_scenario
        if self.policy is not None:
            kwargs["policy"] = self.policy
        if self.city is not None:
            kwargs["city"] = self.city
            kwargs.pop("road", None)  # the grid is the geometry
        kwargs.update(dict(self.overrides))
        return kwargs


@dataclass
class SweepSpec:
    """A parameter grid of independent drives.

    Axes are the paper's evaluation dimensions; the cross product of all
    axes (times seeds/replicates) is the job list.  Expansion order is
    deterministic: axes iterate in the order given here, seeds innermost.
    """

    modes: Sequence[str] = ("wgtt", "baseline")
    speeds_mph: Sequence[float] = (5.0, 15.0, 25.0, 35.0)
    traffics: Sequence[str] = ("udp",)
    seeds: Optional[Sequence[int]] = (0,)
    replicates: int = 1
    base_seed: int = 0
    udp_rate_mbps: float = 50.0
    duration_s: Optional[float] = None
    warmup_s: float = 0.5
    n_aps: Optional[int] = None
    ap_spacing_m: Optional[float] = None
    #: Fault scenario applied to every job (FaultScenario, dict, or JSON).
    fault_scenario: Optional[Any] = None
    #: Probabilistic fault regime crossed with the grid: each job gets a
    #: scenario generated from ``base_seed`` + its own grid coordinates
    #: (FaultCampaign, dict, or JSON).  Mutually exclusive with
    #: ``fault_scenario``.
    fault_campaign: Optional[Any] = None
    #: Handover-policy axis (each entry a PolicySpec, dict, name, or
    #: JSON; None entries mean the default policy).  None skips the axis
    #: entirely.  Seeds do not depend on the policy, so every policy in
    #: the sweep sees identical channel realisations per grid point.
    policies: Optional[Sequence[Any]] = None
    #: City grid spec applied to every job (CityConfig, dict, or JSON).
    #: City sweeps iterate seeds/traffics as usual; the speed axis is
    #: ignored by the runner (the city spec carries its own speed).
    city: Optional[Any] = None
    overrides: Dict[str, Any] = field(default_factory=dict)

    def expand(self) -> List[JobSpec]:
        """The full, ordered job list for this sweep."""
        jobs: List[JobSpec] = []
        override_items = tuple(sorted(self.overrides.items()))
        scenario_json = _canonical_scenario_json(self.fault_scenario)
        campaign = coerce_campaign(self.fault_campaign)
        if campaign is not None and scenario_json is not None:
            raise ValueError(
                "fault_scenario and fault_campaign are mutually exclusive"
            )
        if campaign is not None:
            from ..mobility.trajectory import DEFAULT_N_APS

            default_n_aps = (self.n_aps if self.n_aps is not None
                             else DEFAULT_N_APS)
        city_json = _canonical_city_json(self.city)
        policy_axis = (
            [None] if self.policies is None
            else [_canonical_policy_json(p) for p in self.policies]
        )
        for mode, speed, traffic, policy in product(
                self.modes, self.speeds_mph, self.traffics, policy_axis):
            if self.seeds is not None:
                seeds = list(self.seeds)
            else:
                seeds = [
                    derive_seed(self.base_seed, mode, speed, traffic, rep)
                    for rep in range(self.replicates)
                ]
            for seed in seeds:
                if campaign is not None:
                    scenario_json = campaign.scenario_for(
                        self.base_seed, mode, float(speed), traffic,
                        int(seed), default_n_aps,
                    ).to_json()
                jobs.append(JobSpec(
                    mode=mode,
                    speed_mph=float(speed),
                    traffic=traffic,
                    udp_rate_mbps=self.udp_rate_mbps,
                    seed=int(seed),
                    duration_s=self.duration_s,
                    warmup_s=self.warmup_s,
                    n_aps=self.n_aps,
                    ap_spacing_m=self.ap_spacing_m,
                    fault_scenario=scenario_json,
                    policy=policy,
                    city=city_json,
                    overrides=override_items,
                ))
        return jobs

    def __len__(self) -> int:
        per_point = len(self.seeds) if self.seeds is not None else self.replicates
        n_policies = 1 if self.policies is None else len(self.policies)
        return (len(self.modes) * len(self.speeds_mph) * len(self.traffics)
                * n_policies * per_point)
