"""Picklable drive summaries.

A live :class:`~repro.experiments.builder.Network` holds the simulator,
the medium, every AP and link -- none of which should cross a process
boundary or land in a persistent cache.  :class:`DriveSummary` is the
extract that does: scalar results, the binned throughput series, the
serving-AP timeline, and the trace counters.  Workers build it in-process
and ship only the summary back to the parent.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.metrics import mean_throughput_mbps, throughput_timeseries
from ..mobility.trajectory import LEAD_IN_M, mph_to_mps

__all__ = ["DriveSummary", "COVERAGE_LEAD_IN_M"]

#: The client enters useful coverage ~15 m before the first AP (the
#: measurement convention shared by the CLI and the benchmark harness).
COVERAGE_LEAD_IN_M = LEAD_IN_M

#: Bin width of the stored throughput series (seconds).
SUMMARY_BIN_S = 0.25


@dataclass
class DriveSummary:
    """Everything a figure needs from one drive, in plain values."""

    job_key: str
    mode: str
    speed_mph: float
    traffic: str
    udp_rate_mbps: float
    seed: int
    duration_s: float
    measure_t0: float
    measure_t1: float
    #: Mean goodput over the measurement window (= DriveResult.throughput_mbps).
    throughput_mbps: float
    #: Mean goodput while the client is inside AP coverage -- the number
    #: the Fig. 13 style comparisons report.  Falls back to the
    #: measurement window for static clients.
    coverage_throughput_mbps: float
    coverage_t0: float
    coverage_t1: float
    #: Binned goodput series over the coverage window (centres, Mbit/s).
    bin_s: float = SUMMARY_BIN_S
    bin_centres: List[float] = field(default_factory=list)
    bin_mbps: List[float] = field(default_factory=list)
    #: Serving-AP timeline as (time, ap_id-or-None) switch events.
    switch_events: List[Tuple[float, Optional[int]]] = field(default_factory=list)
    switch_count: int = 0
    #: TraceRecorder counters (every kind seen, recorded or not).
    trace_counters: Dict[str, int] = field(default_factory=dict)
    events_fired: int = 0
    wall_clock_s: float = 0.0
    #: Handover-policy label (registry name, plus a params hash when the
    #: policy was parameterised).  Empty for baseline-mode drives.
    policy: str = ""
    #: Trace records evicted by the ``trace_max_records`` ring buffer.
    dropped_records: int = 0
    #: Fault/HA bookkeeping (checkpoints written, failovers, degraded-mode
    #: entries/exits, invariant checks...).  Empty for plain drives.
    resilience: Dict[str, int] = field(default_factory=dict)
    #: City-drive fleet shape (zero / empty for single-road drives; the
    #: schema grew these in cache schema 4).
    n_vehicles: int = 0
    n_segments: int = 0
    #: Per-segment goodput over the measurement window, Mbit/s, keyed by
    #: segment index (only segments with deliveries appear).
    per_segment_mbps: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------- build
    @classmethod
    def from_drive_result(
        cls,
        result: "DriveResult",  # noqa: F821 - imported lazily to avoid a cycle
        job_key: str = "",
        mode: str = "",
        speed_mph: float = 0.0,
        traffic: str = "",
        udp_rate_mbps: float = 0.0,
        seed: int = 0,
        wall_clock_s: float = 0.0,
        policy: str = "",
    ) -> "DriveSummary":
        """Extract the summary from a completed drive."""
        city = getattr(result.net, "city_config", None)
        if city is not None:
            # Fleet drives have no single coverage transit: routes keep
            # the vehicles inside the grid for the whole measurement
            # window, so the coverage window *is* the measurement window.
            cov_t0, cov_t1 = result.measure_t0, result.measure_t1
        elif speed_mph > 0:
            road = result.net.road
            v = mph_to_mps(speed_mph)
            cov_t0 = COVERAGE_LEAD_IN_M / v
            cov_t1 = (road.span_m + COVERAGE_LEAD_IN_M) / v
        else:
            cov_t0, cov_t1 = result.measure_t0, result.measure_t1
        cov_t1 = min(cov_t1, result.duration_s)
        if cov_t1 <= cov_t0:
            cov_t0, cov_t1 = result.measure_t0, result.measure_t1
        centres, mbps = throughput_timeseries(
            result.deliveries, cov_t0, cov_t1, bin_s=SUMMARY_BIN_S
        )
        timeline = result.timeline
        switch_events = list(zip(timeline._times, timeline._aps))
        return cls(
            job_key=job_key,
            mode=mode,
            speed_mph=speed_mph,
            traffic=traffic,
            udp_rate_mbps=udp_rate_mbps,
            seed=seed,
            duration_s=result.duration_s,
            measure_t0=result.measure_t0,
            measure_t1=result.measure_t1,
            throughput_mbps=result.throughput_mbps,
            coverage_throughput_mbps=mean_throughput_mbps(
                result.deliveries, cov_t0, cov_t1
            ),
            coverage_t0=cov_t0,
            coverage_t1=cov_t1,
            bin_s=SUMMARY_BIN_S,
            bin_centres=[float(t) for t in centres],
            bin_mbps=[float(v) for v in mbps],
            switch_events=switch_events,
            switch_count=timeline.switch_count,
            trace_counters=dict(result.trace.counters),
            events_fired=result.net.sim.events_fired,
            wall_clock_s=wall_clock_s,
            policy=policy,
            dropped_records=result.trace.dropped_records,
            resilience=result.net.resilience_counters(),
            n_vehicles=int(result.extras.get("n_vehicles", 0)),
            n_segments=int(result.extras.get("n_segments", 0)),
            per_segment_mbps={
                int(seg): float(v)
                for seg, v in result.extras.get("per_segment_mbps", {}).items()
            },
        )

    # ----------------------------------------------------------- queries
    @property
    def timeline(self) -> "ServingTimeline":  # noqa: F821
        """Rebuild a :class:`ServingTimeline` from the stored switch events."""
        from ..experiments.metrics import ServingTimeline

        return ServingTimeline(
            [(t, ap) for t, ap in self.switch_events]
        )

    # ------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def deterministic_dict(self) -> Dict[str, Any]:
        """``to_dict()`` minus wall-clock timing.

        Everything left is a pure function of the job spec: this is the
        dict the determinism battery compares byte-for-byte across
        worker counts, pull orders, and crash/requeue schedules.
        """
        out = self.to_dict()
        out.pop("wall_clock_s")
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DriveSummary":
        data = dict(data)
        data["switch_events"] = [
            (float(t), None if ap is None else int(ap))
            for t, ap in data.get("switch_events", [])
        ]
        # JSON round-trips turn the int segment keys into strings.
        data["per_segment_mbps"] = {
            int(seg): float(v)
            for seg, v in data.get("per_segment_mbps", {}).items()
        }
        return cls(**data)
