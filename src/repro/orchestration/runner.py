"""Process-pool sweep execution with fault tolerance.

:class:`SweepRunner` fans the jobs of a :class:`~repro.orchestration.spec.SweepSpec`
out to worker processes.  Each worker runs one drive and ships back a
:class:`~repro.orchestration.summary.DriveSummary` -- never the live
``Network`` -- so results pickle cheaply and identically regardless of
worker count.

Fault model
-----------
* An exception inside a job is caught *in the worker* and returned as a
  failure record (crash isolation: one bad job cannot take down the
  sweep).
* A hard worker death (``os._exit``, OOM-kill, segfault) surfaces as
  ``BrokenProcessPool``; the runner writes off the poisoned round,
  rebuilds the pool, and resubmits the affected jobs.
* Every job gets ``max_retries`` extra attempts; a job that exhausts
  them becomes a :class:`JobFailure` in the report -- the sweep still
  completes and returns every other result.
* ``timeout_s`` arms a per-job wall-clock alarm inside the worker
  (POSIX ``SIGALRM``; silently unavailable elsewhere), so a hung drive
  is a retryable failure, not a stuck sweep.

Determinism: each job builds its own ``Network`` from its own seed, so
results are bit-identical whether the sweep runs serially (``jobs=1``,
in-process) or on any number of workers, in any completion order.

Test hooks (used by the fault-tolerance tests only): setting
``REPRO_SWEEP_TEST_CRASH`` to ``exception`` or ``exit`` makes workers
crash on jobs whose key contains ``REPRO_SWEEP_TEST_MATCH``; with
``REPRO_SWEEP_TEST_CRASH_ONCE_DIR`` set, each job crashes only on its
first attempt (a marker file is dropped in that directory).
``REPRO_SWEEP_TEST_SLEEP_S`` delays matching jobs, for timeout tests.
"""

from __future__ import annotations

import os
import signal
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import sleep
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache
from .progress import ProgressReporter, SweepStats
from .spec import JobSpec, SweepSpec
from .summary import DriveSummary

__all__ = ["JobFailure", "SweepResult", "SweepRunner", "run_sweep",
           "execute_job_inline"]


# ------------------------------------------------------------------ worker
def _apply_test_hooks(job: JobSpec) -> None:
    """Crash/delay injection for the fault-tolerance tests (no-op otherwise)."""
    crash_mode = os.environ.get("REPRO_SWEEP_TEST_CRASH")
    sleep_s = os.environ.get("REPRO_SWEEP_TEST_SLEEP_S")
    if not crash_mode and not sleep_s:
        return
    match = os.environ.get("REPRO_SWEEP_TEST_MATCH", "")
    if match not in job.key():
        return
    if sleep_s:
        sleep(float(sleep_s))
    if not crash_mode:
        return
    once_dir = os.environ.get("REPRO_SWEEP_TEST_CRASH_ONCE_DIR")
    if once_dir:
        marker = os.path.join(
            once_dir, "crashed_" + job.key().replace(":", "_").replace("=", "-")
        )
        if os.path.exists(marker):
            return  # already crashed once; let the retry succeed
        with open(marker, "w") as fh:
            fh.write(job.key())
    if crash_mode == "exit":
        os._exit(13)  # hard death: parent sees BrokenProcessPool
    raise RuntimeError(f"injected test crash for {job.key()}")


def execute_job_inline(job: JobSpec) -> DriveSummary:
    """Run one job in this process and extract its summary."""
    from ..experiments.runners import run_drive_summary

    summary = run_drive_summary(**job.run_kwargs())
    summary.job_key = job.key()
    return summary


def _execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one job, catching everything.

    Returns ``{"ok": True, "summary": ...}`` or a failure dict with the
    formatted traceback -- exceptions never propagate out of the worker,
    so one bad job cannot poison the pool (only a hard process death can,
    and the parent handles that separately).
    """
    job = JobSpec.from_dict(payload["job"])
    timeout_s = payload.get("timeout_s")
    alarm_armed = False
    try:
        if timeout_s and hasattr(signal, "SIGALRM"):
            def _on_alarm(_sig, _frame):
                raise TimeoutError(f"job exceeded {timeout_s}s wall clock")
            signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
            alarm_armed = True
        _apply_test_hooks(job)
        summary = execute_job_inline(job)
        return {"ok": True, "summary": summary.to_dict()}
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    finally:
        if alarm_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def _payload(job: JobSpec, timeout_s: Optional[float]) -> Dict[str, Any]:
    return {"job": job.canonical(), "timeout_s": timeout_s}


# ------------------------------------------------------------------ results
@dataclass
class JobFailure:
    """One job that exhausted its retry budget."""

    job: JobSpec
    attempts: int
    error: str
    traceback: str = ""


@dataclass
class SweepResult:
    """Everything a sweep produced, in the spec's expansion order."""

    jobs: List[JobSpec]
    #: Aligned with ``jobs``; None where the job ultimately failed.
    summaries: List[Optional[DriveSummary]]
    failures: List[JobFailure] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_key(self) -> Dict[str, DriveSummary]:
        return {
            job.key(): summary
            for job, summary in zip(self.jobs, self.summaries)
            if summary is not None
        }


# ------------------------------------------------------------------ runner
class SweepRunner:
    """Executes a sweep over a process pool with caching and retries.

    ``jobs=1`` runs in-process (no pool, no pickling); any higher count
    fans out over a ``ProcessPoolExecutor``.  Results are identical
    either way.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        reporter: Optional[ProgressReporter] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.reporter = reporter or ProgressReporter(verbose=False)

    # ---------------------------------------------------------------- run
    def run(self, sweep: Union[SweepSpec, Iterable[JobSpec]]) -> SweepResult:
        jobs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
        reporter = self.reporter
        reporter.begin(len(jobs))

        # Duplicate jobs (identical grid points) simulate once.
        unique: List[JobSpec] = list(dict.fromkeys(jobs))
        summaries: Dict[JobSpec, DriveSummary] = {}
        failures: List[JobFailure] = []

        pending: List[JobSpec] = []
        for job in unique:
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                summaries[job] = cached
                reporter.job_done(job.key(), 0, 0.0, cached=True)
            else:
                pending.append(job)

        attempts: Dict[JobSpec, int] = {job: 0 for job in pending}
        last_error: Dict[JobSpec, Tuple[str, str]] = {}
        while pending:
            round_results = self._run_round(pending)
            retry: List[JobSpec] = []
            for job, outcome in round_results:
                attempts[job] += 1
                if outcome.get("ok"):
                    summary = DriveSummary.from_dict(outcome["summary"])
                    summaries[job] = summary
                    if self.cache is not None:
                        self.cache.put(job, summary)
                    reporter.job_done(
                        job.key(), summary.events_fired,
                        summary.wall_clock_s, cached=False,
                    )
                    continue
                error = outcome.get("error", "unknown error")
                last_error[job] = (error, outcome.get("traceback", ""))
                if attempts[job] <= self.max_retries:
                    reporter.job_retry(job.key(), attempts[job], error)
                    retry.append(job)
                else:
                    reporter.job_failed(job.key(), attempts[job], error)
                    failures.append(JobFailure(
                        job=job, attempts=attempts[job],
                        error=error, traceback=last_error[job][1],
                    ))
            pending = retry

        stats = reporter.end()
        return SweepResult(
            jobs=jobs,
            summaries=[summaries.get(job) for job in jobs],
            failures=failures,
            stats=stats,
        )

    # -------------------------------------------------------------- rounds
    def _run_round(
        self, batch: Sequence[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any]]]:
        """One attempt per job in ``batch``; never raises for a job error."""
        if self.jobs == 1:
            return [(job, _execute_job(_payload(job, self.timeout_s)))
                    for job in batch]
        out: List[Tuple[JobSpec, Dict[str, Any]]] = []
        workers = min(self.jobs, len(batch))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job, _payload(job, self.timeout_s)): job
                for job in batch
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    out.append((job, future.result()))
                except BrokenProcessPool:
                    # A worker died hard; every in-flight/queued future in
                    # this pool is poisoned.  Record the attempt and let
                    # the retry loop resubmit on a fresh pool.
                    out.append((job, {
                        "ok": False,
                        "error": "worker process died (BrokenProcessPool)",
                        "traceback": "",
                    }))
                except Exception as exc:  # pragma: no cover - defensive
                    out.append((job, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    }))
        return out


def run_sweep(
    sweep: Union[SweepSpec, Iterable[JobSpec]],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    verbose: bool = False,
) -> SweepResult:
    """One-call sweep execution (the CLI and benchmarks go through this)."""
    runner = SweepRunner(
        jobs=jobs, cache=cache, timeout_s=timeout_s,
        max_retries=max_retries,
        reporter=ProgressReporter(verbose=verbose),
    )
    return runner.run(sweep)
