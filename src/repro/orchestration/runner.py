"""Process-pool sweep execution with fault tolerance.

:class:`SweepRunner` fans the jobs of a :class:`~repro.orchestration.spec.SweepSpec`
out to worker processes.  Each worker runs one drive and ships back a
:class:`~repro.orchestration.summary.DriveSummary` -- never the live
``Network`` -- so results pickle cheaply and identically regardless of
worker count.

Fault model
-----------
* An exception inside a job is caught *in the worker* and returned as a
  failure record (crash isolation: one bad job cannot take down the
  sweep).
* A hard worker death (``os._exit``, OOM-kill, segfault) surfaces as
  ``BrokenProcessPool``; the runner writes off the poisoned round,
  rebuilds the pool, and resubmits the affected jobs.
* Every job gets ``max_retries`` extra attempts; a job that exhausts
  them becomes a :class:`JobFailure` in the report -- the sweep still
  completes and returns every other result.
* ``timeout_s`` arms a per-job wall-clock alarm inside the worker
  (POSIX ``SIGALRM``; silently unavailable elsewhere), so a hung drive
  is a retryable failure, not a stuck sweep.

Determinism: each job builds its own ``Network`` from its own seed, so
results are bit-identical whether the sweep runs serially (``jobs=1``,
in-process) or on any number of workers, in any completion order.

Test hooks (used by the fault-tolerance tests only): setting
``REPRO_SWEEP_TEST_CRASH`` to ``exception`` or ``exit`` makes workers
crash on jobs whose key contains ``REPRO_SWEEP_TEST_MATCH``; with
``REPRO_SWEEP_TEST_CRASH_ONCE_DIR`` set, each job crashes only on its
first attempt (a marker file is dropped in that directory).
``REPRO_SWEEP_TEST_SLEEP_S`` delays matching jobs, for timeout tests.
"""

from __future__ import annotations

import os
import signal
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import sleep
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache
from .progress import ProgressReporter, SweepStats
from .queue import DEFAULT_LEASE_TIMEOUT_S, Claim, FileQueue, WorkQueue
from .spec import JobSpec, SweepSpec
from .summary import DriveSummary

__all__ = ["JobFailure", "SweepResult", "SweepRunner", "run_sweep",
           "run_queue_sweep", "queue_worker_main", "execute_job_inline"]


# ------------------------------------------------------------------ worker
def _apply_test_hooks(job: JobSpec) -> None:
    """Crash/delay injection for the fault-tolerance tests (no-op otherwise)."""
    crash_mode = os.environ.get("REPRO_SWEEP_TEST_CRASH")
    sleep_s = os.environ.get("REPRO_SWEEP_TEST_SLEEP_S")
    if not crash_mode and not sleep_s:
        return
    match = os.environ.get("REPRO_SWEEP_TEST_MATCH", "")
    if match not in job.key():
        return
    if sleep_s:
        sleep(float(sleep_s))
    if not crash_mode:
        return
    once_dir = os.environ.get("REPRO_SWEEP_TEST_CRASH_ONCE_DIR")
    if once_dir:
        marker = os.path.join(
            once_dir, "crashed_" + job.key().replace(":", "_").replace("=", "-")
        )
        if os.path.exists(marker):
            return  # already crashed once; let the retry succeed
        with open(marker, "w") as fh:
            fh.write(job.key())
    if crash_mode == "exit":
        os._exit(13)  # hard death: parent sees BrokenProcessPool
    raise RuntimeError(f"injected test crash for {job.key()}")


def execute_job_inline(job: JobSpec) -> DriveSummary:
    """Run one job in this process and extract its summary."""
    from ..experiments.runners import run_drive_summary

    summary = run_drive_summary(**job.run_kwargs())
    summary.job_key = job.key()
    return summary


def _execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one job, catching everything.

    Returns ``{"ok": True, "summary": ...}`` or a failure dict with the
    formatted traceback -- exceptions never propagate out of the worker,
    so one bad job cannot poison the pool (only a hard process death can,
    and the parent handles that separately).
    """
    job = JobSpec.from_dict(payload["job"])
    timeout_s = payload.get("timeout_s")
    alarm_armed = False
    try:
        if timeout_s and hasattr(signal, "SIGALRM"):
            def _on_alarm(_sig, _frame):
                raise TimeoutError(f"job exceeded {timeout_s}s wall clock")
            signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
            alarm_armed = True
        _apply_test_hooks(job)
        summary = execute_job_inline(job)
        return {"ok": True, "summary": summary.to_dict()}
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    finally:
        if alarm_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def _payload(job: JobSpec, timeout_s: Optional[float]) -> Dict[str, Any]:
    return {"job": job.canonical(), "timeout_s": timeout_s}


# ------------------------------------------------------------------ results
@dataclass
class JobFailure:
    """One job that exhausted its retry budget."""

    job: JobSpec
    attempts: int
    error: str
    traceback: str = ""


@dataclass
class SweepResult:
    """Everything a sweep produced, in the spec's expansion order."""

    jobs: List[JobSpec]
    #: Aligned with ``jobs``; None where the job ultimately failed.
    summaries: List[Optional[DriveSummary]]
    failures: List[JobFailure] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_key(self) -> Dict[str, DriveSummary]:
        return {
            job.key(): summary
            for job, summary in zip(self.jobs, self.summaries)
            if summary is not None
        }


# ------------------------------------------------------------------ runner
class SweepRunner:
    """Executes a sweep over a process pool with caching and retries.

    ``jobs=1`` runs in-process (no pool, no pickling); any higher count
    fans out over a ``ProcessPoolExecutor``.  Results are identical
    either way.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        reporter: Optional[ProgressReporter] = None,
        store=None,
        aggregator=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.reporter = reporter or ProgressReporter(verbose=False)
        #: Optional ColumnarStore / SweepAggregator fed as results land
        #: (cached and fresh alike), so figures can stream mid-sweep.
        self.store = store
        self.aggregator = aggregator

    def _publish(self, summary: DriveSummary) -> None:
        if self.store is not None:
            self.store.append(summary)
        if self.aggregator is not None:
            self.aggregator.add(summary)

    # ---------------------------------------------------------------- run
    def run(self, sweep: Union[SweepSpec, Iterable[JobSpec]]) -> SweepResult:
        jobs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
        reporter = self.reporter
        reporter.begin(len(jobs))

        # Duplicate jobs (identical grid points) simulate once.
        unique: List[JobSpec] = list(dict.fromkeys(jobs))
        summaries: Dict[JobSpec, DriveSummary] = {}
        failures: List[JobFailure] = []

        pending: List[JobSpec] = []
        for job in unique:
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                summaries[job] = cached
                self._publish(cached)
                reporter.job_done(job.key(), 0, 0.0, cached=True)
            else:
                pending.append(job)

        attempts: Dict[JobSpec, int] = {job: 0 for job in pending}
        last_error: Dict[JobSpec, Tuple[str, str]] = {}
        while pending:
            round_results = self._run_round(pending)
            retry: List[JobSpec] = []
            for job, outcome in round_results:
                attempts[job] += 1
                if outcome.get("ok"):
                    summary = DriveSummary.from_dict(outcome["summary"])
                    summaries[job] = summary
                    if self.cache is not None:
                        self.cache.put(job, summary)
                    self._publish(summary)
                    reporter.job_done(
                        job.key(), summary.events_fired,
                        summary.wall_clock_s, cached=False,
                    )
                    continue
                error = outcome.get("error", "unknown error")
                last_error[job] = (error, outcome.get("traceback", ""))
                if attempts[job] <= self.max_retries:
                    reporter.job_retry(job.key(), attempts[job], error)
                    retry.append(job)
                else:
                    reporter.job_failed(job.key(), attempts[job], error)
                    failures.append(JobFailure(
                        job=job, attempts=attempts[job],
                        error=error, traceback=last_error[job][1],
                    ))
            pending = retry

        stats = reporter.end()
        return SweepResult(
            jobs=jobs,
            summaries=[summaries.get(job) for job in jobs],
            failures=failures,
            stats=stats,
        )

    # -------------------------------------------------------------- rounds
    def _run_round(
        self, batch: Sequence[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any]]]:
        """One attempt per job in ``batch``; never raises for a job error."""
        if self.jobs == 1:
            return [(job, _execute_job(_payload(job, self.timeout_s)))
                    for job in batch]
        out: List[Tuple[JobSpec, Dict[str, Any]]] = []
        workers = min(self.jobs, len(batch))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job, _payload(job, self.timeout_s)): job
                for job in batch
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    out.append((job, future.result()))
                except BrokenProcessPool:
                    # A worker died hard; every in-flight/queued future in
                    # this pool is poisoned.  Record the attempt and let
                    # the retry loop resubmit on a fresh pool.
                    out.append((job, {
                        "ok": False,
                        "error": "worker process died (BrokenProcessPool)",
                        "traceback": "",
                    }))
                except Exception as exc:  # pragma: no cover - defensive
                    out.append((job, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    }))
        return out


def run_sweep(
    sweep: Union[SweepSpec, Iterable[JobSpec]],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    verbose: bool = False,
    store=None,
    aggregator=None,
) -> SweepResult:
    """One-call sweep execution (the CLI and benchmarks go through this)."""
    runner = SweepRunner(
        jobs=jobs, cache=cache, timeout_s=timeout_s,
        max_retries=max_retries,
        reporter=ProgressReporter(verbose=verbose),
        store=store, aggregator=aggregator,
    )
    return runner.run(sweep)


# ------------------------------------------------------------ queue backend
def _run_claim(queue: WorkQueue, claim: Claim,
               timeout_s: Optional[float]) -> None:
    """Execute one claimed job and release it (complete or fail).

    Shared by the worker process loop and the inline drain: test hooks
    and the SIGALRM wall-clock guard apply identically, so a timeout or
    injected crash behaves the same on every backend.
    """
    alarm_armed = False
    try:
        if timeout_s and hasattr(signal, "SIGALRM"):
            def _on_alarm(_sig, _frame):
                raise TimeoutError(f"job exceeded {timeout_s}s wall clock")
            signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
            alarm_armed = True
        _apply_test_hooks(claim.job)
        summary = execute_job_inline(claim.job)
        queue.complete(claim, summary.to_dict())
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        queue.fail(claim, f"{type(exc).__name__}: {exc}")
    finally:
        if alarm_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def queue_worker_main(
    root: str,
    worker_id: str,
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    max_retries: int = 2,
    timeout_s: Optional[float] = None,
    poll_s: float = 0.05,
) -> None:
    """A pull worker: claim, heartbeat, run, push, repeat until drained.

    This is the entry point a worker *process* runs (the coordinator
    spawns N of them; on a shared filesystem any number of hosts could
    run it against the same root).  A heartbeat thread renews the lease
    at a quarter of the expiry period while the drive runs; if this
    process dies mid-job, the lease goes stale and any surviving party
    requeues the job.
    """
    import threading

    queue = FileQueue(root, lease_timeout_s=lease_timeout_s,
                      max_retries=max_retries)
    while queue.jobs_remaining() > 0:
        claim = queue.claim(worker_id)
        if claim is None:
            # Everything left is leased by someone else; reclaim any
            # expired leases ourselves so a dead peer cannot stall us.
            queue.requeue_expired()
            sleep(poll_s)
            continue
        stop = threading.Event()

        def _beat(claim=claim, stop=stop):
            while not stop.wait(lease_timeout_s / 4.0):
                try:
                    queue.heartbeat(claim)
                except OSError:  # pragma: no cover - fs went away
                    return

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        try:
            _run_claim(queue, claim, timeout_s)
        finally:
            stop.set()


def run_queue_sweep(
    sweep: Union[SweepSpec, Iterable[JobSpec]],
    workers: int = 2,
    queue: Optional[WorkQueue] = None,
    queue_dir: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    store=None,
    aggregator=None,
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    max_retries: int = 2,
    timeout_s: Optional[float] = None,
    poll_s: float = 0.05,
    verbose: bool = False,
    reporter: Optional[ProgressReporter] = None,
) -> SweepResult:
    """Run a sweep through a :class:`~repro.orchestration.queue.WorkQueue`.

    The coordinator enqueues cache-missing jobs, spawns ``workers``
    pull-worker processes, and streams results as they land: each
    summary is cached, appended to ``store`` (columnar), and fed to
    ``aggregator``, whose snapshot is republished after every drain so
    figures can update mid-sweep.  Dead workers are respawned while jobs
    remain; their in-flight jobs requeue via lease expiry.

    ``workers=0`` drains the queue inline in this process (no spawning)
    -- with a :class:`~repro.orchestration.queue.MemoryQueue` that is
    the deterministic single-threaded reference the test battery
    compares every other schedule against.

    Determinism: summaries depend only on each job's spec (seeds are
    derived from grid coordinates, never from scheduling), so the
    returned :class:`SweepResult` is byte-identical to ``run_sweep``
    over the same grid, no matter the worker count or pull order.
    """
    import multiprocessing as mp

    jobs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
    reporter = reporter or ProgressReporter(verbose=verbose)
    reporter.begin(len(jobs))

    if queue is None:
        if queue_dir is None:
            raise ValueError("provide a queue or a queue_dir")
        queue = FileQueue(queue_dir, lease_timeout_s=lease_timeout_s,
                          max_retries=max_retries)

    def _publish(summary: DriveSummary) -> None:
        if store is not None:
            store.append(summary)
        if aggregator is not None:
            aggregator.add(summary)

    def _snapshot() -> None:
        if aggregator is None:
            return
        root = getattr(store, "root", None) or getattr(queue, "root", None)
        if root is not None:
            aggregator.write_snapshot(os.path.join(str(root),
                                                   "aggregate.json"))

    # Cache hits never enter the queue (same policy as the pool runner).
    unique: List[JobSpec] = list(dict.fromkeys(jobs))
    summaries: Dict[JobSpec, DriveSummary] = {}
    failures: List[JobFailure] = []
    pending: List[JobSpec] = []
    for job in unique:
        cached = cache.get(job) if cache is not None else None
        if cached is not None:
            summaries[job] = cached
            _publish(cached)
            reporter.job_done(job.key(), 0, 0.0, cached=True)
        else:
            pending.append(job)

    names = queue.enqueue(pending)
    by_name = dict(zip(names, pending))
    accounted: set = set()

    def _drain() -> None:
        for name, summary_dict in queue.drain_results():
            job = by_name.get(name)
            if job is None or name in accounted:
                continue
            accounted.add(name)
            summary = DriveSummary.from_dict(summary_dict)
            summaries[job] = summary
            if cache is not None:
                cache.put(job, summary)
            _publish(summary)
            reporter.job_done(job.key(), summary.events_fired,
                              summary.wall_clock_s, cached=False)
        failed = queue.failures() if hasattr(queue, "failures") else {}
        for name, payload in failed.items():
            if name not in by_name or name in accounted:
                continue
            accounted.add(name)
            reporter.job_failed(by_name[name].key(),
                                payload.get("attempts", max_retries + 1),
                                payload.get("error", "unknown error"))
            failures.append(JobFailure(
                job=by_name[name],
                attempts=payload.get("attempts", max_retries + 1),
                error=payload.get("error", "unknown error"),
            ))

    if workers == 0:
        # Inline drain: this process is the (only) worker.
        while queue.jobs_remaining() > 0:
            claim = queue.claim("inline-0")
            if claim is None:
                if queue.requeue_expired() == 0:
                    break  # leases held by nobody we can wait for
                continue
            _run_claim(queue, claim, timeout_s)
            _drain()
            _snapshot()
    else:
        if not isinstance(queue, FileQueue):
            raise ValueError(
                "spawned workers need a FileQueue; use workers=0 to "
                "drain an in-process queue inline"
            )
        ctx = mp.get_context()
        procs: Dict[int, Any] = {}
        spawned = 0
        # Enough headroom to survive every allowed crash-retry, bounded
        # so a pathological crash loop cannot fork forever.
        spawn_budget = workers + (max_retries + 1) * max(len(pending), 1)

        def _spawn_one() -> None:
            nonlocal spawned
            proc = ctx.Process(
                target=queue_worker_main,
                args=(str(queue.root), f"worker-{spawned}",
                      lease_timeout_s, max_retries, timeout_s, poll_s),
                daemon=True,
            )
            proc.start()
            procs[spawned] = proc
            spawned += 1

        try:
            while len(accounted) < len(pending):
                queue.requeue_expired()
                _drain()
                _snapshot()
                for wid, proc in list(procs.items()):
                    if not proc.is_alive():
                        proc.join()
                        del procs[wid]
                # Keep the worker pool topped up while claimable work
                # remains (a crashed worker's lease frees after expiry).
                want = min(workers, queue.jobs_remaining())
                while len(procs) < want and spawned < spawn_budget:
                    _spawn_one()
                if not procs and queue.jobs_remaining() > 0 \
                        and spawned >= spawn_budget:
                    break  # crash loop: report what we have
                sleep(poll_s)
        finally:
            for proc in procs.values():
                proc.join(timeout=max(lease_timeout_s, 5.0))
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
    _drain()

    # Anything still unaccounted is a hard failure (crash-loop cap hit).
    for name, job in by_name.items():
        if name not in accounted and job not in summaries:
            failures.append(JobFailure(
                job=job, attempts=max_retries + 1,
                error="job never completed (worker crash loop)",
            ))

    if store is not None:
        store.flush()
    _snapshot()
    # Requeues happened in workers/the queue, not through this reporter;
    # fold the queue's own count in before the closing line prints.
    reporter.stats.retries = int(queue.status().get("requeued", 0))
    stats = reporter.end()
    return SweepResult(
        jobs=jobs,
        summaries=[summaries.get(job) for job in jobs],
        failures=failures,
        stats=stats,
    )
