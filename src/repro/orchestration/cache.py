"""Persistent on-disk result cache.

Sweeps are embarrassingly repeatable: the same (mode, speed, traffic,
seed) grid is re-run every time a benchmark suite or CLI sweep executes.
:class:`ResultCache` stores each job's :class:`DriveSummary` as JSON
under ``.repro_cache/``, keyed by a SHA-256 of the job's canonical config
plus a *code-version salt*, so a second run skips simulation entirely.

Layout::

    .repro_cache/
        ab/ab12cd...ef.json     # two-level fan-out on the hash prefix

Invalidation
------------
The salt folds in :data:`repro.__version__` and
:data:`CACHE_SCHEMA_VERSION`; bump either (any release, or any change to
the summary schema) and every old entry misses.  ``REPRO_CACHE_DIR``
overrides the default root; ``REPRO_CACHE_DISABLE=1`` turns the cache
into a no-op.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from .. import __version__
from .spec import JobSpec
from .summary import DriveSummary

__all__ = ["CACHE_SCHEMA_VERSION", "ResultCache", "default_code_salt"]

#: Bump when the DriveSummary schema or job canonicalisation changes.
#: 2: JobSpec grew ``policy``; DriveSummary grew ``policy``.
#: 3: DriveSummary grew ``dropped_records``/``resilience``;
#:    ExperimentConfig grew ``ha``/``check_invariants``.
#: 4: JobSpec grew ``city``; DriveSummary grew ``n_vehicles``/
#:    ``n_segments``/``per_segment_mbps``.
#: 5: the distributed-sweep era: results also live in the columnar
#:    store (``store.STORE_VERSION`` tracks this number), SweepSpec grew
#:    ``fault_campaign``, and queue-backed runs share cache entries with
#:    serial ones -- old-schema entries must never be resurrected into
#:    that shared pool.
CACHE_SCHEMA_VERSION = 5

DEFAULT_CACHE_DIR = ".repro_cache"


def default_code_salt() -> str:
    """Salt folded into every cache key; changes invalidate the cache."""
    return f"repro-{__version__}-schema{CACHE_SCHEMA_VERSION}"


class ResultCache:
    """A content-addressed store of :class:`DriveSummary` objects.

    ``root=None`` builds a disabled cache: every ``get`` misses and every
    ``put`` is dropped, so call sites need no conditionals.
    """

    def __init__(self, root: Optional[os.PathLike] = DEFAULT_CACHE_DIR,
                 salt: Optional[str] = None):
        self.root = Path(root) if root is not None else None
        self.salt = salt if salt is not None else default_code_salt()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @classmethod
    def from_env(cls, root: Optional[os.PathLike] = None) -> "ResultCache":
        """Build a cache honouring ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_DISABLE``."""
        if os.environ.get("REPRO_CACHE_DISABLE"):
            return cls(root=None)
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        return cls(root=root)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------- keying
    def key_hash(self, job: JobSpec) -> str:
        payload = json.dumps(
            {"job": job.canonical(), "salt": self.salt},
            sort_keys=True, default=str,
        ).encode()
        return hashlib.sha256(payload).hexdigest()

    def path_for(self, job: JobSpec) -> Optional[Path]:
        if self.root is None:
            return None
        digest = self.key_hash(job)
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------ get/put
    def get(self, job: JobSpec) -> Optional[DriveSummary]:
        """The cached summary for ``job``, or None on a miss.

        Corrupt or unreadable entries count as misses and are removed so
        a later ``put`` can heal them.
        """
        path = self.path_for(job)
        if path is None or not path.exists():
            self.misses += 1
            return None
        try:
            with open(path) as fh:
                data = json.load(fh)
            summary = DriveSummary.from_dict(data["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, job: JobSpec, summary: DriveSummary) -> None:
        """Store ``summary`` atomically (write-to-temp then rename)."""
        path = self.path_for(job)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        record: Dict[str, Any] = {
            "salt": self.salt,
            "job": job.canonical(),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        root = self.root if self.root is not None else "<disabled>"
        return (f"<ResultCache root={root} hits={self.hits} "
                f"misses={self.misses} writes={self.writes}>")
