"""Work-queue backends for distributed sweeps.

A :class:`WorkQueue` decouples *who decides what to run* from *who runs
it*: the coordinator enqueues :class:`~repro.orchestration.spec.JobSpec`
jobs once, workers pull them one at a time under a heartbeat-renewed
lease, and push back :class:`~repro.orchestration.summary.DriveSummary`
results.  Two backends share the protocol:

* :class:`MemoryQueue` -- in-process, for tests.  Pull order is
  injectable (shuffled orders, adversarial interleavings) and leases can
  be expired synthetically, so the determinism battery can simulate any
  scheduling the file backend could produce -- without processes.
* :class:`FileQueue` -- a directory-lease backend safe for many worker
  *processes* (and, on a shared filesystem, many hosts).  Claims are
  atomic ``O_CREAT | O_EXCL`` lease-file creation; heartbeats rewrite
  the lease timestamp; any party may call :meth:`~WorkQueue.requeue_expired`
  to reclaim jobs whose worker died mid-drive.

Determinism contract
--------------------
The queue carries *specs*, never results of partial computation: each
job rebuilds its network from its own derived seed, so which worker runs
a job -- or how many times it is attempted -- cannot change its summary.
That is the invariant the test battery locks down: any pull order, any
worker count, any crash/requeue schedule produces byte-identical
summaries and cache entries to a serial run.

Retry accounting
----------------
``attempts[job]`` counts *completed* failed attempts (crash-expired
leases and worker-reported errors both count).  A job whose attempts
exceed ``max_retries`` moves to the failed set instead of requeueing;
the sweep still completes and reports it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .spec import JobSpec

__all__ = ["Claim", "MemoryQueue", "FileQueue", "WorkQueue",
           "DEFAULT_LEASE_TIMEOUT_S"]

#: A worker that goes silent for this long forfeits its lease.
DEFAULT_LEASE_TIMEOUT_S = 30.0


@dataclass
class Claim:
    """One leased job: the spec plus enough identity to release it."""

    job: JobSpec
    #: Stable per-job name inside the queue (expansion-order index + key).
    name: str
    worker_id: str
    #: 1-based attempt number this claim represents.
    attempt: int


class WorkQueue:
    """Protocol shared by the memory and file backends (see module doc)."""

    def enqueue(self, jobs: Sequence[JobSpec]) -> List[str]:
        """Add jobs; returns their queue-internal names, in order."""
        raise NotImplementedError

    def claim(self, worker_id: str) -> Optional[Claim]:
        raise NotImplementedError

    def heartbeat(self, claim: Claim) -> None:
        raise NotImplementedError

    def complete(self, claim: Claim, summary_dict: Dict[str, Any]) -> None:
        raise NotImplementedError

    def fail(self, claim: Claim, error: str) -> None:
        raise NotImplementedError

    def requeue_expired(self) -> int:
        raise NotImplementedError

    def jobs_remaining(self) -> int:
        """Jobs not yet completed or terminally failed (leased included)."""
        raise NotImplementedError

    def drain_results(self) -> List[Tuple[str, Dict[str, Any]]]:
        """New ``(job_name, summary_dict)`` results since the last drain."""
        raise NotImplementedError

    def status(self) -> Dict[str, int]:
        raise NotImplementedError


def job_name(index: int, job: JobSpec) -> str:
    """The queue-internal name of a job: order-stable and filesystem-safe."""
    safe = job.key().replace(":", "_").replace("=", "-").replace("/", "-")
    return f"{index:06d}-{safe}"[:120]


# ---------------------------------------------------------------- memory
class MemoryQueue(WorkQueue):
    """In-process backend with injectable scheduling, for the test battery.

    ``pull_order`` reorders the claimable job names before each claim --
    pass e.g. ``random.Random(seed).shuffle`` to prove summaries do not
    depend on scheduling.  ``expire_lease(name)`` simulates a worker
    crash: the lease is forfeited immediately, as if its heartbeat had
    gone stale.
    """

    def __init__(self, max_retries: int = 2,
                 pull_order: Optional[Callable[[List[str]], None]] = None):
        self.max_retries = max_retries
        self.pull_order = pull_order
        self._jobs: Dict[str, JobSpec] = {}
        self._order: List[str] = []
        self._leases: Dict[str, Claim] = {}
        self._attempts: Dict[str, int] = {}
        self._expired: set = set()
        self._results: List[Tuple[str, Dict[str, Any]]] = []
        self._drained = 0
        self.failed: Dict[str, str] = {}
        self.requeues = 0

    def enqueue(self, jobs: Sequence[JobSpec]) -> List[str]:
        names = []
        for job in jobs:
            name = job_name(len(self._order), job)
            self._jobs[name] = job
            self._order.append(name)
            names.append(name)
        return names

    def claim(self, worker_id: str) -> Optional[Claim]:
        candidates = [n for n in self._order
                      if n in self._jobs and n not in self._leases]
        if self.pull_order is not None:
            self.pull_order(candidates)
        for name in candidates:
            attempt = self._attempts.get(name, 0) + 1
            claim = Claim(job=self._jobs[name], name=name,
                          worker_id=worker_id, attempt=attempt)
            self._leases[name] = claim
            return claim
        return None

    def heartbeat(self, claim: Claim) -> None:
        self._expired.discard(claim.name)

    def expire_lease(self, name: str) -> None:
        """Test hook: the worker holding ``name`` died mid-drive."""
        if name in self._leases:
            self._expired.add(name)

    def complete(self, claim: Claim, summary_dict: Dict[str, Any]) -> None:
        self._results.append((claim.name, summary_dict))
        self._jobs.pop(claim.name, None)
        self._leases.pop(claim.name, None)
        self._expired.discard(claim.name)

    def fail(self, claim: Claim, error: str) -> None:
        self._leases.pop(claim.name, None)
        self._expired.discard(claim.name)
        self._bump_attempts(claim.name, error)

    def requeue_expired(self) -> int:
        requeued = 0
        for name in sorted(self._expired):
            self._leases.pop(name, None)
            self._bump_attempts(name, "lease expired (worker died)")
            requeued += 1
        self._expired.clear()
        self.requeues += requeued
        return requeued

    def _bump_attempts(self, name: str, error: str) -> None:
        self._attempts[name] = self._attempts.get(name, 0) + 1
        if self._attempts[name] > self.max_retries:
            self._jobs.pop(name, None)
            self.failed[name] = error

    def jobs_remaining(self) -> int:
        return len(self._jobs)

    def drain_results(self) -> List[Tuple[str, Dict[str, Any]]]:
        fresh = self._results[self._drained:]
        self._drained = len(self._results)
        return list(fresh)

    def failures(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: {"error": error, "attempts": self._attempts.get(name, 0)}
            for name, error in sorted(self.failed.items())
        }

    def status(self) -> Dict[str, int]:
        # "requeued" counts completed failed attempts (errors and expired
        # leases alike), matching the FileQueue attempts-file accounting.
        return {
            "queued": len(self._jobs) - len(self._leases),
            "leased": len(self._leases),
            "done": len(self._results),
            "failed": len(self.failed),
            "requeued": sum(self._attempts.values()),
        }


# ------------------------------------------------------------------ file
def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class FileQueue(WorkQueue):
    """Directory-lease backend: many worker processes, one shared root.

    Layout::

        <root>/
            jobs/<name>.json        # pending specs (removed on completion)
            leases/<name>.json      # {worker, ts, attempt}; ts renewed by
                                    # heartbeats, stale ts => reclaimable
            attempts/<name>         # completed failed attempts (int)
            failed/<name>.json      # spec + last error, retries exhausted
            results/<worker>.jsonl  # completed summaries, one per line

    Every mutation is either an atomic rename or an ``O_CREAT | O_EXCL``
    create, so concurrent workers on one filesystem cannot double-claim.
    Results spool into one append-only JSONL file per worker -- O(workers)
    files regardless of job count -- and a worker that dies between
    spooling a result and releasing its lease merely causes a duplicate
    run whose (deterministic) result the coordinator deduplicates.
    """

    def __init__(self, root: os.PathLike,
                 lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
                 max_retries: int = 2):
        self.root = Path(root)
        self.lease_timeout_s = lease_timeout_s
        self.max_retries = max_retries
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.attempts_dir = self.root / "attempts"
        self.failed_dir = self.root / "failed"
        self.results_dir = self.root / "results"
        for d in (self.jobs_dir, self.leases_dir, self.attempts_dir,
                  self.failed_dir, self.results_dir):
            d.mkdir(parents=True, exist_ok=True)
        #: results/*.jsonl byte offsets already drained (coordinator side).
        self._spool_offsets: Dict[str, int] = {}
        self._seen_results: set = set()

    # --------------------------------------------------------- enqueue
    def enqueue(self, jobs: Sequence[JobSpec]) -> List[str]:
        existing = len(list(self.jobs_dir.glob("*.json")))
        names = []
        for i, job in enumerate(jobs):
            name = job_name(existing + i, job)
            _atomic_write_json(self.jobs_dir / f"{name}.json",
                               {"job": job.canonical()})
            names.append(name)
        return names

    # ----------------------------------------------------------- claim
    def claim(self, worker_id: str) -> Optional[Claim]:
        for path in sorted(self.jobs_dir.glob("*.json")):
            name = path.stem
            lease_path = self.leases_dir / f"{name}.json"
            if lease_path.exists():
                continue
            try:
                fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # another worker won the race
            attempt = self._attempts_of(name) + 1
            with os.fdopen(fd, "w") as fh:
                json.dump({"worker": worker_id, "ts": time.time(),
                           "attempt": attempt}, fh)
            try:
                with open(path) as fh:
                    job = JobSpec.from_dict(json.load(fh)["job"])
            except (OSError, ValueError, KeyError):
                # Completed (or corrupted) between listing and claiming.
                lease_path.unlink(missing_ok=True)
                continue
            return Claim(job=job, name=name, worker_id=worker_id,
                         attempt=attempt)
        return None

    def heartbeat(self, claim: Claim) -> None:
        _atomic_write_json(
            self.leases_dir / f"{claim.name}.json",
            {"worker": claim.worker_id, "ts": time.time(),
             "attempt": claim.attempt},
        )

    # -------------------------------------------------------- complete
    def complete(self, claim: Claim, summary_dict: Dict[str, Any]) -> None:
        spool = self.results_dir / f"{claim.worker_id}.jsonl"
        line = json.dumps({"name": claim.name, "summary": summary_dict})
        with open(spool, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        # Order matters: the result is durable before the job disappears,
        # so a crash window can only cause a duplicate, never a loss.
        (self.jobs_dir / f"{claim.name}.json").unlink(missing_ok=True)
        (self.leases_dir / f"{claim.name}.json").unlink(missing_ok=True)

    def fail(self, claim: Claim, error: str) -> None:
        (self.leases_dir / f"{claim.name}.json").unlink(missing_ok=True)
        self._bump_attempts(claim.name, error)

    # ---------------------------------------------------------- expiry
    def requeue_expired(self) -> int:
        now = time.time()
        requeued = 0
        for lease_path in sorted(self.leases_dir.glob("*.json")):
            try:
                with open(lease_path) as fh:
                    lease = json.load(fh)
            except (OSError, ValueError):
                continue  # mid-write; next pass will see it
            if now - float(lease.get("ts", 0.0)) <= self.lease_timeout_s:
                continue
            name = lease_path.stem
            lease_path.unlink(missing_ok=True)
            if (self.jobs_dir / f"{name}.json").exists():
                # Worker died mid-drive: count the attempt, maybe retire.
                self._bump_attempts(name, "lease expired (worker died)")
                requeued += 1
            # else: worker completed, died before lease cleanup -- done.
        return requeued

    def _attempts_of(self, name: str) -> int:
        try:
            return int((self.attempts_dir / name).read_text())
        except (OSError, ValueError):
            return 0

    def _bump_attempts(self, name: str, error: str) -> None:
        attempts = self._attempts_of(name) + 1
        (self.attempts_dir / name).write_text(str(attempts))
        if attempts > self.max_retries:
            job_path = self.jobs_dir / f"{name}.json"
            try:
                with open(job_path) as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                payload = {}
            payload["error"] = error
            payload["attempts"] = attempts
            _atomic_write_json(self.failed_dir / f"{name}.json", payload)
            job_path.unlink(missing_ok=True)

    # --------------------------------------------------------- results
    def jobs_remaining(self) -> int:
        return len(list(self.jobs_dir.glob("*.json")))

    def drain_results(self) -> List[Tuple[str, Dict[str, Any]]]:
        out: List[Tuple[str, Dict[str, Any]]] = []
        for spool in sorted(self.results_dir.glob("*.jsonl")):
            offset = self._spool_offsets.get(spool.name, 0)
            with open(spool, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
            # Only consume whole lines; a torn tail (worker died
            # mid-write) stays unread until a later append completes it
            # or the requeue path reruns the job.
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._spool_offsets[spool.name] = offset + end + 1
            for line in chunk[:end].split(b"\n"):
                if not line.strip():
                    continue
                record = json.loads(line)
                name = record["name"]
                if name in self._seen_results:
                    continue  # duplicate from a crash window
                self._seen_results.add(name)
                out.append((name, record["summary"]))
        return out

    def failures(self) -> Dict[str, Dict[str, Any]]:
        out = {}
        for path in sorted(self.failed_dir.glob("*.json")):
            try:
                with open(path) as fh:
                    out[path.stem] = json.load(fh)
            except (OSError, ValueError):
                continue
        return out

    def status(self) -> Dict[str, int]:
        n_jobs = len(list(self.jobs_dir.glob("*.json")))
        n_leases = len(list(self.leases_dir.glob("*.json")))
        done = 0
        for spool in self.results_dir.glob("*.jsonl"):
            with open(spool, "rb") as fh:
                done += fh.read().count(b"\n")
        requeued = 0
        for path in self.attempts_dir.iterdir():
            try:
                requeued += int(path.read_text())
            except (OSError, ValueError):
                continue
        return {
            "queued": max(n_jobs - n_leases, 0),
            "leased": n_leases,
            "done": done,
            "failed": len(list(self.failed_dir.glob("*.json"))),
            "requeued": requeued,
        }
