"""Parallel sweep orchestration.

Every figure and table in the paper is a sweep of *independent* drives
(mode x speed x traffic x seed).  This package turns that shape into a
first-class subsystem:

* :mod:`repro.orchestration.spec` -- a declarative :class:`SweepSpec`
  that expands a parameter grid into hashable :class:`JobSpec` jobs with
  deterministic per-job seed derivation.
* :mod:`repro.orchestration.summary` -- :class:`DriveSummary`, the
  picklable, JSON-serialisable extract of a drive (throughput series,
  switch timeline, trace counters) that crosses process and cache
  boundaries instead of the live ``Network``.
* :mod:`repro.orchestration.cache` -- :class:`ResultCache`, a persistent
  on-disk store under ``.repro_cache/`` keyed by a canonical hash of the
  job config plus a code-version salt.
* :mod:`repro.orchestration.runner` -- :class:`SweepRunner`, a
  ``ProcessPoolExecutor`` fan-out with per-job timeouts, crash
  isolation, and bounded retries; failed jobs become a report, not a
  sweep abort.
* :mod:`repro.orchestration.progress` -- :class:`ProgressReporter` and
  :class:`SweepStats` (jobs done/failed/cached, wall clock, events/sec).
* :mod:`repro.orchestration.queue` -- :class:`WorkQueue` backends
  (in-process :class:`MemoryQueue` for tests, directory-lease
  :class:`FileQueue` for multi-worker runs) with heartbeat leases,
  bounded retries, and crash requeue.
* :mod:`repro.orchestration.store` -- :class:`ColumnarStore`, packed
  ``.npz`` result shards with a manifest: a 10^6-job study is queryable
  in one ``np.load`` per shard instead of 10^6 file opens.
* :mod:`repro.orchestration.aggregate` -- :class:`SweepAggregator`,
  order-independent streaming per-cell stats so figures update
  mid-sweep.
"""

from .aggregate import SweepAggregator
from .cache import CACHE_SCHEMA_VERSION, ResultCache, default_code_salt
from .progress import ProgressReporter, SweepStats
from .queue import FileQueue, MemoryQueue, WorkQueue
from .runner import (
    JobFailure,
    SweepResult,
    SweepRunner,
    queue_worker_main,
    run_queue_sweep,
    run_sweep,
)
from .spec import FaultCampaign, JobSpec, SweepSpec, coerce_campaign, derive_seed
from .store import ColumnarStore, migrate_json_cache
from .summary import DriveSummary

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "default_code_salt",
    "ProgressReporter",
    "SweepStats",
    "JobFailure",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
    "run_queue_sweep",
    "queue_worker_main",
    "JobSpec",
    "SweepSpec",
    "FaultCampaign",
    "coerce_campaign",
    "derive_seed",
    "DriveSummary",
    "WorkQueue",
    "MemoryQueue",
    "FileQueue",
    "ColumnarStore",
    "migrate_json_cache",
    "SweepAggregator",
]
