"""Columnar result store: packed ``.npz`` shards with a manifest.

The JSON result cache is one file per job -- perfect for memoising a
single drive, hopeless for *querying* a 10^5--10^6-job study (a million
``open()`` calls before the first number).  :class:`ColumnarStore` packs
summaries into ``.npz`` shards of ``shard_size`` jobs each: scalar
fields become typed columns, ragged fields (throughput bins, switch
events) become flat arrays plus offset vectors, and small dict fields
travel as JSON-string columns.  Reading any column across the whole
study costs one ``np.load`` per *shard*, not per job.

The store is lossless: :meth:`ColumnarStore.summaries` reconstructs
:class:`~repro.orchestration.summary.DriveSummary` objects whose
``to_dict()`` round-trips byte-identical to what was appended (floats
are stored as float64, i.e. exactly).

Layout::

    <root>/
        manifest.json        # schema, shard list, total job count
        shard-00000.npz      # columns for jobs [0, shard_size)
        shard-00001.npz      # ...

Appends buffer in memory and flush a full shard at a time;
:meth:`ColumnarStore.flush` closes a partial tail shard.  The manifest
is rewritten atomically after each shard lands, so a reader always sees
a consistent prefix of the sweep -- the property the streaming
aggregator relies on mid-run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from .summary import DriveSummary

__all__ = ["ColumnarStore", "migrate_json_cache", "STORE_VERSION"]

#: Bump alongside CACHE_SCHEMA_VERSION when the summary schema changes;
#: mismatched manifests are rejected on open rather than misread.
STORE_VERSION = 5

DEFAULT_SHARD_SIZE = 1024

#: DriveSummary scalar fields stored as float64 columns.
_FLOAT_COLS = (
    "speed_mph", "udp_rate_mbps", "duration_s", "measure_t0", "measure_t1",
    "throughput_mbps", "coverage_throughput_mbps", "coverage_t0",
    "coverage_t1", "bin_s", "wall_clock_s",
)
#: DriveSummary scalar fields stored as int64 columns.
_INT_COLS = (
    "seed", "switch_count", "events_fired", "dropped_records",
    "n_vehicles", "n_segments",
)
#: DriveSummary string fields stored as unicode columns.
_STR_COLS = ("job_key", "mode", "traffic", "policy")
#: Dict-valued fields stored as JSON-string columns.
_JSON_COLS = ("trace_counters", "resilience", "per_segment_mbps")

#: Sentinel for "no serving AP" in the switch-event AP column.
_NO_AP = -1


def _atomic_json(path: Path, payload: Dict[str, Any]) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _pack(summaries: List[DriveSummary]) -> Dict[str, np.ndarray]:
    """Columnise one shard's worth of summaries."""
    cols: Dict[str, np.ndarray] = {}
    for name in _FLOAT_COLS:
        cols[name] = np.array([getattr(s, name) for s in summaries],
                              dtype=np.float64)
    for name in _INT_COLS:
        cols[name] = np.array([getattr(s, name) for s in summaries],
                              dtype=np.int64)
    for name in _STR_COLS:
        cols[name] = np.array([getattr(s, name) for s in summaries],
                              dtype=np.str_)
    for name in _JSON_COLS:
        cols[name] = np.array(
            [json.dumps(getattr(s, name), sort_keys=True,
                        separators=(",", ":")) for s in summaries],
            dtype=np.str_,
        )
    # Ragged columns: flat values + (n_jobs + 1) offsets.
    bin_off = np.zeros(len(summaries) + 1, dtype=np.int64)
    sw_off = np.zeros(len(summaries) + 1, dtype=np.int64)
    for i, s in enumerate(summaries):
        bin_off[i + 1] = bin_off[i] + len(s.bin_centres)
        sw_off[i + 1] = sw_off[i] + len(s.switch_events)
    cols["bin_offsets"] = bin_off
    cols["switch_offsets"] = sw_off
    cols["bin_centres"] = np.array(
        [t for s in summaries for t in s.bin_centres], dtype=np.float64)
    cols["bin_mbps"] = np.array(
        [v for s in summaries for v in s.bin_mbps], dtype=np.float64)
    cols["switch_times"] = np.array(
        [t for s in summaries for t, _ap in s.switch_events],
        dtype=np.float64)
    cols["switch_aps"] = np.array(
        [_NO_AP if ap is None else ap
         for s in summaries for _t, ap in s.switch_events], dtype=np.int64)
    return cols


def _unpack(data, i: int) -> DriveSummary:
    """Rebuild summary ``i`` of a loaded shard."""
    kwargs: Dict[str, Any] = {}
    for name in _FLOAT_COLS:
        kwargs[name] = float(data[name][i])
    for name in _INT_COLS:
        kwargs[name] = int(data[name][i])
    for name in _STR_COLS:
        kwargs[name] = str(data[name][i])
    for name in _JSON_COLS:
        kwargs[name] = json.loads(str(data[name][i]))
    kwargs["per_segment_mbps"] = {
        int(k): float(v) for k, v in kwargs["per_segment_mbps"].items()
    }
    b0, b1 = int(data["bin_offsets"][i]), int(data["bin_offsets"][i + 1])
    kwargs["bin_centres"] = [float(t) for t in data["bin_centres"][b0:b1]]
    kwargs["bin_mbps"] = [float(v) for v in data["bin_mbps"][b0:b1]]
    s0, s1 = int(data["switch_offsets"][i]), int(data["switch_offsets"][i + 1])
    kwargs["switch_events"] = [
        (float(t), None if ap == _NO_AP else int(ap))
        for t, ap in zip(data["switch_times"][s0:s1],
                         data["switch_aps"][s0:s1])
    ]
    return DriveSummary(**kwargs)


class ColumnarStore:
    """Append-mostly columnar summary store (see module docstring)."""

    def __init__(self, root: os.PathLike,
                 shard_size: int = DEFAULT_SHARD_SIZE):
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shard_size = shard_size
        self._buffer: List[DriveSummary] = []
        #: np.load calls made so far -- the "no per-job opens" receipts.
        self.files_opened = 0
        manifest_path = self.root / "manifest.json"
        if manifest_path.exists():
            with open(manifest_path) as fh:
                self.manifest = json.load(fh)
            if self.manifest.get("store_version") != STORE_VERSION:
                raise ValueError(
                    f"store at {self.root} has store_version "
                    f"{self.manifest.get('store_version')}, "
                    f"this code expects {STORE_VERSION}"
                )
            self.shard_size = int(self.manifest["shard_size"])
        else:
            self.manifest = {
                "store_version": STORE_VERSION,
                "shard_size": shard_size,
                "shards": [],
                "total_jobs": 0,
            }

    # ----------------------------------------------------------- append
    def append(self, summary: DriveSummary) -> None:
        self._buffer.append(summary)
        if len(self._buffer) >= self.shard_size:
            self._flush_shard()

    def extend(self, summaries) -> None:
        for s in summaries:
            self.append(s)

    def flush(self) -> None:
        """Close the partial tail shard (call once at end of sweep)."""
        if self._buffer:
            self._flush_shard()

    def _flush_shard(self) -> None:
        index = len(self.manifest["shards"])
        name = f"shard-{index:05d}.npz"
        cols = _pack(self._buffer)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        os.close(fd)
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **cols)
            os.replace(tmp, self.root / name)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.manifest["shards"].append(
            {"name": name, "n_jobs": len(self._buffer)})
        self.manifest["total_jobs"] += len(self._buffer)
        _atomic_json(self.root / "manifest.json", self.manifest)
        self._buffer = []

    # ------------------------------------------------------------ read
    def __len__(self) -> int:
        return int(self.manifest["total_jobs"]) + len(self._buffer)

    def query(self, *columns: str) -> Dict[str, np.ndarray]:
        """Concatenated columns across every flushed shard.

        One ``np.load`` per shard, no per-job I/O.  Ragged columns come
        back flat; ask for the matching ``*_offsets`` column to slice
        them per job.
        """
        out: Dict[str, List[np.ndarray]] = {c: [] for c in columns}
        for shard in self.manifest["shards"]:
            with np.load(self.root / shard["name"]) as data:
                self.files_opened += 1
                for c in columns:
                    if c not in data:
                        raise KeyError(f"unknown column {c!r}")
                    out[c].append(data[c])
        return {
            c: (np.concatenate(parts) if parts
                else np.empty(0))
            for c, parts in out.items()
        }

    def summaries(self) -> Iterator[DriveSummary]:
        """Reconstruct every stored summary, shard by shard."""
        for shard in self.manifest["shards"]:
            with np.load(self.root / shard["name"]) as data:
                self.files_opened += 1
                loaded = {k: data[k] for k in data.files}
            for i in range(int(shard["n_jobs"])):
                yield _unpack(loaded, i)

    @property
    def n_shards(self) -> int:
        return len(self.manifest["shards"])


def migrate_json_cache(cache_root: os.PathLike, store: ColumnarStore,
                       limit: Optional[int] = None) -> int:
    """Pack JSON-era per-job cache entries into ``store``.

    Walks a ``.repro_cache/``-layout tree (``??/<hash>.json``), appends
    each entry's summary, and flushes.  Entries that fail to parse are
    skipped, not fatal -- the cache may legitimately hold foreign-schema
    files.  Returns the number of summaries migrated; entries are read
    in sorted path order so the resulting shard layout is deterministic.
    """
    root = Path(cache_root)
    migrated = 0
    for path in sorted(root.glob("*/*.json")):
        if limit is not None and migrated >= limit:
            break
        try:
            with open(path) as fh:
                record = json.load(fh)
            summary = DriveSummary.from_dict(record["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            continue
        store.append(summary)
        migrated += 1
    store.flush()
    return migrated
