"""Multi-client driving scenarios from Fig. 19 of the paper.

Three two-car arrangements, all at the same speed:

* **following** -- both cars in the same lane, 3 m apart;
* **parallel** -- side by side in the two lanes;
* **opposing** -- driving towards each other in opposite lanes.
"""

from __future__ import annotations

from typing import List

from .trajectory import FAR_LANE_Y_M, NEAR_LANE_Y_M, LinearTrajectory, RoadLayout

__all__ = ["following", "parallel", "opposing", "SCENARIOS"]


def following(
    road: RoadLayout, speed_mph: float = 15.0, spacing_m: float = 3.0
) -> List[LinearTrajectory]:
    """Two cars in the same lane; the second trails by ``spacing_m``."""
    lead = LinearTrajectory.drive_through(road, speed_mph, lane_y=NEAR_LANE_Y_M)
    trail = LinearTrajectory.drive_through(
        road, speed_mph, lane_y=NEAR_LANE_Y_M, offset_m=-spacing_m
    )
    return [lead, trail]


def parallel(road: RoadLayout, speed_mph: float = 15.0) -> List[LinearTrajectory]:
    """Two cars abreast, one in each lane, same direction."""
    return [
        LinearTrajectory.drive_through(road, speed_mph, lane_y=NEAR_LANE_Y_M),
        LinearTrajectory.drive_through(road, speed_mph, lane_y=FAR_LANE_Y_M),
    ]


def opposing(road: RoadLayout, speed_mph: float = 15.0) -> List[LinearTrajectory]:
    """Two cars driving towards each other in opposite lanes."""
    return [
        LinearTrajectory.drive_through(road, speed_mph, lane_y=NEAR_LANE_Y_M),
        LinearTrajectory.drive_through(
            road, speed_mph, lane_y=FAR_LANE_Y_M, reverse=True
        ),
    ]


SCENARIOS = {
    "following": following,
    "parallel": parallel,
    "opposing": opposing,
}
