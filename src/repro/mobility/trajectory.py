"""Road geometry and client trajectories.

Coordinate system (metres): ``x`` runs along the road, ``y`` across it,
``z`` is height.  The AP array sits on the third floor of the building at
``y = AP_SETBACK_M`` / ``z = AP_HEIGHT_M``, aimed down at the road, exactly
like Fig. 9 of the paper.  Cars drive along ``x`` in one of two lanes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = [
    "mph_to_mps",
    "RoadLayout",
    "Trajectory",
    "LinearTrajectory",
    "StationaryTrajectory",
    "WaypointTrajectory",
]

Vec3 = Tuple[float, float, float]

AP_SETBACK_M = -8.0
AP_HEIGHT_M = 10.0
CLIENT_HEIGHT_M = 1.5
NEAR_LANE_Y_M = 2.0
FAR_LANE_Y_M = 5.5
AIM_LANE_Y_M = (NEAR_LANE_Y_M + FAR_LANE_Y_M) / 2.0
DEFAULT_AP_SPACING_M = 7.5
DEFAULT_N_APS = 8
#: Along-road extent of the default 8-AP testbed array.
DEFAULT_SPAN_M = DEFAULT_AP_SPACING_M * (DEFAULT_N_APS - 1)
#: Drives enter this far before the first AP and exit this far past the last.
LEAD_IN_M = 15.0
#: Coverage/traffic accounting starts this far before the first AP.
COVERAGE_ENTRY_OFFSET_M = 8.0


def mph_to_mps(mph: float) -> float:
    """Miles per hour to metres per second."""
    return mph * 0.44704


@dataclass
class RoadLayout:
    """AP placement along the roadside.

    ``ap_x`` holds the along-road coordinate of each AP; use
    :meth:`uniform` for the paper's 7.5 m testbed grid or
    :meth:`two_density` for the Fig. 23 dense/sparse comparison.
    """

    ap_x: Sequence[float] = field(
        default_factory=lambda: [i * DEFAULT_AP_SPACING_M for i in range(DEFAULT_N_APS)]
    )
    ap_setback_m: float = AP_SETBACK_M
    ap_height_m: float = AP_HEIGHT_M
    aim_lane_y_m: float = AIM_LANE_Y_M

    @classmethod
    def uniform(cls, n_aps: int = DEFAULT_N_APS, spacing_m: float = DEFAULT_AP_SPACING_M) -> "RoadLayout":
        if n_aps < 1:
            raise ValueError("need at least one AP")
        return cls(ap_x=[i * spacing_m for i in range(n_aps)])

    @classmethod
    def two_density(
        cls,
        n_dense: int = 4,
        n_sparse: int = 4,
        dense_spacing_m: float = 7.5,
        sparse_spacing_m: float = 15.0,
    ) -> "RoadLayout":
        """Half the array densely packed, half sparse (Fig. 23 setup)."""
        xs: List[float] = [i * dense_spacing_m for i in range(n_dense)]
        start = xs[-1] + sparse_spacing_m if xs else 0.0
        xs.extend(start + i * sparse_spacing_m for i in range(n_sparse))
        return cls(ap_x=list(xs))

    @property
    def n_aps(self) -> int:
        return len(self.ap_x)

    def ap_position(self, index: int) -> Vec3:
        return (self.ap_x[index], self.ap_setback_m, self.ap_height_m)

    def ap_aim_point(self, index: int) -> Vec3:
        """Where AP ``index``'s parabolic antenna points: its road patch."""
        return (self.ap_x[index], self.aim_lane_y_m, CLIENT_HEIGHT_M)

    @property
    def span_m(self) -> float:
        return max(self.ap_x) - min(self.ap_x)

    def segment_bounds(self, first_ap: int, last_ap: int) -> Tuple[float, float]:
        """Along-road extent covered by APs ``first_ap..last_ap`` inclusive."""
        return self.ap_x[first_ap], self.ap_x[last_ap]


class Trajectory:
    """Interface: client position as a function of simulation time."""

    speed_mps: float = 0.0

    def position(self, t: float) -> Vec3:
        raise NotImplementedError

    def x(self, t: float) -> float:
        return self.position(t)[0]


class StationaryTrajectory(Trajectory):
    """A parked client (the 'static' point of Fig. 13)."""

    def __init__(self, position: Vec3):
        self._position = position
        self.speed_mps = 0.0

    def position(self, t: float) -> Vec3:
        return self._position


class LinearTrajectory(Trajectory):
    """Constant-velocity drive along the road.

    Parameters
    ----------
    start_x:
        Along-road position at ``start_time``.
    speed_mps:
        Signed speed; negative drives in the -x direction (opposing lane).
    lane_y:
        Across-road lane coordinate.
    """

    def __init__(
        self,
        start_x: float,
        speed_mps: float,
        lane_y: float = NEAR_LANE_Y_M,
        start_time: float = 0.0,
        z: float = CLIENT_HEIGHT_M,
    ):
        self.start_x = start_x
        self.speed_signed_mps = speed_mps
        self.speed_mps = abs(speed_mps)
        self.lane_y = lane_y
        self.start_time = start_time
        self.z = z

    def position(self, t: float) -> Vec3:
        return (
            self.start_x + self.speed_signed_mps * (t - self.start_time),
            self.lane_y,
            self.z,
        )

    @classmethod
    def drive_through(
        cls,
        road: RoadLayout,
        speed_mph: float,
        lane_y: float = NEAR_LANE_Y_M,
        lead_in_m: float = LEAD_IN_M,
        reverse: bool = False,
        start_time: float = 0.0,
        offset_m: float = 0.0,
    ) -> "LinearTrajectory":
        """A drive that enters ``lead_in_m`` before the array and crosses it.

        ``offset_m`` shifts the start along the direction of travel
        (following-car scenarios use a negative offset).
        """
        speed = mph_to_mps(speed_mph)
        if speed <= 0:
            raise ValueError("drive_through needs a positive speed; use StationaryTrajectory")
        first, last = min(road.ap_x), max(road.ap_x)
        if reverse:
            return cls(last + lead_in_m - offset_m, -speed, lane_y, start_time)
        return cls(first - lead_in_m + offset_m, speed, lane_y, start_time)

    def transit_duration(self, road: RoadLayout, lead_out_m: float = LEAD_IN_M) -> float:
        """Seconds from ``start_time`` until the car exits the array."""
        first, last = min(road.ap_x), max(road.ap_x)
        if self.speed_signed_mps > 0:
            distance = (last + lead_out_m) - self.start_x
        else:
            distance = self.start_x - (first - lead_out_m)
        return max(0.0, distance / self.speed_mps)


class WaypointTrajectory(Trajectory):
    """Piecewise-linear, constant-speed drive through a list of waypoints.

    The client departs ``waypoints[0]`` at ``start_time`` and moves at
    ``speed_mps`` along each straight leg in turn.  Before ``start_time``
    it sits at the first waypoint; after the final waypoint it parks
    there.  Zero-length legs (repeated waypoints) are tolerated: they
    take no time and are skipped during interpolation.
    """

    def __init__(
        self,
        waypoints: Sequence[Vec3],
        speed_mps: float,
        start_time: float = 0.0,
    ):
        if not waypoints:
            raise ValueError("need at least one waypoint")
        if speed_mps <= 0:
            raise ValueError("speed_mps must be positive; use StationaryTrajectory")
        self.waypoints: List[Vec3] = [tuple(w) for w in waypoints]
        self.speed_mps = float(speed_mps)
        self.start_time = start_time
        # Cumulative arrival time at each waypoint, relative to start_time.
        self._arrivals: List[float] = [0.0]
        total = 0.0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            total += _dist3(a, b) / self.speed_mps
            self._arrivals.append(total)
        self.total_duration_s = total

    @property
    def end_time(self) -> float:
        return self.start_time + self.total_duration_s

    def arrival_times(self) -> List[float]:
        """Absolute arrival time at each waypoint."""
        return [self.start_time + a for a in self._arrivals]

    def position(self, t: float) -> Vec3:
        rel = t - self.start_time
        if rel <= 0.0 or len(self.waypoints) == 1:
            return self.waypoints[0]
        if rel >= self.total_duration_s:
            return self.waypoints[-1]
        # Rightmost leg whose start time is <= rel.
        i = bisect.bisect_right(self._arrivals, rel) - 1
        i = min(i, len(self.waypoints) - 2)
        leg_t = self._arrivals[i + 1] - self._arrivals[i]
        if leg_t <= 0.0:
            return self.waypoints[i + 1]
        frac = (rel - self._arrivals[i]) / leg_t
        a, b = self.waypoints[i], self.waypoints[i + 1]
        return (
            a[0] + (b[0] - a[0]) * frac,
            a[1] + (b[1] - a[1]) * frac,
            a[2] + (b[2] - a[2]) * frac,
        )

    def heading_at(self, t: float) -> Tuple[float, float]:
        """Unit (dx, dy) direction of travel at ``t`` (zero if parked)."""
        rel = t - self.start_time
        if rel < 0.0 or rel >= self.total_duration_s or len(self.waypoints) == 1:
            return (0.0, 0.0)
        i = bisect.bisect_right(self._arrivals, rel) - 1
        i = min(i, len(self.waypoints) - 2)
        a, b = self.waypoints[i], self.waypoints[i + 1]
        dx, dy = b[0] - a[0], b[1] - a[1]
        norm = (dx * dx + dy * dy) ** 0.5
        if norm <= 0.0:
            return (0.0, 0.0)
        return (dx / norm, dy / norm)


def _dist3(a: Vec3, b: Vec3) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2 + (a[2] - b[2]) ** 2) ** 0.5
