"""Mobility substrate: road layout, trajectories, driving scenarios."""

from .scenarios import SCENARIOS, following, opposing, parallel
from .trajectory import (
    AP_HEIGHT_M,
    AP_SETBACK_M,
    CLIENT_HEIGHT_M,
    FAR_LANE_Y_M,
    NEAR_LANE_Y_M,
    LinearTrajectory,
    RoadLayout,
    StationaryTrajectory,
    Trajectory,
    mph_to_mps,
)

__all__ = [
    "SCENARIOS",
    "following",
    "opposing",
    "parallel",
    "AP_HEIGHT_M",
    "AP_SETBACK_M",
    "CLIENT_HEIGHT_M",
    "FAR_LANE_Y_M",
    "NEAR_LANE_Y_M",
    "LinearTrajectory",
    "RoadLayout",
    "StationaryTrajectory",
    "Trajectory",
    "mph_to_mps",
]
