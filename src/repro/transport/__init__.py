"""Transport substrate: TCP Reno/NewReno and UDP constant-bit-rate flows."""

from .tcp import MSS_BYTES, TcpReceiver, TcpSender
from .udp import UDP_PAYLOAD_BYTES, UdpReceiver, UdpSender

__all__ = [
    "MSS_BYTES",
    "TcpReceiver",
    "TcpSender",
    "UDP_PAYLOAD_BYTES",
    "UdpReceiver",
    "UdpSender",
]
