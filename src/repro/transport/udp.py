"""UDP constant-bit-rate flows (the iperf3 workload of the paper)."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES, Packet
from ..sim.engine import PeriodicTask, Simulator
from ..sim.trace import TraceRecorder

__all__ = ["UdpSender", "UdpReceiver", "UDP_PAYLOAD_BYTES"]

#: iperf3's default UDP payload leaves room for headers within a 1500 MTU.
UDP_PAYLOAD_BYTES = 1448
UDP_PACKET_BYTES = UDP_PAYLOAD_BYTES + UDP_HEADER_BYTES + IP_HEADER_BYTES

SendFn = Callable[[Packet], None]


class UdpSender:
    """Sends fixed-size UDP datagrams at a constant bit rate."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: SendFn,
        src: int,
        dst: int,
        flow_id: int,
        rate_mbps: float,
        payload_bytes: int = UDP_PAYLOAD_BYTES,
    ):
        if rate_mbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_mbps}")
        self.sim = sim
        self.send_fn = send_fn
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.packet_bytes = payload_bytes + UDP_HEADER_BYTES + IP_HEADER_BYTES
        self.interval_s = (self.packet_bytes * 8) / (rate_mbps * 1e6)
        self._next_seq = 0
        self._task: Optional[PeriodicTask] = None
        self.packets_sent = 0

    def start(self, until: Optional[float] = None) -> None:
        if self._task is not None:
            raise RuntimeError("UdpSender already started")
        self._emit()  # first packet now
        self._task = self.sim.call_every(self.interval_s, self._emit, until=until)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _emit(self) -> None:
        packet = Packet(
            size_bytes=self.packet_bytes,
            src=self.src,
            dst=self.dst,
            protocol="udp",
            flow_id=self.flow_id,
            seq=self._next_seq,
            created_at=self.sim.now,
        )
        self._next_seq += 1
        self.packets_sent += 1
        self.send_fn(packet)


class UdpReceiver:
    """Counts and time-stamps received datagrams; tolerates duplicates."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        trace: Optional[TraceRecorder] = None,
        on_payload: Optional[Callable[[Packet, float], None]] = None,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.trace = trace
        self.on_payload = on_payload
        self.packets_received = 0
        self.duplicates = 0
        self.bytes_received = 0
        self.max_seq_seen = -1
        self._seen: set = set()
        #: (time, seq) of every unique delivery, for throughput timeseries.
        self.deliveries: List[Tuple[float, int]] = []

    def on_packet(self, packet: Packet, t: float) -> None:
        if packet.flow_id != self.flow_id:
            return
        if packet.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(packet.seq)
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        self.max_seq_seen = max(self.max_seq_seen, packet.seq)
        self.deliveries.append((t, packet.seq))
        if self.trace is not None:
            self.trace.emit(t, "app_rx", flow=self.flow_id, seq=packet.seq,
                            bytes=packet.size_bytes)
        if self.on_payload is not None:
            self.on_payload(packet, t)

    def loss_rate(self, packets_sent: int) -> float:
        """Fraction of sent datagrams never delivered."""
        if packets_sent <= 0:
            return 0.0
        return max(0.0, 1.0 - self.packets_received / packets_sent)

    def throughput_mbps(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return self.bytes_received * 8 / duration_s / 1e6
