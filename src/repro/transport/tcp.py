"""A compact TCP Reno/NewReno implementation.

The paper's headline results are TCP downloads, and the baseline's
pathology is TCP-specific: when Enhanced 802.11r hands over late, the
burst of losses triggers retransmission timeouts whose exponential backoff
zeroes throughput (Fig. 14).  This sender reproduces that machinery:

* byte-based cwnd with slow start and AIMD congestion avoidance,
* fast retransmit / fast recovery with SACK-based hole retransmission
  (switching between picocells loses short bursts, which cumulative-ACK
  recovery alone turns into timeouts),
* delayed ACKs (every second segment; immediate on out-of-order data),
* RFC 6298 RTT estimation and RTO with exponential backoff (Karn's rule),
* go-back-N after a timeout.

It deliberately omits ECN and window-scaling negotiation; those do not
change the qualitative behaviour under study.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.packet import Packet
from ..sim.engine import EventHandle, Simulator
from ..sim.trace import TraceRecorder

__all__ = ["TcpSender", "TcpReceiver", "MSS_BYTES"]

MSS_BYTES = 1448
SEGMENT_HEADER_BYTES = 40  # IP + TCP
ACK_BYTES = 52  # IP + TCP with timestamp option

SendFn = Callable[[Packet], None]


class TcpSender:
    """Bulk-data TCP sender (server side of a download).

    Parameters
    ----------
    send_fn:
        Where outgoing segments go (the controller's downlink entry).
    app_limit_bytes:
        Total bytes the application wants to send; None = unbounded bulk.
    """

    INITIAL_WINDOW_SEGMENTS = 10
    MIN_RTO_S = 0.2
    MAX_RTO_S = 60.0
    #: Receive-window clamp (Linux default rmem scale): cwnd never grows
    #: past this, bounding the in-flight data on any path.
    MAX_WINDOW_BYTES = 2 * 1024 * 1024

    def __init__(
        self,
        sim: Simulator,
        send_fn: SendFn,
        src: int,
        dst: int,
        flow_id: int,
        app_limit_bytes: Optional[int] = None,
        trace: Optional[TraceRecorder] = None,
        mss: int = MSS_BYTES,
    ):
        self.sim = sim
        self.send_fn = send_fn
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.app_limit_bytes = app_limit_bytes
        self.trace = trace
        self.mss = mss

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = self.INITIAL_WINDOW_SEGMENTS * mss
        self.ssthresh = 1 << 30
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0

        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._rtt_sample: Optional[tuple] = None  # (end_byte, send_time)
        self._timer: Optional[EventHandle] = None
        self._started = False
        self._sacked: list = []  # (start, end) ranges the receiver holds
        self._rtx_done: set = set()  # hole starts retransmitted this episode

        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        if self._started:
            raise RuntimeError("TcpSender already started")
        self._started = True
        self._send_available()

    @property
    def flight_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def done(self) -> bool:
        return (
            self.app_limit_bytes is not None
            and self.snd_una >= self.app_limit_bytes
        )

    # ------------------------------------------------------------- send path
    def _app_available(self) -> int:
        if self.app_limit_bytes is None:
            return 1 << 40
        return max(0, self.app_limit_bytes - self.snd_nxt)

    def _send_available(self) -> None:
        while (
            self.flight_bytes + self.mss <= self.cwnd
            and self._app_available() > 0
        ):
            size = min(self.mss, self._app_available())
            self._emit(self.snd_nxt, size, is_retransmit=False)
            self.snd_nxt += size
        self._ensure_timer()

    def _emit(self, start_byte: int, size: int, is_retransmit: bool) -> None:
        packet = Packet(
            size_bytes=size + SEGMENT_HEADER_BYTES,
            src=self.src,
            dst=self.dst,
            protocol="tcp",
            flow_id=self.flow_id,
            seq=start_byte,
            created_at=self.sim.now,
            payload=("seg", start_byte, start_byte + size),
        )
        self.segments_sent += 1
        if is_retransmit:
            self.retransmissions += 1
            # Karn's rule: never sample RTT from a retransmitted segment.
            if self._rtt_sample is not None and self._rtt_sample[0] <= start_byte + size:
                self._rtt_sample = None
        elif self._rtt_sample is None:
            self._rtt_sample = (start_byte + size, self.sim.now)
        self.send_fn(packet)

    # -------------------------------------------------------------- ack path
    def on_packet(self, packet: Packet, t: float) -> None:
        """Feed an incoming (possibly duplicated) ACK to the sender."""
        if packet.flow_id != self.flow_id or packet.payload is None:
            return
        payload = packet.payload
        if payload[0] != "ack":
            return
        ack_byte = payload[1]
        sacks = payload[2] if len(payload) > 2 else ()
        for start, end in sacks:
            if start > self.snd_una:
                self._sacked.append((start, end))
        if ack_byte > self.snd_una:
            self._on_new_ack(ack_byte, t)
        elif ack_byte == self.snd_una and self.flight_bytes > 0:
            self._on_dupack(t)
        self._send_available()

    def _is_sacked(self, start: int, end: int) -> bool:
        return any(s <= start and end <= e for s, e in self._sacked)

    def _retransmit_holes(self, t: float) -> None:
        """SACK recovery: resend every unsacked segment below the highest
        SACKed byte, at most once per recovery episode."""
        if not self._sacked:
            if self.snd_una not in self._rtx_done:
                self._rtx_done.add(self.snd_una)
                self._emit(self.snd_una, min(self.mss, self.snd_nxt - self.snd_una),
                           is_retransmit=True)
            return
        highest = max(e for _s, e in self._sacked)
        start = self.snd_una
        budget = 8  # pace hole retransmissions per ACK
        while start < highest and budget > 0:
            size = min(self.mss, self.snd_nxt - start)
            if size <= 0:
                break
            if start not in self._rtx_done and not self._is_sacked(start, start + size):
                self._rtx_done.add(start)
                self._emit(start, size, is_retransmit=True)
                budget -= 1
            start += size

    def _on_new_ack(self, ack_byte: int, t: float) -> None:
        acked = ack_byte - self.snd_una
        self.snd_una = ack_byte
        self.dupacks = 0
        self._sacked = [(s, e) for s, e in self._sacked if e > ack_byte]
        self._rtx_done = {s for s in self._rtx_done if s >= ack_byte}
        if self._rtt_sample is not None and ack_byte >= self._rtt_sample[0]:
            self._update_rtt(t - self._rtt_sample[1])
            self._rtt_sample = None
        if self.in_recovery:
            if ack_byte >= self.recover:
                self.in_recovery = False
                self.cwnd = self.ssthresh
                self._sacked.clear()
                self._rtx_done.clear()
            else:
                # Partial ACK: fill the next holes, stay in recovery.
                self._retransmit_holes(t)
                self.cwnd = max(self.mss, self.cwnd - acked + self.mss)
        elif self.cwnd < self.ssthresh:
            self.cwnd += acked  # slow start
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)  # AIMD
        self.cwnd = min(self.cwnd, self.MAX_WINDOW_BYTES)
        self._restart_timer()
        if self.done:
            self._cancel_timer()
            if self.trace is not None:
                self.trace.emit(t, "tcp_done", flow=self.flow_id, bytes=self.snd_una)

    def _on_dupack(self, t: float) -> None:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += self.mss  # window inflation per extra dupack
            self._retransmit_holes(t)
        elif self.dupacks == 3:
            self.ssthresh = max(self.flight_bytes // 2, 2 * self.mss)
            self.in_recovery = True
            self.recover = self.snd_nxt
            self.cwnd = self.ssthresh + 3 * self.mss
            self._rtx_done.clear()
            self._retransmit_holes(t)
            if self.trace is not None:
                self.trace.emit(t, "tcp_fast_retransmit", flow=self.flow_id)

    # ----------------------------------------------------------------- timer
    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            self.MAX_RTO_S,
            max(self.MIN_RTO_S, self.srtt + 4.0 * self.rttvar),
        )

    def _ensure_timer(self) -> None:
        if self._timer is None and self.flight_bytes > 0:
            self._timer = self.sim.schedule(self.rto, self._on_timeout)

    def _restart_timer(self) -> None:
        self._cancel_timer()
        self._ensure_timer()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.flight_bytes == 0:
            return
        self.timeouts += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "tcp_timeout", flow=self.flow_id,
                            rto=self.rto)
        self.ssthresh = max(self.flight_bytes // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.snd_nxt = self.snd_una  # go-back-N
        self.dupacks = 0
        self.in_recovery = False
        self._rtt_sample = None
        self.rto = min(self.MAX_RTO_S, self.rto * 2.0)  # exponential backoff
        if self.app_limit_bytes is not None:
            remaining = self.app_limit_bytes - self.snd_una
        else:
            remaining = self.mss
        size = max(1, min(self.mss, remaining))
        self._emit(self.snd_una, size, is_retransmit=True)
        self.snd_nxt = self.snd_una + size
        self._ensure_timer()


class TcpReceiver:
    """TCP receiver: in-order reassembly and cumulative ACK generation."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: SendFn,
        src: int,
        dst: int,
        flow_id: int,
        trace: Optional[TraceRecorder] = None,
        on_bytes: Optional[Callable[[int, float], None]] = None,
    ):
        self.sim = sim
        self.send_fn = send_fn
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.trace = trace
        self.on_bytes = on_bytes  # called with (rcv_nxt, t) when data advances
        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}  # start -> end
        self.segments_received = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self._unacked_segments = 0
        self._delack_timer = None
        self.delayed_ack_segments = 2
        self.delayed_ack_timeout_s = 0.040
        #: (time, contiguous bytes) trace for throughput computation.
        self.progress: list = []

    def on_packet(self, packet: Packet, t: float) -> None:
        if packet.flow_id != self.flow_id or packet.payload is None:
            return
        kind = packet.payload[0]
        if kind != "seg":
            return
        _kind, start, end = packet.payload
        self.segments_received += 1
        advanced = False
        if end <= self.rcv_nxt:
            self.duplicate_segments += 1
        elif start <= self.rcv_nxt:
            self.rcv_nxt = end
            advanced = True
            # Merge any out-of-order runs now contiguous.
            while self._ooo:
                nxt = [s for s in self._ooo if s <= self.rcv_nxt]
                if not nxt:
                    break
                for s in nxt:
                    self.rcv_nxt = max(self.rcv_nxt, self._ooo.pop(s))
        else:
            prev_end = self._ooo.get(start)
            if prev_end is None or prev_end < end:
                self._ooo[start] = end
        if advanced:
            self.progress.append((t, self.rcv_nxt))
            if self.trace is not None:
                self.trace.emit(t, "app_rx", flow=self.flow_id, seq=start,
                                bytes=end - start)
            if self.on_bytes is not None:
                self.on_bytes(self.rcv_nxt, t)
        # Delayed ACKs: every second in-order segment, or immediately on
        # out-of-order/duplicate data (dupacks must not be delayed).
        self._unacked_segments += 1
        if (
            self._ooo
            or not advanced
            or self._unacked_segments >= self.delayed_ack_segments
        ):
            self._send_ack()
        elif self._delack_timer is None:
            self._delack_timer = self.sim.schedule(
                self.delayed_ack_timeout_s, self._send_ack
            )

    def _sack_blocks(self, max_blocks: int = 4) -> tuple:
        """Merged out-of-order ranges, newest-style SACK blocks."""
        if not self._ooo:
            return ()
        spans = sorted(self._ooo.items())
        merged = [list(spans[0])]
        for start, end in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return tuple(tuple(span) for span in merged[:max_blocks])

    def _send_ack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._unacked_segments = 0
        ack = Packet(
            size_bytes=ACK_BYTES,
            src=self.src,
            dst=self.dst,
            protocol="tcp",
            flow_id=self.flow_id,
            seq=self.rcv_nxt,
            created_at=self.sim.now,
            payload=("ack", self.rcv_nxt, self._sack_blocks()),
        )
        self.acks_sent += 1
        self.send_fn(ack)

    def throughput_mbps(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return self.rcv_nxt * 8 / duration_s / 1e6
