"""Video streaming over TCP with rebuffer accounting (Table 4).

The paper streams a 720p HD video from a local server via FTP/VLC with a
1 500 ms pre-buffer, and reports the *rebuffer ratio*: the fraction of the
transit time the player spends stalled.  :class:`VideoStreamingSession`
models the player side: bytes arrive through a TCP flow, playback consumes
them at the video bitrate once the pre-buffer fills, and stalls are
accumulated whenever the buffer runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Simulator

__all__ = ["VideoParams", "VideoStreamingSession"]


@dataclass
class VideoParams:
    """Playback model parameters.

    ``bitrate_mbps`` is the steady-state media rate of the 1280x720
    stream (4 Mbit/s is a standard 720p30 encode);
    ``prebuffer_s`` matches the paper's 1 500 ms setting.
    """

    bitrate_mbps: float = 4.0
    prebuffer_s: float = 1.5
    #: Playback resumes after a stall once this much media is buffered.
    rebuffer_restart_s: float = 1.0


class VideoStreamingSession:
    """Client-side playback buffer fed by a transport flow.

    Drive it by calling :meth:`on_bytes` from the TCP receiver's
    ``on_bytes`` hook; playback state advances lazily on every call plus
    via fine-grained polling of the simulator clock at :meth:`finish`.
    """

    def __init__(self, sim: Simulator, params: Optional[VideoParams] = None):
        self.sim = sim
        self.params = params or VideoParams()
        self._bytes_per_s = self.params.bitrate_mbps * 1e6 / 8.0
        self._t0 = sim.now  # session start, for never-started accounting
        self.received_bytes = 0
        self.played_s = 0.0
        self.stalled_s = 0.0
        self.stall_events = 0
        self._state = "prebuffering"  # -> playing | stalled | done
        self._last_update: Optional[float] = None
        self.stall_log: List[Tuple[float, float]] = []  # (start, duration)
        self._stall_started: Optional[float] = None

    # ------------------------------------------------------------------ feed
    def on_bytes(self, total_bytes: int, t: float) -> None:
        """TCP receiver progress callback (cumulative in-order bytes)."""
        self._advance(t)
        self.received_bytes = total_bytes
        self._maybe_transition(t)

    # ------------------------------------------------------------- mechanics
    def buffered_media_s(self) -> float:
        """Seconds of media in the buffer right now."""
        return self.received_bytes / self._bytes_per_s - self.played_s

    def _advance(self, t: float) -> None:
        """Consume buffered media between the last update and ``t``."""
        if self._last_update is None:
            self._last_update = t
            return
        dt = max(0.0, t - self._last_update)
        self._last_update = t
        if self._state != "playing" or dt == 0.0:
            if self._state == "stalled":
                pass  # stall time accounted on resume/finish
            return
        playable = self.buffered_media_s()
        if dt <= playable:
            self.played_s += dt
        else:
            # Buffer ran dry partway through the interval: stall begins.
            self.played_s += max(0.0, playable)
            stall_start = t - (dt - max(0.0, playable))
            self._begin_stall(stall_start)

    def _begin_stall(self, t: float) -> None:
        if self._state == "stalled":
            return
        self._state = "stalled"
        self._stall_started = t
        self.stall_events += 1

    def _end_stall(self, t: float) -> None:
        assert self._stall_started is not None
        duration = max(0.0, t - self._stall_started)
        self.stalled_s += duration
        self.stall_log.append((self._stall_started, duration))
        self._stall_started = None
        self._state = "playing"

    def _maybe_transition(self, t: float) -> None:
        if self._state == "prebuffering":
            if self.buffered_media_s() >= self.params.prebuffer_s:
                self._state = "playing"
        elif self._state == "stalled":
            if self.buffered_media_s() >= self.params.rebuffer_restart_s:
                self._end_stall(t)

    # ---------------------------------------------------------------- report
    def finish(self, t: float) -> None:
        """Close the session at time ``t`` (end of the transit)."""
        self._advance(t)
        if self._state == "stalled" and self._stall_started is not None:
            duration = max(0.0, t - self._stall_started)
            self.stalled_s += duration
            self.stall_log.append((self._stall_started, duration))
            self._stall_started = None
        elif self._state == "prebuffering":
            # The stream never (re)started: everything beyond the nominal
            # pre-buffer wait was spent staring at the spinner.  Without
            # this, a connection that dies before the pre-buffer fills
            # would score a perfect 0 -- the worst experience of all.
            waited = max(0.0, t - self._t0 - self.params.prebuffer_s)
            if waited > 0.0:
                self.stalled_s += waited
                self.stall_events += 1
                self.stall_log.append((self._t0 + self.params.prebuffer_s, waited))
        self._state = "done"

    def rebuffer_ratio(self, transit_duration_s: float) -> float:
        """Stalled time over the transit duration (the paper's metric)."""
        if transit_duration_s <= 0:
            return 0.0
        return min(1.0, self.stalled_s / transit_duration_s)
