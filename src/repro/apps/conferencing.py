"""Bidirectional video conferencing over UDP (Fig. 24).

The paper runs Skype / Google Hangouts between a car and a conference
room and records the downlink frames-per-second once per second.  The
model sends camera frames as bursts of UDP datagrams in both directions;
a frame counts as rendered in the second it completes (all of its packets
delivered within a latency budget).  Hangouts achieves higher fps than
Skype in the paper because it drops image resolution -- modelled here as
a smaller frame size at a higher nominal rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES, Packet
from ..sim.engine import Simulator

__all__ = ["ConferencingParams", "SKYPE_PROFILE", "HANGOUTS_PROFILE", "ConferencingSender", "ConferencingReceiver"]


@dataclass
class ConferencingParams:
    """One direction of a video call."""

    name: str = "skype"
    frame_rate_fps: float = 30.0
    frame_bytes: int = 6000  # ~1.5 Mbit/s at 30 fps
    packet_payload_bytes: int = 1200
    #: A frame missing packets after this long is discarded, not rendered.
    frame_deadline_s: float = 0.45


SKYPE_PROFILE = ConferencingParams(name="skype", frame_rate_fps=30.0, frame_bytes=6000)
#: Hangouts reduces per-frame resolution and pushes more frames.
HANGOUTS_PROFILE = ConferencingParams(name="hangouts", frame_rate_fps=60.0, frame_bytes=2200)


class ConferencingSender:
    """Emits camera frames as bursts of UDP datagrams."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[Packet], None],
        src: int,
        dst: int,
        flow_id: int,
        params: Optional[ConferencingParams] = None,
    ):
        self.sim = sim
        self.send_fn = send_fn
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.params = params or SKYPE_PROFILE
        self._frame_no = 0
        self._running = False
        self.packets_per_frame = max(
            1, math.ceil(self.params.frame_bytes / self.params.packet_payload_bytes)
        )
        self.frames_sent = 0

    def start(self) -> None:
        if self._running:
            raise RuntimeError("ConferencingSender already started")
        self._running = True
        self._emit_frame()

    def stop(self) -> None:
        self._running = False

    def _emit_frame(self) -> None:
        if not self._running:
            return
        frame_no = self._frame_no
        self._frame_no += 1
        self.frames_sent += 1
        remaining = self.params.frame_bytes
        for i in range(self.packets_per_frame):
            payload = min(self.params.packet_payload_bytes, remaining)
            remaining -= payload
            packet = Packet(
                size_bytes=payload + UDP_HEADER_BYTES + IP_HEADER_BYTES,
                src=self.src,
                dst=self.dst,
                protocol="udp",
                flow_id=self.flow_id,
                seq=frame_no * self.packets_per_frame + i,
                created_at=self.sim.now,
                payload=("frame", frame_no, i, self.packets_per_frame),
            )
            self.send_fn(packet)
        self.sim.schedule(1.0 / self.params.frame_rate_fps, self._emit_frame)


class ConferencingReceiver:
    """Reassembles frames and records rendered fps per wall-clock second."""

    def __init__(self, sim: Simulator, flow_id: int, params: Optional[ConferencingParams] = None):
        self.sim = sim
        self.flow_id = flow_id
        self.params = params or SKYPE_PROFILE
        self._partial: Dict[int, Dict] = {}  # frame_no -> {seen, total, first_t}
        self.frames_rendered = 0
        self.frames_expired = 0
        #: second index -> frames completed in that second (the scrot log).
        self.fps_log: Dict[int, int] = {}

    def on_packet(self, packet: Packet, t: float) -> None:
        if packet.flow_id != self.flow_id or not packet.payload:
            return
        kind, frame_no, index, total = packet.payload
        if kind != "frame":
            return
        state = self._partial.get(frame_no)
        if state is None:
            state = {"seen": set(), "total": total, "first_t": t}
            self._partial[frame_no] = state
        if t - state["first_t"] > self.params.frame_deadline_s:
            # Too late: the frame was skipped by the codec.
            if frame_no in self._partial:
                del self._partial[frame_no]
                self.frames_expired += 1
            return
        state["seen"].add(index)
        if len(state["seen"]) >= state["total"]:
            del self._partial[frame_no]
            self.frames_rendered += 1
            second = int(t)
            self.fps_log[second] = self.fps_log.get(second, 0) + 1

    def fps_samples(self, t0: float, t1: float) -> List[int]:
        """Per-second fps readings over [t0, t1) -- the Fig. 24 CDF input."""
        return [
            self.fps_log.get(second, 0)
            for second in range(int(math.ceil(t0)), int(t1))
        ]
