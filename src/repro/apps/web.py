"""Web page loading over TCP (Table 5).

The paper measures the time to fully load the eBay homepage (2.1 MB,
cached on the local server) while driving past the AP array, reporting
"infinity" when the page never completes within the transit.  The model
is a finite TCP download; HTTP request overhead is folded into a small
initial handshake delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Simulator
from ..transport.tcp import TcpReceiver, TcpSender

__all__ = ["WebPageParams", "WebPageLoad"]


@dataclass
class WebPageParams:
    """Page-load workload parameters (defaults match the paper's page)."""

    page_bytes: int = 2_100_000
    #: Browser startup + request round trip before bytes flow.
    request_overhead_s: float = 0.15


class WebPageLoad:
    """One page fetch: wires a finite TCP transfer and records completion.

    Construct, then call :meth:`start`; after the simulation ends,
    :attr:`load_time_s` is the page load time or ``math.inf`` when the
    transfer never finished (the paper's infinity entries).
    """

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        receiver: TcpReceiver,
        params: Optional[WebPageParams] = None,
    ):
        if sender.app_limit_bytes is None:
            raise ValueError("web page load needs a finite TCP transfer")
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.params = params or WebPageParams()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        receiver.on_bytes = self._on_bytes

    @classmethod
    def page_limit(cls, params: Optional[WebPageParams] = None) -> int:
        return (params or WebPageParams()).page_bytes

    def start(self) -> None:
        self.started_at = self.sim.now
        self.sim.schedule(self.params.request_overhead_s, self.sender.start)

    def _on_bytes(self, total_bytes: int, t: float) -> None:
        if self.completed_at is None and total_bytes >= self.params.page_bytes:
            self.completed_at = t

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def load_time_s(self) -> float:
        """Seconds from start to full page, or inf when never completed."""
        if self.started_at is None:
            raise RuntimeError("page load never started")
        if self.completed_at is None:
            return math.inf
        return self.completed_at - self.started_at
