"""Application workloads: video streaming, conferencing, web browsing."""

from .conferencing import (
    HANGOUTS_PROFILE,
    SKYPE_PROFILE,
    ConferencingParams,
    ConferencingReceiver,
    ConferencingSender,
)
from .video import VideoParams, VideoStreamingSession
from .web import WebPageLoad, WebPageParams

__all__ = [
    "HANGOUTS_PROFILE",
    "SKYPE_PROFILE",
    "ConferencingParams",
    "ConferencingReceiver",
    "ConferencingSender",
    "VideoParams",
    "VideoStreamingSession",
    "WebPageLoad",
    "WebPageParams",
]
