"""The WGTT controller (control plane of Fig. 5).

One machine on the Ethernet backhaul that

* consumes per-frame CSI reports from every AP, feeds them to the
  client's :class:`~repro.policies.HandoverPolicy`, and asks it which AP
  should serve (the default policy is the paper's max-median windowed
  ESNR selection);
* forwards every downlink packet, tagged with its 12-bit index number,
  to every AP within communication range of the client;
* runs the stop/start/ack switching protocol with the 30 ms
  retransmission timeout (one outstanding switch per client);
* de-duplicates uplink packets tunneled up by the APs and hands them to
  the server-side flow endpoints.

The controller owns every *protocol* concern -- the switch handshake,
the time hysteresis bounding the switch rate, and AP-health eviction --
so those guarantees hold for every policy in the zoo, not just the
default one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from ..net.ethernet import Backhaul
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .checkpoint import ControllerCheckpoint
from .cyclic_queue import INDEX_MODULO, ring_distance
from .dedup import Deduplicator
from .messages import (
    ApHello,
    CheckpointMsg,
    ControllerHello,
    CsiReport,
    DegradedReport,
    FlushClient,
    Heartbeat,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policies -> core)
    from ..policies.base import HandoverPolicy, PolicyContext

__all__ = ["ControllerParams", "WgttController", "ClientState"]

UplinkHandler = Callable[[Packet, float], None]

#: Shared empty exclusion set (avoids a per-evaluation allocation).
_NO_EXCLUDE: frozenset = frozenset()


@dataclass
class ControllerParams:
    """Control-plane tuning knobs.

    ``selection_window_s`` is W of section 3.1.1 (Fig. 21 finds 10 ms
    optimal); ``hysteresis_s`` is the switching time hysteresis swept in
    Fig. 22; ``ack_timeout_s`` is the stop/start retransmission timeout of
    section 3.1.2 (30 ms in the paper).
    """

    selection_window_s: float = 0.010
    hysteresis_s: float = 0.050
    ack_timeout_s: float = 0.030
    #: Minimum window occupancy before an AP is a switch candidate.  The
    #: effective default for drives is 1 -- a single decoded frame makes
    #: an AP electable, which matters at picocell edges where windows are
    #: sparse -- and :class:`~repro.core.ap_selection.ApSelector` uses
    #: the same default so standalone selectors match controller drives.
    min_readings: int = 1
    selection_metric: str = "median"
    max_switch_attempts: int = 10
    #: AP health tracking (fault hardening, strictly opt-in): an AP whose
    #: last control-plane message (CSI report, switch ack, ...) is older
    #: than this is evicted from candidate sets, and the switch protocol
    #: routes around it.  ``None`` (the default) disables health tracking
    #: entirely, leaving the paper's behaviour untouched.
    ap_liveness_timeout_s: Optional[float] = None


@dataclass
class ClientState:
    policy: "HandoverPolicy"
    next_index: int = 0
    serving_ap: Optional[int] = None
    last_switch_time: float = -1e9
    #: (old_ap, new_ap, attempt, timer) while a switch is outstanding.
    switching: Optional[tuple] = None
    switch_count: int = 0
    no_coverage_drops: int = 0
    downlink_packets: int = 0
    #: True between a failover/cold-restart restore and the arrival of the
    #: serving AP's :class:`~repro.core.messages.DegradedReport` -- the
    #: restored serving/index state is a possibly-stale checkpoint view
    #: until the live AP confirms it.
    awaiting_reconcile: bool = False


class WgttController:
    """Central WGTT controller."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: Backhaul,
        node_id: int,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        params: Optional[ControllerParams] = None,
        policy_factory: Optional[Callable[[], "HandoverPolicy"]] = None,
    ):
        self.sim = sim
        self.backhaul = backhaul
        self.node_id = node_id
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.params = params or ControllerParams()
        if policy_factory is None:
            # Imported here (not at module scope) to break the cycle:
            # repro.policies depends on repro.core for the ESNR tracker.
            from ..policies.wgtt import WgttMaxMedianPolicy

            policy_factory = WgttMaxMedianPolicy
        self.policy_factory = policy_factory
        self.clients: Dict[int, ClientState] = {}
        self.ap_ids: List[int] = []
        self.dedup = Deduplicator()
        self._uplink_handlers: Dict[int, UplinkHandler] = {}
        self._uplink_default: Optional[UplinkHandler] = None
        #: ap_id -> time of its last control-plane message (health signal).
        self.ap_last_seen: Dict[int, float] = {}
        #: APs currently evicted by the liveness timeout.
        self._evicted: set = set()
        #: False while crashed by fault injection (HA layer); every data
        #: and control path is gated on it, so a dead controller is inert
        #: without unscheduling its timers.
        self.alive = True
        #: Controller incarnation.  A warm-standby takeover or a cold
        #: restart bumps it; the invariant monitors key index-monotonicity
        #: checks on it, and heartbeats carry it so APs can tell a new
        #: controller from a recovered one.
        self.epoch = 0
        #: HA knobs (a :class:`~repro.core.ha.HaParams`); None keeps every
        #: HA code path unreachable -- the default drives never see it.
        self.ha = None
        #: The :class:`~repro.core.ha.ControllerCluster` when HA built a
        #: warm standby (mirrors uplink-handler registrations).
        self.cluster = None
        #: Armed :class:`~repro.invariants.InvariantSuite` (or None).
        self.invariants = None
        #: client -> PolicyContext, retained so a restore after a cold
        #: restart can rebind trajectory knowledge to fresh policies.
        self._contexts: Dict[int, "PolicyContext"] = {}
        self._standby_id: Optional[int] = None
        self._hb_seq = 0
        self._hb_task = None
        #: Downlink is held until this time after a takeover/restart while
        #: DegradedReports reconcile serving/index state.
        self._reconcile_until = -1.0
        self._reconcile_timer = None
        #: client -> {ap -> DegradedReport}: competing serving claims seen
        #: since the last (re)start; the highest-ESNR claimant wins.
        self._degraded_claims: Dict[int, Dict[int, DegradedReport]] = {}
        # HA bookkeeping surfaced through DriveSummary.resilience.
        self.heartbeats_sent = 0
        self.checkpoints_written = 0
        self.reconciled_clients = 0
        self.reconcile_flushes = 0
        self.downlink_dropped_dead = 0
        self.downlink_dropped_reconcile = 0
        #: True when the subclass hook is the base no-op, letting the
        #: downlink fan-out skip ~5 method calls per packet.
        self._pre_feed_noop = type(self)._pre_feed is WgttController._pre_feed
        backhaul.register(node_id, self.on_backhaul)

    # ----------------------------------------------------------------- setup
    def add_ap(self, ap_id: int) -> None:
        if ap_id not in self.ap_ids:
            self.ap_ids.append(ap_id)
            self.ap_last_seen[ap_id] = self.sim.now

    # -------------------------------------------------------------- health
    def ap_is_live(self, ap_id: int, now: float) -> bool:
        """False only when health tracking is on and the AP has gone quiet."""
        timeout = self.params.ap_liveness_timeout_s
        if timeout is None:
            return True
        last = self.ap_last_seen.get(ap_id)
        if last is None:
            return True  # unknown APs are out of scope for health tracking
        return now - last <= timeout

    def _sweep_dead_aps(self, now: float) -> None:
        """Evict newly-dead APs from every client's candidate windows."""
        timeout = self.params.ap_liveness_timeout_s
        if timeout is None:
            return
        for ap_id, last in self.ap_last_seen.items():
            if now - last > timeout:
                if ap_id not in self._evicted:
                    self._evicted.add(ap_id)
                    self.trace.emit(now, "ap_evicted", ap=ap_id)
                    for state in self.clients.values():
                        state.policy.drop_ap(ap_id)
            elif ap_id in self._evicted:
                self._evicted.discard(ap_id)
                self.trace.emit(now, "ap_readmitted", ap=ap_id)

    def add_client(
        self, client_id: int, context: Optional["PolicyContext"] = None
    ) -> ClientState:
        """Get-or-create the client's state (and its policy instance).

        ``context`` hands the policy infrastructure knowledge (AP
        positions, the client's trajectory); it may arrive on a later
        call than the one that created the state -- clients are created
        lazily from whichever of CSI/downlink/builder touches them first.
        """
        state = self.clients.get(client_id)
        if state is None:
            policy = self.policy_factory()
            policy.configure(
                window_s=self.params.selection_window_s,
                min_readings=self.params.min_readings,
                metric=self.params.selection_metric,
            )
            state = ClientState(policy=policy)
            self.clients[client_id] = state
        if context is not None:
            state.policy.bind(context)
            self._contexts[client_id] = context
        return state

    def register_uplink_handler(self, flow_id: int, handler: UplinkHandler) -> None:
        self._uplink_handlers[flow_id] = handler
        if self.cluster is not None:
            peer = self.cluster.other(self)
            if peer is not None:
                peer._uplink_handlers[flow_id] = handler

    def set_default_uplink_handler(self, handler: UplinkHandler) -> None:
        self._uplink_default = handler
        if self.cluster is not None:
            peer = self.cluster.other(self)
            if peer is not None:
                peer._uplink_default = handler

    # -------------------------------------------------------------- downlink
    def send_downlink(self, packet: Packet) -> None:
        """Entry point for server traffic destined to a client.

        Assigns the 12-bit index and multicasts to all in-range APs.  With
        no AP in range (client outside coverage) the packet is dropped,
        exactly as a real out-of-coverage client loses traffic.
        """
        if not self.alive:
            self.downlink_dropped_dead += 1
            return
        now = self.sim.now
        if now < self._reconcile_until:
            # Post-takeover reconciliation: index state may still be a
            # stale checkpoint view, so assigning now risks colliding
            # with ring slots the APs already hold.  UDP loses a few
            # packets; TCP retransmits.
            self.downlink_dropped_reconcile += 1
            return
        client = packet.dst
        state = self.add_client(client)
        self._sweep_dead_aps(now)
        targets = state.policy.in_range_aps(now)
        if self._evicted:
            targets = [ap for ap in targets if ap not in self._evicted]
        # The serving AP (and the AP a pending switch is moving to) must
        # receive every packet even through a momentary CSI gap, or its
        # ring develops holes.  Evicted APs are excluded: their rings are
        # unreachable anyway, and feeding them would only mask the outage.
        if (state.serving_ap is not None and state.serving_ap not in targets
                and state.serving_ap not in self._evicted):
            targets.append(state.serving_ap)
        if (state.switching is not None and state.switching[1] not in targets
                and state.switching[1] not in self._evicted):
            targets.append(state.switching[1])
        if not targets:
            state.no_coverage_drops += 1
            self.trace.emit(now, "dl_no_coverage", client=client)
            return
        packet.wgtt_index = state.next_index
        state.next_index = (state.next_index + 1) % INDEX_MODULO
        state.downlink_packets += 1
        if self.invariants is not None:
            self.invariants.on_index_assigned(
                now, client, self.epoch, packet.wgtt_index
            )
        pre_feed = None if self._pre_feed_noop else self._pre_feed
        send = self.backhaul.send
        node_id = self.node_id
        for ap_id in targets:
            if pre_feed is not None:
                pre_feed(client, state, ap_id)
            send(node_id, ap_id, packet.tunnel_clone(node_id, ap_id))

    def _pre_feed(self, client: int, state, ap_id: int) -> None:
        """Hook: about to enqueue a downlink clone for ``ap_id``.

        The base controller does nothing.  Subclasses whose clients can
        leave and re-enter an AP's coverage (city grids) use this to
        flush a ring that has been starved long enough for its contents
        to alias into the live index window.
        """

    # ---------------------------------------------------------------- uplink
    def on_backhaul(self, packet: Packet, src: int) -> None:
        if not self.alive:
            return
        if packet.protocol == "ctrl":
            self._handle_ctrl(packet.payload, src)
            return
        # Tunneled uplink data from an AP.
        packet.decapsulate()
        if not self.dedup.accept(packet):
            return
        t = self.sim.now
        self.trace.emit(t, "ul_delivered", client=packet.src, flow=packet.flow_id,
                        seq=packet.seq, via_ap=src, bytes=packet.size_bytes)
        handler = self._uplink_handlers.get(packet.flow_id, self._uplink_default)
        if handler is not None:
            handler(packet, t)

    # --------------------------------------------------------- control plane
    def _handle_ctrl(self, msg, src: int) -> None:
        if src in self.ap_last_seen:
            self.ap_last_seen[src] = self.sim.now
        if isinstance(msg, CsiReport):
            self._on_csi(msg, src)
        elif isinstance(msg, SwitchAck):
            self._on_switch_ack(msg)
        elif isinstance(msg, ApHello):
            self._on_ap_hello(msg, src)
        elif isinstance(msg, DegradedReport):
            self._on_degraded_report(msg)
        elif isinstance(msg, Heartbeat):
            self._on_peer_heartbeat(msg)
        elif isinstance(msg, CheckpointMsg):
            self._on_checkpoint(msg)

    def _on_csi(self, report: CsiReport, src_ap: int) -> None:
        reading = report.reading
        state = self.add_client(reading.client_id)
        t = self.sim.now
        esnr = reading.esnr_db()
        state.policy.observe(reading.ap_id, reading.time, esnr)
        self.trace.emit(t, "csi", client=reading.client_id, ap=reading.ap_id,
                        esnr=esnr)
        self._evaluate(reading.client_id, state, t)

    def _evaluate(self, client: int, state: ClientState, t: float) -> None:
        if state.switching is not None:
            return  # one outstanding switch per client (footnote 2)
        self._sweep_dead_aps(t)
        exclude = frozenset(self._evicted) if self._evicted else _NO_EXCLUDE
        best = state.policy.select(t, serving=state.serving_ap, exclude=exclude)
        if state.serving_ap is None:
            # Bootstrap: with nobody serving, any reading is better than
            # none, so elect on whatever the window holds.
            if best is None:
                candidates = [
                    ap for ap in state.policy.in_range_aps(t)
                    if ap not in self._evicted
                ]
                if not candidates:
                    return
                best = candidates[0]
            self._begin_switch(client, state, old_ap=None, new_ap=best, t=t)
            return
        if best is None or best == state.serving_ap:
            return
        if t - state.last_switch_time < self.params.hysteresis_s:
            return
        self._begin_switch(client, state, old_ap=state.serving_ap, new_ap=best, t=t)

    def _begin_switch(
        self,
        client: int,
        state: ClientState,
        old_ap: Optional[int],
        new_ap: int,
        t: float,
        attempt: int = 0,
    ) -> None:
        timer = self.sim.schedule(
            self.params.ack_timeout_s,
            self._switch_timeout,
            client,
            attempt,
        )
        state.switching = (old_ap, new_ap, attempt, timer)
        if attempt == 0:
            self.trace.emit(t, "switch_initiated", client=client,
                            old=old_ap, new=new_ap)
            # Tell everyone (including monitors, for BA forwarding) who
            # will be serving.
            for ap_id in self.ap_ids:
                self._send(ap_id, ServingUpdate(client=client, ap=new_ap))
        if old_ap is None:
            self._send(new_ap, StartMsg(client=client, index=state.next_index))
        else:
            self._send(old_ap, StopMsg(client=client, new_ap=new_ap, attempt=attempt))

    def _switch_timeout(self, client: int, attempt: int) -> None:
        if not self.alive:
            return
        state = self.clients.get(client)
        if state is None or state.switching is None:
            return
        old_ap, new_ap, current_attempt, _timer = state.switching
        if current_attempt != attempt:
            return
        t = self.sim.now
        self._sweep_dead_aps(t)
        if new_ap in self._evicted:
            # The switch target died while the handshake was in flight:
            # retransmitting at it is futile.  Abort and elect a live AP.
            state.switching = None
            self.trace.emit(t, "switch_target_dead", client=client, ap=new_ap)
            self._evaluate(client, state, t)
            return
        if attempt + 1 >= self.params.max_switch_attempts:
            # Give up: fall back to no serving AP; the next CSI report
            # will elect afresh.
            state.switching = None
            state.serving_ap = None
            self.trace.emit(t, "switch_failed", client=client)
            return
        if old_ap is not None and old_ap in self._evicted:
            # The old AP cannot process stop(c) any more, so its queue
            # head index is unrecoverable: bypass the handshake and start
            # the new AP directly at the next fresh index.
            self.trace.emit(t, "switch_reroute", client=client,
                            old=old_ap, new=new_ap)
            self._begin_switch(
                client, state, old_ap=None, new_ap=new_ap, t=t,
                attempt=attempt + 1,
            )
            return
        self.trace.emit(t, "switch_retransmit", client=client,
                        attempt=attempt + 1)
        self._begin_switch(
            client, state, old_ap=old_ap, new_ap=new_ap, t=t,
            attempt=attempt + 1,
        )

    def _on_switch_ack(self, msg: SwitchAck) -> None:
        state = self.clients.get(msg.client)
        if state is None or state.switching is None:
            return
        _old, new_ap, _attempt, timer = state.switching
        if msg.ap != new_ap:
            return
        timer.cancel()
        state.switching = None
        state.serving_ap = new_ap
        state.last_switch_time = self.sim.now
        state.switch_count += 1
        state.policy.on_switch(self.sim.now, new_ap)
        self.trace.emit(self.sim.now, "ap_switch", client=msg.client, ap=new_ap)

    def _send(self, dst: int, msg) -> None:
        self.backhaul.send(
            self.node_id, dst, ctrl_packet(self.node_id, dst, msg, self.sim.now)
        )

    # --------------------------------------------------------------- HA layer
    def enable_ha(self, ha, standby_id: Optional[int] = None) -> None:
        """Arm the HA layer: heartbeat APs (and checkpoint to a standby).

        Never called for default drives -- every timer and message below
        exists only once the builder passes ``ExperimentConfig(ha=...)``.
        """
        self.ha = ha
        self._standby_id = standby_id
        # Primary heartbeat and standby watchdog share the heartbeat
        # cadence, so they pool into one periodic heap event.
        self._hb_task = self.sim.periodic_group(
            ha.heartbeat_interval_s, key="ha.heartbeat"
        ).add(self._heartbeat_tick)

    def _should_beat(self) -> bool:
        if not self.alive:
            return False
        # Never beat while another controller in the cluster is active
        # (a recovered primary after a standby takeover stays passive --
        # failback is not supported).
        return self.cluster is None or self.cluster.active is self

    def _heartbeat_tick(self) -> None:
        if not self._should_beat():
            return
        self._hb_seq += 1
        self.heartbeats_sent += 1
        beat = Heartbeat(controller=self.node_id, epoch=self.epoch,
                         seq=self._hb_seq)
        for ap_id in self.ap_ids:
            self._send(ap_id, beat)
        if self._standby_id is not None:
            self._send(self._standby_id, beat)
            interval = max(1, self.ha.checkpoint_interval_beats)
            if self._hb_seq % interval == 0:
                snapshot = ControllerCheckpoint.capture(self)
                self.checkpoints_written += 1
                self._send(self._standby_id, CheckpointMsg(checkpoint=snapshot))

    def fail(self) -> None:
        """Fault injection: the controller process dies.

        Timers stay scheduled (the simulator has no ungrouped cancel) but
        every callback and message path is gated on ``alive``.
        """
        self.alive = False

    def restore(self) -> None:
        """Fault injection: the controller process comes back up.

        A cold restart loses all volatile protocol state: client records,
        in-flight switches, index positions.  The new incarnation bumps
        its epoch, tells every AP to flush stale rings (a cold controller
        reuses index numbers from 0, so surviving ring contents would
        replay as duplicates), and opens a reconciliation window during
        which degraded APs report what they were serving.
        """
        self.alive = True
        if self.cluster is not None and self.cluster.active is not self:
            # The standby took over while we were down; stay passive.
            return
        self.epoch += 1
        self._hb_seq = 0
        for state in self.clients.values():
            if state.switching is not None:
                state.switching[3].cancel()
        self.clients.clear()
        self._degraded_claims.clear()
        self._evicted.clear()
        now = self.sim.now
        for ap_id in self.ap_ids:
            self.ap_last_seen[ap_id] = now
        hello = ControllerHello(controller=self.node_id, epoch=self.epoch,
                                flush=True)
        for ap_id in self.ap_ids:
            self._send(ap_id, hello)
        if self.ha is not None:
            self._open_reconcile_window()

    def _open_reconcile_window(self) -> None:
        """Hold downlink until degraded APs have had a chance to report."""
        window = self.ha.reconcile_window_s
        self._reconcile_until = self.sim.now + window
        if self._reconcile_timer is not None:
            self._reconcile_timer.cancel()
        self._reconcile_timer = self.sim.schedule(window, self._finish_reconcile)

    def _on_ap_hello(self, msg: ApHello, src: int) -> None:
        """A rebooted AP announced itself: readmit it immediately."""
        now = self.sim.now
        self.ap_last_seen[msg.ap] = now
        if msg.ap in self._evicted:
            self._evicted.discard(msg.ap)
            self.trace.emit(now, "ap_readmitted", ap=msg.ap)

    def _on_peer_heartbeat(self, msg: Heartbeat) -> None:
        """Heartbeat from another controller (the standby overrides this)."""

    def _on_checkpoint(self, msg: CheckpointMsg) -> None:
        """Checkpoint stream from the primary (the standby overrides this)."""

    def _on_degraded_report(self, msg: DegradedReport) -> None:
        """An AP reported serving state held through a controller outage.

        Resolves three things: *who* serves the client (highest-ESNR
        claimant when a partition produced several), *where* index
        assignment resumes (the claimant's ``next_index``, so fresh
        packets never collide with stored ring slots), and the end of the
        client's ``awaiting_reconcile`` limbo.
        """
        if self.ha is None:
            return
        now = self.sim.now
        state = self.add_client(msg.client)
        claims = self._degraded_claims.setdefault(msg.client, {})
        claims[msg.ap] = msg
        best_ap = max(claims, key=lambda ap: claims[ap].esnr_db)
        if msg.ap != best_ap:
            # A stronger AP already holds this client: clear the weaker
            # claimant's ring so it can never replay stale packets.
            self._send(msg.ap, FlushClient(client=msg.client))
            return
        for ap_id in claims:
            if ap_id != best_ap:
                self._send(ap_id, FlushClient(client=msg.client))
        adopt = False
        if state.awaiting_reconcile or now <= self._reconcile_until:
            # Fresh takeover/restart: the report is ground truth, however
            # far the checkpointed (or zeroed) index view lags it.
            adopt = True
        elif (msg.next_index != state.next_index
              and ring_distance(state.next_index, msg.next_index)
              < INDEX_MODULO // 2):
            # Late report (e.g. a healed partition): only adopt a position
            # ahead of ours -- moving backward would reuse live indices.
            adopt = True
        if adopt and msg.next_index != state.next_index:
            state.next_index = msg.next_index
            if self.invariants is not None:
                self.invariants.on_index_adopted(
                    now, msg.client, self.epoch, msg.next_index
                )
        if state.switching is not None:
            state.switching[3].cancel()
            state.switching = None
        state.serving_ap = msg.ap
        state.last_switch_time = now
        if state.awaiting_reconcile:
            state.awaiting_reconcile = False
            self.reconciled_clients += 1
        for ap_id in self.ap_ids:
            self._send(ap_id, ServingUpdate(client=msg.client, ap=msg.ap))

    def _finish_reconcile(self) -> None:
        """Close the post-restart window; flush clients nobody vouched for.

        A client still ``awaiting_reconcile`` here means its checkpointed
        serving AP never confirmed (report lost, or the AP died with the
        primary).  The restored serving/index view cannot be trusted --
        acting on it risks a stale ``k`` replaying ring history -- so the
        client's ring is flushed everywhere and service re-bootstraps
        from the next CSI report.
        """
        if not self.alive:
            return
        self._reconcile_timer = None
        for client, state in self.clients.items():
            if not state.awaiting_reconcile:
                continue
            state.awaiting_reconcile = False
            state.serving_ap = None
            if state.switching is not None:
                state.switching[3].cancel()
                state.switching = None
            self.reconcile_flushes += 1
            for ap_id in self.ap_ids:
                self._send(ap_id, FlushClient(client=client))

    def resilience_counters(self) -> Dict[str, int]:
        """HA bookkeeping surfaced through ``DriveSummary.resilience``."""
        return {
            "heartbeats_sent": self.heartbeats_sent,
            "checkpoints_written": self.checkpoints_written,
            "reconciled_clients": self.reconciled_clients,
            "reconcile_flushes": self.reconcile_flushes,
            "downlink_dropped_dead": self.downlink_dropped_dead,
            "downlink_dropped_reconcile": self.downlink_dropped_reconcile,
        }

    # ------------------------------------------------------------- inspection
    def serving_ap(self, client: int) -> Optional[int]:
        state = self.clients.get(client)
        return state.serving_ap if state else None
