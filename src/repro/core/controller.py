"""The WGTT controller (control plane of Fig. 5).

One machine on the Ethernet backhaul that

* consumes per-frame CSI reports from every AP, feeds them to the
  client's :class:`~repro.policies.HandoverPolicy`, and asks it which AP
  should serve (the default policy is the paper's max-median windowed
  ESNR selection);
* forwards every downlink packet, tagged with its 12-bit index number,
  to every AP within communication range of the client;
* runs the stop/start/ack switching protocol with the 30 ms
  retransmission timeout (one outstanding switch per client);
* de-duplicates uplink packets tunneled up by the APs and hands them to
  the server-side flow endpoints.

The controller owns every *protocol* concern -- the switch handshake,
the time hysteresis bounding the switch rate, and AP-health eviction --
so those guarantees hold for every policy in the zoo, not just the
default one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from ..net.ethernet import Backhaul
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .cyclic_queue import INDEX_MODULO
from .dedup import Deduplicator
from .messages import (
    CsiReport,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policies -> core)
    from ..policies.base import HandoverPolicy, PolicyContext

__all__ = ["ControllerParams", "WgttController", "ClientState"]

UplinkHandler = Callable[[Packet, float], None]

#: Shared empty exclusion set (avoids a per-evaluation allocation).
_NO_EXCLUDE: frozenset = frozenset()


@dataclass
class ControllerParams:
    """Control-plane tuning knobs.

    ``selection_window_s`` is W of section 3.1.1 (Fig. 21 finds 10 ms
    optimal); ``hysteresis_s`` is the switching time hysteresis swept in
    Fig. 22; ``ack_timeout_s`` is the stop/start retransmission timeout of
    section 3.1.2 (30 ms in the paper).
    """

    selection_window_s: float = 0.010
    hysteresis_s: float = 0.050
    ack_timeout_s: float = 0.030
    #: Minimum window occupancy before an AP is a switch candidate.  The
    #: effective default for drives is 1 -- a single decoded frame makes
    #: an AP electable, which matters at picocell edges where windows are
    #: sparse -- and :class:`~repro.core.ap_selection.ApSelector` uses
    #: the same default so standalone selectors match controller drives.
    min_readings: int = 1
    selection_metric: str = "median"
    max_switch_attempts: int = 10
    #: AP health tracking (fault hardening, strictly opt-in): an AP whose
    #: last control-plane message (CSI report, switch ack, ...) is older
    #: than this is evicted from candidate sets, and the switch protocol
    #: routes around it.  ``None`` (the default) disables health tracking
    #: entirely, leaving the paper's behaviour untouched.
    ap_liveness_timeout_s: Optional[float] = None


@dataclass
class ClientState:
    policy: "HandoverPolicy"
    next_index: int = 0
    serving_ap: Optional[int] = None
    last_switch_time: float = -1e9
    #: (old_ap, new_ap, attempt, timer) while a switch is outstanding.
    switching: Optional[tuple] = None
    switch_count: int = 0
    no_coverage_drops: int = 0
    downlink_packets: int = 0


class WgttController:
    """Central WGTT controller."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: Backhaul,
        node_id: int,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        params: Optional[ControllerParams] = None,
        policy_factory: Optional[Callable[[], "HandoverPolicy"]] = None,
    ):
        self.sim = sim
        self.backhaul = backhaul
        self.node_id = node_id
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.params = params or ControllerParams()
        if policy_factory is None:
            # Imported here (not at module scope) to break the cycle:
            # repro.policies depends on repro.core for the ESNR tracker.
            from ..policies.wgtt import WgttMaxMedianPolicy

            policy_factory = WgttMaxMedianPolicy
        self.policy_factory = policy_factory
        self.clients: Dict[int, ClientState] = {}
        self.ap_ids: List[int] = []
        self.dedup = Deduplicator()
        self._uplink_handlers: Dict[int, UplinkHandler] = {}
        self._uplink_default: Optional[UplinkHandler] = None
        #: ap_id -> time of its last control-plane message (health signal).
        self.ap_last_seen: Dict[int, float] = {}
        #: APs currently evicted by the liveness timeout.
        self._evicted: set = set()
        backhaul.register(node_id, self.on_backhaul)

    # ----------------------------------------------------------------- setup
    def add_ap(self, ap_id: int) -> None:
        if ap_id not in self.ap_ids:
            self.ap_ids.append(ap_id)
            self.ap_last_seen[ap_id] = self.sim.now

    # -------------------------------------------------------------- health
    def ap_is_live(self, ap_id: int, now: float) -> bool:
        """False only when health tracking is on and the AP has gone quiet."""
        timeout = self.params.ap_liveness_timeout_s
        if timeout is None:
            return True
        last = self.ap_last_seen.get(ap_id)
        if last is None:
            return True  # unknown APs are out of scope for health tracking
        return now - last <= timeout

    def _sweep_dead_aps(self, now: float) -> None:
        """Evict newly-dead APs from every client's candidate windows."""
        timeout = self.params.ap_liveness_timeout_s
        if timeout is None:
            return
        for ap_id, last in self.ap_last_seen.items():
            if now - last > timeout:
                if ap_id not in self._evicted:
                    self._evicted.add(ap_id)
                    self.trace.emit(now, "ap_evicted", ap=ap_id)
                    for state in self.clients.values():
                        state.policy.drop_ap(ap_id)
            elif ap_id in self._evicted:
                self._evicted.discard(ap_id)
                self.trace.emit(now, "ap_readmitted", ap=ap_id)

    def add_client(
        self, client_id: int, context: Optional["PolicyContext"] = None
    ) -> ClientState:
        """Get-or-create the client's state (and its policy instance).

        ``context`` hands the policy infrastructure knowledge (AP
        positions, the client's trajectory); it may arrive on a later
        call than the one that created the state -- clients are created
        lazily from whichever of CSI/downlink/builder touches them first.
        """
        state = self.clients.get(client_id)
        if state is None:
            policy = self.policy_factory()
            policy.configure(
                window_s=self.params.selection_window_s,
                min_readings=self.params.min_readings,
                metric=self.params.selection_metric,
            )
            state = ClientState(policy=policy)
            self.clients[client_id] = state
        if context is not None:
            state.policy.bind(context)
        return state

    def register_uplink_handler(self, flow_id: int, handler: UplinkHandler) -> None:
        self._uplink_handlers[flow_id] = handler

    def set_default_uplink_handler(self, handler: UplinkHandler) -> None:
        self._uplink_default = handler

    # -------------------------------------------------------------- downlink
    def send_downlink(self, packet: Packet) -> None:
        """Entry point for server traffic destined to a client.

        Assigns the 12-bit index and multicasts to all in-range APs.  With
        no AP in range (client outside coverage) the packet is dropped,
        exactly as a real out-of-coverage client loses traffic.
        """
        client = packet.dst
        state = self.add_client(client)
        now = self.sim.now
        self._sweep_dead_aps(now)
        targets = state.policy.in_range_aps(now)
        if self._evicted:
            targets = [ap for ap in targets if ap not in self._evicted]
        # The serving AP (and the AP a pending switch is moving to) must
        # receive every packet even through a momentary CSI gap, or its
        # ring develops holes.  Evicted APs are excluded: their rings are
        # unreachable anyway, and feeding them would only mask the outage.
        if (state.serving_ap is not None and state.serving_ap not in targets
                and state.serving_ap not in self._evicted):
            targets.append(state.serving_ap)
        if (state.switching is not None and state.switching[1] not in targets
                and state.switching[1] not in self._evicted):
            targets.append(state.switching[1])
        if not targets:
            state.no_coverage_drops += 1
            self.trace.emit(now, "dl_no_coverage", client=client)
            return
        packet.wgtt_index = state.next_index
        state.next_index = (state.next_index + 1) % INDEX_MODULO
        state.downlink_packets += 1
        for ap_id in targets:
            clone = copy.copy(packet)
            clone.tunnel = []
            clone.encapsulate(self.node_id, ap_id)
            self.backhaul.send(self.node_id, ap_id, clone)

    # ---------------------------------------------------------------- uplink
    def on_backhaul(self, packet: Packet, src: int) -> None:
        if packet.protocol == "ctrl":
            self._handle_ctrl(packet.payload, src)
            return
        # Tunneled uplink data from an AP.
        packet.decapsulate()
        if not self.dedup.accept(packet):
            return
        t = self.sim.now
        self.trace.emit(t, "ul_delivered", client=packet.src, flow=packet.flow_id,
                        seq=packet.seq, via_ap=src, bytes=packet.size_bytes)
        handler = self._uplink_handlers.get(packet.flow_id, self._uplink_default)
        if handler is not None:
            handler(packet, t)

    # --------------------------------------------------------- control plane
    def _handle_ctrl(self, msg, src: int) -> None:
        if src in self.ap_last_seen:
            self.ap_last_seen[src] = self.sim.now
        if isinstance(msg, CsiReport):
            self._on_csi(msg, src)
        elif isinstance(msg, SwitchAck):
            self._on_switch_ack(msg)

    def _on_csi(self, report: CsiReport, src_ap: int) -> None:
        reading = report.reading
        state = self.add_client(reading.client_id)
        t = self.sim.now
        esnr = reading.esnr_db()
        state.policy.observe(reading.ap_id, reading.time, esnr)
        self.trace.emit(t, "csi", client=reading.client_id, ap=reading.ap_id,
                        esnr=esnr)
        self._evaluate(reading.client_id, state, t)

    def _evaluate(self, client: int, state: ClientState, t: float) -> None:
        if state.switching is not None:
            return  # one outstanding switch per client (footnote 2)
        self._sweep_dead_aps(t)
        exclude = frozenset(self._evicted) if self._evicted else _NO_EXCLUDE
        best = state.policy.select(t, serving=state.serving_ap, exclude=exclude)
        if state.serving_ap is None:
            # Bootstrap: with nobody serving, any reading is better than
            # none, so elect on whatever the window holds.
            if best is None:
                candidates = [
                    ap for ap in state.policy.in_range_aps(t)
                    if ap not in self._evicted
                ]
                if not candidates:
                    return
                best = candidates[0]
            self._begin_switch(client, state, old_ap=None, new_ap=best, t=t)
            return
        if best is None or best == state.serving_ap:
            return
        if t - state.last_switch_time < self.params.hysteresis_s:
            return
        self._begin_switch(client, state, old_ap=state.serving_ap, new_ap=best, t=t)

    def _begin_switch(
        self,
        client: int,
        state: ClientState,
        old_ap: Optional[int],
        new_ap: int,
        t: float,
        attempt: int = 0,
    ) -> None:
        timer = self.sim.schedule(
            self.params.ack_timeout_s,
            self._switch_timeout,
            client,
            attempt,
        )
        state.switching = (old_ap, new_ap, attempt, timer)
        if attempt == 0:
            self.trace.emit(t, "switch_initiated", client=client,
                            old=old_ap, new=new_ap)
            # Tell everyone (including monitors, for BA forwarding) who
            # will be serving.
            for ap_id in self.ap_ids:
                self._send(ap_id, ServingUpdate(client=client, ap=new_ap))
        if old_ap is None:
            self._send(new_ap, StartMsg(client=client, index=state.next_index))
        else:
            self._send(old_ap, StopMsg(client=client, new_ap=new_ap, attempt=attempt))

    def _switch_timeout(self, client: int, attempt: int) -> None:
        state = self.clients.get(client)
        if state is None or state.switching is None:
            return
        old_ap, new_ap, current_attempt, _timer = state.switching
        if current_attempt != attempt:
            return
        t = self.sim.now
        self._sweep_dead_aps(t)
        if new_ap in self._evicted:
            # The switch target died while the handshake was in flight:
            # retransmitting at it is futile.  Abort and elect a live AP.
            state.switching = None
            self.trace.emit(t, "switch_target_dead", client=client, ap=new_ap)
            self._evaluate(client, state, t)
            return
        if attempt + 1 >= self.params.max_switch_attempts:
            # Give up: fall back to no serving AP; the next CSI report
            # will elect afresh.
            state.switching = None
            state.serving_ap = None
            self.trace.emit(t, "switch_failed", client=client)
            return
        if old_ap is not None and old_ap in self._evicted:
            # The old AP cannot process stop(c) any more, so its queue
            # head index is unrecoverable: bypass the handshake and start
            # the new AP directly at the next fresh index.
            self.trace.emit(t, "switch_reroute", client=client,
                            old=old_ap, new=new_ap)
            self._begin_switch(
                client, state, old_ap=None, new_ap=new_ap, t=t,
                attempt=attempt + 1,
            )
            return
        self.trace.emit(t, "switch_retransmit", client=client,
                        attempt=attempt + 1)
        self._begin_switch(
            client, state, old_ap=old_ap, new_ap=new_ap, t=t,
            attempt=attempt + 1,
        )

    def _on_switch_ack(self, msg: SwitchAck) -> None:
        state = self.clients.get(msg.client)
        if state is None or state.switching is None:
            return
        _old, new_ap, _attempt, timer = state.switching
        if msg.ap != new_ap:
            return
        timer.cancel()
        state.switching = None
        state.serving_ap = new_ap
        state.last_switch_time = self.sim.now
        state.switch_count += 1
        state.policy.on_switch(self.sim.now, new_ap)
        self.trace.emit(self.sim.now, "ap_switch", client=msg.client, ap=new_ap)

    def _send(self, dst: int, msg) -> None:
        self.backhaul.send(
            self.node_id, dst, ctrl_packet(self.node_id, dst, msg, self.sim.now)
        )

    # ------------------------------------------------------------- inspection
    def serving_ap(self, client: int) -> Optional[int]:
        state = self.clients.get(client)
        return state.serving_ap if state else None
