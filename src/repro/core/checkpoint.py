"""Controller state checkpoints for warm-standby failover.

A :class:`ControllerCheckpoint` is a compact, JSON-roundtrippable snapshot
of everything a :class:`~repro.core.controller.WgttController` needs to
resume switching for its clients after the primary dies:

* per-client protocol state: serving AP, next 12-bit cyclic-queue index,
  last switch time, an in-flight switch (if any), and counters;
* per-client ESNR windows (the raw (time, esnr) readings each policy
  tracker holds), so the standby's first selection is made on the same
  evidence the primary had;
* controller-level AP liveness bookkeeping (which APs were evicted).

Capture deep-copies into plain values -- lists, dicts, floats -- so a
checkpoint shipped over the simulated backhaul shares no live references
with the primary, exactly like a serialized snapshot on a real wire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ClientCheckpoint", "ControllerCheckpoint"]

#: Rough wire cost of one client's entry (fixed fields + a few window
#: readings at 12 B each); used to size checkpoint packets on the LAN.
_CLIENT_BASE_BYTES = 40
_READING_BYTES = 12


@dataclass
class ClientCheckpoint:
    """Snapshot of one :class:`~repro.core.controller.ClientState`."""

    client: int
    serving_ap: Optional[int] = None
    next_index: int = 0
    last_switch_time: float = -1e9
    switch_count: int = 0
    downlink_packets: int = 0
    #: (old_ap, new_ap) of an in-flight switch; the timer does not survive
    #: a failover -- the standby re-runs reconciliation instead.
    in_flight: Optional[Tuple[Optional[int], int]] = None
    #: ap_id -> [(time, esnr_db), ...] sliding-window contents.
    windows: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "client": self.client,
            "serving_ap": self.serving_ap,
            "next_index": self.next_index,
            "last_switch_time": self.last_switch_time,
            "switch_count": self.switch_count,
            "downlink_packets": self.downlink_packets,
            "windows": {
                str(ap): [[float(t), float(e)] for (t, e) in readings]
                for ap, readings in self.windows.items()
            },
        }
        if self.in_flight is not None:
            out["in_flight"] = list(self.in_flight)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClientCheckpoint":
        in_flight = data.get("in_flight")
        return cls(
            client=int(data["client"]),
            serving_ap=data.get("serving_ap"),
            next_index=int(data.get("next_index", 0)),
            last_switch_time=float(data.get("last_switch_time", -1e9)),
            switch_count=int(data.get("switch_count", 0)),
            downlink_packets=int(data.get("downlink_packets", 0)),
            in_flight=None if in_flight is None else (in_flight[0], in_flight[1]),
            windows={
                int(ap): [(float(t), float(e)) for (t, e) in readings]
                for ap, readings in data.get("windows", {}).items()
            },
        )

    def wire_bytes(self) -> int:
        n_readings = sum(len(r) for r in self.windows.values())
        return _CLIENT_BASE_BYTES + _READING_BYTES * n_readings


@dataclass
class ControllerCheckpoint:
    """One consistent snapshot of the controller's protocol state."""

    time: float
    epoch: int
    ap_ids: List[int] = field(default_factory=list)
    evicted_aps: List[int] = field(default_factory=list)
    clients: List[ClientCheckpoint] = field(default_factory=list)

    # --------------------------------------------------------------- capture
    @classmethod
    def capture(cls, controller) -> "ControllerCheckpoint":
        """Snapshot a live :class:`WgttController` into plain values."""
        clients: List[ClientCheckpoint] = []
        for client_id, state in sorted(controller.clients.items()):
            windows: Dict[int, List[Tuple[float, float]]] = {}
            tracker = getattr(state.policy, "tracker", None)
            if tracker is not None:
                for ap_id, window in tracker._windows.items():
                    windows[ap_id] = [
                        (float(t), float(e)) for (t, e) in window._readings
                    ]
            in_flight = None
            if state.switching is not None:
                old_ap, new_ap = state.switching[0], state.switching[1]
                in_flight = (old_ap, new_ap)
            clients.append(
                ClientCheckpoint(
                    client=client_id,
                    serving_ap=state.serving_ap,
                    next_index=state.next_index,
                    last_switch_time=state.last_switch_time,
                    switch_count=state.switch_count,
                    downlink_packets=state.downlink_packets,
                    in_flight=in_flight,
                    windows=windows,
                )
            )
        return cls(
            time=float(controller.sim.now),
            epoch=int(controller.epoch),
            ap_ids=list(controller.ap_ids),
            evicted_aps=sorted(controller._evicted),
            clients=clients,
        )

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "epoch": self.epoch,
            "ap_ids": list(self.ap_ids),
            "evicted_aps": list(self.evicted_aps),
            "clients": [c.to_dict() for c in self.clients],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ControllerCheckpoint":
        return cls(
            time=float(data["time"]),
            epoch=int(data["epoch"]),
            ap_ids=[int(a) for a in data.get("ap_ids", [])],
            evicted_aps=[int(a) for a in data.get("evicted_aps", [])],
            clients=[ClientCheckpoint.from_dict(c)
                     for c in data.get("clients", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ControllerCheckpoint":
        return cls.from_dict(json.loads(text))

    def wire_bytes(self) -> int:
        """Approximate encoded size (used for backhaul serialization cost)."""
        return 24 + 4 * len(self.ap_ids) + sum(c.wire_bytes() for c in self.clients)

    def client(self, client_id: int) -> Optional[ClientCheckpoint]:
        for entry in self.clients:
            if entry.client == client_id:
                return entry
        return None
