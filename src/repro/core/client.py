"""The mobile (vehicular) client.

A :class:`MobileClient` owns a :class:`ClientRadio`, an uplink queue, and
the application flow endpoints.  Roaming behaviour is pluggable: under
WGTT the client does nothing special (all APs present one BSSID and the
network switches for it); under the Enhanced 802.11r baseline a
:class:`repro.core.baseline.Enhanced80211rPolicy` drives beacon-based
reassociation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mac.frames import Beacon, MgmtFrame
from ..mac.medium import Medium
from ..mac.radio import Radio
from ..mobility.trajectory import Trajectory
from ..net.packet import Packet
from ..net.queues import DropTailQueue
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder

__all__ = ["ClientParams", "ClientRadio", "MobileClient", "RoamingPolicy"]


@dataclass
class ClientParams:
    uplink_queue_capacity: int = 200
    #: Interval of null-data keepalives that give the APs CSI even when the
    #: client has no uplink data in flight.  None disables probing.
    probe_interval_s: Optional[float] = 0.02
    tx_power_dbm: float = 15.0


class RoamingPolicy:
    """Interface for client-side roaming logic (baseline only)."""

    def attach(self, client: "MobileClient") -> None:
        self.client = client

    def on_beacon(self, ap_id: int, rssi_db: float, t: float) -> None:
        pass

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        pass


class ClientRadio(Radio):
    """Client-side MAC: one uplink FIFO towards the current BSSID."""

    def __init__(self, owner: "MobileClient", **kwargs):
        self.owner = owner
        super().__init__(**kwargs)

    def _select_peer(self) -> Optional[int]:
        if self.owner.current_bssid is None:
            return None
        if len(self.owner.uplink_queue) == 0:
            return None
        return self.owner.current_bssid

    def _pull_packets(self, peer_id: int, max_n: int) -> List[Packet]:
        out = []
        for _ in range(max_n):
            packet = self.owner.uplink_queue.dequeue()
            if packet is None:
                break
            out.append(packet)
        return out

    def _unpull_packet(self, peer_id: int, packet: Packet) -> None:
        self.owner.uplink_queue.requeue_front(packet)

    def _deliver(self, packet: Packet, src: int, t: float) -> None:
        self.owner.on_downlink(packet, src, t)

    def on_beacon(self, beacon: Beacon, src: int, t: float) -> None:
        self.owner.on_beacon_received(beacon, src, t)

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if frame.dst == self.node_id:
            self.owner.on_mgmt(frame, src, t)


class MobileClient:
    """A vehicular client device."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        trajectory: Trajectory,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        params: Optional[ClientParams] = None,
        policy: Optional[RoamingPolicy] = None,
    ):
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.trajectory = trajectory
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.params = params or ClientParams()
        self.uplink_queue: DropTailQueue = DropTailQueue(
            self.params.uplink_queue_capacity, name=f"client{node_id}-ul"
        )
        self.radio = ClientRadio(
            owner=self,
            sim=sim,
            medium=medium,
            node_id=node_id,
            rng=rng,
            is_ap=False,
            position_fn=trajectory.position,
            trace=self.trace,
            tx_power_dbm=self.params.tx_power_dbm,
        )
        #: BSSID the client is associated with (None = unassociated).
        self.current_bssid: Optional[int] = None
        self.flow_handlers: Dict[int, Callable[[Packet, float], None]] = {}
        self.policy = policy
        if policy is not None:
            policy.attach(self)
        #: Armed :class:`~repro.invariants.InvariantSuite` (or None).
        self.invariants = None
        self.downlink_received = 0
        self.uplink_enqueued = 0
        self.uplink_dropped = 0
        self.association_changes: List[Tuple[float, Optional[int]]] = []
        if self.params.probe_interval_s:
            sim.schedule(
                float(rng.uniform(0.0, self.params.probe_interval_s)),
                self._probe_tick,
            )

    # ------------------------------------------------------------ data plane
    def register_flow(self, flow_id: int, handler: Callable[[Packet, float], None]) -> None:
        self.flow_handlers[flow_id] = handler

    def uplink_send(self, packet: Packet) -> None:
        """Application entry point for uplink traffic."""
        self.uplink_enqueued += 1
        if not self.uplink_queue.enqueue(packet):
            self.uplink_dropped += 1
            return
        self.radio.kick()

    def on_downlink(self, packet: Packet, src_ap: int, t: float) -> None:
        self.downlink_received += 1
        if self.invariants is not None:
            self.invariants.on_delivery(t, self.node_id, packet)
        self.trace.emit(
            t, "dl_delivered",
            client=self.node_id, flow=packet.flow_id, seq=packet.seq,
            ap=src_ap, bytes=packet.size_bytes, protocol=packet.protocol,
        )
        handler = self.flow_handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet, t)

    # ----------------------------------------------------------- association
    def set_association(self, bssid: Optional[int], t: Optional[float] = None) -> None:
        """Change (or drop) the association; resets MAC state to the old AP."""
        old = self.current_bssid
        if old is not None and old != bssid:
            self.radio.reset_peer(old)
        self.current_bssid = bssid
        when = t if t is not None else self.sim.now
        self.association_changes.append((when, bssid))
        self.trace.emit(when, "client_assoc", client=self.node_id, bssid=bssid)
        if bssid is not None:
            self.radio.kick()

    @property
    def associated(self) -> bool:
        return self.current_bssid is not None

    def on_beacon_received(self, beacon: Beacon, src: int, t: float) -> None:
        pair = self.medium.link_between(src, self.node_id)
        if pair is None:
            return
        link, _ = pair
        rssi = link.rssi_db(t)
        self.trace.emit(t, "beacon_rx", client=self.node_id, ap=src, rssi=rssi)
        if self.policy is not None:
            self.policy.on_beacon(src, rssi, t)

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if self.policy is not None:
            self.policy.on_mgmt(frame, src, t)

    # ---------------------------------------------------------------- probes
    def _probe_tick(self) -> None:
        if self.associated:
            self.radio.send_mgmt(
                MgmtFrame(src=self.node_id, dst=self.current_bssid, kind="null")
            )
        self.sim.schedule(self.params.probe_interval_s, self._probe_tick)

    def position(self, t: float):
        return self.trajectory.position(t)
