"""The WGTT per-client cyclic queue (section 3.1.2).

Every AP within range of a client buffers every downlink packet for that
client in a ring indexed by the controller-assigned *m*-bit index number
(m = 12, so 4096 slots).  Because all APs hold the same ring contents, a
switch only has to communicate a single integer -- the index ``k`` of the
first unsent packet -- for the new AP to resume exactly where the old one
stopped.

Implementation note: the 12-bit index wraps every 4096 packets, so index
arithmetic alone cannot distinguish "the reader is waiting for a packet
that has not arrived" from "the writer lapped the reader".  The backhaul
is FIFO per (controller, AP) pair, so insertion order *is* controller
order; the queue therefore keeps the pending indices in an insertion-order
deque and serves strictly from its head, which is unambiguous across any
number of wraps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..net.packet import Packet

__all__ = ["CyclicQueue", "INDEX_BITS", "INDEX_MODULO", "ring_distance"]

INDEX_BITS = 12
INDEX_MODULO = 1 << INDEX_BITS

#: Pending-queue entries pack (ring index, packet uid) into one machine
#: int -- ``idx << _UID_BITS | uid`` -- so the hot writer path appends a
#: small int instead of allocating a tuple per packet.  48 uid bits is
#: unreachable in practice (one uid per simulated packet).
_UID_BITS = 48
_UID_MASK = (1 << _UID_BITS) - 1


def ring_distance(a: int, b: int) -> int:
    """Forward distance from index ``a`` to index ``b`` on the ring."""
    return (b - a) % INDEX_MODULO


class CyclicQueue:
    """Ring buffer of downlink packets, keyed by the WGTT index number.

    Writers (the backhaul receive path) insert packets at their assigned
    index; the reader (the transmit path, active only at the serving AP)
    consumes in insertion order from the position set by the last
    ``start(c, k)``.  Slots are overwritten as the index space wraps,
    which implicitly discards packets other APs already delivered -- no
    per-packet invalidation traffic is needed.
    """

    def __init__(self, size: int = INDEX_MODULO):
        if size <= 0 or size > INDEX_MODULO:
            raise ValueError(f"ring size must be in (0, {INDEX_MODULO}], got {size}")
        self._size = size
        self._slots: List[Optional[Packet]] = [None] * size
        #: Packed (index, uid) entries with a live packet, in insertion
        #: (== controller) order.
        self._pending: Deque[int] = deque()
        self._newest_index = 0
        self.inserted = 0
        self.consumed = 0
        self.overwritten = 0
        self.skipped = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def read_index(self) -> int:
        """Index of the next packet the transmit path will take.

        With nothing pending this is the index one past the newest insert
        (i.e. where the next packet will logically resume).
        """
        self._drop_stale_head()
        if self._pending:
            return self._pending[0] >> _UID_BITS
        if self.inserted:
            return (self._newest_index + 1) % INDEX_MODULO
        return 0

    @property
    def next_insert_index(self) -> int:
        """Index at which the controller's next downlink packet would land.

        This is what a degraded AP reports as the safe resume point for a
        recovering controller's index assignment: everything at or after
        it is guaranteed not to collide with stored ring contents.
        """
        if self.inserted:
            return (self._newest_index + 1) % INDEX_MODULO
        return 0

    def __len__(self) -> int:
        self._drop_stale_head()
        return len(self._pending)

    # ---------------------------------------------------------------- writer
    def insert(self, packet: Packet) -> None:
        """Store a packet at its controller-assigned index."""
        if packet.wgtt_index is None:
            raise ValueError("packet has no WGTT index; controller must assign one")
        idx = packet.wgtt_index % INDEX_MODULO
        slot = idx % self._size
        if self._slots[slot] is not None:
            self.overwritten += 1
        self._slots[slot] = packet
        self._pending.append((idx << _UID_BITS) | (packet.uid & _UID_MASK))
        self._newest_index = idx
        self.inserted += 1
        # Bound the pending list: anything a full ring behind has been
        # overwritten and can never be served.
        while len(self._pending) > self._size:
            self._pending.popleft()

    # ---------------------------------------------------------------- reader
    def set_read_index(self, index: int) -> None:
        """Jump the reader (the start(c, k) handler calls this with k).

        Everything inserted before the entry carrying index ``k`` is
        discarded: the old AP has already delivered (or owned) it.  ``k``
        is always near the live head of the stream (it is the old AP's
        current unsent position, at most a switch-latency old), so the
        live suffix is found by scanning back from the newest insert while
        entries stay inside the forward half-window of ``k`` -- entries
        further back are a previous serving stint or a previous index lap.
        """
        k = index % INDEX_MODULO
        entries = list(self._pending)
        keep_from = len(entries)
        for pos in range(len(entries) - 1, -1, -1):
            idx = entries[pos] >> _UID_BITS
            if ring_distance(k, idx) < INDEX_MODULO // 2:
                keep_from = pos
            else:
                break
        for _ in range(keep_from):
            self._discard_head()

    def _discard_head(self) -> None:
        entry = self._pending.popleft()
        head_idx, head_uid = entry >> _UID_BITS, entry & _UID_MASK
        slot = head_idx % self._size
        packet = self._slots[slot]
        if packet is not None and (packet.uid & _UID_MASK) == head_uid:
            self._slots[slot] = None
        self.skipped += 1

    def _drop_stale_head(self) -> None:
        """Drop pending entries whose slot was overwritten by a newer insert."""
        while self._pending:
            entry = self._pending[0]
            packet = self._slots[(entry >> _UID_BITS) % self._size]
            if packet is not None and (packet.uid & _UID_MASK) == entry & _UID_MASK:
                return
            self._pending.popleft()
            self.skipped += 1

    def peek(self) -> Optional[Packet]:
        """The next packet in insertion order, if any."""
        self._drop_stale_head()
        if not self._pending:
            return None
        return self._slots[(self._pending[0] >> _UID_BITS) % self._size]

    def pop_next(self) -> Optional[Packet]:
        """Consume the next pending packet (insertion order)."""
        packet = self.peek()
        if packet is None:
            return None
        head_idx = self._pending.popleft() >> _UID_BITS
        self._slots[head_idx % self._size] = None
        self.consumed += 1
        return packet

    # ------------------------------------------------------------- inspection
    def backlog_from(self, index: int, limit: int = INDEX_MODULO) -> int:
        """How many pending packets sit at or after ``index``."""
        self._drop_stale_head()
        count = 0
        k = index % INDEX_MODULO
        for entry in self._pending:
            idx = entry >> _UID_BITS
            if idx == k or ring_distance(k, idx) <= INDEX_MODULO // 2:
                count += 1
                if count >= limit:
                    break
        return count

    def clear(self) -> None:
        self._slots = [None] * self._size
        self._pending.clear()
