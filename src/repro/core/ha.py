"""Controller high availability: warm standby, failover, and HA knobs.

The WGTT controller of the paper is a single process on the backhaul
LAN -- a single point of failure for every picocell behind it.  This
module adds the recovery machinery around the unchanged protocol core:

* :class:`HaParams` -- the knob set (heartbeat cadence, failure
  detector threshold, checkpoint cadence, reconciliation window, and
  the AP degraded-mode thresholds);
* :class:`StandbyController` -- a passive
  :class:`~repro.core.controller.WgttController` that consumes the
  primary's heartbeat/checkpoint stream and takes over when the
  primary goes quiet, restoring per-client protocol state from the
  last :class:`~repro.core.checkpoint.ControllerCheckpoint`;
* :class:`ControllerCluster` -- the pair, with a single ``active``
  pointer that routes downlink entry and prevents dual-active
  operation (a recovered primary stays passive after a takeover;
  failback is deliberately unsupported).

Everything here is strictly opt-in: no drive instantiates any of it
unless ``ExperimentConfig(ha=...)`` is set, so default drives remain
bit-identical to the golden digests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..net.packet import Packet
from .checkpoint import ControllerCheckpoint
from .controller import WgttController
from .messages import CheckpointMsg, ControllerHello, Heartbeat

__all__ = ["HaParams", "coerce_ha", "StandbyController", "ControllerCluster"]


@dataclass(frozen=True)
class HaParams:
    """High-availability tuning knobs.

    ``heartbeat_interval_s`` paces the controller liveness beacons (and,
    scaled by ``checkpoint_interval_beats``, the checkpoint stream to the
    standby).  A peer that misses ``miss_threshold`` consecutive beats
    declares the controller dead: the standby takes over, and APs enter
    degraded mode.  ``reconcile_window_s`` is how long a fresh controller
    incarnation holds downlink while degraded APs report the serving/index
    state they carried through the outage.
    """

    heartbeat_interval_s: float = 0.05
    miss_threshold: int = 3
    #: Build a warm standby controller (False = degraded-mode-only HA).
    standby: bool = True
    #: Let APs fall back to autonomous serving when the controller dies.
    ap_degraded: bool = True
    #: Checkpoint every N heartbeats (1 = every beat).
    checkpoint_interval_beats: int = 1
    reconcile_window_s: float = 0.02
    #: Local-handover margin while degraded: another AP's gossiped ESNR
    #: must beat the serving AP's own by this much (dB) to take over.
    degraded_margin_db: float = 3.0
    #: Minimum spacing between degraded-mode local handovers.
    degraded_hysteresis_s: float = 0.2
    #: Cadence of the degraded-mode local selection loop at each AP.
    degraded_eval_interval_s: float = 0.05

    def __post_init__(self):
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        if self.checkpoint_interval_beats < 1:
            raise ValueError(
                f"checkpoint_interval_beats must be >= 1, "
                f"got {self.checkpoint_interval_beats}"
            )
        if self.reconcile_window_s < 0:
            raise ValueError(
                f"reconcile_window_s must be >= 0, got {self.reconcile_window_s}"
            )
        if self.degraded_eval_interval_s <= 0:
            raise ValueError(
                f"degraded_eval_interval_s must be positive, "
                f"got {self.degraded_eval_interval_s}"
            )

    @property
    def dead_after_s(self) -> float:
        """Silence span after which a peer declares the controller dead."""
        return self.miss_threshold * self.heartbeat_interval_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "miss_threshold": self.miss_threshold,
            "standby": self.standby,
            "ap_degraded": self.ap_degraded,
            "checkpoint_interval_beats": self.checkpoint_interval_beats,
            "reconcile_window_s": self.reconcile_window_s,
            "degraded_margin_db": self.degraded_margin_db,
            "degraded_hysteresis_s": self.degraded_hysteresis_s,
            "degraded_eval_interval_s": self.degraded_eval_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HaParams":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown HaParams field(s): {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**data)


def coerce_ha(value) -> Optional[HaParams]:
    """Accept None / bool / dict / JSON string / HaParams.

    The string form is what sweeps and the CLI carry (job overrides must
    be scalars); it parses as JSON to a bool or a field dict.
    """
    if value is None or value is False:
        return None
    if value is True:
        return HaParams()
    if isinstance(value, HaParams):
        return value
    if isinstance(value, str):
        return coerce_ha(json.loads(value))
    if isinstance(value, dict):
        return HaParams.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as HA parameters")


class ControllerCluster:
    """A primary/standby controller pair with a single active pointer.

    The cluster is the builder's downlink entry point when HA runs with
    a standby: server traffic always flows to whichever controller is
    currently active, and uplink-handler registrations on the primary
    are mirrored to the peer (see ``register_uplink_handler``).
    """

    def __init__(self, primary: WgttController, standby: "StandbyController"):
        self.primary = primary
        self.standby = standby
        self._active: WgttController = primary
        self.failovers = 0
        primary.cluster = self
        standby.cluster = self

    @property
    def active(self) -> WgttController:
        return self._active

    def promote(self, controller: WgttController) -> None:
        """Make ``controller`` the active member (standby takeover)."""
        if controller is not self._active:
            self._active = controller
            self.failovers += 1

    def other(self, controller: WgttController) -> Optional[WgttController]:
        if controller is self.primary:
            return self.standby
        if controller is self.standby:
            return self.primary
        return None

    # Downlink entry point (mirrors WgttController.send_downlink).
    def send_downlink(self, packet: Packet) -> None:
        self._active.send_downlink(packet)

    def serving_ap(self, client: int) -> Optional[int]:
        return self._active.serving_ap(client)


class StandbyController(WgttController):
    """A warm-standby controller.

    Passive until takeover: its ``on_backhaul`` consumes only the
    primary's heartbeat/checkpoint stream and drops everything else (in
    particular it never answers CSI reports or assigns indices, so it
    cannot dual-drive the APs).  A watchdog ticking at the heartbeat
    interval declares the primary dead after
    ``miss_threshold * heartbeat_interval_s`` of silence and promotes
    itself: restore from the last checkpoint, re-register with the APs
    via :class:`~repro.core.messages.ControllerHello`, reconcile with
    any degraded APs, and resume switching.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last_primary_beat: float = 0.0
        self._checkpoint: Optional[ControllerCheckpoint] = None
        self._watchdog = None
        self.takeovers = 0
        self.checkpoints_received = 0
        #: Simulation time of the last completed takeover (or None).
        self.takeover_time: Optional[float] = None

    # ------------------------------------------------------------ passivity
    @property
    def is_active(self) -> bool:
        return self.cluster is not None and self.cluster.active is self

    def on_backhaul(self, packet: Packet, src: int) -> None:
        if not self.is_active:
            if packet.protocol == "ctrl":
                msg = packet.payload
                if isinstance(msg, Heartbeat):
                    self._on_peer_heartbeat(msg)
                elif isinstance(msg, CheckpointMsg):
                    self._on_checkpoint(msg)
            return
        super().on_backhaul(packet, src)

    def _on_peer_heartbeat(self, msg: Heartbeat) -> None:
        self._last_primary_beat = self.sim.now

    def _on_checkpoint(self, msg: CheckpointMsg) -> None:
        self._checkpoint = msg.checkpoint
        self.checkpoints_received += 1
        self._last_primary_beat = self.sim.now

    # ------------------------------------------------------------- watchdog
    def enable_ha(self, ha, standby_id: Optional[int] = None) -> None:
        super().enable_ha(ha, standby_id=standby_id)
        self._last_primary_beat = self.sim.now
        self._watchdog = self.sim.periodic_group(
            ha.heartbeat_interval_s, key="ha.heartbeat"
        ).add(self._watch_primary)

    def _watch_primary(self) -> None:
        if not self.alive or self.is_active:
            return
        if self.sim.now - self._last_primary_beat > self.ha.dead_after_s:
            self._takeover()

    def restore(self) -> None:
        # A standby rebooted by fault injection must not read its own
        # downtime as primary silence and usurp a healthy primary.
        self._last_primary_beat = self.sim.now
        super().restore()

    # -------------------------------------------------------------- takeover
    def _takeover(self) -> None:
        """Promote to active and restore state from the last checkpoint."""
        now = self.sim.now
        self.takeovers += 1
        self.takeover_time = now
        self.cluster.promote(self)
        snapshot = self._checkpoint
        self.epoch = (snapshot.epoch + 1) if snapshot is not None else self.epoch + 1
        self._hb_seq = 0
        self.clients.clear()
        self._degraded_claims.clear()
        self._evicted = set(snapshot.evicted_aps) if snapshot is not None else set()
        for ap_id in self.ap_ids:
            # The checkpointed last-seen times are stale by the whole
            # outage; restart the liveness clocks rather than evicting
            # every AP on the first sweep.
            self.ap_last_seen[ap_id] = now
        if snapshot is not None:
            for entry in snapshot.clients:
                state = self.add_client(
                    entry.client, context=self._contexts.get(entry.client)
                )
                state.serving_ap = entry.serving_ap
                state.next_index = entry.next_index
                state.last_switch_time = entry.last_switch_time
                state.switch_count = entry.switch_count
                state.downlink_packets = entry.downlink_packets
                # The restored view is checkpoint-stale until the serving
                # AP's DegradedReport confirms (or corrects) it.
                state.awaiting_reconcile = True
                tracker = state.policy.tracker
                if tracker is not None:
                    for ap_id, readings in sorted(entry.windows.items()):
                        for t, esnr in readings:
                            tracker.update(ap_id, t, esnr)
                for ap_id in self._evicted:
                    state.policy.drop_ap(ap_id)
        self.trace.emit(now, "controller_failover", node=self.node_id,
                        epoch=self.epoch,
                        clients=len(self.clients))
        # Re-register with the APs.  flush=False: the checkpoint restored
        # real index positions, so surviving ring contents are still valid
        # (that is the whole point of a warm standby).
        hello = ControllerHello(controller=self.node_id, epoch=self.epoch,
                                flush=False)
        for ap_id in self.ap_ids:
            self._send(ap_id, hello)
        if self.ha is not None:
            self._open_reconcile_window()
