"""Uplink packet de-duplication at the controller (section 3.2.3).

Every AP that decodes an uplink packet tunnels a copy to the controller,
so the controller must suppress duplicates before forwarding upstream
(duplicate TCP segments would trigger spurious retransmissions at the
remote sender).  The paper uses a hash set keyed by a 48-bit value built
from the source IP address and the IP identification field; we key on
:meth:`repro.net.packet.Packet.dedup_key`, which is exactly that pair.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from ..net.packet import Packet

__all__ = ["Deduplicator"]


class Deduplicator:
    """Bounded-memory duplicate suppressor.

    The IP id field wraps every 65 536 packets per source, so keys are
    only meaningful for a bounded horizon anyway; we evict in FIFO order
    once ``capacity`` keys are held.
    """

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._seen: Set[int] = set()
        self._order: Deque[int] = deque()
        self.accepted = 0
        self.duplicates = 0

    def accept(self, packet: Packet) -> bool:
        """True if this packet is new; False if it is a duplicate."""
        key = packet.dedup_key()
        if key in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(key)
        self._order.append(key)
        if len(self._order) > self.capacity:
            self._seen.discard(self._order.popleft())
        self.accepted += 1
        return True

    @property
    def duplicate_fraction(self) -> float:
        total = self.accepted + self.duplicates
        return self.duplicates / total if total else 0.0

    def __len__(self) -> int:
        return len(self._seen)
