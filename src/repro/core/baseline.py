"""The Enhanced 802.11r comparison scheme (section 5.1 of the paper).

A performance-tuned 802.11r/802.11k baseline:

1. every AP beacons each 100 ms; the client measures per-AP RSSI;
2. the client switches to the strongest AP once the current AP's RSSI
   falls below a threshold, with a one-second time hysteresis;
3. authentication/association state is shared across APs through the
   controller, so reassociation is a single over-the-air exchange.

Unlike WGTT, each AP advertises its own BSSID, downlink traffic flows
only through the associated AP, and only that AP receives (and forwards)
uplink traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..mac.frames import MgmtFrame
from ..net.packet import Packet
from ..sim.engine import EventHandle
from .ap import ApParams, BaseAp
from .client import RoamingPolicy
from .controller import UplinkHandler
from .dedup import Deduplicator
from .messages import AssocNotify, FtRequest, ctrl_packet

__all__ = [
    "BaselineAp",
    "BaselineController",
    "Enhanced80211rPolicy",
    "BaselinePolicyParams",
    "baseline_ap_params",
]


def baseline_ap_params(**overrides) -> ApParams:
    """AP parameters for the baseline: beaconing on, no BA forwarding."""
    defaults = dict(
        beacon_interval_s=0.100,
        ba_forwarding=False,
        driver_queue_capacity=300,
    )
    defaults.update(overrides)
    return ApParams(**defaults)


class BaselineAp(BaseAp):
    """An 802.11r AP: its own BSSID, plain FIFO queues, assoc forwarding."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("monitor", False)
        super().__init__(*args, **kwargs)
        #: Clients currently associated with *this* AP.
        self.associated: set = set()

    def restore(self) -> None:
        if not self.alive:
            # A rebooted AP holds no association state; clients must
            # reassociate over the air.
            self.associated.clear()
        super().restore()

    # ------------------------------------------------------------- downlink
    def handle_downlink_data(self, packet: Packet, src: int) -> None:
        packet.decapsulate()
        client = packet.dst
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        if client not in self.associated:
            return  # stale routing: drop, like a real AP without the STA
        pipe.driver.enqueue(packet)
        self._refill(client)
        self.radio.kick()

    # -------------------------------------------------------------- control
    def handle_ctrl(self, msg, src: int) -> None:
        if isinstance(msg, AssocNotify):
            if msg.ap != self.node_id and msg.client in self.associated:
                # The client moved to another AP: drop it and flush.
                self.associated.discard(msg.client)
                self._flush_client(msg.client)
        elif isinstance(msg, FtRequest):
            # Over-the-DS fast transition: the old AP relayed the client's
            # FT request; install the association and answer over the air.
            self._accept_association(msg.client, self.sim.now)

    def _flush_client(self, client: int) -> None:
        pipe = self.pipelines.get(client)
        if pipe is not None:
            pipe.driver.drain()
            pipe.hw.drain()
            pipe.serving = False
        self.radio.reset_peer(client)

    # ---------------------------------------------------------- association
    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if frame.dst != self.node_id:
            return
        if frame.kind == "ft_request":
            # 802.11r over-the-DS: the client asks its *current* AP to set
            # up a transition to ``target``; the request rides the backhaul.
            target = frame.info.get("target")
            if target is not None and src in self.associated:
                self.send_ctrl(target, FtRequest(client=src))
        elif frame.kind == "assoc_req":
            # Fresh over-the-air association (initial join, or re-scan
            # after a failed handover).  Auth state is pre-shared.
            self._accept_association(src, t)

    def _accept_association(self, client: int, t: float) -> None:
        self.associated.add(client)
        pipe = self.add_client(client)
        pipe.serving = True
        self.radio.send_mgmt(
            MgmtFrame(src=self.node_id, dst=client, kind="assoc_resp")
        )
        self.send_ctrl(self.controller_id, AssocNotify(client=client, ap=self.node_id))
        self.trace.emit(t, "baseline_assoc", ap=self.node_id, client=client)


class BaselineController:
    """Routes downlink traffic to whichever AP each client is associated with."""

    def __init__(self, sim, backhaul, node_id: int, rng, trace=None, **_ignored):
        from ..sim.trace import TraceRecorder

        self.sim = sim
        self.backhaul = backhaul
        self.node_id = node_id
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.assoc_map: Dict[int, int] = {}
        self.dedup = Deduplicator()
        self._uplink_handlers: Dict[int, UplinkHandler] = {}
        self._uplink_default: Optional[UplinkHandler] = None
        self.no_route_drops = 0
        #: False while crashed by fault injection (controller_crash).
        self.alive = True
        self.downlink_dropped_dead = 0
        backhaul.register(node_id, self.on_backhaul)

    # ----------------------------------------------------------- fault hooks
    def fail(self) -> None:
        """Fault injection: the route controller dies (no downlink routing)."""
        self.alive = False

    def restore(self) -> None:
        """Cold restart: association routing is lost until clients
        re-notify through their APs' next AssocNotify."""
        self.alive = True
        self.assoc_map.clear()

    def register_uplink_handler(self, flow_id: int, handler: UplinkHandler) -> None:
        self._uplink_handlers[flow_id] = handler

    def set_default_uplink_handler(self, handler: UplinkHandler) -> None:
        self._uplink_default = handler

    def send_downlink(self, packet: Packet) -> None:
        if not self.alive:
            self.downlink_dropped_dead += 1
            return
        ap_id = self.assoc_map.get(packet.dst)
        if ap_id is None:
            self.no_route_drops += 1
            self.trace.emit(self.sim.now, "dl_no_coverage", client=packet.dst)
            return
        packet.encapsulate(self.node_id, ap_id)
        self.backhaul.send(self.node_id, ap_id, packet)

    def on_backhaul(self, packet: Packet, src: int) -> None:
        if not self.alive:
            return
        if packet.protocol == "ctrl":
            msg = packet.payload
            if isinstance(msg, AssocNotify) and msg.ap is not None:
                old = self.assoc_map.get(msg.client)
                self.assoc_map[msg.client] = msg.ap
                self.trace.emit(self.sim.now, "ap_switch", client=msg.client,
                                ap=msg.ap)
                if old is not None and old != msg.ap:
                    # Tell the old AP to flush the client's queues.
                    self.backhaul.send(
                        self.node_id, old,
                        ctrl_packet(self.node_id, old, msg, self.sim.now),
                    )
            return
        packet.decapsulate()
        if not self.dedup.accept(packet):
            return
        t = self.sim.now
        self.trace.emit(t, "ul_delivered", client=packet.src, flow=packet.flow_id,
                        seq=packet.seq, via_ap=src, bytes=packet.size_bytes)
        handler = self._uplink_handlers.get(packet.flow_id, self._uplink_default)
        if handler is not None:
            handler(packet, t)

    def serving_ap(self, client: int) -> Optional[int]:
        return self.assoc_map.get(client)


@dataclass
class BaselinePolicyParams:
    """Client-side roaming knobs for Enhanced 802.11r.

    ``rssi_threshold_db`` is the switch trigger of scheme rule (2);
    ``hysteresis_s`` is its one-second time hysteresis.  RSSI here is in
    SNR-referenced dB (receiver noise floor subtracted).
    """

    rssi_threshold_db: float = 5.0
    margin_db: float = 3.0
    hysteresis_s: float = 1.0
    ewma_weight: float = 0.7
    #: RSSI entries older than this are considered stale (AP out of range).
    stale_after_s: float = 0.35
    reassoc_timeout_s: float = 0.05
    max_reassoc_retries: int = 8
    #: Minimum RSSI to attempt a fresh association when unassociated.
    assoc_floor_db: float = 8.0
    #: Time spent scanning before a fresh association after the client has
    #: lost its AP entirely (channel dwell across the 2.4 GHz band).
    rescan_delay_s: float = 1.0


class Enhanced80211rPolicy(RoamingPolicy):
    """Beacon-driven RSSI-threshold handover with one-second hysteresis."""

    def __init__(self, params: Optional[BaselinePolicyParams] = None):
        # Imported lazily: repro.policies imports repro.core.ap_selection,
        # so a module-level import here would form a cycle through
        # repro.core.__init__.
        from ..policies.baseline80211r import ThresholdScanRule

        self.params = params or BaselinePolicyParams()
        self.rule = ThresholdScanRule(
            threshold_db=self.params.rssi_threshold_db,
            margin_db=self.params.margin_db,
            hysteresis_s=self.params.hysteresis_s,
        )
        self._rssi: Dict[int, float] = {}
        self._rssi_time: Dict[int, float] = {}
        self._last_switch = -1e9
        self._target: Optional[int] = None
        self._retries = 0
        self._timer: Optional[EventHandle] = None
        self._scan_until = -1e9
        self.handover_attempts = 0
        self.handover_failures = 0

    # -------------------------------------------------------------- tracking
    def on_beacon(self, ap_id: int, rssi_db: float, t: float) -> None:
        w = self.params.ewma_weight
        if ap_id in self._rssi and t - self._rssi_time[ap_id] < 1.0:
            self._rssi[ap_id] = w * self._rssi[ap_id] + (1 - w) * rssi_db
        else:
            self._rssi[ap_id] = rssi_db
        self._rssi_time[ap_id] = t
        self._decide(t)

    def _fresh_rssi(self, t: float) -> Dict[int, float]:
        cutoff = t - self.params.stale_after_s
        return {
            ap: rssi
            for ap, rssi in self._rssi.items()
            if self._rssi_time[ap] >= cutoff
        }

    def _decide(self, t: float) -> None:
        if self._target is not None:
            return  # reassociation already in progress
        if t < self._scan_until:
            return  # still scanning after losing the previous AP
        fresh = self._fresh_rssi(t)
        if not fresh:
            return
        client = self.client
        if not client.associated:
            best_ap, best_rssi = max(fresh.items(), key=lambda kv: kv[1])
            if best_rssi >= self.params.assoc_floor_db:
                self._start_reassoc(best_ap, t)
            return
        # Rule (2) -- threshold, margin, and one-second hysteresis -- is
        # shared with the controller-side baseline-80211r policy entry.
        target = self.rule.pick_target(
            fresh, client.current_bssid, self._last_switch, t
        )
        if target is not None:
            self._start_reassoc(target, t)

    # ---------------------------------------------------------- reassociation
    def _start_reassoc(self, ap_id: int, t: float) -> None:
        self._target = ap_id
        self._retries = 0
        self.handover_attempts += 1
        self._send_reassoc()

    def _send_reassoc(self) -> None:
        client = self.client
        if client.associated:
            # Over-the-DS fast transition: the FT request travels over the
            # *current* (possibly dying) link; the current AP relays it to
            # the target over the backhaul.
            client.radio.send_mgmt(
                MgmtFrame(
                    src=client.node_id,
                    dst=client.current_bssid,
                    kind="ft_request",
                    info={"target": self._target},
                )
            )
        else:
            client.radio.send_mgmt(
                MgmtFrame(src=client.node_id, dst=self._target, kind="assoc_req")
            )
        self._timer = client.sim.schedule(
            self.params.reassoc_timeout_s, self._reassoc_timeout
        )

    def _reassoc_timeout(self) -> None:
        if self._target is None:
            return
        self._retries += 1
        if self._retries > self.params.max_reassoc_retries:
            # Handover failed (the Fig. 4(a) case): the FT request could
            # not get through the dying old link.  The client loses the
            # association and must re-scan from scratch.
            self.handover_failures += 1
            now = self.client.sim.now
            self.client.trace.emit(
                now, "handover_failed",
                client=self.client.node_id, target=self._target,
            )
            self._target = None
            if self.client.associated:
                self.client.set_association(None)
                self._scan_until = now + self.params.rescan_delay_s
            return
        self._send_reassoc()

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if frame.kind != "assoc_resp" or src != self._target:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._target = None
        self._last_switch = t
        self.client.set_association(src, t)
