"""Access-point nodes.

:class:`BaseAp` owns an :class:`ApRadio` and the driver/NIC queue stages
shared by every AP flavour.  :class:`WgttAp` adds the WGTT data plane: the
per-client cyclic queue, the stop/start switching protocol, per-frame CSI
reporting, and block-ACK forwarding.  The Enhanced 802.11r baseline AP
lives in :mod:`repro.core.baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mac.frames import Beacon, BlockAck, MgmtFrame, Mpdu
from ..mac.medium import Medium
from ..mac.radio import Radio
from ..mac.rate_control import EsnrRateControl
from ..net.ethernet import Backhaul
from ..net.packet import Packet
from ..net.queues import DropTailQueue
from ..phy.antenna import ParabolicAntenna
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .ap_selection import EsnrWindow
from .cyclic_queue import CyclicQueue
from .messages import (
    ApHello,
    AssocSync,
    BaForward,
    ControllerHello,
    CsiReport,
    DegradedEsnr,
    DegradedReport,
    FlushClient,
    Heartbeat,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)

__all__ = ["ApParams", "ApRadio", "BaseAp", "WgttAp", "ClientPipeline"]

Vec3 = Tuple[float, float, float]


@dataclass
class ApParams:
    """Queue sizes and processing latencies of one AP.

    The stop-processing constants are calibrated against Table 1 of the
    paper: the measured stop->ack execution time is 17-21 ms across
    offered loads, dominated by the ioctl round trip into the kernel and
    the per-packet filtering of the driver transmit queue.
    """

    driver_queue_capacity: int = 200
    hw_queue_capacity: int = 32
    stop_proc_base_s: float = 12e-3
    stop_proc_per_pkt_s: float = 25e-6
    stop_proc_jitter_s: float = 2e-3
    start_proc_s: float = 1.5e-3
    #: After stop(c) the NIC hardware queue keeps draining for about this
    #: long (the paper measures ~6 ms); whatever is still pending is then
    #: flushed so the old AP stops burning airtime on its inferior link.
    stop_drain_window_s: float = 8e-3
    csi_report_min_interval_s: float = 1e-3
    ba_forwarding: bool = True
    beacon_interval_s: Optional[float] = None
    tx_power_dbm: float = 18.0
    #: "minstrel" (the drivers' default, as in the testbed) or "esnr"
    #: (oracle rate control fed by the CSI pipeline) -- used by the
    #: rate-adaptation-vs-AP-selection ablation.
    rate_control: str = "minstrel"


@dataclass
class ClientPipeline:
    """Per-client downlink queue stack inside one AP (Fig. 7)."""

    cyclic: CyclicQueue
    driver: DropTailQueue
    hw: DropTailQueue
    serving: bool = False


class ApRadio(Radio):
    """AP-side MAC: pulls from the owner's per-client NIC queues."""

    def __init__(self, owner: "BaseAp", **kwargs):
        self.owner = owner
        super().__init__(**kwargs)
        self._rr_cursor = 0

    def _select_peer(self) -> Optional[int]:
        clients = self.owner.clients_with_hw_backlog()
        if not clients:
            return None
        # Round-robin so one client's backlog cannot starve another.
        self._rr_cursor = (self._rr_cursor + 1) % len(clients)
        return clients[self._rr_cursor]

    def _pull_packets(self, peer_id: int, max_n: int) -> List[Packet]:
        return self.owner.pull_hw(peer_id, max_n)

    def _unpull_packet(self, peer_id: int, packet: Packet) -> None:
        self.owner.unpull_hw(peer_id, packet)

    def _deliver(self, packet: Packet, src: int, t: float) -> None:
        self.owner.on_uplink_data(packet, src, t)

    def _on_peer_frame_decoded(self, src: int, t: float) -> None:
        self.owner.on_client_frame_decoded(src, t)

    def on_overheard_block_ack(self, ba: BlockAck, t: float) -> None:
        self.owner.on_overheard_ba(ba, t)

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        self.owner.on_mgmt(frame, src, t)

    def _on_mpdu_acked(self, peer_id: int, mpdu: Mpdu, t: float) -> None:
        self.owner.on_downlink_acked(peer_id, mpdu.packet, t)


class BaseAp:
    """Common AP machinery: radio, queue stages, backhaul, beacons."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        backhaul: Backhaul,
        node_id: int,
        controller_id: int,
        position: Vec3,
        antenna: ParabolicAntenna,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        bssid: Optional[int] = None,
        params: Optional[ApParams] = None,
        monitor: bool = False,
    ):
        self.sim = sim
        self.medium = medium
        self.backhaul = backhaul
        self.node_id = node_id
        self.controller_id = controller_id
        self.position_v = position
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.params = params or ApParams()
        if self.params.rate_control == "esnr":
            rate_factory = EsnrRateControl
        else:
            rate_factory = None  # Radio defaults to MinstrelLite
        self.radio = ApRadio(
            owner=self,
            sim=sim,
            medium=medium,
            node_id=node_id,
            rng=rng,
            is_ap=True,
            position_fn=lambda t: position,
            trace=self.trace,
            bssid=bssid,
            antenna=antenna,
            tx_power_dbm=self.params.tx_power_dbm,
            monitor=monitor,
            rate_ctrl_factory=rate_factory,
        )
        self.pipelines: Dict[int, ClientPipeline] = {}
        #: client -> node id of the AP currently serving it.
        self.serving_map: Dict[int, Optional[int]] = {}
        #: False while crashed by fault injection; gates every data/control
        #: path so a dead AP is inert without unscheduling its timers.
        self.alive = True
        #: Armed :class:`~repro.invariants.InvariantSuite` (or None).
        self.invariants = None
        backhaul.register(node_id, self.on_backhaul)
        if self.params.beacon_interval_s:
            # Jittered start so the eight APs' beacons interleave.
            sim.schedule(
                float(rng.uniform(0.0, self.params.beacon_interval_s)),
                self._beacon_tick,
            )
        self.downlink_delivered = 0

    # ------------------------------------------------------------- pipelines
    def add_client(self, client_id: int) -> ClientPipeline:
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            pipe = ClientPipeline(
                cyclic=CyclicQueue(),
                driver=DropTailQueue(self.params.driver_queue_capacity, name="driver"),
                hw=DropTailQueue(self.params.hw_queue_capacity, name="hw"),
            )
            self.pipelines[client_id] = pipe
        return pipe

    def clients_with_hw_backlog(self) -> List[int]:
        return [c for c, p in self.pipelines.items() if len(p.hw) > 0]

    def pull_hw(self, client_id: int, max_n: int) -> List[Packet]:
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            return []
        out = []
        for _ in range(max_n):
            packet = pipe.hw.dequeue()
            if packet is None:
                break
            out.append(packet)
        self._refill(client_id)
        return out

    def unpull_hw(self, client_id: int, packet: Packet) -> None:
        pipe = self.pipelines.get(client_id)
        if pipe is not None:
            pipe.hw.requeue_front(packet)

    def _refill(self, client_id: int) -> None:
        """Move packets down the stack: cyclic -> driver -> NIC."""
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            return
        if pipe.serving:
            while not pipe.driver.is_full:
                packet = pipe.cyclic.pop_next()
                if packet is None:
                    break
                pipe.driver.enqueue(packet)
        while not pipe.hw.is_full:
            packet = pipe.driver.dequeue()
            if packet is None:
                break
            pipe.hw.enqueue(packet)

    # ----------------------------------------------------------- fault hooks
    def fail(self) -> None:
        """Crash the AP: radio off, every data/control path inert.

        Queue contents are retained only so that :meth:`restore` can model
        a cold reboot explicitly; nothing is transmitted or received while
        down.  Idempotent.
        """
        if not self.alive:
            return
        if self.invariants is not None:
            now = self.sim.now
            for client, pipe in self.pipelines.items():
                if pipe.serving:
                    self.invariants.on_serving_stop(now, self.node_id, client)
        self.alive = False
        self.radio.power_off()

    def restore(self) -> None:
        """Reboot a crashed AP with cold state (empty queues, no clients).

        Association/serving state rebuilds through the normal control
        plane (AssocSync replication, start(c, k) handoffs).  Idempotent.
        """
        if self.alive:
            return
        self.alive = True
        for client in list(self.pipelines):
            self.radio.reset_peer(client)
        self.pipelines.clear()
        self.serving_map.clear()
        self.radio.power_on()
        self._on_restored()

    def _on_restored(self) -> None:
        """Hook: liveness re-registration after a reboot (per AP flavour)."""

    # --------------------------------------------------------------- beacons
    def _beacon_tick(self) -> None:
        if self.alive:
            self.radio.send_beacon(Beacon(src=self.node_id, bssid=self.radio.bssid))
        self.sim.schedule(self.params.beacon_interval_s, self._beacon_tick)

    # ------------------------------------------------------------ data plane
    def on_uplink_data(self, packet: Packet, client: int, t: float) -> None:
        """A client data packet was decoded: tunnel it to the controller."""
        if not self.alive:
            return
        packet.encapsulate(self.node_id, self.controller_id)
        self.backhaul.send(self.node_id, self.controller_id, packet)

    def on_downlink_acked(self, client: int, packet: Packet, t: float) -> None:
        self.downlink_delivered += 1

    def on_client_frame_decoded(self, client: int, t: float) -> None:
        """Hook: WGTT APs report CSI from here."""

    def on_overheard_ba(self, ba: BlockAck, t: float) -> None:
        """Hook: WGTT APs forward overheard BAs from here."""

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        """Hook: association handling (overridden per AP flavour)."""

    # --------------------------------------------------------------- control
    def on_backhaul(self, packet: Packet, src: int) -> None:
        if not self.alive:
            return  # crashed: packets already in flight die at the NIC
        if packet.protocol == "ctrl":
            self.handle_ctrl(packet.payload, src)
        else:
            self.handle_downlink_data(packet, src)

    def handle_ctrl(self, msg, src: int) -> None:
        raise NotImplementedError

    def handle_downlink_data(self, packet: Packet, src: int) -> None:
        raise NotImplementedError

    def send_ctrl(self, dst: int, msg) -> None:
        if not self.alive:
            return  # e.g. a delayed stop->start forward after a crash
        self.backhaul.send(
            self.node_id, dst, ctrl_packet(self.node_id, dst, msg, self.sim.now)
        )


class WgttAp(BaseAp):
    """A WGTT access point (sections 3 and 4.2 of the paper)."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("monitor", True)
        super().__init__(*args, **kwargs)
        self._last_csi_report: Dict[int, float] = {}
        #: HA knobs (:class:`~repro.core.ha.HaParams`); None keeps every
        #: degraded-mode code path unreachable on default drives.
        self.ha = None
        #: True while the AP serves autonomously (controller presumed dead).
        self.degraded = False
        self._hb_last = 0.0
        self._ha_task = None
        #: Local per-client ESNR windows (fed only when HA is armed);
        #: degraded mode selects on these instead of controller CSI.
        self._local_esnr: Dict[int, EsnrWindow] = {}
        #: client -> {ap -> (time, esnr_db)} gossip heard while degraded.
        self._gossip: Dict[int, Dict[int, Tuple[float, float]]] = {}
        self._last_local_handover: Dict[int, float] = {}
        self.degraded_entries = 0
        self.degraded_exits = 0
        self.degraded_handovers = 0
        self.flushes_applied = 0

    def restore(self) -> None:
        if not self.alive:
            self._last_csi_report.clear()
        super().restore()

    def _on_restored(self) -> None:
        # Stale degraded-mode bookkeeping from before the crash must not
        # make the rebooted AP instantly declare the controller dead (the
        # heartbeat clock restarts now), nor steer local handovers on
        # pre-crash evidence.
        self._hb_last = self.sim.now
        self.degraded = False
        self._local_esnr.clear()
        self._gossip.clear()
        self._last_local_handover.clear()
        # Announce the reboot so the controller's liveness tracking
        # readmits this AP immediately instead of holding it evicted
        # until a CSI report happens to get through.
        self.send_ctrl(self.controller_id, ApHello(ap=self.node_id))

    # ------------------------------------------------------------- HA layer
    def enable_ha(self, ha) -> None:
        """Arm degraded-mode fallback (never called on default drives)."""
        self.ha = ha
        self._hb_last = self.sim.now
        if ha.ap_degraded:
            # All APs share one degraded-mode cadence: a PeriodicGroup
            # puts a single event on the heap per tick instead of one
            # per AP (they all use the same config interval).
            self._ha_task = self.sim.periodic_group(
                ha.degraded_eval_interval_s, key="ha.ap_degraded"
            ).add(self._ha_tick)

    def _ha_tick(self) -> None:
        if not self.alive or self.ha is None:
            return
        now = self.sim.now
        if not self.degraded:
            if now - self._hb_last > self.ha.dead_after_s:
                self._enter_degraded(now)
        else:
            self._degraded_evaluate(now)

    def _enter_degraded(self, now: float) -> None:
        """Missed heartbeats: fall back to autonomous serving.

        Keep transmitting for currently-served clients and run a local
        gossip-fed handover (the Enhanced-802.11r discipline) until a
        controller reappears.
        """
        self.degraded = True
        self.degraded_entries += 1
        self.trace.emit(now, "ap_degraded_enter", ap=self.node_id)

    def _exit_degraded(self, now: float) -> None:
        self.degraded = False
        self.degraded_exits += 1
        self._gossip.clear()
        self.trace.emit(now, "ap_degraded_exit", ap=self.node_id)

    def _on_heartbeat(self, msg: Heartbeat) -> None:
        now = self.sim.now
        self._hb_last = now
        self.controller_id = msg.controller
        if self.degraded:
            # The ControllerHello may have been lost: re-subordinate off
            # the heartbeat itself and report what we are serving.
            self._exit_degraded(now)
            self._send_degraded_reports(now)

    def _on_controller_hello(self, msg: ControllerHello) -> None:
        """A controller (re)appeared: re-register and reconcile.

        Setting ``controller_id`` re-addresses the CSI/uplink tunnels to
        the new incarnation (a standby has a different node id).  A cold
        restart (``flush=True``) restarts index assignment at 0, so ring
        state for clients this AP is *not* serving is discarded; serving
        claims survive and are reported for the controller to arbitrate.
        """
        now = self.sim.now
        self._hb_last = now
        self.controller_id = msg.controller
        if msg.flush:
            for client, pipe in list(self.pipelines.items()):
                if not pipe.serving:
                    self._flush_client(client)
        if self.degraded:
            self._exit_degraded(now)
        self._send_degraded_reports(now)

    def _send_degraded_reports(self, now: float) -> None:
        """Tell the controller what this AP is serving and where the ring is."""
        for client, pipe in self.pipelines.items():
            if not pipe.serving:
                continue
            if len(pipe.driver) > 0:
                read_index = pipe.driver.peek().wgtt_index
            else:
                read_index = pipe.cyclic.read_index
            window = self._local_esnr.get(client)
            esnr = window.median(now) if window is not None else None
            self.send_ctrl(
                self.controller_id,
                DegradedReport(
                    client=client,
                    ap=self.node_id,
                    read_index=read_index,
                    next_index=pipe.cyclic.next_insert_index,
                    esnr_db=esnr if esnr is not None else -999.0,
                ),
            )

    def _flush_client(self, client: Optional[int]) -> None:
        """Drop all queue/serving state for ``client`` (None = every client)."""
        if client is None:
            for client_id in list(self.pipelines):
                self._flush_client(client_id)
            return
        pipe = self.pipelines.get(client)
        if pipe is None:
            return
        if pipe.serving and self.invariants is not None:
            self.invariants.on_serving_stop(self.sim.now, self.node_id, client)
        pipe.serving = False
        pipe.driver.drain()
        pipe.hw.drain()
        self.radio.flush_retries(client)
        # clear() keeps the insert cursor; a genuinely fresh ring is needed
        # so a cold controller restarting at index 0 never meets leftovers.
        pipe.cyclic = CyclicQueue()
        self.serving_map.pop(client, None)
        self.flushes_applied += 1

    def _note_local_esnr(self, client: int, t: float, esnr: float) -> None:
        window = self._local_esnr.get(client)
        if window is None:
            window = EsnrWindow(window_s=0.010)
            self._local_esnr[client] = window
        window.add(t, esnr)
        if self.degraded:
            msg = DegradedEsnr(client=client, ap=self.node_id,
                               esnr_db=esnr, time=t)
            for ap_id in self._other_ap_ids():
                self.send_ctrl(ap_id, msg)

    def _on_degraded_esnr(self, msg: DegradedEsnr) -> None:
        self._gossip.setdefault(msg.client, {})[msg.ap] = (msg.time, msg.esnr_db)

    def _degraded_evaluate(self, now: float) -> None:
        """Local handover loop: hand clients to a clearly-stronger neighbour."""
        ha = self.ha
        for client, pipe in list(self.pipelines.items()):
            if not pipe.serving:
                continue
            window = self._local_esnr.get(client)
            mine = window.median(now) if window is not None else None
            best_ap = None
            best_esnr = None
            for ap_id, (t, esnr) in self._gossip.get(client, {}).items():
                if now - t > 0.25:
                    continue  # stale gossip: that AP stopped hearing the client
                if best_esnr is None or esnr > best_esnr:
                    best_ap, best_esnr = ap_id, esnr
            if best_ap is None:
                continue
            if mine is not None and best_esnr - mine < ha.degraded_margin_db:
                continue
            last = self._last_local_handover.get(client, -1e9)
            if now - last < ha.degraded_hysteresis_s:
                continue
            self._local_handover(client, pipe, best_ap, now)

    def _local_handover(self, client: int, pipe: ClientPipeline,
                        new_ap: int, now: float) -> None:
        """Degraded-mode handover: local stop(c) -> start(c, k) at the peer.

        Reuses the exact stop semantics of :meth:`_handle_stop` (driver-head
        k, drain, delayed StartMsg) so the index handoff stays lossless and
        duplicate-free even with no controller arbitrating.
        """
        self._last_local_handover[client] = now
        self.degraded_handovers += 1
        self.trace.emit(now, "degraded_handover", ap=self.node_id,
                        client=client, new=new_ap)
        if self.invariants is not None:
            self.invariants.on_serving_stop(now, self.node_id, client)
        pipe.serving = False
        if len(pipe.driver) > 0:
            k = pipe.driver.peek().wgtt_index
        else:
            k = pipe.cyclic.read_index
        n_filtered = len(pipe.driver)
        pipe.driver.drain()
        delay = (
            self.params.stop_proc_base_s
            + self.params.stop_proc_per_pkt_s * n_filtered
            + float(self.rng.uniform(0.0, self.params.stop_proc_jitter_s))
        )
        self.sim.schedule(
            delay, self.send_ctrl, new_ap, StartMsg(client=client, index=k)
        )
        self.sim.schedule(
            self.params.stop_drain_window_s, self._flush_after_stop, client
        )
        self.serving_map[client] = new_ap

    # ------------------------------------------------------------ downlink
    def handle_downlink_data(self, packet: Packet, src: int) -> None:
        """Tunneled packet from the controller: store it in the ring."""
        packet.decapsulate()
        client = packet.dst
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        pipe.cyclic.insert(packet)
        if pipe.serving:
            self._refill(client)
            self.radio.kick()

    # ------------------------------------------------------------- control
    def handle_ctrl(self, msg, src: int) -> None:
        if isinstance(msg, StopMsg):
            self._handle_stop(msg)
        elif isinstance(msg, StartMsg):
            self._handle_start(msg)
        elif isinstance(msg, ServingUpdate):
            self.serving_map[msg.client] = msg.ap
        elif isinstance(msg, BaForward):
            ba = BlockAck(
                src=msg.client,
                dst=self.node_id,
                start_seq=msg.start_seq,
                bitmap=msg.bitmap,
            )
            self.radio.apply_forwarded_block_ack(ba, self.sim.now)
            self.trace.emit(self.sim.now, "ba_forward_applied", ap=self.node_id,
                            client=msg.client)
        elif isinstance(msg, AssocSync):
            self.add_client(msg.client)
        elif isinstance(msg, Heartbeat):
            self._on_heartbeat(msg)
        elif isinstance(msg, ControllerHello):
            self._on_controller_hello(msg)
        elif isinstance(msg, DegradedEsnr):
            self._on_degraded_esnr(msg)
        elif isinstance(msg, FlushClient):
            self._flush_client(msg.client)

    def _handle_stop(self, msg: StopMsg) -> None:
        """stop(c): cease serving, hand the queue state to the new AP.

        The NIC hardware queue keeps draining over the air (the paper lets
        this ~6 ms backlog go out on the old link); the driver queue is
        filtered out, and its head index k is sent to the new AP after the
        kernel-query delay that Table 1 measures.
        """
        client = msg.client
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        if pipe.serving and self.invariants is not None:
            self.invariants.on_serving_stop(self.sim.now, self.node_id, client)
        pipe.serving = False
        if len(pipe.driver) > 0:
            k = pipe.driver.peek().wgtt_index
        else:
            k = pipe.cyclic.read_index
        n_filtered = len(pipe.driver)
        pipe.driver.drain()
        delay = (
            self.params.stop_proc_base_s
            + self.params.stop_proc_per_pkt_s * n_filtered
            + float(self.rng.uniform(0.0, self.params.stop_proc_jitter_s))
        )
        self.trace.emit(self.sim.now, "stop_processed", ap=self.node_id,
                        client=client, k=k, filtered=n_filtered)
        self.sim.schedule(
            delay, self.send_ctrl, msg.new_ap, StartMsg(client=client, index=k)
        )
        self.sim.schedule(
            self.params.stop_drain_window_s, self._flush_after_stop, client
        )

    def _flush_after_stop(self, client: int) -> None:
        """End the post-stop drain: drop anything still bound for ``client``."""
        pipe = self.pipelines.get(client)
        if pipe is None or pipe.serving:
            return  # a start(c, k) took over in the meantime
        pipe.hw.drain()
        self.radio.flush_retries(client)

    def _handle_start(self, msg: StartMsg) -> None:
        """start(c, k): begin transmitting from ring index k immediately."""
        client = msg.client
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        pipe.driver.drain()
        pipe.hw.drain()
        pipe.cyclic.set_read_index(msg.index)
        if not pipe.serving and self.invariants is not None:
            self.invariants.on_serving_start(self.sim.now, self.node_id, client)
        pipe.serving = True
        self.serving_map[client] = self.node_id
        self.trace.emit(self.sim.now, "start_processed", ap=self.node_id,
                        client=client, k=msg.index)
        self.sim.schedule(self.params.start_proc_s, self._start_serving, client)

    def _start_serving(self, client: int) -> None:
        pipe = self.pipelines.get(client)
        if pipe is None or not pipe.serving:
            return
        self._refill(client)
        self.radio.kick()
        self.send_ctrl(
            self.controller_id, SwitchAck(client=client, ap=self.node_id)
        )

    # -------------------------------------------------------------- CSI path
    def on_client_frame_decoded(self, client: int, t: float) -> None:
        """Measure CSI of a decoded client frame and report it (rate-limited)."""
        pair = self.medium.link_between(self.node_id, client)
        if pair is None:
            return  # not a client (e.g. another AP's BA)
        last = self._last_csi_report.get(client, -1.0)
        if t - last < self.params.csi_report_min_interval_s:
            return
        self._last_csi_report[client] = t
        link, _uplink = pair
        reading = link.measure_csi(t, self.node_id, client)
        # Feed the local rate controller too (a no-op for Minstrel; the
        # ESNR-oracle controller keys its MCS choice on this).
        esnr = reading.esnr_db()
        self.radio.peer(client).rate_ctrl.on_esnr(esnr)
        if self.ha is not None:
            self._note_local_esnr(client, t, esnr)
        self.send_ctrl(self.controller_id, CsiReport(reading=reading))

    # ------------------------------------------------------- BA forwarding
    def on_overheard_ba(self, ba: BlockAck, t: float) -> None:
        if not self.params.ba_forwarding:
            return
        client = ba.src
        if self.medium.link_between(self.node_id, client) is None:
            return  # BA from another AP, not from a client
        serving = self.serving_map.get(client)
        if serving is None or serving == self.node_id:
            return
        self.trace.emit(t, "ba_forwarded", from_ap=self.node_id, to_ap=serving,
                        client=client)
        self.send_ctrl(
            serving,
            BaForward(client=client, start_seq=ba.start_seq, bitmap=ba.bitmap),
        )

    # ---------------------------------------------------------- association
    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if frame.kind in ("assoc_req", "reassoc_req") and frame.dst in (
            self.node_id,
            self.radio.bssid,
        ):
            # Thin-AP association: accept and replicate to the other APs.
            self.add_client(src)
            self.radio.send_mgmt(
                MgmtFrame(src=self.node_id, dst=src, kind="assoc_resp")
            )
            sync = AssocSync(client=src, aid=src)
            for ap_id in self._other_ap_ids():
                self.send_ctrl(ap_id, sync)

    def _other_ap_ids(self) -> List[int]:
        return [
            r.node_id
            for r in self.medium.radios()
            if r.is_ap and r.node_id != self.node_id
            and self.backhaul.is_registered(r.node_id)
        ]
