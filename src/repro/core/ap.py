"""Access-point nodes.

:class:`BaseAp` owns an :class:`ApRadio` and the driver/NIC queue stages
shared by every AP flavour.  :class:`WgttAp` adds the WGTT data plane: the
per-client cyclic queue, the stop/start switching protocol, per-frame CSI
reporting, and block-ACK forwarding.  The Enhanced 802.11r baseline AP
lives in :mod:`repro.core.baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mac.frames import Beacon, BlockAck, MgmtFrame, Mpdu
from ..mac.medium import Medium
from ..mac.radio import Radio
from ..mac.rate_control import EsnrRateControl
from ..net.ethernet import Backhaul
from ..net.packet import Packet
from ..net.queues import DropTailQueue
from ..phy.antenna import ParabolicAntenna
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .cyclic_queue import CyclicQueue
from .messages import (
    AssocSync,
    BaForward,
    CsiReport,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)

__all__ = ["ApParams", "ApRadio", "BaseAp", "WgttAp", "ClientPipeline"]

Vec3 = Tuple[float, float, float]


@dataclass
class ApParams:
    """Queue sizes and processing latencies of one AP.

    The stop-processing constants are calibrated against Table 1 of the
    paper: the measured stop->ack execution time is 17-21 ms across
    offered loads, dominated by the ioctl round trip into the kernel and
    the per-packet filtering of the driver transmit queue.
    """

    driver_queue_capacity: int = 200
    hw_queue_capacity: int = 32
    stop_proc_base_s: float = 12e-3
    stop_proc_per_pkt_s: float = 25e-6
    stop_proc_jitter_s: float = 2e-3
    start_proc_s: float = 1.5e-3
    #: After stop(c) the NIC hardware queue keeps draining for about this
    #: long (the paper measures ~6 ms); whatever is still pending is then
    #: flushed so the old AP stops burning airtime on its inferior link.
    stop_drain_window_s: float = 8e-3
    csi_report_min_interval_s: float = 1e-3
    ba_forwarding: bool = True
    beacon_interval_s: Optional[float] = None
    tx_power_dbm: float = 18.0
    #: "minstrel" (the drivers' default, as in the testbed) or "esnr"
    #: (oracle rate control fed by the CSI pipeline) -- used by the
    #: rate-adaptation-vs-AP-selection ablation.
    rate_control: str = "minstrel"


@dataclass
class ClientPipeline:
    """Per-client downlink queue stack inside one AP (Fig. 7)."""

    cyclic: CyclicQueue
    driver: DropTailQueue
    hw: DropTailQueue
    serving: bool = False


class ApRadio(Radio):
    """AP-side MAC: pulls from the owner's per-client NIC queues."""

    def __init__(self, owner: "BaseAp", **kwargs):
        self.owner = owner
        super().__init__(**kwargs)
        self._rr_cursor = 0

    def _select_peer(self) -> Optional[int]:
        clients = self.owner.clients_with_hw_backlog()
        if not clients:
            return None
        # Round-robin so one client's backlog cannot starve another.
        self._rr_cursor = (self._rr_cursor + 1) % len(clients)
        return clients[self._rr_cursor]

    def _pull_packets(self, peer_id: int, max_n: int) -> List[Packet]:
        return self.owner.pull_hw(peer_id, max_n)

    def _unpull_packet(self, peer_id: int, packet: Packet) -> None:
        self.owner.unpull_hw(peer_id, packet)

    def _deliver(self, packet: Packet, src: int, t: float) -> None:
        self.owner.on_uplink_data(packet, src, t)

    def _on_peer_frame_decoded(self, src: int, t: float) -> None:
        self.owner.on_client_frame_decoded(src, t)

    def on_overheard_block_ack(self, ba: BlockAck, t: float) -> None:
        self.owner.on_overheard_ba(ba, t)

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        self.owner.on_mgmt(frame, src, t)

    def _on_mpdu_acked(self, peer_id: int, mpdu: Mpdu, t: float) -> None:
        self.owner.on_downlink_acked(peer_id, mpdu.packet, t)


class BaseAp:
    """Common AP machinery: radio, queue stages, backhaul, beacons."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        backhaul: Backhaul,
        node_id: int,
        controller_id: int,
        position: Vec3,
        antenna: ParabolicAntenna,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        bssid: Optional[int] = None,
        params: Optional[ApParams] = None,
        monitor: bool = False,
    ):
        self.sim = sim
        self.medium = medium
        self.backhaul = backhaul
        self.node_id = node_id
        self.controller_id = controller_id
        self.position_v = position
        self.rng = rng
        self.trace = trace if trace is not None else TraceRecorder(keep_kinds=set())
        self.params = params or ApParams()
        if self.params.rate_control == "esnr":
            rate_factory = EsnrRateControl
        else:
            rate_factory = None  # Radio defaults to MinstrelLite
        self.radio = ApRadio(
            owner=self,
            sim=sim,
            medium=medium,
            node_id=node_id,
            rng=rng,
            is_ap=True,
            position_fn=lambda t: position,
            trace=self.trace,
            bssid=bssid,
            antenna=antenna,
            tx_power_dbm=self.params.tx_power_dbm,
            monitor=monitor,
            rate_ctrl_factory=rate_factory,
        )
        self.pipelines: Dict[int, ClientPipeline] = {}
        #: client -> node id of the AP currently serving it.
        self.serving_map: Dict[int, Optional[int]] = {}
        #: False while crashed by fault injection; gates every data/control
        #: path so a dead AP is inert without unscheduling its timers.
        self.alive = True
        backhaul.register(node_id, self.on_backhaul)
        if self.params.beacon_interval_s:
            # Jittered start so the eight APs' beacons interleave.
            sim.schedule(
                float(rng.uniform(0.0, self.params.beacon_interval_s)),
                self._beacon_tick,
            )
        self.downlink_delivered = 0

    # ------------------------------------------------------------- pipelines
    def add_client(self, client_id: int) -> ClientPipeline:
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            pipe = ClientPipeline(
                cyclic=CyclicQueue(),
                driver=DropTailQueue(self.params.driver_queue_capacity, name="driver"),
                hw=DropTailQueue(self.params.hw_queue_capacity, name="hw"),
            )
            self.pipelines[client_id] = pipe
        return pipe

    def clients_with_hw_backlog(self) -> List[int]:
        return [c for c, p in self.pipelines.items() if len(p.hw) > 0]

    def pull_hw(self, client_id: int, max_n: int) -> List[Packet]:
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            return []
        out = []
        for _ in range(max_n):
            packet = pipe.hw.dequeue()
            if packet is None:
                break
            out.append(packet)
        self._refill(client_id)
        return out

    def unpull_hw(self, client_id: int, packet: Packet) -> None:
        pipe = self.pipelines.get(client_id)
        if pipe is not None:
            pipe.hw.requeue_front(packet)

    def _refill(self, client_id: int) -> None:
        """Move packets down the stack: cyclic -> driver -> NIC."""
        pipe = self.pipelines.get(client_id)
        if pipe is None:
            return
        if pipe.serving:
            while not pipe.driver.is_full:
                packet = pipe.cyclic.pop_next()
                if packet is None:
                    break
                pipe.driver.enqueue(packet)
        while not pipe.hw.is_full:
            packet = pipe.driver.dequeue()
            if packet is None:
                break
            pipe.hw.enqueue(packet)

    # ----------------------------------------------------------- fault hooks
    def fail(self) -> None:
        """Crash the AP: radio off, every data/control path inert.

        Queue contents are retained only so that :meth:`restore` can model
        a cold reboot explicitly; nothing is transmitted or received while
        down.  Idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        self.radio.power_off()

    def restore(self) -> None:
        """Reboot a crashed AP with cold state (empty queues, no clients).

        Association/serving state rebuilds through the normal control
        plane (AssocSync replication, start(c, k) handoffs).  Idempotent.
        """
        if self.alive:
            return
        self.alive = True
        for client in list(self.pipelines):
            self.radio.reset_peer(client)
        self.pipelines.clear()
        self.serving_map.clear()
        self.radio.power_on()

    # --------------------------------------------------------------- beacons
    def _beacon_tick(self) -> None:
        if self.alive:
            self.radio.send_beacon(Beacon(src=self.node_id, bssid=self.radio.bssid))
        self.sim.schedule(self.params.beacon_interval_s, self._beacon_tick)

    # ------------------------------------------------------------ data plane
    def on_uplink_data(self, packet: Packet, client: int, t: float) -> None:
        """A client data packet was decoded: tunnel it to the controller."""
        if not self.alive:
            return
        packet.encapsulate(self.node_id, self.controller_id)
        self.backhaul.send(self.node_id, self.controller_id, packet)

    def on_downlink_acked(self, client: int, packet: Packet, t: float) -> None:
        self.downlink_delivered += 1

    def on_client_frame_decoded(self, client: int, t: float) -> None:
        """Hook: WGTT APs report CSI from here."""

    def on_overheard_ba(self, ba: BlockAck, t: float) -> None:
        """Hook: WGTT APs forward overheard BAs from here."""

    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        """Hook: association handling (overridden per AP flavour)."""

    # --------------------------------------------------------------- control
    def on_backhaul(self, packet: Packet, src: int) -> None:
        if not self.alive:
            return  # crashed: packets already in flight die at the NIC
        if packet.protocol == "ctrl":
            self.handle_ctrl(packet.payload, src)
        else:
            self.handle_downlink_data(packet, src)

    def handle_ctrl(self, msg, src: int) -> None:
        raise NotImplementedError

    def handle_downlink_data(self, packet: Packet, src: int) -> None:
        raise NotImplementedError

    def send_ctrl(self, dst: int, msg) -> None:
        if not self.alive:
            return  # e.g. a delayed stop->start forward after a crash
        self.backhaul.send(
            self.node_id, dst, ctrl_packet(self.node_id, dst, msg, self.sim.now)
        )


class WgttAp(BaseAp):
    """A WGTT access point (sections 3 and 4.2 of the paper)."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("monitor", True)
        super().__init__(*args, **kwargs)
        self._last_csi_report: Dict[int, float] = {}

    def restore(self) -> None:
        if not self.alive:
            self._last_csi_report.clear()
        super().restore()

    # ------------------------------------------------------------ downlink
    def handle_downlink_data(self, packet: Packet, src: int) -> None:
        """Tunneled packet from the controller: store it in the ring."""
        packet.decapsulate()
        client = packet.dst
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        pipe.cyclic.insert(packet)
        if pipe.serving:
            self._refill(client)
            self.radio.kick()

    # ------------------------------------------------------------- control
    def handle_ctrl(self, msg, src: int) -> None:
        if isinstance(msg, StopMsg):
            self._handle_stop(msg)
        elif isinstance(msg, StartMsg):
            self._handle_start(msg)
        elif isinstance(msg, ServingUpdate):
            self.serving_map[msg.client] = msg.ap
        elif isinstance(msg, BaForward):
            ba = BlockAck(
                src=msg.client,
                dst=self.node_id,
                start_seq=msg.start_seq,
                bitmap=msg.bitmap,
            )
            self.radio.apply_forwarded_block_ack(ba, self.sim.now)
            self.trace.emit(self.sim.now, "ba_forward_applied", ap=self.node_id,
                            client=msg.client)
        elif isinstance(msg, AssocSync):
            self.add_client(msg.client)

    def _handle_stop(self, msg: StopMsg) -> None:
        """stop(c): cease serving, hand the queue state to the new AP.

        The NIC hardware queue keeps draining over the air (the paper lets
        this ~6 ms backlog go out on the old link); the driver queue is
        filtered out, and its head index k is sent to the new AP after the
        kernel-query delay that Table 1 measures.
        """
        client = msg.client
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        pipe.serving = False
        if len(pipe.driver) > 0:
            k = pipe.driver.peek().wgtt_index
        else:
            k = pipe.cyclic.read_index
        n_filtered = len(pipe.driver)
        pipe.driver.drain()
        delay = (
            self.params.stop_proc_base_s
            + self.params.stop_proc_per_pkt_s * n_filtered
            + float(self.rng.uniform(0.0, self.params.stop_proc_jitter_s))
        )
        self.trace.emit(self.sim.now, "stop_processed", ap=self.node_id,
                        client=client, k=k, filtered=n_filtered)
        self.sim.schedule(
            delay, self.send_ctrl, msg.new_ap, StartMsg(client=client, index=k)
        )
        self.sim.schedule(
            self.params.stop_drain_window_s, self._flush_after_stop, client
        )

    def _flush_after_stop(self, client: int) -> None:
        """End the post-stop drain: drop anything still bound for ``client``."""
        pipe = self.pipelines.get(client)
        if pipe is None or pipe.serving:
            return  # a start(c, k) took over in the meantime
        pipe.hw.drain()
        self.radio.flush_retries(client)

    def _handle_start(self, msg: StartMsg) -> None:
        """start(c, k): begin transmitting from ring index k immediately."""
        client = msg.client
        pipe = self.pipelines.get(client)
        if pipe is None:
            pipe = self.add_client(client)
        pipe.driver.drain()
        pipe.hw.drain()
        pipe.cyclic.set_read_index(msg.index)
        pipe.serving = True
        self.serving_map[client] = self.node_id
        self.trace.emit(self.sim.now, "start_processed", ap=self.node_id,
                        client=client, k=msg.index)
        self.sim.schedule(self.params.start_proc_s, self._start_serving, client)

    def _start_serving(self, client: int) -> None:
        pipe = self.pipelines.get(client)
        if pipe is None or not pipe.serving:
            return
        self._refill(client)
        self.radio.kick()
        self.send_ctrl(
            self.controller_id, SwitchAck(client=client, ap=self.node_id)
        )

    # -------------------------------------------------------------- CSI path
    def on_client_frame_decoded(self, client: int, t: float) -> None:
        """Measure CSI of a decoded client frame and report it (rate-limited)."""
        pair = self.medium.link_between(self.node_id, client)
        if pair is None:
            return  # not a client (e.g. another AP's BA)
        last = self._last_csi_report.get(client, -1.0)
        if t - last < self.params.csi_report_min_interval_s:
            return
        self._last_csi_report[client] = t
        link, _uplink = pair
        reading = link.measure_csi(t, self.node_id, client)
        # Feed the local rate controller too (a no-op for Minstrel; the
        # ESNR-oracle controller keys its MCS choice on this).
        self.radio.peer(client).rate_ctrl.on_esnr(reading.esnr_db())
        self.send_ctrl(self.controller_id, CsiReport(reading=reading))

    # ------------------------------------------------------- BA forwarding
    def on_overheard_ba(self, ba: BlockAck, t: float) -> None:
        if not self.params.ba_forwarding:
            return
        client = ba.src
        if self.medium.link_between(self.node_id, client) is None:
            return  # BA from another AP, not from a client
        serving = self.serving_map.get(client)
        if serving is None or serving == self.node_id:
            return
        self.trace.emit(t, "ba_forwarded", from_ap=self.node_id, to_ap=serving,
                        client=client)
        self.send_ctrl(
            serving,
            BaForward(client=client, start_seq=ba.start_seq, bitmap=ba.bitmap),
        )

    # ---------------------------------------------------------- association
    def on_mgmt(self, frame: MgmtFrame, src: int, t: float) -> None:
        if frame.kind in ("assoc_req", "reassoc_req") and frame.dst in (
            self.node_id,
            self.radio.bssid,
        ):
            # Thin-AP association: accept and replicate to the other APs.
            self.add_client(src)
            self.radio.send_mgmt(
                MgmtFrame(src=self.node_id, dst=src, kind="assoc_resp")
            )
            sync = AssocSync(client=src, aid=src)
            for ap_id in self._other_ap_ids():
                self.send_ctrl(ap_id, sync)

    def _other_ap_ids(self) -> List[int]:
        return [
            r.node_id
            for r in self.medium.radios()
            if r.is_ap and r.node_id != self.node_id
            and self.backhaul.is_registered(r.node_id)
        ]
