"""Control-plane messages carried over the Ethernet backhaul.

Each message type is a small dataclass travelling as the ``payload`` of a
``protocol="ctrl"`` packet.  Sizes approximate the real encodings (the CSI
report carries 56 complex subcarrier readings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.packet import Packet
from ..phy.csi import CSIReading

__all__ = [
    "StopMsg",
    "StartMsg",
    "SwitchAck",
    "ServingUpdate",
    "CsiReport",
    "BaForward",
    "AssocSync",
    "FtRequest",
    "AssocNotify",
    "ctrl_packet",
    "CTRL_PACKET_BYTES",
    "CSI_PACKET_BYTES",
]

CTRL_PACKET_BYTES = 64
#: 56 subcarriers x (1B real + 1B imag) + RSSI/metadata, per the CSI tool.
CSI_PACKET_BYTES = 180


@dataclass(frozen=True)
class StopMsg:
    """Controller -> old AP: stop serving ``client``; hand over to ``new_ap``."""

    client: int
    new_ap: int
    attempt: int = 0


@dataclass(frozen=True)
class StartMsg:
    """Old AP -> new AP: begin serving ``client`` from cyclic index ``index``."""

    client: int
    index: int


@dataclass(frozen=True)
class SwitchAck:
    """New AP -> controller: the switch for ``client`` took effect."""

    client: int
    ap: int


@dataclass(frozen=True)
class ServingUpdate:
    """Controller -> all APs: ``ap`` is now (or will be) serving ``client``.

    Non-serving APs use this to know where to forward overheard block ACKs.
    """

    client: int
    ap: Optional[int]


@dataclass(frozen=True)
class CsiReport:
    """AP -> controller: one CSI measurement of a client uplink frame."""

    reading: CSIReading


@dataclass(frozen=True)
class BaForward:
    """Monitor AP -> serving AP: an overheard block ACK (section 3.2.1).

    Carries the fields the real system extracts: client address, starting
    sequence number, and the BA bitmap.
    """

    client: int
    start_seq: int
    bitmap: int


@dataclass(frozen=True)
class AssocSync:
    """First AP -> all APs: replicate a client's association state."""

    client: int
    aid: int
    authorized: bool = True


@dataclass(frozen=True)
class FtRequest:
    """Old AP -> target AP (baseline): over-the-DS fast-transition request.

    802.11r over-the-DS carries the FT exchange through the *current* AP,
    which is why handover fails once the current link has died (Fig. 4a).
    """

    client: int


@dataclass(frozen=True)
class AssocNotify:
    """AP -> controller (baseline): ``client`` is now associated with ``ap``."""

    client: int
    ap: Optional[int]


def ctrl_packet(src: int, dst: int, payload, t: float, size: Optional[int] = None) -> Packet:
    """Wrap a control message in a backhaul packet."""
    if size is None:
        size = CSI_PACKET_BYTES if isinstance(payload, CsiReport) else CTRL_PACKET_BYTES
    return Packet(
        size_bytes=size,
        src=src,
        dst=dst,
        protocol="ctrl",
        created_at=t,
        payload=payload,
    )
