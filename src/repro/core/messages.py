"""Control-plane messages carried over the Ethernet backhaul.

Each message type is a small dataclass travelling as the ``payload`` of a
``protocol="ctrl"`` packet.  Sizes approximate the real encodings (the CSI
report carries 56 complex subcarrier readings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.packet import Packet
from ..phy.csi import CSIReading

__all__ = [
    "StopMsg",
    "StartMsg",
    "SwitchAck",
    "ServingUpdate",
    "CsiReport",
    "BaForward",
    "AssocSync",
    "FtRequest",
    "AssocNotify",
    "Heartbeat",
    "CheckpointMsg",
    "ControllerHello",
    "ApHello",
    "DegradedReport",
    "DegradedEsnr",
    "FlushClient",
    "ctrl_packet",
    "CTRL_PACKET_BYTES",
    "CSI_PACKET_BYTES",
    "CHECKPOINT_BASE_BYTES",
]

CTRL_PACKET_BYTES = 64
#: 56 subcarriers x (1B real + 1B imag) + RSSI/metadata, per the CSI tool.
CSI_PACKET_BYTES = 180
#: Fixed framing of a checkpoint packet; per-client payload adds to it.
CHECKPOINT_BASE_BYTES = 128


@dataclass(frozen=True)
class StopMsg:
    """Controller -> old AP: stop serving ``client``; hand over to ``new_ap``."""

    client: int
    new_ap: int
    attempt: int = 0


@dataclass(frozen=True)
class StartMsg:
    """Old AP -> new AP: begin serving ``client`` from cyclic index ``index``."""

    client: int
    index: int


@dataclass(frozen=True)
class SwitchAck:
    """New AP -> controller: the switch for ``client`` took effect."""

    client: int
    ap: int


@dataclass(frozen=True)
class ServingUpdate:
    """Controller -> all APs: ``ap`` is now (or will be) serving ``client``.

    Non-serving APs use this to know where to forward overheard block ACKs.
    """

    client: int
    ap: Optional[int]


@dataclass(frozen=True)
class CsiReport:
    """AP -> controller: one CSI measurement of a client uplink frame."""

    reading: CSIReading


@dataclass(frozen=True)
class BaForward:
    """Monitor AP -> serving AP: an overheard block ACK (section 3.2.1).

    Carries the fields the real system extracts: client address, starting
    sequence number, and the BA bitmap.
    """

    client: int
    start_seq: int
    bitmap: int


@dataclass(frozen=True)
class AssocSync:
    """First AP -> all APs: replicate a client's association state."""

    client: int
    aid: int
    authorized: bool = True


@dataclass(frozen=True)
class Heartbeat:
    """Controller -> AP/standby: liveness beacon of the HA layer.

    ``epoch`` identifies the controller incarnation (a takeover or a cold
    restart bumps it); ``seq`` counts beats within an epoch.  APs and the
    warm standby key their failure detectors on the arrival times of
    these messages.
    """

    controller: int
    epoch: int
    seq: int


@dataclass(frozen=True)
class CheckpointMsg:
    """Primary -> standby: one :class:`~repro.core.checkpoint.ControllerCheckpoint`.

    The checkpoint travels as plain values (the capture deep-copies into
    JSON-safe structures), so the standby holds no live references into
    the primary's state.
    """

    checkpoint: object  # ControllerCheckpoint (kept loose to avoid a cycle)


@dataclass(frozen=True)
class ControllerHello:
    """(Re)starting controller -> all APs: subordinate to me.

    Sent on warm-standby takeover and on primary cold restart.  ``flush``
    asks APs to discard all per-client queue state first -- a cold-started
    controller restarts index assignment at 0, so stale ring contents
    from the previous incarnation must not survive (they would replay as
    duplicate deliveries).  A warm standby restores index state from the
    checkpoint and sends ``flush=False``.
    """

    controller: int
    epoch: int
    flush: bool = False


@dataclass(frozen=True)
class ApHello:
    """Rebooted AP -> controller: I am back on the backhaul.

    Refreshes the controller's liveness bookkeeping immediately so the
    restarted AP is not held in the evicted set until its first CSI
    report happens to get through.
    """

    ap: int


@dataclass(frozen=True)
class DegradedReport:
    """AP -> controller: serving state held through a controller outage.

    Sent by an AP when a controller (re)appears while the AP is serving
    ``client`` autonomously.  ``next_index`` is the ring position at which
    controller index assignment may resume without colliding with stored
    packets; ``esnr_db`` lets the controller break ties when two APs both
    claim the same client after a partition.
    """

    client: int
    ap: int
    read_index: int
    next_index: int
    esnr_db: float


@dataclass(frozen=True)
class DegradedEsnr:
    """Degraded AP -> degraded AP: lightweight ESNR gossip.

    While the controller is dark, APs in degraded mode share their local
    windowed ESNR per heard client so the serving AP can run a local
    RSSI-threshold handover (the Enhanced-802.11r fallback discipline).
    """

    client: int
    ap: int
    esnr_db: float
    time: float


@dataclass(frozen=True)
class FlushClient:
    """Controller -> AP: drop all queue/serving state for ``client``.

    ``client=None`` flushes every client (cold-restart reset).  Used to
    resolve serving-AP conflicts after a partition and to clear stale
    rings before a cold controller incarnation reuses index numbers.
    """

    client: Optional[int] = None


@dataclass(frozen=True)
class FtRequest:
    """Old AP -> target AP (baseline): over-the-DS fast-transition request.

    802.11r over-the-DS carries the FT exchange through the *current* AP,
    which is why handover fails once the current link has died (Fig. 4a).
    """

    client: int


@dataclass(frozen=True)
class AssocNotify:
    """AP -> controller (baseline): ``client`` is now associated with ``ap``."""

    client: int
    ap: Optional[int]


def ctrl_packet(src: int, dst: int, payload, t: float, size: Optional[int] = None) -> Packet:
    """Wrap a control message in a backhaul packet."""
    if size is None:
        if isinstance(payload, CsiReport):
            size = CSI_PACKET_BYTES
        elif isinstance(payload, CheckpointMsg):
            size = CHECKPOINT_BASE_BYTES + getattr(
                payload.checkpoint, "wire_bytes", lambda: 0
            )()
        else:
            size = CTRL_PACKET_BYTES
    return Packet(
        size_bytes=size,
        src=src,
        dst=dst,
        protocol="ctrl",
        created_at=t,
        payload=payload,
    )
