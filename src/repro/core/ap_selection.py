"""WGTT AP selection (section 3.1.1).

The controller keeps, per client and per AP, a sliding window of the ESNR
values computed from that AP's CSI reports.  The selected AP is the one
whose *median* windowed ESNR is highest -- the median resists the deep
instantaneous fades that make single-sample selection thrash.  A time
hysteresis bounds the switching rate (evaluated in Fig. 22).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["EsnrWindow", "ApSelector", "median"]


def median(values: List[float]) -> float:
    """Median as the paper defines it: element floor(L/2) of the sorted list."""
    if not values:
        raise ValueError("median of empty window")
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class EsnrWindow:
    """Sliding time window of (time, esnr) readings for one client-AP link.

    CSI readings only exist when the client transmits, so with sparse
    traffic a strict W-second window is frequently empty and selection
    degenerates to "whoever reported last".  The window therefore retains
    the most recent ``min_keep`` readings even when they are older than W,
    up to a hard staleness cap ``max_age_s`` (an AP that has not decoded
    the client for that long is genuinely out of range).
    """

    def __init__(self, window_s: float, min_keep: int = 3, max_age_s: float = 0.25):
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self.min_keep = min_keep
        self.max_age_s = max(max_age_s, window_s)
        self._readings: Deque[Tuple[float, float]] = deque()

    def add(self, t: float, esnr_db: float) -> None:
        self._readings.append((t, esnr_db))
        self.purge(t)

    def purge(self, now: float) -> None:
        hard_cutoff = now - self.max_age_s
        while self._readings and self._readings[0][0] < hard_cutoff:
            self._readings.popleft()
        cutoff = now - self.window_s
        while (
            len(self._readings) > self.min_keep
            and self._readings[0][0] < cutoff
        ):
            self._readings.popleft()

    def values(self, now: float) -> List[float]:
        self.purge(now)
        return [e for (_t, e) in self._readings]

    def has_reading(self, now: float) -> bool:
        """True when any reading survives the purge (no list is built)."""
        self.purge(now)
        return bool(self._readings)

    def median(self, now: float) -> Optional[float]:
        values = self.values(now)
        if not values:
            return None
        return median(values)

    def __len__(self) -> int:
        return len(self._readings)


class ApSelector:
    """Max-median ESNR selection over per-AP sliding windows.

    Parameters
    ----------
    window_s:
        Sliding-window length W.  The paper's microbenchmark (Fig. 21)
        finds 10 ms optimal at driving speeds.
    min_readings:
        Minimum window occupancy before an AP is considered a candidate;
        raising it guards against electing an AP on a single lucky fade
        at the cost of slower reaction under sparse traffic.  Defaults
        to 1, matching ``ControllerParams.min_readings`` -- the value
        every drive actually runs with.  (Historically this defaulted
        to 2 while the controller passed 1, so a bare ``ApSelector()``
        silently behaved differently from the controller's; the
        defaults are now aligned.)
    metric:
        ``"median"`` (the paper), ``"mean"`` or ``"max"`` (ablations).
    """

    def __init__(
        self,
        window_s: float = 0.010,
        min_readings: int = 1,
        metric: str = "median",
    ):
        if metric not in ("median", "mean", "max"):
            raise ValueError(f"unknown selection metric {metric!r}")
        self.window_s = window_s
        self.min_readings = min_readings
        self.metric = metric
        self._windows: Dict[int, EsnrWindow] = {}

    def update(self, ap_id: int, t: float, esnr_db: float) -> None:
        window = self._windows.get(ap_id)
        if window is None:
            window = EsnrWindow(self.window_s)
            self._windows[ap_id] = window
        window.add(t, esnr_db)

    def drop_ap(self, ap_id: int) -> bool:
        """Forget an AP's window entirely.

        Used by the controller's health tracking to evict a crashed AP
        from the candidate set immediately, instead of waiting out the
        window's staleness cap.  Returns True when a window was held.
        """
        return self._windows.pop(ap_id, None) is not None

    def _score(self, values: List[float]) -> float:
        if self.metric == "median":
            return median(values)
        if self.metric == "mean":
            return sum(values) / len(values)
        return max(values)

    def candidates(self, now: float) -> Dict[int, float]:
        """APs with enough fresh readings, mapped to their window score."""
        out: Dict[int, float] = {}
        for ap_id, window in self._windows.items():
            values = window.values(now)
            if len(values) >= self.min_readings:
                out[ap_id] = self._score(values)
        return out

    def in_range_aps(self, now: float) -> List[int]:
        """APs that heard the client within the window (any reading).

        This is the multicast set for downlink packet placement: footnote 1
        of the paper defines 'within communication range' exactly this way.
        """
        return [
            ap_id
            for ap_id, window in self._windows.items()
            if window.has_reading(now)
        ]

    def best_ap(self, now: float) -> Optional[int]:
        """The argmax-score AP, or None when no AP qualifies."""
        candidates = self.candidates(now)
        if not candidates:
            return None
        return max(candidates.items(), key=lambda kv: kv[1])[0]
