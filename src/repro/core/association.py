"""Client association state and the WGTT association-sharing flow (§4.3).

All WGTT APs share one BSSID, so a client associates once; the first AP
then replicates the ``sta_info`` to its peers over the backhaul (the
hostapd modification of Fig. 12).  :func:`pre_associate` performs the
whole flow instantaneously for experiments that begin with an
already-associated client, mirroring the paper's methodology (drivers
associate before entering the AP array).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ap import WgttAp
from .client import MobileClient

__all__ = ["AssociationRecord", "AssociationTable", "pre_associate"]


@dataclass
class AssociationRecord:
    """The subset of hostapd's sta_info that must be replicated."""

    client: int
    aid: int
    authorized: bool = True
    capabilities: Dict[str, bool] = field(
        default_factory=lambda: {"ht": True, "ampdu": True}
    )


class AssociationTable:
    """Per-AP view of associated stations."""

    def __init__(self) -> None:
        self._records: Dict[int, AssociationRecord] = {}

    def add(self, record: AssociationRecord) -> None:
        self._records[record.client] = record

    def remove(self, client: int) -> Optional[AssociationRecord]:
        return self._records.pop(client, None)

    def is_associated(self, client: int) -> bool:
        return client in self._records

    def get(self, client: int) -> Optional[AssociationRecord]:
        return self._records.get(client)

    def clients(self) -> List[int]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


def pre_associate(client: MobileClient, aps: List[WgttAp], bssid: int) -> None:
    """Install a completed association at the client and every AP.

    Equivalent to the over-the-air handshake plus the backhaul sta_info
    replication having already completed, which is the state every WGTT
    experiment in the paper starts from.
    """
    for ap in aps:
        ap.add_client(client.node_id)
    client.set_association(bssid, t=client.sim.now)
