"""WGTT core: the paper's contribution.

AP selection (max-median ESNR over a sliding window), the stop/start/ack
switching protocol with cross-AP queue management, cyclic downlink queues,
block-ACK forwarding, uplink de-duplication, association sharing -- plus
the Enhanced 802.11r baseline the paper compares against.
"""

from .ap import ApParams, ApRadio, BaseAp, ClientPipeline, WgttAp
from .ap_selection import ApSelector, EsnrWindow, median
from .association import AssociationRecord, AssociationTable, pre_associate
from .baseline import (
    BaselineAp,
    BaselineController,
    BaselinePolicyParams,
    Enhanced80211rPolicy,
    baseline_ap_params,
)
from .checkpoint import ClientCheckpoint, ControllerCheckpoint
from .client import ClientParams, ClientRadio, MobileClient, RoamingPolicy
from .controller import ClientState, ControllerParams, WgttController
from .cyclic_queue import INDEX_BITS, INDEX_MODULO, CyclicQueue, ring_distance
from .dedup import Deduplicator
from .ha import ControllerCluster, HaParams, StandbyController, coerce_ha
from .messages import (
    ApHello,
    AssocNotify,
    AssocSync,
    BaForward,
    CheckpointMsg,
    ControllerHello,
    CsiReport,
    DegradedEsnr,
    DegradedReport,
    FlushClient,
    Heartbeat,
    ServingUpdate,
    StartMsg,
    StopMsg,
    SwitchAck,
    ctrl_packet,
)

__all__ = [
    "ApParams",
    "ApRadio",
    "BaseAp",
    "ClientPipeline",
    "WgttAp",
    "ApSelector",
    "EsnrWindow",
    "median",
    "AssociationRecord",
    "AssociationTable",
    "pre_associate",
    "BaselineAp",
    "BaselineController",
    "BaselinePolicyParams",
    "Enhanced80211rPolicy",
    "baseline_ap_params",
    "ClientParams",
    "ClientRadio",
    "MobileClient",
    "RoamingPolicy",
    "ClientState",
    "ControllerParams",
    "WgttController",
    "ClientCheckpoint",
    "ControllerCheckpoint",
    "ControllerCluster",
    "HaParams",
    "StandbyController",
    "coerce_ha",
    "INDEX_BITS",
    "INDEX_MODULO",
    "CyclicQueue",
    "ring_distance",
    "Deduplicator",
    "ApHello",
    "AssocNotify",
    "AssocSync",
    "BaForward",
    "CheckpointMsg",
    "ControllerHello",
    "CsiReport",
    "DegradedEsnr",
    "DegradedReport",
    "FlushClient",
    "Heartbeat",
    "ServingUpdate",
    "StartMsg",
    "StopMsg",
    "SwitchAck",
    "ctrl_packet",
]
