"""Lightweight performance observability: counters and wall-clock timers.

The PHY fast path earns its keep only if we can *see* it working: how
many tap-gain kernel evaluations a drive performs, how often the BER
inversion takes the LUT path instead of bisection, and how often the
link-level memo serves a repeated same-timestamp query for free.  This
module is the single place those numbers accumulate.

Counters are always on -- a dict increment costs nanoseconds next to the
microseconds of numpy work it instruments -- so ``--profile`` on the CLI
is purely a *reporting* flag, not a behaviour switch: profiled and
unprofiled runs execute identical code and stay bit-identical.

Usage::

    from repro.perf import PERF

    PERF.count("phy.tap_eval_points", n)
    with PERF.timer("drive.run"):
        net.run(until=10.0)

    print(PERF.report())
    PERF.reset()
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = ["PerfRegistry", "PERF", "perf_snapshot", "perf_reset"]


class PerfRegistry:
    """Accumulates named counters and named wall-clock timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers_s: Dict[str, float] = {}
        self.timer_calls: Dict[str, int] = {}

    # ------------------------------------------------------------- counters
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # --------------------------------------------------------------- timers
    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating elapsed wall-clock time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.timers_s[name] = self.timers_s.get(name, 0.0) + elapsed
            self.timer_calls[name] = self.timer_calls.get(name, 0) + 1

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record externally-measured time (e.g. from a worker process)."""
        self.timers_s[name] = self.timers_s.get(name, 0.0) + seconds
        self.timer_calls[name] = self.timer_calls.get(name, 0) + calls

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        self.counters.clear()
        self.timers_s.clear()
        self.timer_calls.clear()

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable copy of everything accumulated so far."""
        return {
            "counters": dict(self.counters),
            "timers_s": dict(self.timers_s),
            "timer_calls": dict(self.timer_calls),
        }

    # ------------------------------------------------------------ reporting
    def hit_rate(self, hits: str, misses: str) -> Optional[float]:
        """hits / (hits + misses), or None if neither counter fired."""
        h, m = self.get(hits), self.get(misses)
        if h + m == 0:
            return None
        return h / (h + m)

    def report(self, title: str = "perf") -> str:
        """Human-readable multi-line report of all counters and timers."""
        lines = [f"--- {title} ---"]
        for name in sorted(self.counters):
            lines.append(f"{name:<36} {self.counters[name]:>12,}")
        for name in sorted(self.timers_s):
            total = self.timers_s[name]
            calls = self.timer_calls.get(name, 0)
            per = f" ({1e6 * total / calls:.1f} us/call)" if calls else ""
            lines.append(f"{name:<36} {total:>11.3f}s x{calls}{per}")
        for label, hits, misses in (
            ("link.memo hit rate", "link.memo_hits", "link.memo_misses"),
            ("esnr.lut share", "esnr.invert_lut", "esnr.invert_bisect"),
        ):
            rate = self.hit_rate(hits, misses)
            if rate is not None:
                lines.append(f"{label:<36} {100.0 * rate:>11.1f}%")
        return "\n".join(lines)


#: Process-global registry every instrumented module reports into.
PERF = PerfRegistry()


def perf_snapshot() -> Dict[str, object]:
    """Snapshot of the global registry."""
    return PERF.snapshot()


def perf_reset() -> None:
    """Reset the global registry (start of a profiled run)."""
    PERF.reset()
