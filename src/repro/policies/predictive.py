"""Trajectory-predictive selection: commit switches *early*.

A switch is not free -- the stop/start handshake costs milliseconds and
the first frames through a new AP ride conservative rates -- so at speed
it pays to hand over slightly before the geometric boundary, not at it.
This policy extrapolates the client's position by a lead time that grows
with speed and selects the AP whose cell the *predicted* position falls
in.  At walking pace it degenerates to the plain coverage map; at 35 mph
it commits roughly a cell-edge early.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from .coverage_map import CoverageMapPolicy
from .registry import register

__all__ = ["TrajectoryPredictivePolicy"]


@register
class TrajectoryPredictivePolicy(CoverageMapPolicy):
    """Coverage-map selection evaluated at the extrapolated position.

    Parameters
    ----------
    lead_gain_s_per_mps:
        Lead time per unit speed: ``lead_s = gain * speed_mps`` (so the
        lead *distance* grows quadratically with speed -- faster vehicles
        commit proportionally earlier within the cell).
    max_lead_s:
        Hard cap on the extrapolation horizon.
    """

    name = "trajectory-predictive"

    def __init__(
        self,
        lead_gain_s_per_mps: float = 0.004,
        max_lead_s: float = 0.25,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.lead_gain_s_per_mps = lead_gain_s_per_mps
        self.max_lead_s = max_lead_s

    def lead_s(self) -> float:
        """The speed-proportional extrapolation horizon."""
        if self.context is None:
            return 0.0
        return min(self.max_lead_s,
                   self.lead_gain_s_per_mps * self.context.speed_mps)

    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = frozenset(),
    ) -> Optional[int]:
        # Evaluate the coverage map at the predicted future position; the
        # trajectory itself provides the heading, so extrapolating time
        # forward is exact for constant-velocity drives and a first-order
        # estimate otherwise.
        return super().select(now + self.lead_s(), serving, exclude)
