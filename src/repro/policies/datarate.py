"""Data-rate estimation from drive history.

The third related-work idiom (cf. the ap-selection/datarate-estimation
work named in ROADMAP.md): learn, from past drives, what ESNR each AP
delivers at each point along the road, and select the AP whose
*predicted rate* at the client's current position is highest.  Unlike
the blind coverage map this captures non-geometric structure -- antenna
aim, shadowing, a weak AP -- and unlike reactive policies it does not
wait for the serving link to degrade before moving.

:class:`PositionProfile` is the learned artefact: per-AP mean ESNR in
fixed-width bins of along-road position.  It is JSON-roundtrippable, so
a profile learned from one (training) drive travels inside the policy's
params through sweep specs and the persistent result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..phy.mcs import link_capacity_mbps
from .base import NO_EXCLUSIONS, HandoverPolicy
from .registry import register

__all__ = ["PositionProfile", "DatarateEstimatorPolicy", "profile_from_drive"]


@dataclass
class PositionProfile:
    """Per-AP mean ESNR as a function of binned along-road position.

    ``esnr`` maps AP index (along-road order, the same stable index the
    fault subsystem uses) to a list of per-bin means; ``None`` marks bins
    the history never visited.  Bin ``i`` covers
    ``[x0 + i*bin_m, x0 + (i+1)*bin_m)``.
    """

    x0: float
    bin_m: float
    esnr: Dict[int, List[Optional[float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bin_m <= 0:
            raise ValueError(f"bin_m must be positive, got {self.bin_m}")

    # -------------------------------------------------------------- build
    @classmethod
    def from_samples(
        cls,
        samples: Iterable[Tuple[float, int, float]],
        bin_m: float = 2.0,
    ) -> "PositionProfile":
        """Aggregate (x, ap_index, esnr_db) samples into binned means."""
        rows = list(samples)
        if not rows:
            return cls(x0=0.0, bin_m=bin_m)
        x0 = min(x for x, _ap, _e in rows)
        n_bins = int((max(x for x, _ap, _e in rows) - x0) / bin_m) + 1
        sums: Dict[int, List[float]] = {}
        counts: Dict[int, List[int]] = {}
        for x, ap_index, esnr in rows:
            b = min(int((x - x0) / bin_m), n_bins - 1)
            if ap_index not in sums:
                sums[ap_index] = [0.0] * n_bins
                counts[ap_index] = [0] * n_bins
            sums[ap_index][b] += esnr
            counts[ap_index][b] += 1
        esnr = {
            ap: [s / c if c else None for s, c in zip(sums[ap], counts[ap])]
            for ap in sums
        }
        return cls(x0=x0, bin_m=bin_m, esnr=esnr)

    # ------------------------------------------------------------- lookup
    def predict(self, ap_index: int, x: float,
                max_gap_bins: int = 2) -> Optional[float]:
        """Mean historical ESNR of ``ap_index`` near ``x`` (None = no data).

        Falls back to the nearest populated bin within ``max_gap_bins``.
        """
        bins = self.esnr.get(ap_index)
        if not bins:
            return None
        b = int((x - self.x0) / self.bin_m)
        for offset in range(max_gap_bins + 1):
            for candidate in (b - offset, b + offset) if offset else (b,):
                if 0 <= candidate < len(bins) and bins[candidate] is not None:
                    return bins[candidate]
        return None

    def predicted_rate_mbps(self, ap_index: int, x: float) -> Optional[float]:
        """Historical ESNR mapped through the MCS table to a PHY rate."""
        esnr = self.predict(ap_index, x)
        if esnr is None:
            return None
        return link_capacity_mbps(esnr)

    # ------------------------------------------------------ serialisation
    def to_dict(self) -> Dict:
        return {
            "x0": self.x0,
            "bin_m": self.bin_m,
            # JSON objects have string keys; keep the canonical encoding
            # stable by converting here rather than at json.dumps time.
            "esnr": {str(ap): bins for ap, bins in sorted(self.esnr.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PositionProfile":
        return cls(
            x0=float(data["x0"]),
            bin_m=float(data["bin_m"]),
            esnr={int(ap): list(bins) for ap, bins in data.get("esnr", {}).items()},
        )


def profile_from_drive(result, bin_m: float = 2.0) -> PositionProfile:
    """Learn a :class:`PositionProfile` from one completed drive.

    Reads the drive's ``csi`` trace records (every ESNR the controller
    saw), converts report times to along-road positions through the
    client's trajectory, and bins per AP.  The drive must have retained
    ``csi`` records (the default trace configuration does).
    """
    net = result.net
    client = result.client
    index_of = {
        ap.node_id: i
        for i, ap in enumerate(sorted(net.aps, key=lambda a: a.position_v[0]))
    }
    samples = [
        (client.trajectory.position(r.time)[0], index_of[r["ap"]], r["esnr"])
        for r in net.trace.iter_records("csi")
        if r["client"] == client.node_id and r["ap"] in index_of
    ]
    return PositionProfile.from_samples(samples, bin_m=bin_m)


@register
class DatarateEstimatorPolicy(HandoverPolicy):
    """Select the AP with the highest predicted rate at the current position.

    Parameters
    ----------
    profile:
        A :class:`PositionProfile` in dict form (as produced by
        :meth:`PositionProfile.to_dict`) -- typically learned from a
        training drive via :func:`profile_from_drive`.
    margin_db:
        A challenger must beat the serving AP's predicted ESNR by this
        margin (anti-chatter across flat profile regions).
    lead_s:
        Small constant position extrapolation to absorb the switch
        handshake latency.
    """

    name = "datarate-estimator"

    def __init__(
        self,
        profile: Optional[Dict] = None,
        margin_db: float = 1.0,
        lead_s: float = 0.02,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.profile = (PositionProfile.from_dict(profile)
                        if profile is not None else None)
        self.margin_db = margin_db
        self.lead_s = lead_s

    def _predictions(
        self, x: float, exclude: FrozenSet[int]
    ) -> Dict[int, float]:
        """node_id -> predicted ESNR at ``x`` for every live, profiled AP."""
        out: Dict[int, float] = {}
        for ap_index, node_id in enumerate(self.context.ap_order):
            if node_id in exclude:
                continue
            predicted = self.profile.predict(ap_index, x)
            if predicted is not None:
                out[node_id] = predicted
        return out

    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        if (self.profile is None or self.context is None
                or not self.context.ap_positions):
            return self._reactive_fallback(now, exclude)
        x = self.context.x_at(now + self.lead_s)
        if x is None:
            return self._reactive_fallback(now, exclude)
        predictions = self._predictions(x, exclude)
        if not predictions:
            return self._reactive_fallback(now, exclude)
        best_ap, best_esnr = max(predictions.items(), key=lambda kv: kv[1])
        if serving is not None and serving in predictions and best_ap != serving:
            if best_esnr < predictions[serving] + self.margin_db:
                return serving
        return best_ap

    def _reactive_fallback(
        self, now: float, exclude: FrozenSet[int]
    ) -> Optional[int]:
        candidates = {
            ap: score for ap, score in self.tracker.candidates(now).items()
            if ap not in exclude
        }
        if not candidates:
            return None
        return max(candidates.items(), key=lambda kv: kv[1])[0]
