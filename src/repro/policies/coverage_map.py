"""Infrastructure-assisted blind handover from a pre-computed coverage map.

The Wi-Fi Assist idiom (Rodrigues & Steenkiste; see PAPERS.md): instead
of reacting to instantaneous channel measurements, pre-compute *where*
along the road each AP should serve -- from the AP placement alone, or
sharpened with per-AP quality weights learned from past drives -- and
hand over the moment the vehicle crosses a cell boundary.  The policy is
"blind": CSI only feeds the shared in-range tracker (multicast set and
liveness), never the switch decision.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .base import NO_EXCLUSIONS, HandoverPolicy
from .registry import register

__all__ = ["CoverageMapPolicy", "cell_boundaries"]


def cell_boundaries(
    ap_xs: Sequence[float], weights: Optional[Sequence[float]] = None
) -> List[float]:
    """Along-road handover boundaries between consecutive APs.

    With no weights the boundary is the midpoint.  A weight ratio shifts
    it towards the weaker AP, giving the stronger AP the larger cell:
    ``x_b = x_i + (x_{i+1} - x_i) * w_i / (w_i + w_{i+1})``.
    """
    if weights is None:
        weights = [1.0] * len(ap_xs)
    if len(weights) != len(ap_xs):
        raise ValueError(
            f"need one weight per AP: {len(weights)} weights, {len(ap_xs)} APs"
        )
    out: List[float] = []
    for i in range(len(ap_xs) - 1):
        w_a = max(float(weights[i]), 1e-9)
        w_b = max(float(weights[i + 1]), 1e-9)
        out.append(ap_xs[i] + (ap_xs[i + 1] - ap_xs[i]) * w_a / (w_a + w_b))
    return out


@register
class CoverageMapPolicy(HandoverPolicy):
    """Pre-computed switch locations; switch on crossing, not on fading.

    Parameters
    ----------
    hysteresis_m:
        A switch back to the cell just left requires re-crossing the
        boundary by this margin (anti-chatter for jittery trajectories).
    ap_weights:
        Optional per-AP quality weights in along-road AP-index order
        (e.g. mean throughput or ESNR from a previous drive's history);
        shifts boundaries towards weaker APs.
    """

    name = "coverage-map"

    def __init__(
        self,
        hysteresis_m: float = 1.0,
        ap_weights: Optional[Sequence[float]] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.hysteresis_m = hysteresis_m
        self.ap_weights = list(ap_weights) if ap_weights is not None else None

    # ------------------------------------------------------------ the map
    def _live_map(
        self, exclude: FrozenSet[int]
    ) -> Tuple[List[int], List[float]]:
        """(ap_ids, boundaries) over the non-evicted APs, by road order."""
        order = [ap for ap in self.context.ap_order if ap not in exclude]
        xs = [self.context.ap_positions[ap][0] for ap in order]
        weights = None
        if self.ap_weights is not None:
            # Weights are indexed by road order over *all* APs; keep the
            # entries of the surviving ones.
            index_of: Dict[int, int] = {
                ap: i for i, ap in enumerate(self.context.ap_order)
            }
            weights = [self.ap_weights[index_of[ap]] for ap in order]
        return order, cell_boundaries(xs, weights)

    @staticmethod
    def _cell_of(x: float, boundaries: Sequence[float]) -> int:
        cell = 0
        for boundary in boundaries:
            if x >= boundary:
                cell += 1
        return cell

    # ---------------------------------------------------------- selection
    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        if self.context is None or not self.context.ap_positions:
            # No infrastructure knowledge: degrade to reactive max-median.
            return self._reactive_fallback(now, exclude)
        x = self.context.x_at(now)
        if x is None:
            return self._reactive_fallback(now, exclude)
        order, boundaries = self._live_map(exclude)
        if not order:
            return None
        desired = order[self._cell_of(x, boundaries)]
        if (serving is not None and desired != serving and serving in order
                and serving not in exclude):
            # Anti-chatter: stay with the current cell until the client is
            # clearly past the shared boundary.
            cell_d = order.index(desired)
            cell_s = order.index(serving)
            if abs(cell_d - cell_s) == 1:
                boundary = boundaries[min(cell_d, cell_s)]
                if abs(x - boundary) < self.hysteresis_m:
                    return serving
        return desired

    def _reactive_fallback(
        self, now: float, exclude: FrozenSet[int]
    ) -> Optional[int]:
        candidates = {
            ap: score for ap, score in self.tracker.candidates(now).items()
            if ap not in exclude
        }
        if not candidates:
            return None
        return max(candidates.items(), key=lambda kv: kv[1])[0]
