"""The policy zoo: a name -> class registry.

Policies register themselves with :func:`register`; configs, the CLI, and
sweep jobs instantiate them by name via :func:`create_policy`.  The
registry is populated at import time by :mod:`repro.policies.__init__`,
so importing the package is enough to make every shipped policy
available.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import HandoverPolicy
from .spec import PolicySpec

__all__ = ["register", "create_policy", "available_policies", "policy_class"]

_REGISTRY: Dict[str, Type[HandoverPolicy]] = {}


def register(cls: Type[HandoverPolicy]) -> Type[HandoverPolicy]:
    """Class decorator: add ``cls`` to the zoo under ``cls.name``."""
    name = cls.name
    if not name or name == "?":
        raise ValueError(f"{cls.__name__} must define a registry name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"policy name {name!r} already registered to "
                         f"{existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def policy_class(name: str) -> Type[HandoverPolicy]:
    """The registered class for ``name`` (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None


def create_policy(spec: PolicySpec) -> HandoverPolicy:
    """Instantiate a fresh policy from its spec (one per client)."""
    cls = policy_class(spec.name)
    try:
        return cls(**spec.params)
    except TypeError as exc:
        raise TypeError(f"bad params for policy {spec.name!r}: {exc}") from exc


def available_policies() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)
