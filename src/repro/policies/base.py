"""The handover-policy interface.

A :class:`HandoverPolicy` is the pluggable brain of the WGTT controller:
it observes per-AP ESNR readings (derived from CSI reports), optionally
the client's position/velocity and the AP placement, and decides which AP
should serve the client.  The controller keeps every protocol concern --
the stop/start/ack switching handshake, the time hysteresis that bounds
the switch rate, retransmissions, and AP-health eviction -- so policies
are pure selection logic and automatically inherit all of it.

Every policy carries an :class:`~repro.core.ap_selection.ApSelector`
*tracker* that maintains the sliding ESNR windows.  The tracker serves
two roles shared by all policies regardless of how they select:

* ``in_range_aps`` -- the downlink multicast set (footnote 1 of the
  paper: an AP is "within communication range" when it decoded the
  client inside the window);
* ``drop_ap`` -- crashed-AP eviction initiated by the controller's
  health tracking.

Subclasses implement :meth:`HandoverPolicy.select`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, FrozenSet, List, Optional, Tuple

from ..core.ap_selection import ApSelector

__all__ = ["PolicyContext", "HandoverPolicy"]

Vec3 = Tuple[float, float, float]

#: Immutable empty exclusion set shared by call sites.
NO_EXCLUSIONS: FrozenSet[int] = frozenset()


@dataclass
class PolicyContext:
    """Infrastructure knowledge handed to a policy when its client joins.

    ``ap_positions`` maps AP node id to its (x, y, z) position in build
    order; ``ap_order`` lists the same node ids sorted by along-road x
    (the stable *AP index* used by declarative specs, matching the
    fault-scenario convention).  ``position_fn`` is the client's
    trajectory sampled at any simulation time; ``speed_mps`` /
    ``heading_sign`` describe its (constant) velocity along the road.

    Everything here is deterministic and side-effect free: sampling a
    trajectory draws no randomness and schedules no events, so a policy
    consulting its context cannot perturb the simulation.
    """

    ap_positions: Dict[int, Vec3] = field(default_factory=dict)
    position_fn: Optional[Callable[[float], Vec3]] = None
    speed_mps: float = 0.0
    #: +1.0 when the client drives towards +x, -1.0 for the reverse lane.
    heading_sign: float = 1.0

    @property
    def ap_order(self) -> List[int]:
        """AP node ids sorted by along-road x (stable AP-index order)."""
        return sorted(self.ap_positions, key=lambda n: self.ap_positions[n][0])

    def x_at(self, t: float) -> Optional[float]:
        """The client's along-road coordinate at ``t`` (None = unknown)."""
        if self.position_fn is None:
            return None
        return self.position_fn(t)[0]

    def velocity_x(self) -> float:
        """Signed along-road speed in m/s."""
        return self.heading_sign * self.speed_mps


class HandoverPolicy:
    """Base class for AP-selection policies.

    Tracking parameters (``window_s`` / ``min_readings`` / ``metric``)
    default to the controller's :class:`ControllerParams` values; a
    policy spec may override any of them through its JSON params.
    """

    #: Registry name; set by subclasses.
    name: ClassVar[str] = "?"

    def __init__(
        self,
        window_s: Optional[float] = None,
        min_readings: Optional[int] = None,
        metric: Optional[str] = None,
    ):
        self._window_s = window_s
        self._min_readings = min_readings
        self._metric = metric
        self.tracker: Optional[ApSelector] = None
        self.context: Optional[PolicyContext] = None

    # ------------------------------------------------------------- wiring
    def configure(self, window_s: float, min_readings: int, metric: str) -> None:
        """Build the ESNR tracker (controller defaults; ctor params win).

        Called exactly once by the controller when the client state is
        created; idempotent against repeated ``add_client`` calls.
        """
        if self.tracker is not None:
            return
        self.tracker = ApSelector(
            window_s=self._window_s if self._window_s is not None else window_s,
            min_readings=(self._min_readings if self._min_readings is not None
                          else min_readings),
            metric=self._metric if self._metric is not None else metric,
        )

    def bind(self, context: PolicyContext) -> None:
        """Attach infrastructure/trajectory knowledge (may arrive late)."""
        self.context = context

    # ------------------------------------------------------- observations
    def observe(self, ap_id: int, t: float, esnr_db: float) -> None:
        """One ESNR reading derived from a CSI report ``ap_id`` decoded."""
        self.tracker.update(ap_id, t, esnr_db)

    def on_switch(self, t: float, ap_id: int) -> None:
        """The controller committed a switch to ``ap_id`` (ack received)."""

    # ----------------------------------------------------------- liveness
    def in_range_aps(self, now: float) -> List[int]:
        """The downlink multicast set (APs that heard the client lately)."""
        return self.tracker.in_range_aps(now)

    def drop_ap(self, ap_id: int) -> bool:
        """Evict a crashed AP's state; returns True when any was held."""
        return self.tracker.drop_ap(ap_id)

    # ---------------------------------------------------------- selection
    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        """The AP this policy wants serving at ``now``.

        ``serving`` is the currently-serving AP (None before bootstrap);
        ``exclude`` holds health-evicted APs that must not be chosen.
        Returning ``serving`` (or None when there is no viable candidate)
        means "no switch".  The controller applies its own time
        hysteresis on top, so a policy may re-assert the same preference
        every evaluation without causing switch storms.
        """
        raise NotImplementedError

    # -------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
