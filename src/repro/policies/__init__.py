"""Pluggable handover policies (the policy zoo).

The paper's core contribution is an AP-selection rule -- max-median
windowed ESNR (section 3.1.1).  This package makes that rule *one entry
in a registry* so alternatives from the related work can be compared
inside the same controller, data plane, and measurement harness:

============================  ==============================================
``wgtt-max-median``           The paper: max-median windowed ESNR (default).
``baseline-80211r``           Enhanced 802.11r's threshold + scan rule,
                              factored from :mod:`repro.core.baseline`.
``coverage-map``              Wi-Fi-Assist-style blind handover at
                              pre-computed switch locations (AP positions
                              + optional past-drive quality weights).
``trajectory-predictive``     Coverage map evaluated at the extrapolated
                              position: lead time grows with speed.
``datarate-estimator``        ESNR-vs-position profile learned from drive
                              history; selects on predicted rate.
``greedy-instant``            Windowless freshest-reading chaser (the
                              ablation the median defends against).
============================  ==============================================

Selection flows through :class:`HandoverPolicy`; experiment configs, the
CLI, and sweep jobs name policies with a :class:`PolicySpec` (name +
JSON params) that hashes into cache keys.  The controller owns protocol
concerns (switch handshake, hysteresis, health eviction); policies are
pure selection logic.
"""

from .base import HandoverPolicy, PolicyContext
from .baseline80211r import Baseline80211rPolicy, ThresholdScanRule
from .coverage_map import CoverageMapPolicy, cell_boundaries
from .datarate import DatarateEstimatorPolicy, PositionProfile, profile_from_drive
from .predictive import TrajectoryPredictivePolicy
from .registry import available_policies, create_policy, policy_class, register
from .spec import DEFAULT_POLICY_NAME, PolicySpec, coerce_policy
from .wgtt import GreedyInstantPolicy, WgttMaxMedianPolicy

__all__ = [
    "HandoverPolicy",
    "PolicyContext",
    "PolicySpec",
    "coerce_policy",
    "DEFAULT_POLICY_NAME",
    "register",
    "create_policy",
    "policy_class",
    "available_policies",
    "WgttMaxMedianPolicy",
    "GreedyInstantPolicy",
    "Baseline80211rPolicy",
    "ThresholdScanRule",
    "CoverageMapPolicy",
    "cell_boundaries",
    "TrajectoryPredictivePolicy",
    "DatarateEstimatorPolicy",
    "PositionProfile",
    "profile_from_drive",
]
