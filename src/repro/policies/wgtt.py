"""The paper's selection rule, and a windowless ablation of it.

:class:`WgttMaxMedianPolicy` is the default policy: max-median windowed
ESNR (section 3.1.1), a thin shell over the tracker the base class
already maintains.  A default-policy drive is bit-identical to the
pre-framework controller -- the golden drive digests pin this.

:class:`GreedyInstantPolicy` is the ablation the paper argues against:
chase the single freshest reading per AP with no windowing, so every
deep instantaneous fade triggers a re-election.  It exists to make the
tournament show *why* the median matters.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from .base import NO_EXCLUSIONS, HandoverPolicy
from .registry import register

__all__ = ["WgttMaxMedianPolicy", "GreedyInstantPolicy"]


@register
class WgttMaxMedianPolicy(HandoverPolicy):
    """Max-median windowed ESNR (the paper, section 3.1.1)."""

    name = "wgtt-max-median"

    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        # The no-eviction path must stay byte-for-byte the historical
        # controller behaviour (single best_ap call, same tie-breaking).
        if not exclude:
            return self.tracker.best_ap(now)
        candidates = {
            ap: score for ap, score in self.tracker.candidates(now).items()
            if ap not in exclude
        }
        if not candidates:
            return None
        return max(candidates.items(), key=lambda kv: kv[1])[0]


@register
class GreedyInstantPolicy(HandoverPolicy):
    """Chase the freshest single reading per AP (no median, no window).

    ``stale_after_s`` bounds how old a 'latest' reading may be before the
    AP leaves the candidate set.
    """

    name = "greedy-instant"

    def __init__(self, stale_after_s: float = 0.05, **kwargs):
        super().__init__(**kwargs)
        self.stale_after_s = stale_after_s
        #: ap_id -> (time, esnr) of its most recent reading.
        self._latest = {}

    def observe(self, ap_id: int, t: float, esnr_db: float) -> None:
        super().observe(ap_id, t, esnr_db)
        self._latest[ap_id] = (t, esnr_db)

    def drop_ap(self, ap_id: int) -> bool:
        self._latest.pop(ap_id, None)
        return super().drop_ap(ap_id)

    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        cutoff = now - self.stale_after_s
        fresh = {
            ap: esnr for ap, (t, esnr) in self._latest.items()
            if t >= cutoff and ap not in exclude
        }
        if not fresh:
            return None
        return max(fresh.items(), key=lambda kv: kv[1])[0]
