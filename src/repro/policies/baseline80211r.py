"""Enhanced 802.11r's selection rule, factored for reuse.

The comparison scheme of paper section 5.1 switches APs reactively: only
once the *current* link has degraded below a threshold, only to a
candidate that beats it by a margin, and at most once per (one-second)
hysteresis period.  :class:`ThresholdScanRule` is that decision rule as
a pure value -- the client-side
:class:`~repro.core.baseline.Enhanced80211rPolicy` (beacon-driven, full
802.11r architecture) and the controller-side
:class:`Baseline80211rPolicy` registry entry (same rule inside the WGTT
data plane) share it, so the tournament isolates the *selection rule*
from the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from .base import NO_EXCLUSIONS, HandoverPolicy
from .registry import register

__all__ = ["ThresholdScanRule", "Baseline80211rPolicy"]


@dataclass(frozen=True)
class ThresholdScanRule:
    """Rule (2) of the Enhanced 802.11r scheme, as a pure function.

    Switch away from ``current`` only when its level has fallen below
    ``threshold_db``, to the strongest candidate, provided it wins by
    ``margin_db`` and the last switch is older than ``hysteresis_s``.
    """

    threshold_db: float = 5.0
    margin_db: float = 3.0
    hysteresis_s: float = 1.0

    def pick_target(
        self,
        fresh: Dict[int, float],
        current: Optional[int],
        last_switch_t: float,
        now: float,
    ) -> Optional[int]:
        """The AP to hand over to, or None to stay put.

        ``fresh`` maps candidate AP -> smoothed level (dB); ``current``
        must be a key of ``fresh`` or None-like (a current AP that has
        gone silent scores an effective -100 dB).
        """
        if not fresh:
            return None
        best_ap, best_level = max(fresh.items(), key=lambda kv: kv[1])
        current_level = fresh.get(current)
        if current_level is None:
            # Haven't heard the current AP lately: it is effectively gone.
            current_level = -100.0
        if current_level >= self.threshold_db:
            return None  # only switch when the current link degrades
        if best_ap == current:
            return None
        if best_level < current_level + self.margin_db:
            return None
        if now - last_switch_t < self.hysteresis_s:
            return None  # time hysteresis
        return best_ap


@register
class Baseline80211rPolicy(HandoverPolicy):
    """Threshold + scan selection (Enhanced 802.11r) as a controller policy.

    ESNR readings stand in for the beacon RSSI scan: each observation
    updates a per-AP EWMA (the same ``ewma_weight`` smoothing the
    client-side baseline applies to beacons), entries go stale after
    ``stale_after_s``, and :class:`ThresholdScanRule` makes the handover
    decision.  The one-second rule hysteresis is clocked off committed
    switches (:meth:`on_switch`), exactly like the client-side scheme
    clocks off successful reassociations.
    """

    name = "baseline-80211r"

    def __init__(
        self,
        threshold_db: float = 5.0,
        margin_db: float = 3.0,
        rule_hysteresis_s: float = 1.0,
        ewma_weight: float = 0.7,
        stale_after_s: float = 0.35,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.rule = ThresholdScanRule(
            threshold_db=threshold_db,
            margin_db=margin_db,
            hysteresis_s=rule_hysteresis_s,
        )
        self.ewma_weight = ewma_weight
        self.stale_after_s = stale_after_s
        self._level: Dict[int, float] = {}
        self._level_time: Dict[int, float] = {}
        self._last_switch = -1e9

    # ------------------------------------------------------------ tracking
    def observe(self, ap_id: int, t: float, esnr_db: float) -> None:
        super().observe(ap_id, t, esnr_db)
        w = self.ewma_weight
        if ap_id in self._level and t - self._level_time[ap_id] < 1.0:
            self._level[ap_id] = w * self._level[ap_id] + (1 - w) * esnr_db
        else:
            self._level[ap_id] = esnr_db
        self._level_time[ap_id] = t

    def drop_ap(self, ap_id: int) -> bool:
        self._level.pop(ap_id, None)
        self._level_time.pop(ap_id, None)
        return super().drop_ap(ap_id)

    def on_switch(self, t: float, ap_id: int) -> None:
        self._last_switch = t

    # ----------------------------------------------------------- selection
    def _fresh(self, now: float, exclude: FrozenSet[int]) -> Dict[int, float]:
        cutoff = now - self.stale_after_s
        return {
            ap: level for ap, level in self._level.items()
            if self._level_time[ap] >= cutoff and ap not in exclude
        }

    def select(
        self,
        now: float,
        serving: Optional[int],
        exclude: FrozenSet[int] = NO_EXCLUSIONS,
    ) -> Optional[int]:
        fresh = self._fresh(now, exclude)
        if not fresh:
            return None
        if serving is None:
            # Initial association: join the strongest AP heard.
            return max(fresh.items(), key=lambda kv: kv[1])[0]
        target = self.rule.pick_target(fresh, serving, self._last_switch, now)
        return serving if target is None else target
