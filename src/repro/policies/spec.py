"""Declarative policy specifications.

A :class:`PolicySpec` is the (name + JSON params) value that selects a
handover policy in an :class:`~repro.experiments.builder.ExperimentConfig`,
a CLI invocation, or a sweep :class:`~repro.orchestration.spec.JobSpec`.
Like :class:`~repro.faults.FaultScenario` it is a plain value: JSON-
roundtrippable, hashable into cache keys, and picklable across worker
boundaries, so two jobs that differ only in policy parameters can never
collide on a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["PolicySpec", "coerce_policy", "DEFAULT_POLICY_NAME"]

#: The paper's rule (max-median windowed ESNR); what runs when no policy
#: is specified anywhere.
DEFAULT_POLICY_NAME = "wgtt-max-median"


@dataclass(frozen=True)
class PolicySpec:
    """A named policy plus its JSON-safe keyword parameters."""

    name: str = DEFAULT_POLICY_NAME
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"policy name must be a non-empty string, got {self.name!r}")
        # Params must survive a JSON round trip losslessly, or the cache
        # identity would diverge from what the worker actually runs.
        try:
            encoded = json.dumps(self.params, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"policy params must be JSON-serialisable: {exc}") from exc
        if json.loads(encoded) != self.params:
            raise TypeError("policy params must round-trip through JSON losslessly")

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name}
        if self.params:
            out["params"] = self.params
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PolicySpec":
        return cls(name=data["name"], params=dict(data.get("params", {})))

    def to_json(self) -> str:
        """Canonical JSON encoding (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "PolicySpec":
        return cls.from_dict(json.loads(text))

    def key_hash(self, length: int = 10) -> str:
        """Short stable digest for cache keys and job identity strings."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:length]

    def label(self) -> str:
        """Human-readable identity: the name, plus a hash when parametrised."""
        if not self.params:
            return self.name
        return f"{self.name}@{self.key_hash(6)}"


def coerce_policy(value: Any) -> Optional[PolicySpec]:
    """Accept a PolicySpec, dict, bare name, or JSON string (None passes).

    A string starting with ``{`` parses as the canonical JSON form;
    anything else is treated as a bare policy name with no params.
    """
    if value is None or isinstance(value, PolicySpec):
        return value
    if isinstance(value, str):
        text = value.strip()
        if text.startswith("{"):
            return PolicySpec.from_json(text)
        return PolicySpec(name=text)
    if isinstance(value, dict):
        return PolicySpec.from_dict(value)
    raise TypeError(
        f"policy must be PolicySpec, dict, name, or JSON str, "
        f"got {type(value).__name__}"
    )
