"""Ethernet backhaul connecting the controller and the APs.

The testbed wires every AP and the controller into one switched gigabit
LAN.  We model it as a star: each endpoint registers with the
:class:`Backhaul`, and `send` delivers a packet to the destination after
propagation + serialization + a small forwarding jitter.  Control packets
can additionally be dropped with a configurable probability -- the paper's
switching protocol carries a 30 ms retransmission timeout precisely
because stop/start/ack packets may be lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..sim.engine import Simulator
from .packet import Packet

__all__ = ["Backhaul", "BackhaulEndpoint", "BackhaulParams"]

#: Receiver callback signature: (packet, src_node_id).
BackhaulEndpoint = Callable[[Packet, int], None]


@dataclass
class BackhaulParams:
    """Latency/loss model of the switched LAN.

    ``base_latency_s`` covers propagation plus kernel/Click forwarding on
    both ends; ``jitter_s`` is a uniform spread on top.  ``bandwidth_bps``
    adds per-byte serialization (gigabit by default, so ~12 us per 1500 B
    frame).  ``loss_probability`` applies to every backhaul packet.
    ``link_jitter_s`` adds a *persistent* per-(src, dst) latency offset
    drawn once per pair in ``[0, link_jitter_s]`` -- unequal cable runs
    and switch paths; the draw is seeded, so delivery order is
    deterministic for a fixed seed.
    """

    base_latency_s: float = 300e-6
    jitter_s: float = 100e-6
    bandwidth_bps: float = 1e9
    loss_probability: float = 0.0
    link_jitter_s: float = 0.0


class Backhaul:
    """Star-topology wired network between controller and APs."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        params: Optional[BackhaulParams] = None,
    ):
        self.sim = sim
        self.rng = rng
        self.params = params or BackhaulParams()
        self._endpoints: Dict[int, BackhaulEndpoint] = {}
        #: Last scheduled delivery time per (src, dst): switched Ethernet
        #: never reorders frames within one flow, so jittered latencies are
        #: clamped to be monotone per pair.
        self._last_delivery: Dict[tuple, float] = {}
        #: Persistent per-pair latency offset (lazily drawn; see
        #: ``BackhaulParams.link_jitter_s``).
        self._pair_offset: Dict[tuple, float] = {}
        #: Optional fault overlay (see :mod:`repro.faults.overlay`).  While
        #: attached, sends to dead/unregistered nodes become traced drops.
        self.fault_overlay = None
        self.packets_sent = 0
        self.packets_lost = 0
        self.fault_dropped = 0
        self.bytes_sent = 0

    def register(self, node_id: int, receive: BackhaulEndpoint) -> None:
        """Attach an endpoint; ``receive(packet, src)`` is called on delivery."""
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already registered on backhaul")
        self._endpoints[node_id] = receive

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._endpoints

    def attach_fault_overlay(self, overlay) -> None:
        """Install a fault overlay; every subsequent send consults it."""
        self.fault_overlay = overlay

    def _link_offset(self, src: int, dst: int) -> float:
        """The pair's persistent latency offset (0 when the knob is off)."""
        if self.params.link_jitter_s <= 0.0:
            return 0.0
        key = (src, dst)
        offset = self._pair_offset.get(key)
        if offset is None:
            offset = float(self.rng.uniform(0.0, self.params.link_jitter_s))
            self._pair_offset[key] = offset
        return offset

    def send(self, src: int, dst: int, packet: Packet) -> None:
        """Queue ``packet`` from ``src`` to ``dst`` across the LAN.

        Unknown destinations raise immediately: backhaul membership is
        static in the testbed, so a miss is a wiring bug, not packet loss.
        Under an attached fault overlay the contract softens -- sends to
        dead or unregistered nodes become traced drops, because
        infrastructure failure is exactly what is being injected.
        """
        endpoints = self._endpoints
        overlay = self.fault_overlay
        if overlay is None and dst not in endpoints:
            raise KeyError(f"node {dst} is not on the backhaul")
        params = self.params
        size_bytes = packet.size_bytes
        self.packets_sent += 1
        self.bytes_sent += size_bytes
        fault_latency = 0.0
        if overlay is not None:
            verdict = overlay.on_send(
                src, dst, packet, self.sim.now,
                dst_registered=dst in endpoints,
            )
            if verdict.drop:
                self.packets_lost += 1
                self.fault_dropped += 1
                return
            fault_latency = verdict.extra_latency_s
        if params.loss_probability > 0.0 and (
            self.rng.random() < params.loss_probability
        ):
            self.packets_lost += 1
            return
        if params.link_jitter_s <= 0.0:
            link_offset = 0.0  # inline of _link_offset's knob-off branch
        else:
            link_offset = self._link_offset(src, dst)
        latency = (
            params.base_latency_s
            + float(self.rng.uniform(0.0, params.jitter_s))
            + link_offset
            + fault_latency
            + size_bytes * 8.0 / params.bandwidth_bps
        )
        sim = self.sim
        deliver_at = sim.now + latency
        key = (src, dst)
        last_delivery = self._last_delivery
        previous = last_delivery.get(key, -1.0)
        if deliver_at <= previous:
            deliver_at = previous + 1e-9  # FIFO per pair: no reordering
        last_delivery[key] = deliver_at
        sim.schedule_at(deliver_at, endpoints[dst], packet, src)

    def broadcast(self, src: int, packet_factory: Callable[[], Packet]) -> None:
        """Send a fresh copy of a packet to every other endpoint.

        ``packet_factory`` is invoked per destination so each copy is an
        independent object (association-state sync uses this).
        """
        for node_id in list(self._endpoints):
            if node_id != src:
                self.send(src, node_id, packet_factory())
