"""Node identifiers and address formatting.

Simulation nodes are identified by small integers (fast to hash and
compare); this module centralises their allocation and provides the
human-readable MAC/IP renderings used in traces and logs.
"""

from __future__ import annotations

import itertools
from typing import Dict

__all__ = ["NodeIdAllocator", "format_mac", "format_ip"]


def format_mac(node_id: int) -> str:
    """Render a node id as a locally-administered MAC address."""
    if node_id < 0 or node_id > 0xFFFFFFFF:
        raise ValueError(f"node id out of range: {node_id}")
    octets = [0x02, 0x00, (node_id >> 24) & 0xFF, (node_id >> 16) & 0xFF,
              (node_id >> 8) & 0xFF, node_id & 0xFF]
    return ":".join(f"{o:02x}" for o in octets)


def format_ip(node_id: int, subnet: str = "10.0") -> str:
    """Render a node id as an address in the testbed's 10.0/16."""
    if node_id < 0 or node_id > 0xFFFF:
        raise ValueError(f"node id out of /16 range: {node_id}")
    return f"{subnet}.{(node_id >> 8) & 0xFF}.{node_id & 0xFF}"


class NodeIdAllocator:
    """Hands out unique node ids, grouped by role for readable traces.

    Roles get disjoint ranges: controller/servers from 1, APs from 100,
    clients from 200.  Ranges are generous; overflow raises.
    """

    _RANGES = {"infra": (1, 99), "ap": (100, 199), "client": (200, 299)}

    def __init__(self) -> None:
        self._counters: Dict[str, itertools.count] = {
            role: itertools.count(start) for role, (start, _end) in self._RANGES.items()
        }

    def allocate(self, role: str) -> int:
        if role not in self._RANGES:
            raise ValueError(f"unknown role {role!r}; use one of {sorted(self._RANGES)}")
        node_id = next(self._counters[role])
        _start, end = self._RANGES[role]
        if node_id > end:
            raise RuntimeError(f"exhausted node id range for role {role!r}")
        return node_id
