"""Queue primitives for the AP packet pipeline (Fig. 7 of the paper).

A WGTT AP buffers packets in four places on the downlink path::

    backhaul rx -> [cyclic queue (repro.core.cyclic_queue)]
                -> [driver transmit queue]  (~200 packets)
                -> [NIC hardware queue]     (~2 aggregates)
                -> air

The driver/NIC stages are plain drop-tail FIFOs modelled here; the cyclic
queue is WGTT-specific and lives in :mod:`repro.core.cyclic_queue`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, Iterable, Iterator, List, Optional, TypeVar

__all__ = ["DropTailQueue", "QueueStats"]

T = TypeVar("T")


class QueueStats:
    """Counters shared by every queue type."""

    __slots__ = ("enqueued", "dequeued", "dropped")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"QueueStats(enq={self.enqueued}, deq={self.dequeued}, "
            f"drop={self.dropped})"
        )


class DropTailQueue(Generic[T]):
    """Bounded FIFO that drops arrivals when full (standard drop-tail).

    ``None`` capacity means unbounded (used for the controller-side socket
    buffer whose pressure is exerted by TCP's window instead).
    """

    def __init__(self, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.stats = QueueStats()

    def enqueue(self, item: T) -> bool:
        """Add to the tail.  Returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._items.append(item)
        self.stats.enqueued += 1
        return True

    def requeue_front(self, item: T) -> None:
        """Push back to the head (retransmissions); never drops."""
        self._items.appendleft(item)

    def dequeue(self) -> Optional[T]:
        """Pop the head, or None when empty."""
        if not self._items:
            return None
        self.stats.dequeued += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def drain(self) -> List[T]:
        """Remove and return everything (queue flush)."""
        items = list(self._items)
        self._items.clear()
        return items

    def remove_if(self, predicate: Callable[[T], bool]) -> int:
        """Filter out matching items (the stop(c) driver-queue filter).

        Returns how many were removed.
        """
        kept = [x for x in self._items if not predicate(x)]
        removed = len(self._items) - len(kept)
        self._items = deque(kept)
        return removed

    def extend(self, items: Iterable[T]) -> int:
        """Enqueue many; returns how many were accepted."""
        accepted = 0
        for item in items:
            if self.enqueue(item):
                accepted += 1
        return accepted

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover
        cap = self.capacity if self.capacity is not None else "inf"
        return f"<DropTailQueue {self.name!r} {len(self._items)}/{cap}>"
