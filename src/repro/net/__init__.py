"""Network substrate: packets, addressing, queues, Ethernet backhaul."""

from .addressing import NodeIdAllocator, format_ip, format_mac
from .ethernet import Backhaul, BackhaulParams
from .packet import (
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    TUNNEL_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
)
from .queues import DropTailQueue, QueueStats

__all__ = [
    "NodeIdAllocator",
    "format_ip",
    "format_mac",
    "Backhaul",
    "BackhaulParams",
    "Packet",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "TUNNEL_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "DropTailQueue",
    "QueueStats",
]
