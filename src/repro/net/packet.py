"""Packet representation.

Simulated packets carry just enough header structure to express what the
paper's data plane does: IP/UDP/TCP endpoints, an IP identification field
(used by the controller's uplink de-duplication), and a stack of
encapsulation layers for the controller->AP tunnel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["Packet", "TUNNEL_HEADER_BYTES", "IP_HEADER_BYTES", "UDP_HEADER_BYTES", "TCP_HEADER_BYTES"]

IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20
#: Outer 802.3 + IP + UDP encapsulation used for controller<->AP tunneling.
TUNNEL_HEADER_BYTES = 14 + IP_HEADER_BYTES + UDP_HEADER_BYTES

_ip_id_counter = itertools.count(1)
_packet_uid = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One simulated packet.

    Attributes
    ----------
    size_bytes:
        Total on-the-wire size including transport/IP headers (but not
        802.11 MAC framing, which the MAC layer accounts for separately).
    src / dst:
        Node ids of the transport endpoints (server, client).
    protocol:
        ``"udp"``, ``"tcp"``, ``"ctrl"``, ``"csi"``, ``"mgmt"`` ...
    flow_id:
        Transport flow the packet belongs to.
    seq:
        Transport-level sequence number (segment index for UDP, first byte
        offset for TCP).
    ip_id:
        IP identification field; with ``src`` it forms the 48-bit
        de-duplication key of section 3.2.2.
    payload:
        Protocol-specific metadata (e.g. TCP segment descriptor).
    tunnel:
        Stack of (outer_src, outer_dst) encapsulation layers.
    """

    size_bytes: int
    src: int
    dst: int
    protocol: str = "udp"
    flow_id: int = 0
    seq: int = 0
    created_at: float = 0.0
    ip_id: int = field(default_factory=lambda: next(_ip_id_counter) & 0xFFFF)
    uid: int = field(default_factory=lambda: next(_packet_uid))
    payload: Any = None
    tunnel: List[Tuple[int, int]] = field(default_factory=list)
    #: WGTT 12-bit per-client downlink index, assigned by the controller.
    wgtt_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    # ------------------------------------------------------------- tunneling
    def encapsulate(self, outer_src: int, outer_dst: int) -> "Packet":
        """Wrap the packet for backhaul transport (section 3.1.3 / 3.2.2).

        Mutates and returns self; the tunnel header adds
        :data:`TUNNEL_HEADER_BYTES` to the wire size.
        """
        self.tunnel.append((outer_src, outer_dst))
        self.size_bytes += TUNNEL_HEADER_BYTES
        return self

    def tunnel_clone(self, outer_src: int, outer_dst: int) -> "Packet":
        """A copy of this packet encapsulated for one backhaul hop.

        Fan-out fast path for the controller's multicast-to-candidate-APs
        delivery: equivalent to ``copy.copy`` + a fresh single-layer
        tunnel, but without the generic reduce/reconstruct machinery.
        The clone shares ``payload`` and keeps ``uid``/``ip_id`` (it *is*
        the same IP datagram -- de-duplication relies on that).
        """
        new = object.__new__(Packet)
        new.size_bytes = self.size_bytes + TUNNEL_HEADER_BYTES
        new.src = self.src
        new.dst = self.dst
        new.protocol = self.protocol
        new.flow_id = self.flow_id
        new.seq = self.seq
        new.created_at = self.created_at
        new.ip_id = self.ip_id
        new.uid = self.uid
        new.payload = self.payload
        new.tunnel = [(outer_src, outer_dst)]
        new.wgtt_index = self.wgtt_index
        return new

    def decapsulate(self) -> Tuple[int, int]:
        """Strip the outermost tunnel layer, returning (outer_src, outer_dst)."""
        if not self.tunnel:
            raise ValueError("packet is not encapsulated")
        self.size_bytes -= TUNNEL_HEADER_BYTES
        return self.tunnel.pop()

    @property
    def is_tunneled(self) -> bool:
        return bool(self.tunnel)

    # ---------------------------------------------------------------- dedup
    def dedup_key(self) -> int:
        """48-bit key: 32-bit source address (node id) + 16-bit IP id."""
        return ((self.src & 0xFFFFFFFF) << 16) | (self.ip_id & 0xFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idx = f" idx={self.wgtt_index}" if self.wgtt_index is not None else ""
        return (
            f"<Packet {self.protocol} {self.src}->{self.dst} seq={self.seq} "
            f"{self.size_bytes}B{idx}>"
        )
