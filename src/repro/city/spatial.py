"""Uniform-grid spatial index over AP positions.

The single-road builder constructs a :class:`~repro.phy.channel.Link`
for every (AP, client) pair -- an all-pairs matrix that is fine for 8
APs and fatal for 128.  The city builder instead inserts every AP into
this index and, per vehicle, queries it along the route's sample
points; only APs that ever come within ``link_range_m`` of the route
get a fading link (and therefore CSI, candidacy, and airtime cost).

Queries are deterministic: candidate cells are visited in sorted order
and entries within a cell in insertion order.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, List, Tuple, TypeVar

__all__ = ["SpatialIndex"]

T = TypeVar("T")
Cell = Tuple[int, int]


class SpatialIndex(Generic[T]):
    """2-D point index with uniform square cells of edge ``cell_m``."""

    def __init__(self, cell_m: float):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self.cell_m = float(cell_m)
        self._cells: Dict[Cell, List[Tuple[T, float, float]]] = {}
        self.n_items = 0

    def cell_of(self, x: float, y: float) -> Cell:
        return (math.floor(x / self.cell_m), math.floor(y / self.cell_m))

    def insert(self, item: T, x: float, y: float) -> None:
        self._cells.setdefault(self.cell_of(x, y), []).append((item, x, y))
        self.n_items += 1

    def query(self, x: float, y: float, radius_m: float) -> List[T]:
        """Items within ``radius_m`` of ``(x, y)``, deterministic order."""
        r = radius_m
        cx_lo, cy_lo = self.cell_of(x - r, y - r)
        cx_hi, cy_hi = self.cell_of(x + r, y + r)
        r2 = r * r
        out: List[T] = []
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                for item, ix, iy in self._cells.get((cx, cy), ()):
                    dx, dy = ix - x, iy - y
                    if dx * dx + dy * dy <= r2:
                        out.append(item)
        return out

    def query_path(
        self,
        points: List[Tuple[float, float]],
        radius_m: float,
    ) -> List[T]:
        """Union of queries along ``points``, deduplicated, first-hit order."""
        seen = set()
        out: List[T] = []
        for x, y in points:
            for item in self.query(x, y, radius_m):
                if item not in seen:
                    seen.add(item)
                    out.append(item)
        return out
