"""Road-grid geometry: intersections, segments, AP placement, channels.

The grid is a Manhattan lattice of ``rows x cols`` intersections spaced
``block_m`` apart.  Intersection ``(row, col)`` sits at
``(col * block_m, row * block_m)`` (x east, y north).  Every adjacent
pair of intersections is joined by a :class:`RoadSegment` carrying its
own roadside AP array, reusing the single-road geometry constants
(:data:`~repro.mobility.trajectory.AP_SETBACK_M` and friends) in a
per-segment local frame: ``along`` runs from endpoint ``a`` to ``b``
and ``lateral`` is the across-road offset (negative toward the
buildings, positive into the lanes).

Channels are assigned by greedy graph colouring over the segment
adjacency graph (segments sharing an intersection), so neighbouring
arrays never share a channel and a client crossing an intersection must
retune -- which is exactly the picocell-boundary event the city
subsystem exists to study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..mobility.trajectory import (
    AIM_LANE_Y_M,
    AP_HEIGHT_M,
    AP_SETBACK_M,
    CLIENT_HEIGHT_M,
    FAR_LANE_Y_M,
    NEAR_LANE_Y_M,
)
from .config import CityConfig

__all__ = ["RoadGrid", "RoadSegment"]

Vec3 = Tuple[float, float, float]
Intersection = Tuple[int, int]  # (row, col)


@dataclass(frozen=True)
class RoadSegment:
    """One block-long road between two adjacent intersections."""

    index: int
    a: Intersection
    b: Intersection
    orientation: str  # "h" (a east to b) or "v" (a north to b)
    origin: Tuple[float, float]  # world (x, y) of endpoint ``a``
    length_m: float
    channel: int = 11

    def point_at(self, along_m: float, lateral_m: float, z_m: float) -> Vec3:
        """Local (along, lateral, z) -> world coordinates."""
        x0, y0 = self.origin
        if self.orientation == "h":
            return (x0 + along_m, y0 + lateral_m, z_m)
        return (x0 + lateral_m, y0 + along_m, z_m)


class RoadGrid:
    """The lattice of road segments derived from a :class:`CityConfig`."""

    def __init__(self, config: CityConfig):
        self.config = config
        self.block_m = config.block_m
        self.rows = config.rows
        self.cols = config.cols
        self.segments: List[RoadSegment] = []
        #: Unordered intersection pair -> segment index.
        self._edge_index: Dict[frozenset, int] = {}
        #: Intersection -> indices of its incident segments.
        self._incident: Dict[Intersection, List[int]] = {}
        self._build_segments()
        self._assign_channels(config.channels)

    # ----------------------------------------------------------- topology
    def _build_segments(self) -> None:
        def add(a: Intersection, b: Intersection, orientation: str) -> None:
            index = len(self.segments)
            seg = RoadSegment(
                index=index, a=a, b=b, orientation=orientation,
                origin=self.intersection_xy(*a), length_m=self.block_m,
            )
            self.segments.append(seg)
            self._edge_index[frozenset((a, b))] = index
            for node in (a, b):
                self._incident.setdefault(node, []).append(index)

        for row in range(self.rows):
            for col in range(self.cols - 1):
                add((row, col), (row, col + 1), "h")
        for row in range(self.rows - 1):
            for col in range(self.cols):
                add((row, col), (row + 1, col), "v")

    def _assign_channels(self, palette: Tuple[int, ...]) -> None:
        """Greedy colouring: no two segments sharing an intersection on
        the same channel (palette permitting; max degree in a grid is 6,
        so the default 7-channel palette always suffices)."""
        chosen: List[int] = []
        for seg in self.segments:
            used = set()
            for node in (seg.a, seg.b):
                for other in self._incident[node]:
                    if other < seg.index:
                        used.add(chosen[other])
            channel = next((c for c in palette if c not in used), None)
            if channel is None:
                # Palette exhausted: fall back to the least-used colour.
                counts = {c: chosen.count(c) for c in palette}
                channel = min(palette, key=lambda c: (counts[c], palette.index(c)))
            chosen.append(channel)
        self.segments = [
            RoadSegment(
                index=seg.index, a=seg.a, b=seg.b, orientation=seg.orientation,
                origin=seg.origin, length_m=seg.length_m, channel=chosen[i],
            )
            for i, seg in enumerate(self.segments)
        ]

    # ----------------------------------------------------------- queries
    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_aps(self) -> int:
        return self.n_segments * self.config.aps_per_segment

    def intersection_xy(self, row: int, col: int) -> Tuple[float, float]:
        return (col * self.block_m, row * self.block_m)

    def intersections(self) -> List[Intersection]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]

    def neighbors(self, node: Intersection) -> List[Intersection]:
        """Adjacent intersections in fixed (E, W, N, S) order."""
        row, col = node
        out = []
        for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                out.append((r, c))
        return out

    def segment_between(self, a: Intersection, b: Intersection) -> RoadSegment:
        return self.segments[self._edge_index[frozenset((a, b))]]

    def segments_at(self, node: Intersection) -> List[RoadSegment]:
        return [self.segments[i] for i in self._incident.get(node, [])]

    # -------------------------------------------------------- AP geometry
    def ap_along_m(self, i: int) -> float:
        """Along-segment offset of AP ``i``: uniform with half-step margin."""
        n = self.config.aps_per_segment
        return (i + 0.5) * self.block_m / n

    def ap_position(self, seg: RoadSegment, i: int) -> Vec3:
        return seg.point_at(self.ap_along_m(i), AP_SETBACK_M, AP_HEIGHT_M)

    def ap_aim_point(self, seg: RoadSegment, i: int) -> Vec3:
        return seg.point_at(self.ap_along_m(i), AIM_LANE_Y_M, CLIENT_HEIGHT_M)

    # ------------------------------------------------------ lane geometry
    def leg_endpoints(self, a: Intersection, b: Intersection) -> Tuple[Vec3, Vec3]:
        """Waypoints for driving the segment from ``a`` to ``b``.

        Travel in the +along direction uses the near lane, the opposite
        direction the far lane (both on the AP side of the road, exactly
        the two-lane layout of the single-road testbed).
        """
        seg = self.segment_between(a, b)
        forward = seg.a == a
        lane = NEAR_LANE_Y_M if forward else FAR_LANE_Y_M
        start_along = 0.0 if forward else seg.length_m
        end_along = seg.length_m if forward else 0.0
        return (
            seg.point_at(start_along, lane, CLIENT_HEIGHT_M),
            seg.point_at(end_along, lane, CLIENT_HEIGHT_M),
        )
