"""City-scale simulation subsystem.

Scales the single-road testbed to a road grid: waypoint vehicle
mobility with seeded intersection turns, spatially-indexed link
construction, a collision domain partitioned per (channel, cell), and
one WGTT controller shard per road segment.  See ``EXPERIMENTS.md``
("City-scale drives") for the scenario spec and the scaling benchmark.
"""

from .builder import (
    CityNetwork,
    CityNodeIdAllocator,
    CityVehicle,
    SegmentController,
    build_city_network,
)
from .config import DEFAULT_CHANNELS, CityConfig, coerce_city
from .grid import RoadGrid, RoadSegment
from .medium import MediumShard, ShardedMedium
from .mobility import TURN_WEIGHTS, Leg, VehiclePlan, random_route
from .runner import attach_city_flow, run_city_drive
from .spatial import SpatialIndex

__all__ = [
    "CityConfig",
    "CityNetwork",
    "CityNodeIdAllocator",
    "CityVehicle",
    "DEFAULT_CHANNELS",
    "Leg",
    "MediumShard",
    "RoadGrid",
    "RoadSegment",
    "SegmentController",
    "ShardedMedium",
    "SpatialIndex",
    "TURN_WEIGHTS",
    "VehiclePlan",
    "attach_city_flow",
    "build_city_network",
    "coerce_city",
    "random_route",
    "run_city_drive",
]
