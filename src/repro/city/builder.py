"""City network builder: per-segment controller shards over one backhaul.

:class:`CityNetwork` mirrors :class:`repro.experiments.builder.Network`
but scales its construction to a road grid:

* every :class:`~repro.city.grid.RoadSegment` gets its own AP array
  (colour-assigned channel) and its own :class:`SegmentController` --
  the existing WGTT controller, unchanged except for an election window
  gate -- so CSI load, candidate sets, and the switch protocol stay
  segment-local;
* all controllers share one uplink :class:`~repro.core.dedup.Deduplicator`
  (two segments' APs can both decode a frame near an intersection);
* links are constructed only for (AP, vehicle) pairs the
  :class:`~repro.city.spatial.SpatialIndex` reports within
  ``link_range_m`` of the vehicle's route, replacing the all-pairs
  matrix;
* the collision domain is a :class:`~repro.city.medium.ShardedMedium`
  partitioned per (channel, cell) unless ``CityConfig.sharded`` is off;
* at every leg boundary the vehicle is handed between segments: the old
  controller releases it, its APs are flushed (twice -- a resweep
  catches a switch handshake that was in flight at the boundary), and
  the client radio retunes to the new segment's channel.

Downlink server traffic is routed per packet to the controller of the
segment the vehicle is on at send time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.ap import ApParams, WgttAp
from ..core.association import pre_associate
from ..core.client import ClientParams, MobileClient
from ..core.controller import WgttController
from ..core.cyclic_queue import INDEX_MODULO
from ..core.dedup import Deduplicator
from ..core.messages import FlushClient
from ..invariants import InvariantSuite
from ..mac.medium import Medium
from ..net.addressing import NodeIdAllocator
from ..net.ethernet import Backhaul
from ..net.packet import Packet
from ..phy.antenna import ParabolicAntenna
from ..phy.channel import Link
from ..policies import PolicyContext, create_policy
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .grid import RoadGrid, RoadSegment
from .medium import ShardedMedium
from .mobility import VehiclePlan, random_route
from .spatial import SpatialIndex

__all__ = [
    "CityNetwork",
    "CityNodeIdAllocator",
    "CityVehicle",
    "SegmentController",
    "build_city_network",
]

#: Elections stop this long before a vehicle leaves a segment, so no
#: switch handshake is in flight when the boundary flush lands.
ELECTION_GUARD_S = 0.1
#: Second FlushClient sweep this long after a leg transition.
FLUSH_RESWEEP_S = 0.05
#: Route sampling step for the spatial link query.
ROUTE_SAMPLE_STEP_M = 10.0


class CityNodeIdAllocator(NodeIdAllocator):
    """Wider id ranges: a city has hundreds of APs and vehicles.

    All ranges stay within the /16 that :func:`format_ip` can render.
    """

    _RANGES = {"infra": (1, 999), "ap": (1000, 9999), "client": (10000, 19999)}


class SegmentController(WgttController):
    """A WGTT controller owning one road segment's AP array.

    Identical to the single-road controller except that elections for a
    client are gated to the time windows in which its route actually
    traverses this segment: a distant same-channel AP that fluke-decodes
    a probe cannot trigger a competing election.  ``epoch`` is the
    segment index so the index-monotonicity invariant keys each
    segment's independent 12-bit sequence separately.
    """

    def __init__(self, *args, segment_index: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.segment_index = segment_index
        self.epoch = segment_index
        #: client -> [(t0, t1)] election windows (unsorted; short lists).
        self._windows: Dict[int, List[Tuple[float, float]]] = {}
        #: (client, ap) -> downlink_packets count at the last feed.
        self._last_fed: Dict[Tuple[int, int], int] = {}

    def add_client_window(self, client: int, t0: float, t1: float) -> None:
        self._windows.setdefault(client, []).append((t0, t1))

    def _client_in_window(self, client: int, t: float) -> bool:
        windows = self._windows.get(client)
        if windows is None:
            return True  # un-windowed clients behave like the base class
        return any(t0 <= t < t1 for t0, t1 in windows)

    def _evaluate(self, client, state, t: float) -> None:
        if not self._client_in_window(client, t):
            return
        super()._evaluate(client, state, t)

    def _pre_feed(self, client, state, ap_id: int) -> None:
        # On a grid, a route can swing back into an AP's coverage long
        # after its last feed.  Once the gap reaches half the 12-bit
        # index space, old ring entries alias into the live window that
        # a future start(c, k) would serve -- flush before the first
        # fresh insert (FIFO backhaul orders the flush ahead of it).
        seqno = state.downlink_packets
        last = self._last_fed.get((client, ap_id))
        if last is not None and seqno - last >= INDEX_MODULO // 2:
            self._send(ap_id, FlushClient(client=client))
        self._last_fed[(client, ap_id)] = seqno

    def _begin_switch(self, client, state, old_ap, new_ap, t, attempt=0):
        if old_ap is None and attempt == 0:
            # Bootstrap election with no stop/start index handover.  On a
            # grid, routes revisit segments (U-turns, loops): the target
            # AP's ring may still hold packets multicast during an earlier
            # pass, and a bare start(c, k) would replay them.  Flush first
            # -- the backhaul is FIFO per (controller, AP) pair, so the
            # flush always lands before the start.
            self._send(new_ap, FlushClient(client=client))
        super()._begin_switch(
            client, state, old_ap=old_ap, new_ap=new_ap, t=t, attempt=attempt
        )

    def release_client(self, client: int) -> None:
        """Forget the serving relationship (leg handoff; AP-side state is
        cleared separately via FlushClient)."""
        state = self.clients.get(client)
        if state is None:
            return
        if state.switching is not None:
            timer = state.switching[3]
            if timer is not None:
                timer.cancel()
            state.switching = None
        state.serving_ap = None


class CityVehicle:
    """One client driving a planned route."""

    def __init__(self, seq: int, client: MobileClient, plan: VehiclePlan,
                 linked_ap_ids: List[int]):
        self.seq = seq
        self.client = client
        self.plan = plan
        self.linked_ap_ids = linked_ap_ids

    @property
    def node_id(self) -> int:
        return self.client.node_id


class CityNetwork:
    """A built city-scale testbed instance."""

    def __init__(self, config):
        # ``config`` is an ExperimentConfig whose ``city`` field is set
        # (typed loosely to avoid an import cycle with experiments.builder).
        if config.city is None:
            raise ValueError("CityNetwork needs ExperimentConfig.city")
        if config.mode != "wgtt":
            raise ValueError("city drives support wgtt mode only")
        self.config = config
        city = config.city
        self.city_config = city
        self.grid = RoadGrid(city)
        self.sim = Simulator()
        self.rng = np.random.default_rng(config.seed)
        self.trace = TraceRecorder(keep_kinds=config.trace_kinds,
                                   max_records=config.trace_max_records)
        if city.sharded:
            self.medium: Medium = ShardedMedium(
                self.sim, np.random.default_rng([config.seed, 1]),
                trace=self.trace, params=config.medium_params,
                cell_m=city.cell_m,
            )
        else:
            self.medium = Medium(
                self.sim, np.random.default_rng([config.seed, 1]),
                trace=self.trace, params=config.medium_params,
            )
        self.backhaul = Backhaul(
            self.sim, np.random.default_rng([config.seed, 2]),
            params=config.backhaul_params,
        )
        self.ids = CityNodeIdAllocator()
        self.server_id = self.ids.allocate("infra")
        self.bssid = self.ids.allocate("infra")  # one BSSID city-wide

        # One controller shard per segment, sharing an uplink dedup
        # window (near intersections, APs of two segments can decode the
        # same client frame and both tunnel it up).
        self._shared_dedup = Deduplicator(capacity=65536)
        self.controllers: List[SegmentController] = []
        policy_factory = None
        if config.policy is not None:
            spec = config.policy
            policy_factory = lambda: create_policy(spec)  # noqa: E731
        ap_params = config.ap_params or ApParams()
        self.aps: List[WgttAp] = []
        self.ap_positions: List[Tuple[float, float, float]] = []
        #: Per segment, the node ids of its APs (flush targets).
        self.segment_ap_ids: List[List[int]] = []
        self._ap_index: SpatialIndex[int] = SpatialIndex(city.cell_m)

        for seg in self.grid.segments:
            controller_id = self.ids.allocate("infra")
            controller = SegmentController(
                self.sim, self.backhaul, controller_id,
                np.random.default_rng([config.seed, 3000 + seg.index]),
                trace=self.trace, params=config.controller_params,
                policy_factory=policy_factory,
                segment_index=seg.index,
            )
            controller.dedup = self._shared_dedup
            self.controllers.append(controller)
            self.segment_ap_ids.append([])
            self._build_segment_aps(seg, controller, ap_params)

        self.clients: List[MobileClient] = []
        self.vehicles: List[CityVehicle] = []
        self._vehicle_by_node: Dict[int, CityVehicle] = {}
        self._client_seq = 0

        self.invariants: Optional[InvariantSuite] = None
        if config.check_invariants:
            self.invariants = InvariantSuite()
            self.invariants.attach(*self.controllers, *self.aps)

    # ------------------------------------------------------------- infra
    def _build_segment_aps(self, seg: RoadSegment,
                           controller: SegmentController,
                           ap_params: ApParams) -> None:
        city = self.config.city
        for i in range(city.aps_per_segment):
            position = self.grid.ap_position(seg, i)
            antenna = ParabolicAntenna.aimed_at(
                position, self.grid.ap_aim_point(seg, i)
            )
            node_id = self.ids.allocate("ap")
            ap_index = len(self.aps)
            ap = WgttAp(
                self.sim, self.medium, self.backhaul, node_id,
                controller.node_id, position, antenna,
                np.random.default_rng([self.config.seed, 4_000_000 + ap_index]),
                trace=self.trace, bssid=self.bssid, params=ap_params,
            )
            ap.radio.channel = seg.channel
            # City APs drop (rather than re-queue) aggregates that were
            # on the air when a flush ran: at fleet scale a post-flush
            # retry chain delivers frames deep out of order.
            ap.radio.strict_flush = True
            if isinstance(self.medium, ShardedMedium):
                self.medium.rebucket(ap.radio)
            self.aps.append(ap)
            self.ap_positions.append(position)
            self.segment_ap_ids[seg.index].append(node_id)
            self._ap_index.insert(ap_index, position[0], position[1])
            controller.add_ap(node_id)

    @property
    def n_aps(self) -> int:
        return len(self.aps)

    # ----------------------------------------------------------- vehicles
    def plan_vehicle_route(self, min_duration_s: float) -> VehiclePlan:
        """A seeded random route for the next vehicle (one RNG stream per
        vehicle, so fleets are reproducible and order-independent)."""
        seq = self._client_seq + 1  # the seq add_vehicle will assign
        route_rng = np.random.default_rng([self.config.seed, 7_000_000 + seq])
        city = self.config.city
        from ..mobility.trajectory import mph_to_mps

        speed = mph_to_mps(city.speed_mph)
        route = random_route(
            self.grid, route_rng, min_duration_s=min_duration_s,
            speed_mps=speed,
        )
        return VehiclePlan(self.grid, route, speed)

    def _route_samples(self, plan: VehiclePlan) -> List[Tuple[float, float]]:
        """Points every ~10 m along the route (plus every waypoint)."""
        points: List[Tuple[float, float]] = []
        waypoints = plan.trajectory.waypoints
        for a, b in zip(waypoints, waypoints[1:]):
            points.append((a[0], a[1]))
            dx, dy = b[0] - a[0], b[1] - a[1]
            length = (dx * dx + dy * dy) ** 0.5
            steps = int(length // ROUTE_SAMPLE_STEP_M)
            for s in range(1, steps + 1):
                frac = s * ROUTE_SAMPLE_STEP_M / length
                points.append((a[0] + dx * frac, a[1] + dy * frac))
        points.append((waypoints[-1][0], waypoints[-1][1]))
        return points

    def add_vehicle(self, plan: VehiclePlan,
                    params: Optional[ClientParams] = None) -> CityVehicle:
        """Create a client on ``plan`` with spatially-gated links."""
        config = self.config
        city = config.city
        self._client_seq += 1
        seq = self._client_seq
        node_id = self.ids.allocate("client")
        client_params = params or config.client_params or ClientParams()
        client = MobileClient(
            self.sim, self.medium, node_id, plan.trajectory,
            np.random.default_rng([config.seed, 6_000_000 + seq]),
            trace=self.trace, params=client_params,
        )
        client.radio.channel = plan.legs[0].channel
        if isinstance(self.medium, ShardedMedium):
            self.medium.rebucket(client.radio)

        # Links only to APs the route ever brings within link_range_m.
        # With the index disabled, fall back to the all-pairs matrix the
        # index replaces (the scaling benchmark's control arm).
        if city.link_index:
            ap_indices = self._ap_index.query_path(
                self._route_samples(plan), city.link_range_m
            )
        else:
            ap_indices = list(range(len(self.aps)))
        linked_aps = []
        for j, ap_index in enumerate(ap_indices):
            ap = self.aps[ap_index]
            link = Link(
                ap_position=self.ap_positions[ap_index],
                ap_antenna=ap.radio.antenna,
                client_position_fn=plan.trajectory.position,
                speed_mps=plan.trajectory.speed_mps,
                rng=np.random.default_rng(
                    [config.seed, 5_000_000 + 1000 * seq + j]
                ),
                params=config.radio_params,
            )
            self.medium.add_link(ap.node_id, node_id, link)
            linked_aps.append(ap)
        pre_associate(client, linked_aps, self.bssid)

        # Register the vehicle (with election windows) on the controller
        # of every segment its route traverses.
        for seg_index in plan.segments_visited():
            controller = self.controllers[seg_index]
            first_ap_id = CityNodeIdAllocator._RANGES["ap"][0]
            seg_ap_positions = {
                ap_id: self.ap_positions[ap_id - first_ap_id]
                for ap_id in self.segment_ap_ids[seg_index]
            }
            context = PolicyContext(
                ap_positions=seg_ap_positions,
                position_fn=plan.trajectory.position,
                speed_mps=plan.trajectory.speed_mps,
                heading_sign=1.0,
            )
            controller.add_client(node_id, context=context)
        for leg in plan.legs:
            guard_end = max(leg.t_enter, leg.t_exit - ELECTION_GUARD_S)
            self.controllers[leg.segment].add_client_window(
                node_id, leg.t_enter, guard_end
            )

        # Leg-boundary handoffs.
        for k in range(1, len(plan.legs)):
            if plan.legs[k].segment == plan.legs[k - 1].segment:
                continue  # U-turn back onto the same array: nothing changes
            vehicle_ref = node_id
            self.sim.schedule_at(
                plan.legs[k].t_enter, self._leg_transition, vehicle_ref, k
            )
            self.sim.schedule_at(
                plan.legs[k].t_enter + FLUSH_RESWEEP_S,
                self._flush_old_segment, vehicle_ref, k,
            )

        vehicle = CityVehicle(seq, client, plan, [ap.node_id for ap in linked_aps])
        if self.invariants is not None:
            self.invariants.attach(client)
        self.clients.append(client)
        self.vehicles.append(vehicle)
        self._vehicle_by_node[node_id] = vehicle
        return vehicle

    def _ap_by_id(self, ap_id: int) -> WgttAp:
        # node ids are allocated densely from 1000 in self.aps order.
        return self.aps[ap_id - CityNodeIdAllocator._RANGES["ap"][0]]

    # ---------------------------------------------------------- handoffs
    def _leg_transition(self, node_id: int, k: int) -> None:
        vehicle = self._vehicle_by_node[node_id]
        old_leg = vehicle.plan.legs[k - 1]
        new_leg = vehicle.plan.legs[k]
        self._release_from_segment(vehicle, old_leg.segment)
        vehicle.client.radio.channel = new_leg.channel
        if isinstance(self.medium, ShardedMedium):
            self.medium.rebucket(vehicle.client.radio)
        self.trace.emit(
            self.sim.now, "leg_transition", client=node_id,
            old_segment=old_leg.segment, new_segment=new_leg.segment,
            channel=new_leg.channel,
        )

    def _flush_old_segment(self, node_id: int, k: int) -> None:
        """Resweep: a switch handshake in flight at the boundary can set
        serving=True on an old-segment AP *after* the first flush."""
        vehicle = self._vehicle_by_node[node_id]
        self._release_from_segment(vehicle, vehicle.plan.legs[k - 1].segment)

    def _release_from_segment(self, vehicle: CityVehicle, seg_index: int) -> None:
        controller = self.controllers[seg_index]
        controller.release_client(vehicle.node_id)
        for ap_id in self.segment_ap_ids[seg_index]:
            controller._send(ap_id, FlushClient(client=vehicle.node_id))

    # ------------------------------------------------------------- server
    def _downlink_entry(self, packet: Packet) -> None:
        vehicle = self._vehicle_by_node.get(packet.dst)
        if vehicle is None:
            return
        leg = vehicle.plan.leg_at(self.sim.now)
        self.controllers[leg.segment].send_downlink(packet)

    def server_send(self, packet: Packet) -> None:
        """Downlink entry: server -> the active segment's controller."""
        self.sim.schedule(
            self.config.server_latency_s, self._downlink_entry, packet
        )

    def deliver_to_server(self, handler: Callable[[Packet, float], None]):
        """Wrap an uplink handler with the server-side latency."""

        def delayed(packet: Packet, _t: float) -> None:
            self.sim.schedule(
                self.config.server_latency_s,
                lambda: handler(packet, self.sim.now),
            )

        return delayed

    def register_uplink_handler(self, flow_id: int, handler) -> None:
        """Uplink flows terminate at whichever segment decodes them."""
        for controller in self.controllers:
            controller.register_uplink_handler(flow_id, handler)

    # ------------------------------------------------------------ queries
    def serving_ap(self, node_id: int) -> Optional[int]:
        for controller in self.controllers:
            state = controller.clients.get(node_id)
            if state is not None and state.serving_ap is not None:
                return state.serving_ap
        return None

    def resilience_counters(self) -> Dict[str, int]:
        """Invariant/handoff bookkeeping for ``DriveSummary.resilience``."""
        if self.invariants is None:
            return {}
        out: Dict[str, int] = {
            "client_flushes": sum(
                getattr(ap, "flushes_applied", 0) for ap in self.aps
            ),
        }
        out.update(self.invariants.counters())
        return out

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def build_city_network(config) -> CityNetwork:
    """Build a city network from an ExperimentConfig with ``city`` set."""
    return CityNetwork(config)
