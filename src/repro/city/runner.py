"""Run a city drive: a vehicle fleet over the road grid.

Mirrors :func:`repro.experiments.runners.run_single_drive` but drives
``CityConfig.n_vehicles`` clients at once and aggregates fleet metrics
(total and per-segment throughput) into the ``extras`` of a standard
:class:`~repro.experiments.runners.DriveResult`, so summaries, caching,
and the CLI reuse the single-road plumbing unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..experiments.metrics import ServingTimeline, mean_throughput_mbps
from ..experiments.runners import (
    DriveResult,
    _alloc_flow_id,
    tcp_deliveries,
    udp_deliveries,
)
from ..perf import PERF
from ..transport.tcp import TcpReceiver, TcpSender
from ..transport.udp import UdpReceiver, UdpSender
from .builder import CityNetwork, CityVehicle, build_city_network

__all__ = ["run_city_drive", "attach_city_flow"]

#: Flow starts are staggered so CBR senders do not fire in lockstep.
#: The whole fleet is on the air within TRAFFIC_SPAN_S regardless of
#: size -- a fixed per-flow stagger would leave a 192-vehicle fleet
#: still ramping half a simulated second in.
TRAFFIC_START_S = 0.050
TRAFFIC_STAGGER_S = 0.003
TRAFFIC_SPAN_S = 0.120


def attach_city_flow(
    net: CityNetwork,
    vehicle: CityVehicle,
    traffic: str,
    udp_rate_mbps: float,
):
    """One flow for ``vehicle``; returns (sender, deliveries_fn).

    ``traffic`` is ``"udp"`` / ``"tcp"`` (downlink, the paper's iperf3
    download) or ``"udp-up"`` (client -> server CBR, the uplink-diversity
    workload: every in-range AP overhears and tunnels the frames up).
    """
    client = vehicle.client
    flow_id = _alloc_flow_id()
    if traffic == "udp-up":
        receiver = UdpReceiver(net.sim, flow_id, trace=net.trace)
        net.register_uplink_handler(
            flow_id, net.deliver_to_server(receiver.on_packet)
        )
        sender = UdpSender(
            net.sim, client.uplink_send, src=client.node_id,
            dst=net.server_id, flow_id=flow_id, rate_mbps=udp_rate_mbps,
        )
        return sender, lambda: udp_deliveries(receiver, sender.packet_bytes)
    if traffic == "udp":
        receiver = UdpReceiver(net.sim, flow_id, trace=net.trace)
        client.register_flow(flow_id, receiver.on_packet)
        sender = UdpSender(
            net.sim, net.server_send, src=net.server_id, dst=client.node_id,
            flow_id=flow_id, rate_mbps=udp_rate_mbps,
        )
        return sender, lambda: udp_deliveries(receiver, sender.packet_bytes)
    if traffic == "tcp":
        sender = TcpSender(
            net.sim, net.server_send, src=net.server_id, dst=client.node_id,
            flow_id=flow_id, trace=net.trace,
        )
        receiver = TcpReceiver(
            net.sim, client.uplink_send, src=client.node_id, dst=net.server_id,
            flow_id=flow_id, trace=net.trace,
        )
        client.register_flow(flow_id, receiver.on_packet)
        net.register_uplink_handler(
            flow_id, net.deliver_to_server(sender.on_packet)
        )
        return sender, lambda: tcp_deliveries(receiver)
    raise ValueError(f"unknown traffic type {traffic!r}")


def run_city_drive(
    config,
    traffic: str = "udp",
    udp_rate_mbps: float = 20.0,
    duration_s: Optional[float] = None,
    warmup_s: float = 0.5,
) -> DriveResult:
    """Drive the whole fleet; ``config`` is an ExperimentConfig with
    ``city`` set."""
    net = build_city_network(config)
    city = config.city
    if duration_s is None:
        duration_s = 10.0

    # Routes must outlast the drive so nobody parks mid-measurement.
    fleet: List[CityVehicle] = []
    for _ in range(city.n_vehicles):
        plan = net.plan_vehicle_route(min_duration_s=duration_s * 1.25 + 2.0)
        fleet.append(net.add_vehicle(plan))

    flows = []
    stagger_s = min(TRAFFIC_STAGGER_S, TRAFFIC_SPAN_S / len(fleet))
    for i, vehicle in enumerate(fleet):
        sender, deliveries_fn = attach_city_flow(
            net, vehicle, traffic, udp_rate_mbps
        )
        start_at = TRAFFIC_START_S + i * stagger_s
        net.sim.schedule(start_at, sender.start)
        flows.append((vehicle, deliveries_fn))

    with PERF.timer("city.run"):
        net.run(until=duration_s)
    PERF.count("city.events", net.sim.events_fired)

    t0 = TRAFFIC_START_S + warmup_s
    t1 = duration_s
    all_deliveries: List[Tuple[float, int]] = []
    per_vehicle_mbps: List[float] = []
    segment_bytes: Dict[int, int] = {}
    for vehicle, deliveries_fn in flows:
        deliveries = deliveries_fn()
        per_vehicle_mbps.append(mean_throughput_mbps(deliveries, t0, t1))
        all_deliveries.extend(deliveries)
        for t, n_bytes in deliveries:
            if t0 <= t <= t1:
                seg = vehicle.plan.segment_at(t)
                segment_bytes[seg] = segment_bytes.get(seg, 0) + n_bytes
    all_deliveries.sort(key=lambda d: d[0])
    window = max(t1 - t0, 1e-9)
    per_segment_mbps = {
        seg: n_bytes * 8 / 1e6 / window
        for seg, n_bytes in sorted(segment_bytes.items())
    }

    client0 = fleet[0].client
    extras = {
        "n_vehicles": len(fleet),
        "n_segments": net.grid.n_segments,
        "n_aps": net.n_aps,
        "per_vehicle_mbps": per_vehicle_mbps,
        "per_segment_mbps": per_segment_mbps,
        "fleet_mbps": float(sum(per_vehicle_mbps)),
    }
    if hasattr(net.medium, "shard_stats"):
        extras["shard_stats"] = net.medium.shard_stats()
    return DriveResult(
        net=net,
        client=client0,
        duration_s=duration_s,
        measure_t0=t0,
        measure_t1=t1,
        deliveries=all_deliveries,
        throughput_mbps=float(sum(per_vehicle_mbps)),
        timeline=ServingTimeline.from_trace(net.trace, client0.node_id),
        sender=None,
        receiver=None,
        extras=extras,
    )
