"""Declarative city-scenario specification.

:class:`CityConfig` follows the :class:`repro.faults.FaultScenario`
pattern: a frozen dataclass that round-trips through JSON with a
canonical serialisation, so a city spec can live in a file, travel
through the CLI (``drive --city``), join a sweep grid, and key the
persistent result cache (``city=<hash>``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, Union

__all__ = ["CityConfig", "coerce_city", "DEFAULT_CHANNELS"]

#: Default channel palette: the three orthogonal 2.4 GHz channels plus
#: four 5 GHz channels.  Seven colours are enough for any greedy
#: colouring of a grid's segment-adjacency graph (max degree 6).
DEFAULT_CHANNELS: Tuple[int, ...] = (1, 6, 11, 36, 40, 44, 48)


@dataclass(frozen=True)
class CityConfig:
    """A road-grid drive scenario.

    The grid has ``rows x cols`` intersections spaced ``block_m`` apart;
    every adjacent pair of intersections is joined by one road segment
    carrying ``aps_per_segment`` roadside APs (its own picocell array,
    controller shard, and colour-assigned channel).  ``n_vehicles``
    clients drive seeded random routes through the grid at
    ``speed_mph``, turning at intersections with the transit-survey
    weights (16/32 straight, 7/32 left, 7/32 right, 2/32 back).
    """

    rows: int = 3
    cols: int = 3
    block_m: float = 120.0
    aps_per_segment: int = 8
    n_vehicles: int = 20
    speed_mph: float = 15.0
    channels: Tuple[int, ...] = field(default_factory=lambda: DEFAULT_CHANNELS)
    #: Spatial-hash cell edge for the sharded medium and the AP index.
    cell_m: float = 75.0
    #: Links are only constructed between a client and APs that come
    #: within this range of its route (the spatial index query radius).
    link_range_m: float = 60.0
    #: Partition the collision domain per (channel, cell).  Off forces
    #: the single global medium (the scaling-benchmark control arm).
    sharded: bool = True
    #: Gate link construction on the spatial AP index.  Off builds the
    #: all-pairs AP x client link matrix the index replaces; combined
    #: with ``sharded=False`` this is the pre-subsystem configuration
    #: the scaling benchmark uses as its forced single-shard control.
    link_index: bool = True

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("rows and cols must be >= 1")
        if self.rows == 1 and self.cols == 1:
            raise ValueError("a 1x1 grid has no road segments")
        if self.block_m <= 0:
            raise ValueError("block_m must be positive")
        if self.aps_per_segment < 1:
            raise ValueError("aps_per_segment must be >= 1")
        if self.n_vehicles < 1:
            raise ValueError("n_vehicles must be >= 1")
        if self.speed_mph <= 0:
            raise ValueError("speed_mph must be positive")
        channels = tuple(int(c) for c in self.channels)
        if not channels:
            raise ValueError("need at least one channel")
        object.__setattr__(self, "channels", channels)
        if self.cell_m <= 0:
            raise ValueError("cell_m must be positive")
        if self.link_range_m <= 0:
            raise ValueError("link_range_m must be positive")

    # ------------------------------------------------------------ derived
    @property
    def n_segments(self) -> int:
        return self.rows * (self.cols - 1) + self.cols * (self.rows - 1)

    @property
    def n_aps(self) -> int:
        return self.n_segments * self.aps_per_segment

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Dict form omitting fields left at their defaults."""
        out: Dict[str, Any] = {}
        defaults = CityConfig()
        for f in fields(self):
            value = getattr(self, f.name)
            if value != getattr(defaults, f.name):
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CityConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CityConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "channels" in kwargs:
            kwargs["channels"] = tuple(kwargs["channels"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CityConfig":
        return cls.from_dict(json.loads(text))

    def key_hash(self, length: int = 10) -> str:
        """Short stable hash for cache keys and labels."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:length]


def coerce_city(
    value: Union[None, CityConfig, str, Dict[str, Any]],
) -> Optional[CityConfig]:
    """Accept a CityConfig, a dict, or a JSON string; pass None through."""
    if value is None or isinstance(value, CityConfig):
        return value
    if isinstance(value, str):
        return CityConfig.from_json(value)
    if isinstance(value, dict):
        return CityConfig.from_dict(value)
    raise TypeError(f"cannot interpret {type(value).__name__} as a CityConfig")
