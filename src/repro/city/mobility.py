"""Vehicle routes through the road grid.

A route is a walk over grid intersections.  At every intersection the
vehicle chooses its next move with the transit-survey turn weights
(16/32 straight on, 7/32 left, 7/32 right, 2/32 U-turn), renormalised
over the moves the grid actually offers, drawn from a dedicated seeded
RNG stream -- so a city drive is exactly reproducible from its seed.

:class:`VehiclePlan` turns a route into a
:class:`~repro.mobility.trajectory.WaypointTrajectory` (lane-offset
waypoints per leg, short diagonals across intersections) plus the
per-leg time windows the builder uses to route downlink traffic, gate
the per-segment controllers, and schedule channel retunes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..mobility.trajectory import WaypointTrajectory
from .grid import Intersection, RoadGrid

__all__ = ["Leg", "VehiclePlan", "random_route", "TURN_WEIGHTS"]

#: (forward, back, left, right) out of 32 -- SNIPPETS street-survey odds.
TURN_WEIGHTS: Tuple[float, float, float, float] = (16.0, 2.0, 7.0, 7.0)


def _turn_moves(d: Tuple[int, int]) -> List[Tuple[Tuple[int, int], float]]:
    """Candidate (direction, weight) moves given incoming direction ``d``.

    Directions are (d_row, d_col); rows run north so a left turn rotates
    the heading counter-clockwise in the x/y plane.
    """
    dr, dc = d
    return [
        ((dr, dc), TURN_WEIGHTS[0]),  # forward
        ((-dr, -dc), TURN_WEIGHTS[1]),  # back (U-turn)
        ((dc, -dr), TURN_WEIGHTS[2]),  # left
        ((-dc, dr), TURN_WEIGHTS[3]),  # right
    ]


def random_route(
    grid: RoadGrid,
    rng: np.random.Generator,
    start: Optional[Intersection] = None,
    min_duration_s: float = 10.0,
    speed_mps: float = 6.7,
) -> List[Intersection]:
    """A seeded random walk long enough to last ``min_duration_s``."""
    nodes = grid.intersections()
    if start is None:
        start = nodes[int(rng.integers(0, len(nodes)))]
    route = [start]
    nbrs = grid.neighbors(start)
    route.append(nbrs[int(rng.integers(0, len(nbrs)))])
    n_legs_needed = max(1, int(np.ceil(min_duration_s * speed_mps / grid.block_m)))
    while len(route) - 1 < n_legs_needed:
        prev, cur = route[-2], route[-1]
        d = (cur[0] - prev[0], cur[1] - prev[1])
        moves: List[Tuple[int, int]] = []
        weights: List[float] = []
        for e, w in _turn_moves(d):
            target = (cur[0] + e[0], cur[1] + e[1])
            if 0 <= target[0] < grid.rows and 0 <= target[1] < grid.cols:
                moves.append(target)
                weights.append(w)
        total = sum(weights)
        probs = [w / total for w in weights]
        choice = int(rng.choice(len(moves), p=probs))
        route.append(moves[choice])
    return route


@dataclass(frozen=True)
class Leg:
    """One segment traversal: ``[t_enter, t_exit)`` on ``segment``."""

    t_enter: float
    t_exit: float
    segment: int
    channel: int


class VehiclePlan:
    """A route realised as a trajectory plus per-leg time windows."""

    def __init__(
        self,
        grid: RoadGrid,
        route: List[Intersection],
        speed_mps: float,
        start_time: float = 0.0,
    ):
        if len(route) < 2:
            raise ValueError("a route needs at least two intersections")
        self.grid = grid
        self.route = list(route)
        waypoints = []
        seg_indices: List[int] = []
        for a, b in zip(self.route, self.route[1:]):
            p_start, p_end = grid.leg_endpoints(a, b)
            waypoints.extend((p_start, p_end))
            seg_indices.append(grid.segment_between(a, b).index)
        self.trajectory = WaypointTrajectory(waypoints, speed_mps, start_time)
        arrivals = self.trajectory.arrival_times()
        self.legs: List[Leg] = []
        for k, seg_idx in enumerate(seg_indices):
            t_enter = arrivals[2 * k]
            t_exit = (
                arrivals[2 * (k + 1)]
                if k + 1 < len(seg_indices)
                else self.trajectory.end_time
            )
            channel = grid.segments[seg_idx].channel
            self.legs.append(Leg(t_enter, t_exit, seg_idx, channel))
        self._enter_times = [leg.t_enter for leg in self.legs]

    @property
    def end_time(self) -> float:
        return self.trajectory.end_time

    def leg_at(self, t: float) -> Leg:
        """The leg active at ``t`` (clamped to the first/last leg)."""
        i = bisect.bisect_right(self._enter_times, t) - 1
        return self.legs[max(0, i)]

    def segment_at(self, t: float) -> int:
        return self.leg_at(t).segment

    def segments_visited(self) -> List[int]:
        """Distinct segment indices in first-visit order."""
        out: List[int] = []
        for leg in self.legs:
            if leg.segment not in out:
                out.append(leg.segment)
        return out
