"""Partitioned collision domain: a shard per (channel, spatial cell).

:class:`ShardedMedium` subclasses the global :class:`~repro.mac.medium.Medium`
and overrides only its candidate-set hooks.  Radios and in-flight
transmissions are bucketed into :class:`MediumShard` objects keyed by
``(channel, cell_x, cell_y)``; carrier sense, capture, and receiver
enumeration scan the 3x3 cell neighbourhood of the querying radio
instead of the global lists.  The neighbourhood *is* the cross-shard
boundary coupling: a transmission in a boundary cell appears in queries
issued from every adjacent cell, so CSMA deferral, the vulnerable
window, and SINR capture all work across shard edges exactly as within
one shard.

With ``cell_m`` at its 75 m default the neighbourhood reaches >= 150 m
-- comfortably beyond street-level carrier sense (~43 m) -- so the only
physics the partition cuts off is same-channel infra-to-infra leakage
between arrays more than two cells apart, which in a real city is
buried under building clutter anyway (the free-space infra exponent
models co-sited arrays, not cross-town paths).  Event cost then scales
with local density rather than city size.

Sharded runs are deterministic but not bit-identical to a global-medium
run of the same scenario: trimming the receiver sets changes the order
of Bernoulli draws on the shared medium RNG stream.  The golden-digest
drives never construct this class.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mac.airtime import DEFAULT_TIMING, MacTiming
from ..mac.medium import Medium, MediumParams, Transmission
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder

__all__ = ["MediumShard", "ShardedMedium"]

ShardKey = Tuple[int, int, int]  # (channel, cell_x, cell_y)

#: 3x3 neighbourhood offsets in fixed scan order (determinism).
_NEIGHBORHOOD = tuple(
    (dx, dy) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
)


class MediumShard:
    """State of one (channel, cell) bucket."""

    __slots__ = ("key", "radios", "active")

    def __init__(self, key: ShardKey):
        self.key = key
        #: node_id -> radio, insertion-ordered (dict semantics).
        self.radios: Dict[int, object] = {}
        #: Transmissions currently on the air from radios in this cell.
        self.active: List[Transmission] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MediumShard {self.key} radios={len(self.radios)} "
                f"active={len(self.active)}>")


class ShardedMedium(Medium):
    """A :class:`Medium` whose hot loops scan only nearby shards."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
        timing: MacTiming = DEFAULT_TIMING,
        params: Optional[MediumParams] = None,
        cell_m: float = 75.0,
        rebucket_interval_s: float = 0.1,
    ):
        super().__init__(sim, rng, trace=trace, timing=timing, params=params)
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self.cell_m = float(cell_m)
        self._shards: Dict[ShardKey, MediumShard] = {}
        #: key -> its 3x3 neighbourhood as shard objects, built lazily.
        #: Shard objects are stable once created, so a materialized list
        #: never goes stale -- neighbours created later were already
        #: materialized (empty) when this list was built.
        self._neighbors: Dict[ShardKey, List[MediumShard]] = {}
        self._radio_shard: Dict[int, ShardKey] = {}
        #: Radios that move (clients): re-bucketed by a periodic tick
        #: that bounds key staleness to one interval (~1 m of motion).
        self._mobile: List[object] = []
        self._tx_shard: Dict[int, ShardKey] = {}
        # Diagnostics for the perf harness.
        self.rebuckets = 0
        if rebucket_interval_s:
            sim.call_every(rebucket_interval_s, self._rebucket_mobile)

    # ---------------------------------------------------------- bucketing
    def _key_for(self, radio, t: float) -> ShardKey:
        x, y, _ = radio.position(t)
        return (
            getattr(radio, "channel", 11),
            math.floor(x / self.cell_m),
            math.floor(y / self.cell_m),
        )

    def _shard(self, key: ShardKey) -> MediumShard:
        shard = self._shards.get(key)
        if shard is None:
            shard = self._shards[key] = MediumShard(key)
        return shard

    def register_radio(self, radio) -> None:
        super().register_radio(radio)
        key = self._key_for(radio, self.sim.now)
        self._shard(key).radios[radio.node_id] = radio
        self._radio_shard[radio.node_id] = key
        if not radio.is_ap:
            self._mobile.append(radio)

    def _ensure_current(self, radio) -> ShardKey:
        """Re-bucket ``radio`` if it moved or retuned; return its key.

        APs never move, but a retune (radio.channel assignment) changes
        the key too, so the check is unconditional for mobile radios and
        cheap (one position call) either way.
        """
        old = self._radio_shard.get(radio.node_id)
        if (
            old is not None
            and radio.is_ap
            and old[0] == getattr(radio, "channel", 11)
        ):
            # Static radio on an unchanged channel: its key cannot have
            # moved, so skip the position recomputation on the hot path.
            return old
        key = self._key_for(radio, self.sim.now)
        if key != old:
            if old is not None:
                self._shards[old].radios.pop(radio.node_id, None)
            self._shard(key).radios[radio.node_id] = radio
            self._radio_shard[radio.node_id] = key
            self.rebuckets += 1
        return key

    def _rebucket_mobile(self) -> None:
        for radio in self._mobile:
            self._ensure_current(radio)

    def rebucket(self, radio) -> None:
        """Re-bucket ``radio`` now -- call after assigning its channel.

        APs re-bucket only through this (they never move); clients would
        catch up on their next transmission or periodic tick anyway, but
        an explicit call keeps them reachable as receivers immediately
        after a retune.
        """
        self._ensure_current(radio)

    def _neighbor_shards(self, key: ShardKey) -> List[MediumShard]:
        """The 3x3 neighbourhood of ``key`` as shard objects.

        Materializes (possibly empty) shards for all nine cells so the
        hot loops can iterate object references instead of hashing nine
        tuple keys per query.  Shard objects are never replaced, so the
        cached list stays valid for the life of the run.
        """
        neighbors = self._neighbors.get(key)
        if neighbors is None:
            channel, cx, cy = key
            neighbors = [
                self._shard((channel, cx + dx, cy + dy))
                for dx, dy in _NEIGHBORHOOD
            ]
            self._neighbors[key] = neighbors
        return neighbors

    # ----------------------------------------------------- candidate hooks
    # The base class's global ``_active`` list is deliberately left empty
    # here: every hot-path read goes through the hooks below, and keeping
    # the global view current would cost a field-equality list.remove per
    # completion.
    def _activate(self, tx: Transmission) -> None:
        # The cached key is at most one rebucket interval stale (~1 m of
        # motion); the 3x3 neighbourhood absorbs a one-cell-late bucket,
        # same as the query path in _active_near.
        key = self._radio_shard.get(tx.radio.node_id)
        if key is None:
            key = self._ensure_current(tx.radio)
        self._shard(key).active.append(tx)
        self._tx_shard[id(tx)] = key

    def _deactivate(self, tx: Transmission) -> None:
        key = self._tx_shard.pop(id(tx), None)
        if key is not None:
            shard = self._shards.get(key)
            if shard is not None:
                try:
                    shard.active.remove(tx)
                except ValueError:  # pragma: no cover - defensive
                    pass

    def _neighborhood_active(self, key: ShardKey) -> List[Transmission]:
        out: List[Transmission] = []
        for shard in self._neighbor_shards(key):
            if shard.active:
                out.extend(shard.active)
        return out

    def _active_near(self, radio) -> List[Transmission]:
        # The cached key is at most one rebucket interval stale (~1 m of
        # motion) and every retune goes through rebucket(), so skip the
        # per-query position recomputation: the 3x3 neighbourhood absorbs
        # a one-cell-late key with two cells to spare over CS range.
        key = self._radio_shard.get(radio.node_id)
        if key is None:
            key = self._ensure_current(radio)
        return self._neighborhood_active(key)

    def _interference_candidates(self, tx: Transmission, rx_radio) -> List[Transmission]:
        return self._active_near(rx_radio)

    def _receiver_candidates(self, tx: Transmission) -> List[object]:
        key = self._tx_shard.get(id(tx))
        if key is None:
            key = self._ensure_current(tx.radio)
        out: List[object] = []
        for shard in self._neighbor_shards(key):
            if shard.radios:
                out.extend(shard.radios.values())
        return out

    # ------------------------------------------------------------- stats
    def shard_stats(self) -> Dict[str, int]:
        occupied = [s for s in self._shards.values() if s.radios]
        return {
            "shards": len(self._shards),
            "occupied_shards": len(occupied),
            "max_radios_per_shard": max(
                (len(s.radios) for s in occupied), default=0
            ),
            "rebuckets": self.rebuckets,
        }
