"""Metrics the paper reports, computed from simulation traces.

Throughput timeseries (Figs. 14/15), CDFs (Figs. 16/24), switching
accuracy (Table 2), capacity loss (Figs. 4/21), serving-AP timelines, and
assorted helpers.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.channel import Link
from ..sim.trace import TraceRecorder

__all__ = [
    "throughput_timeseries",
    "mean_throughput_mbps",
    "cdf",
    "ServingTimeline",
    "esnr_matrix",
    "switching_accuracy",
    "capacity_loss_rate",
    "optimal_ap_series",
]


def throughput_timeseries(
    deliveries: Sequence[Tuple[float, int]],
    t0: float,
    t1: float,
    bin_s: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bin (time, bytes) delivery events into a Mbit/s timeseries.

    Returns (bin_centres, mbps).
    """
    if t1 <= t0:
        raise ValueError("t1 must exceed t0")
    edges = np.arange(t0, t1 + bin_s, bin_s)
    counts = np.zeros(len(edges) - 1)
    for t, nbytes in deliveries:
        if t0 <= t < t1:
            idx = min(int((t - t0) / bin_s), len(counts) - 1)
            counts[idx] += nbytes
    centres = edges[:-1] + bin_s / 2.0
    return centres, counts * 8.0 / bin_s / 1e6


def mean_throughput_mbps(
    deliveries: Sequence[Tuple[float, int]], t0: float, t1: float
) -> float:
    """Average goodput over [t0, t1) from (time, bytes) events."""
    if t1 <= t0:
        return 0.0
    total = sum(nbytes for t, nbytes in deliveries if t0 <= t < t1)
    return total * 8.0 / (t1 - t0) / 1e6


def cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted_values, cumulative_probabilities)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


class ServingTimeline:
    """Which AP served a client over time, built from ``ap_switch`` traces."""

    def __init__(self, events: Sequence[Tuple[float, Optional[int]]]):
        self._times = [t for t, _ap in events]
        self._aps = [ap for _t, ap in events]

    @classmethod
    def from_trace(cls, trace: TraceRecorder, client: int) -> "ServingTimeline":
        events = [
            (r.time, r["ap"])
            for r in trace.iter_records("ap_switch")
            if r["client"] == client
        ]
        return cls(events)

    @classmethod
    def from_association_changes(
        cls, changes: Sequence[Tuple[float, Optional[int]]]
    ) -> "ServingTimeline":
        return cls(list(changes))

    def ap_at(self, t: float) -> Optional[int]:
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return None
        return self._aps[idx]

    @property
    def switch_count(self) -> int:
        return len(self._times)

    def segments(self, t_end: float) -> List[Tuple[float, float, Optional[int]]]:
        """(start, end, ap) intervals up to ``t_end``."""
        out = []
        for i, (t, ap) in enumerate(zip(self._times, self._aps)):
            end = self._times[i + 1] if i + 1 < len(self._times) else t_end
            out.append((t, min(end, t_end), ap))
        return out


def esnr_matrix(
    links: Sequence[Link], ts: np.ndarray, uplink: bool = False
) -> np.ndarray:
    """Per-link ESNR sampled at ``ts``: shape (len(links), len(ts)).

    One batched PHY-kernel evaluation per link instead of a Python loop
    over timestamps; each entry is bit-identical to
    ``link.esnr_db(float(t))``.
    """
    return np.stack([link.esnr_db_at(ts, uplink=uplink) for link in links])


def optimal_ap_series(
    links: Sequence[Link],
    ap_ids: Sequence[int],
    t0: float,
    t1: float,
    sample_s: float = 2e-3,
) -> List[Tuple[float, int, float]]:
    """Ground-truth best AP: (t, ap_id, best_esnr) sampled every ``sample_s``.

    The 'optimal' AP is the one with maximum instantaneous ESNR, exactly
    the oracle Table 2 measures switching accuracy against.
    """
    ts = np.arange(t0, t1, sample_s)
    if ts.size == 0:
        return []
    esnrs = esnr_matrix(links, ts)
    best = np.argmax(esnrs, axis=0)
    return [
        (float(t), ap_ids[int(b)], float(esnrs[int(b), i]))
        for i, (t, b) in enumerate(zip(ts, best))
    ]


def switching_accuracy(
    timeline: ServingTimeline,
    links: Sequence[Link],
    ap_ids: Sequence[int],
    t0: float,
    t1: float,
    sample_s: float = 2e-3,
    tolerance_db: float = 0.5,
) -> float:
    """Fraction of time the serving AP is the max-ESNR AP (Table 2).

    A sample counts as accurate when the serving AP's ESNR is within
    ``tolerance_db`` of the best AP's (ties in a fading channel are
    physically meaningless distinctions).
    """
    ts = np.arange(t0, t1, sample_s)
    if ts.size == 0:
        return 0.0
    esnrs = esnr_matrix(links, ts)
    best = np.max(esnrs, axis=0)
    index_of = {ap_id: i for i, ap_id in enumerate(ap_ids)}
    hits = 0
    for i, t in enumerate(ts):
        serving = timeline.ap_at(float(t))
        if serving is None or serving not in index_of:
            continue
        if esnrs[index_of[serving], i] >= best[i] - tolerance_db:
            hits += 1
    return hits / ts.size


def capacity_loss_rate(
    timeline: ServingTimeline,
    links: Sequence[Link],
    ap_ids: Sequence[int],
    t0: float,
    t1: float,
    sample_s: float = 2e-3,
) -> float:
    """1 - (capacity through the chosen AP / capacity through the best AP).

    This is the metric of the window-size microbenchmark (Fig. 21) and
    the shaded capacity-loss areas of Fig. 4, normalised to a rate.
    """
    ts = np.arange(t0, t1, sample_s)
    if ts.size == 0:
        return 0.0
    caps = np.stack([link.capacity_mbps_at(ts) for link in links])
    best_total = float(np.sum(np.max(caps, axis=0)))
    index_of = {ap_id: i for i, ap_id in enumerate(ap_ids)}
    chosen_total = 0.0
    for i, t in enumerate(ts):
        serving = timeline.ap_at(float(t))
        if serving is not None and serving in index_of:
            chosen_total += float(caps[index_of[serving], i])
    if best_total <= 0.0:
        return 0.0
    return max(0.0, 1.0 - chosen_total / best_total)
