"""Canonical digests of drive results for bit-exactness regression tests.

The PHY fast path (vectorized fading kernels, LUT BER inversion,
link-level memoization) is only admissible if a default drive produces
*bit-identical* results to the scalar reference implementation.  These
helpers reduce a drive to stable hex digests so that equality can be
asserted across commits: every float is serialised via ``float.hex()``,
so two digests match iff every delivery time/size and every trace record
is identical down to the last ulp.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Tuple

__all__ = [
    "canonical_repr",
    "deliveries_digest",
    "trace_digest",
    "drive_digests",
]


def canonical_repr(value: Any) -> str:
    """A platform-stable, bit-exact string form of a result value.

    Floats use ``float.hex()`` (lossless); numpy scalars are converted to
    their Python equivalents; containers recurse with dict keys sorted.
    """
    # Numpy scalars expose .item(); convert before type dispatch.
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            value = value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_repr(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return "{" + ",".join(
            f"{canonical_repr(k)}:{canonical_repr(v)}" for k, v in items
        ) + "}"
    return repr(value)


def deliveries_digest(deliveries: Iterable[Tuple[float, int]]) -> str:
    """SHA-256 over the exact (time, bytes) delivery sequence."""
    h = hashlib.sha256()
    for t, nbytes in deliveries:
        h.update(canonical_repr((float(t), int(nbytes))).encode())
        h.update(b"\n")
    return h.hexdigest()


def trace_digest(trace) -> str:
    """SHA-256 over every stored trace record (time, kind, fields)."""
    h = hashlib.sha256()
    for record in trace.records():
        h.update(canonical_repr(
            (float(record.time), record.kind, record.fields)
        ).encode())
        h.update(b"\n")
    return h.hexdigest()


def drive_digests(result) -> Dict[str, Any]:
    """Digest bundle for a :class:`~repro.experiments.runners.DriveResult`."""
    return {
        "deliveries": deliveries_digest(result.deliveries),
        "trace": trace_digest(result.trace),
        "n_deliveries": len(result.deliveries),
        "n_trace_records": len(result.trace),
        "throughput_hex": float(result.throughput_mbps).hex(),
        "events_fired": result.net.sim.events_fired,
    }
