"""Experiment harness: network builder, metrics, and drive runners."""

from .builder import ExperimentConfig, Network, build_network
from .metrics import (
    ServingTimeline,
    capacity_loss_rate,
    cdf,
    mean_throughput_mbps,
    optimal_ap_series,
    switching_accuracy,
    throughput_timeseries,
)
from .runners import (
    DriveResult,
    attach_tcp_downlink,
    attach_udp_downlink,
    attach_udp_uplink,
    run_drive_summary,
    run_single_drive,
    static_trajectory,
    tcp_deliveries,
    udp_deliveries,
)

__all__ = [
    "ExperimentConfig",
    "Network",
    "build_network",
    "ServingTimeline",
    "capacity_loss_rate",
    "cdf",
    "mean_throughput_mbps",
    "optimal_ap_series",
    "switching_accuracy",
    "throughput_timeseries",
    "DriveResult",
    "attach_tcp_downlink",
    "attach_udp_downlink",
    "attach_udp_uplink",
    "run_drive_summary",
    "run_single_drive",
    "static_trajectory",
    "tcp_deliveries",
    "udp_deliveries",
]
