"""Command-line front end for running reproduction experiments.

Examples
--------
Run a single drive and print the summary::

    python -m repro.experiments.cli drive --mode wgtt --speed 15 --traffic tcp

Compare WGTT and the baseline across speeds (Fig. 13 style)::

    python -m repro.experiments.cli sweep --speeds 5,15,25 --traffic udp

Inspect the channel (Fig. 2 / Fig. 10 style)::

    python -m repro.experiments.cli channel --speed 25
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

from ..core.ha import coerce_ha
from ..faults import FaultScenario
from ..mobility import LEAD_IN_M, LinearTrajectory, RoadLayout, mph_to_mps
from ..orchestration import (
    ColumnarStore,
    ResultCache,
    SweepAggregator,
    SweepSpec,
    run_queue_sweep,
    run_sweep,
)
from ..perf import PERF
from ..policies import (
    PolicySpec,
    available_policies,
    coerce_policy,
    policy_class,
)
from .builder import ExperimentConfig, build_network
from .metrics import mean_throughput_mbps, throughput_timeseries
from .runners import run_single_drive

__all__ = ["main"]


def _load_fault_scenario(arg: Optional[str]) -> Optional[FaultScenario]:
    """``--fault-scenario`` accepts a JSON file path or inline JSON."""
    if arg is None:
        return None
    if os.path.exists(arg):
        with open(arg, "r", encoding="utf-8") as fh:
            return FaultScenario.from_json(fh.read())
    if arg.lstrip().startswith("{"):
        return FaultScenario.from_json(arg)
    raise SystemExit(f"--fault-scenario: no such file: {arg}")


def _load_policy(arg: Optional[str]) -> Optional[PolicySpec]:
    """``--policy`` accepts a registry name, inline JSON, or a JSON file."""
    if arg is None:
        return None
    if os.path.exists(arg):
        with open(arg, "r", encoding="utf-8") as fh:
            arg = fh.read()
    try:
        spec = coerce_policy(arg)
        if spec is not None:
            policy_class(spec.name)  # fail fast on unknown names
        return spec
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(
            f"--policy: {exc} (available: {', '.join(sorted(available_policies()))})"
        )


def _coverage_window(speed_mph: float, road: RoadLayout):
    v = mph_to_mps(speed_mph)
    return LEAD_IN_M / v, (road.span_m + LEAD_IN_M) / v


def _load_city(arg: Optional[str]):
    """``--city`` accepts a CityConfig JSON file path or inline JSON."""
    if arg is None:
        return None
    from ..city import CityConfig

    if os.path.exists(arg):
        with open(arg, "r", encoding="utf-8") as fh:
            return CityConfig.from_json(fh.read())
    if arg.lstrip().startswith("{"):
        try:
            return CityConfig.from_json(arg)
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"--city: {exc}")
    raise SystemExit(f"--city: no such file: {arg}")


def _load_ha(arg: Optional[str]):
    """``--ha`` accepts a bare flag (defaults) or inline JSON knobs."""
    if arg is None:
        return None
    try:
        return coerce_ha(True if arg == "" else arg)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"--ha: {exc}")


def _dump_profile(profiler, path: str) -> None:
    """Write cProfile stats to ``path`` plus a human-readable sidecar.

    The binary dump loads with ``python -m pstats PATH`` (or
    ``pstats.Stats(PATH)``); ``PATH.txt`` carries the top of the
    cumulative- and internal-time rankings for quick inspection.
    """
    import io
    import pstats

    profiler.dump_stats(path)
    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(30)
    stats.sort_stats("tottime").print_stats(30)
    with open(path + ".txt", "w") as fh:
        fh.write(text.getvalue())
    print(f"profile        : wrote {path} (pstats) and {path}.txt")


def cmd_drive(args: argparse.Namespace) -> int:
    scenario = _load_fault_scenario(args.fault_scenario)
    policy = _load_policy(args.policy)
    ha = _load_ha(args.ha)
    city = _load_city(args.city)
    extra = {}
    if scenario is not None:
        extra["fault_scenario"] = scenario
    if policy is not None:
        extra["policy"] = policy
    if ha is not None:
        extra["ha"] = ha
    if city is not None:
        extra["city"] = city
    if args.check_invariants:
        extra["check_invariants"] = True
    if args.duration is not None:
        extra["duration_s"] = args.duration
    if args.profile:
        PERF.reset()
    profiler = None
    if args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
    from time import perf_counter

    wall_t0 = perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        result = run_single_drive(
            mode=args.mode,
            speed_mph=args.speed,
            traffic=args.traffic,
            udp_rate_mbps=args.udp_rate,
            seed=args.seed,
            **extra,
        )
    finally:
        if profiler is not None:
            profiler.disable()
    wall_clock_s = perf_counter() - wall_t0
    if profiler is not None:
        _dump_profile(profiler, args.profile_out)
    if city is not None:
        t0, t1 = result.measure_t0, result.measure_t1
    elif args.speed > 0:
        t0, t1 = _coverage_window(args.speed, result.net.road)
    else:
        t0, t1 = 0.5, result.duration_s
    throughput = mean_throughput_mbps(result.deliveries, t0, t1)
    print(f"mode           : {args.mode}")
    if policy is not None:
        print(f"policy         : {policy.label()}")
    if city is not None:
        print(f"city           : {city.rows}x{city.cols} grid, "
              f"{result.extras['n_segments']} segments, "
              f"{result.extras['n_aps']} APs, "
              f"{result.extras['n_vehicles']} vehicles "
              f"at {city.speed_mph:g} mph")
        per_seg = result.extras["per_segment_mbps"]
        busiest = sorted(per_seg, key=per_seg.get, reverse=True)[:3]
        print(f"fleet goodput  : {result.extras['fleet_mbps']:.2f} Mbit/s "
              "(sum over vehicles)")
        print("busiest segs   : " + ", ".join(
            f"#{seg} {per_seg[seg]:.1f} Mb/s" for seg in busiest
        ))
    else:
        print(f"speed          : {args.speed} mph")
    print(f"traffic        : {args.traffic}")
    print(f"throughput     : {throughput:.2f} Mbit/s (in coverage)")
    print(f"AP switches    : {result.timeline.switch_count}")
    print(f"sim duration   : {result.duration_s:.1f} s "
          f"({result.net.sim.events_fired} events)")
    if scenario is not None:
        stats = result.net.fault_injector.stats()
        print(f"faults         : {len(scenario)} events "
              f"({stats['applied_events']} applied, "
              f"{stats['drops_node_down'] + stats['drops_rule']} pkts dropped, "
              f"{stats['delayed_packets']} delayed)")
    resilience = result.net.resilience_counters()
    if resilience:
        interesting = {k: v for k, v in resilience.items() if v}
        print(f"resilience     : " + (", ".join(
            f"{k}={v}" for k, v in sorted(interesting.items())
        ) or "all counters zero"))
    if args.timeseries:
        _ts, mbps = throughput_timeseries(result.deliveries, t0, t1, bin_s=0.5)
        for i, v in enumerate(mbps):
            bar = "#" * int(v / max(mbps.max(), 1e-9) * 40)
            print(f"  {t0 + 0.5 * i:6.2f}s {v:6.2f} |{bar}")
    if args.profile:
        events = result.net.sim.events_fired
        print(f"wall clock     : {wall_clock_s:.2f} s "
              f"({events / max(wall_clock_s, 1e-9):,.0f} events/s)")
        print(f"trace records  : {len(result.net.trace)} kept, "
              f"{result.net.trace.dropped_records} dropped")
        print(PERF.report(title="perf counters"))
    invariants = result.net.invariants
    if invariants is not None:
        print(f"invariants     : {invariants.report()}")
        if not invariants.ok:
            return 1
    return 0


def _load_fault_campaign(arg: Optional[str]):
    """``--fault-campaign`` accepts inline JSON or a JSON file path."""
    if arg is None:
        return None
    from ..orchestration import coerce_campaign

    if os.path.exists(arg):
        with open(arg, "r", encoding="utf-8") as fh:
            arg = fh.read()
    try:
        return coerce_campaign(arg)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"--fault-campaign: {exc}")


def cmd_sweep(args: argparse.Namespace) -> int:
    """A Fig.-13-style grid through the sweep orchestration layer.

    ``--backend pool`` (default) fans jobs out over ``--jobs`` worker
    processes; ``--backend queue`` runs the distributed path -- a
    directory-lease work queue under ``--queue-dir`` drained by
    ``--workers`` pull workers with heartbeat leases and crash requeue.
    ``--store columnar`` additionally streams every summary into packed
    ``.npz`` shards plus a running ``aggregate.json`` snapshot under
    ``--store-dir``.  Results persist in the on-disk cache either way,
    so a repeated sweep skips simulation entirely.
    """
    speeds = [float(s) for s in args.speeds.split(",")]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    seeds = ([int(s) for s in args.seeds.split(",")]
             if args.seeds else [args.seed])
    scenario = _load_fault_scenario(args.fault_scenario)
    campaign = _load_fault_campaign(args.fault_campaign)
    policies = None
    if args.policies:
        policies = [_load_policy(p.strip())
                    for p in args.policies.split(",") if p.strip()]
    overrides = {}
    city = _load_city(args.city)
    ha = _load_ha(args.ha)
    if ha is not None:
        # Overrides must be scalars: carry the knobs as canonical JSON
        # (ExperimentConfig coerces it back).
        overrides["ha"] = json.dumps(ha.to_dict(), sort_keys=True,
                                     separators=(",", ":"))
    if args.check_invariants:
        overrides["check_invariants"] = True
    spec = SweepSpec(
        modes=modes, speeds_mph=speeds, traffics=(args.traffic,),
        seeds=seeds, udp_rate_mbps=args.udp_rate,
        n_aps=args.n_aps, ap_spacing_m=args.ap_spacing,
        fault_scenario=scenario, fault_campaign=campaign,
        policies=policies, city=city,
        overrides=overrides,
    )
    cache = None if args.no_cache else ResultCache.from_env(args.cache_dir)
    store = aggregator = None
    if args.store == "columnar":
        store = ColumnarStore(args.store_dir)
        aggregator = SweepAggregator()
    if args.backend == "queue":
        workers = args.workers if args.workers is not None else args.jobs
        queue_dir = args.queue_dir
        if queue_dir is None:
            import tempfile

            queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
        result = run_queue_sweep(
            spec, workers=workers, queue_dir=queue_dir,
            cache=cache, store=store, aggregator=aggregator,
            lease_timeout_s=args.lease_timeout,
            timeout_s=args.timeout, max_retries=args.retries,
            verbose=args.verbose,
        )
    else:
        result = run_sweep(
            spec, jobs=args.jobs, cache=cache,
            timeout_s=args.timeout, max_retries=args.retries,
            verbose=args.verbose, store=store, aggregator=aggregator,
        )
    if store is not None:
        store.flush()
        aggregator.write_snapshot(store.root / "aggregate.json")

    # Mean coverage throughput per (column, speed), averaged over seeds.
    # Columns are modes; a --policies axis splits them per policy label.
    def column_of(job) -> str:
        if job.policy is not None:
            return coerce_policy(job.policy).label()
        return job.mode

    columns: List[str] = []
    cells = {}
    for job, summary in zip(result.jobs, result.summaries):
        col = column_of(job)
        if col not in columns:
            columns.append(col)
        if summary is not None:
            cells.setdefault((col, job.speed_mph), []).append(
                summary.coverage_throughput_mbps
            )
    width = max(9, max(len(c) for c in columns) + 1)
    header = f"{'speed':>8} " + " ".join(f"{c:>{width}}" for c in columns)
    show_gain = "wgtt" in columns and "baseline" in columns
    if show_gain:
        header += f" {'gain':>6}"
    print(header)
    for speed in speeds:
        row = {
            col: float(np.mean(cells[(col, speed)]))
            for col in columns if (col, speed) in cells
        }
        line = f"{speed:6.0f}mph " + " ".join(
            f"{row[c]:{width}.2f}" if c in row else f"{'-':>{width}}"
            for c in columns
        )
        if show_gain and "wgtt" in row and "baseline" in row:
            line += f" {row['wgtt'] / max(row['baseline'], 1e-9):5.1f}x"
        print(line)

    stats = result.stats
    print(f"jobs: {stats.one_line()}")
    if args.backend == "queue":
        print(f"queue: {queue_dir} ({workers} workers, "
              f"{stats.retries} requeued, {stats.failed} failed)")
    if store is not None:
        print(f"store: {store.root} ({len(store)} summaries in "
              f"{store.n_shards} shards, aggregate.json updated)")
    if cache is not None:
        print(f"cache: {cache.root} "
              f"({stats.cached}/{stats.total} hits, {cache.writes} writes)")
    for failure in result.failures:
        print(f"FAILED {failure.job.key()} after {failure.attempts} attempts: "
              f"{failure.error}")
    return 0 if result.ok else 1


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """Inspect a (possibly still running) queue-backed sweep.

    Reads only on-disk state -- the queue's job/lease/result files, the
    columnar store manifest, and the streaming ``aggregate.json``
    snapshot -- so it can be pointed at a live run from another shell
    (or another host, on a shared filesystem).
    """
    if args.queue_dir is None and args.store_dir is None:
        raise SystemExit("sweep-status: give --queue-dir and/or --store-dir")
    printed = False
    if args.queue_dir is not None:
        from ..orchestration import FileQueue

        if not os.path.isdir(args.queue_dir):
            raise SystemExit(f"sweep-status: no such queue: {args.queue_dir}")
        status = FileQueue(args.queue_dir).status()
        total = (status["queued"] + status["leased"] + status["done"]
                 + status["failed"])
        print(f"queue  : {args.queue_dir}")
        print(f"jobs   : {status['done']}/{total} done, "
              f"{status['queued']} queued, {status['leased']} leased, "
              f"{status['failed']} failed, {status['requeued']} requeued")
        printed = True
    snapshot_path = None
    if args.store_dir is not None:
        if not os.path.isdir(args.store_dir):
            raise SystemExit(f"sweep-status: no such store: {args.store_dir}")
        store = ColumnarStore(args.store_dir)
        print(f"store  : {args.store_dir} ({len(store)} summaries in "
              f"{store.n_shards} shards, store_version "
              f"{store.manifest['store_version']})")
        snapshot_path = store.root / "aggregate.json"
        printed = True
    if args.queue_dir is not None and snapshot_path is None:
        snapshot_path = os.path.join(args.queue_dir, "aggregate.json")
    if snapshot_path is not None and os.path.exists(snapshot_path):
        with open(snapshot_path) as fh:
            snap = json.load(fh)
        print(f"cells  : {len(snap['cells'])} "
              f"({snap['jobs_seen']} jobs aggregated, "
              f"metric {snap['metric']})")
        header = (f"{'mode':>10} {'speed':>6} {'traffic':>7} "
                  f"{'policy':>18} {'n':>4} {'mean':>8} {'std':>7}")
        print(header)
        for cell in snap["cells"]:
            print(f"{cell['mode']:>10} {cell['speed_mph']:6.0f} "
                  f"{cell['traffic']:>7} {cell['policy'] or '-':>18} "
                  f"{cell['n']:4d} {cell['mean']:8.2f} {cell['std']:7.2f}")
    return 0 if printed else 1


def cmd_channel(args: argparse.Namespace) -> int:
    net = build_network(ExperimentConfig(mode="wgtt", seed=args.seed))
    trajectory = LinearTrajectory.drive_through(net.road, args.speed)
    client = net.add_client(trajectory)
    links = net.links_for_client(client)
    v = mph_to_mps(args.speed)
    t0, t1 = _coverage_window(args.speed, net.road)
    ts = np.arange(t0, min(t1, t0 + 2.0), 1e-3)
    # One batched kernel evaluation per link (the scalar equivalent pays
    # the full PHY stack once per sample per AP).
    esnr = np.stack([link.esnr_db_at(ts) for link in links], axis=1)
    best = esnr.argmax(axis=1)
    flips = int(np.sum(np.diff(best) != 0))
    print(f"APs                  : {len(links)}")
    print(f"observation window   : {1000 * (ts[-1] - ts[0]):.0f} ms at {args.speed} mph")
    print(f"best-AP changes      : {flips}")
    print(f"mean best-AP dwell   : {1000 * (ts[-1] - ts[0]) / max(flips, 1):.1f} ms")
    print(f"peak ESNR            : {esnr.max():.1f} dB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Wi-Fi Goes to Town reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    drive = sub.add_parser("drive", help="run one drive and summarise it")
    drive.add_argument("--mode", choices=("wgtt", "baseline"), default="wgtt")
    drive.add_argument("--speed", type=float, default=15.0, help="mph (0 = static)")
    drive.add_argument("--traffic", choices=("tcp", "udp"), default="tcp")
    drive.add_argument("--udp-rate", type=float, default=50.0)
    drive.add_argument("--seed", type=int, default=0)
    drive.add_argument("--timeseries", action="store_true")
    drive.add_argument("--fault-scenario", default=None, metavar="FILE",
                       help="fault scenario JSON (file path or inline)")
    drive.add_argument("--policy", default=None, metavar="NAME_OR_JSON",
                       help="handover policy: registry name, inline JSON "
                            '({"name": ..., "params": {...}}), or a JSON '
                            "file (wgtt mode only)")
    drive.add_argument("--profile", action="store_true",
                       help="print PHY fast-path counters, cache hit rates, "
                            "and events/sec after the drive")
    drive.add_argument("--profile-out", default=None, metavar="PATH",
                       help="run the drive under cProfile and dump pstats "
                            "to PATH (plus a PATH.txt text summary); "
                            "usable with or without --profile")
    drive.add_argument("--ha", nargs="?", const="", default=None,
                       metavar="JSON",
                       help="arm controller HA: bare flag for the default "
                            "knobs, or inline HaParams JSON (e.g. "
                            '\'{"standby": false}\' for degraded-mode-only)')
    drive.add_argument("--check-invariants", action="store_true",
                       help="arm the runtime invariant monitors (duplicate "
                            "delivery, reordering, index monotonicity, "
                            "single serving AP); nonzero exit on violation")
    drive.add_argument("--city", default=None, metavar="FILE_OR_JSON",
                       help="run a city fleet drive: CityConfig JSON (file "
                            "path or inline, e.g. '{\"rows\": 3, \"cols\": "
                            "3}'); --speed/--mode=baseline do not apply")
    drive.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (city drives default to 10)")
    drive.set_defaults(fn=cmd_drive)

    sweep = sub.add_parser(
        "sweep", help="WGTT vs baseline across speeds (parallel, cached)"
    )
    sweep.add_argument("--speeds", default="5,15,25,35")
    sweep.add_argument("--modes", default="wgtt,baseline")
    sweep.add_argument("--traffic", choices=("tcp", "udp"), default="udp")
    sweep.add_argument("--udp-rate", type=float, default=50.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--seeds", default=None,
                       help="comma list; averaged per cell (overrides --seed)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache root (default .repro_cache, "
                            "or $REPRO_CACHE_DIR)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always simulate; do not read or write the cache")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock timeout in seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="extra attempts per failed job")
    sweep.add_argument("--n-aps", type=int, default=None,
                       help="override the AP count (default: 8-AP testbed)")
    sweep.add_argument("--ap-spacing", type=float, default=None,
                       help="override AP spacing in metres")
    sweep.add_argument("--verbose", action="store_true",
                       help="per-job progress lines on stderr")
    sweep.add_argument("--fault-scenario", default=None, metavar="FILE",
                       help="fault scenario JSON applied to every job "
                            "(file path or inline)")
    sweep.add_argument("--policies", default=None,
                       help="comma list of handover-policy names (or JSON "
                            "files) run as an extra sweep axis")
    sweep.add_argument("--ha", nargs="?", const="", default=None,
                       metavar="JSON",
                       help="arm controller HA on every job (bare flag for "
                            "defaults, or inline HaParams JSON)")
    sweep.add_argument("--check-invariants", action="store_true",
                       help="arm the runtime invariant monitors on every job")
    sweep.add_argument("--city", default=None, metavar="FILE_OR_JSON",
                       help="CityConfig JSON applied to every job (file path "
                            "or inline); use --modes wgtt with this")
    sweep.add_argument("--backend", choices=("pool", "queue"), default="pool",
                       help="pool: ProcessPoolExecutor fan-out (default); "
                            "queue: directory-lease work queue drained by "
                            "pull workers with heartbeats and crash requeue")
    sweep.add_argument("--workers", type=int, default=None,
                       help="queue-backend worker processes "
                            "(default: --jobs)")
    sweep.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="queue-backend root directory (default: a fresh "
                            "temp dir; point several hosts at one shared "
                            "dir to distribute)")
    sweep.add_argument("--lease-timeout", type=float, default=30.0,
                       help="seconds of worker silence before its job is "
                            "requeued (queue backend)")
    sweep.add_argument("--store", choices=("json", "columnar"),
                       default="json",
                       help="columnar: also pack every summary into .npz "
                            "shards + a streaming aggregate.json under "
                            "--store-dir")
    sweep.add_argument("--store-dir", default=".repro_store", metavar="DIR",
                       help="columnar store root (default .repro_store)")
    sweep.add_argument("--fault-campaign", default=None, metavar="JSON",
                       help="Poisson fault regime crossed with the grid "
                            "(inline JSON or file with crash_rate_per_ap_hz "
                            "etc.); per-job scenarios derive from the sweep "
                            "seed -- mutually exclusive w/ --fault-scenario")
    sweep.set_defaults(fn=cmd_sweep)

    status = sub.add_parser(
        "sweep-status",
        help="inspect a queue-backed sweep (live or finished)",
    )
    status.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="queue root to summarise")
    status.add_argument("--store-dir", default=None, metavar="DIR",
                        help="columnar store root to summarise")
    status.set_defaults(fn=cmd_sweep_status)

    channel = sub.add_parser("channel", help="inspect the picocell channel")
    channel.add_argument("--speed", type=float, default=25.0)
    channel.add_argument("--seed", type=int, default=0)
    channel.set_defaults(fn=cmd_channel)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
